//! Visualize the overlap that is the paper's core claim (Figs. 3 and 7):
//! while some regions execute on the GPU, others are in flight over the
//! interconnect in both directions.
//!
//! Prints an ASCII Gantt chart of the engine lanes and writes a Chrome
//! trace-event file loadable in `chrome://tracing` / Perfetto.
//!
//! ```text
//! cargo run --release -p examples --bin overlap_timeline [out.json]
//! ```

use baselines::{tida_busy, TidaOpts};
use gpu_sim::MachineConfig;
use kernels::busy::DEFAULT_KERNEL_ITERATION;

fn main() {
    let cfg = MachineConfig::k40m();

    // Six regions, two device slots: the steady state constantly stages
    // regions in and out while kernels run — the paper's Fig. 7 scenario.
    let opts = TidaOpts::timing(6).with_max_slots(2).with_tracing();
    let r = tida_busy(&cfg, 64, 2, DEFAULT_KERNEL_ITERATION, &opts);
    let trace = r.trace.expect("tracing was enabled");

    println!(
        "TiDA-acc, 6 regions, 2 device slots, 2 time steps — elapsed {}",
        r.elapsed
    );
    println!(
        "moved {} MiB up / {} MiB down across {} kernels\n",
        r.bytes_h2d >> 20,
        r.bytes_d2h >> 20,
        r.kernels
    );
    print!("{}", trace.render_gantt(110));

    let h2d = trace.overlap_time(0, 2);
    let d2h = trace.overlap_time(1, 2);
    let compute_busy = trace.busy_time(2);
    println!("\ncompute engine busy: {compute_busy}");
    println!("h2d overlapped with compute: {h2d}");
    println!("d2h overlapped with compute: {d2h}");
    let h2d_total = trace.busy_time(0);
    println!(
        "fraction of H2D hidden behind kernels: {:.0}%",
        100.0 * h2d.as_secs_f64() / h2d_total.as_secs_f64().max(1e-12)
    );

    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "overlap_trace.json".to_string());
    std::fs::write(&path, trace.to_chrome_json()).expect("write trace file");
    println!("\nwrote Chrome trace to {path} (open in chrome://tracing or Perfetto)");
}
