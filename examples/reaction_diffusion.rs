//! Gray–Scott reaction-diffusion through the multi-operand compute API:
//! two coupled fields, four arrays rotating roles, pattern formation
//! rendered as ASCII frames, and a bottleneck report from the simulator's
//! critical-path analysis.
//!
//! ```text
//! cargo run --release -p examples --bin reaction_diffusion
//! ```

use examples_common::render_slice;
use gpu_sim::{GpuSystem, MachineConfig};
use kernels::gray_scott::{self, GrayScott};
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, TileAcc};

fn main() {
    let n = 24i64;
    let frames = 4;
    let steps_per_frame = 40;
    let p = GrayScott::default();

    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(4),
    ));
    let mk = || TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let (au, av, bu, bv) = (mk(), mk(), mk(), mk());
    let (fu, fv) = gray_scott::seed(n);
    au.fill_valid(&fu);
    av.fill_valid(&fv);

    let mut gpu = GpuSystem::new(MachineConfig::k40m());
    gpu.set_tracing(true);
    let mut acc = TileAcc::new(gpu, AccOptions::paper());
    let ids = [
        acc.register(&au),
        acc.register(&av),
        acc.register(&bu),
        acc.register(&bv),
    ];
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let (mut cur, mut next) = ([ids[0], ids[1]], [ids[2], ids[3]]);

    println!(
        "Gray-Scott on {n}^3 (F={}, k={}), v-field mid-slice:",
        p.feed, p.kill
    );
    for frame in 0..frames {
        for _ in 0..steps_per_frame {
            acc.fill_boundary(cur[0]).unwrap();
            acc.fill_boundary(cur[1]).unwrap();
            for &t in &tiles {
                acc.compute(
                    t,
                    &next,
                    &cur,
                    gray_scott::cost(t.num_cells()),
                    "gray-scott",
                    move |ws, rs, bx| gray_scott::step_tile(ws, rs, &bx, p),
                )
                .unwrap();
            }
            std::mem::swap(&mut cur, &mut next);
        }
        // Pull the v field home for rendering (and push it back by simply
        // letting the next compute re-upload it).
        acc.sync_to_host(cur[1]).unwrap();
        let v_arr = if cur[1] == ids[1] { &av } else { &bv };
        let dense = v_arr.to_dense().unwrap();
        println!(
            "\nframe {} (t = {} steps, sim time {}):",
            frame + 1,
            (frame + 1) * steps_per_frame,
            acc.gpu().host_now()
        );
        print!("{}", render_slice(&dense, n, n / 2, 24));
    }

    acc.sync_to_host(cur[0]).unwrap();
    acc.finish();
    println!("\nruntime stats: {}", acc.stats());

    // Where did the simulated time go?
    println!("\nbottleneck report:");
    let report = acc.gpu_mut().report();
    print!("{report}");
    let (cat, t) = report.dominant_category().unwrap();
    println!("dominant critical-path category: {cat} ({t})");
}
