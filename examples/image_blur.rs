//! Out-of-core image processing: blur an image that does not fit in device
//! memory, strip by strip, through the TiDA-acc staging pipeline — the
//! paper's image-processing motivation (§I) combined with its
//! larger-than-device-memory contribution (Figs. 7/8).
//!
//! ```text
//! cargo run --release -p examples --bin image_blur
//! ```

use gpu_sim::{GpuSystem, MachineConfig};
use kernels::blur2d;
use std::sync::Arc;
use tida::{tiles_of, Decomposition, ExchangeMode, Layout, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, TileAcc};

fn render(img: &[f64], n: i64, width: usize) -> String {
    let glyphs: &[u8] = b" .:-=+*#%@";
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in img {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(1e-12);
    let step = ((n as usize) / width.max(1)).max(1);
    let mut out = String::new();
    let mut y = 0usize;
    while y < n as usize {
        let mut x = 0usize;
        while x < n as usize {
            let v = img[y * n as usize + x];
            let g = (((v - lo) / span) * (glyphs.len() - 1) as f64).round() as usize;
            out.push(glyphs[g.min(glyphs.len() - 1)] as char);
            x += step;
        }
        out.push('\n');
        y += step;
    }
    out
}

fn main() {
    let n = 48i64; // image side; strips of rows are the regions
    let passes = 3;
    let strips = 8usize;

    let dom = blur2d::image_domain(n);
    let decomp = Arc::new(Decomposition::new(dom, RegionSpec::Grid([1, strips, 1])));
    let src = TileArray::new(decomp.clone(), 1, ExchangeMode::Full, true);
    let dst = TileArray::new(decomp.clone(), 1, ExchangeMode::Full, true);
    let f = blur2d::test_image(n);
    src.fill_valid(&f);

    // Device memory sized for only ~3 strips: the image is out-of-core.
    let strip_bytes = src.max_region_bytes();
    let cfg = MachineConfig::k40m().with_device_mem(strip_bytes * 7 / 2);
    let mut acc = TileAcc::new(GpuSystem::new(cfg), AccOptions::paper());
    let a = acc.register(&src);
    let b = acc.register(&dst);

    let l = Layout::new(dom.bx);
    let before: Vec<f64> = {
        let d = src.to_dense().unwrap();
        blur2d::to_pixels(&d, n)
    };

    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let (mut cur, mut next) = (a, b);
    for _ in 0..passes {
        acc.fill_boundary(cur).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                next,
                cur,
                blur2d::cost(t.num_cells()),
                "blur",
                |dv, sv, bx| blur2d::blur_tile(dv, sv, &bx),
            )
            .unwrap();
        }
        std::mem::swap(&mut cur, &mut next);
    }
    acc.sync_to_host(cur).unwrap();
    let elapsed = acc.finish();

    let after_arr = if cur == a { &src } else { &dst };
    let after = blur2d::to_pixels(&after_arr.to_dense().unwrap(), n);

    println!(
        "image {n}x{n} in {strips} strips, device holds {} slots; {passes} blur passes",
        acc.num_slots()
    );
    println!("\nbefore:");
    print!("{}", render(&before, n, 48));
    println!("\nafter:");
    print!("{}", render(&after, n, 48));

    // Validate against the dense reference.
    let mut golden = before.clone();
    let mut tmp = vec![0.0; golden.len()];
    for _ in 0..passes {
        blur2d::golden_pass(&mut tmp, &golden, n);
        std::mem::swap(&mut golden, &mut tmp);
    }
    assert_eq!(
        after, golden,
        "out-of-core blur must match the dense blur bitwise"
    );
    println!("\nbitwise identical to the dense reference ✓");
    println!(
        "simulated time {elapsed}; {} (strips staged through {} slots)",
        acc.stats(),
        acc.num_slots()
    );
    let _ = l;
}
