//! Crash-consistent checkpoint/restart, end to end.
//!
//! Runs a tiled heat problem three ways:
//!
//! 1. fault-free, as the golden reference;
//! 2. under the run supervisor with a seeded platform crash at step N —
//!    the supervisor restores the latest snapshot and resumes, and the
//!    final grid is bit-identical to the reference;
//! 3. a "process restart": checkpoints mirrored to disk, the first
//!    accelerator dropped mid-run, and a brand-new one rebuilt from
//!    `CheckpointStore::scan_dir` — again bit-identical.
//!
//! Recovery accounting (checkpoints taken/restored, crash detections,
//! lost virtual time) is printed from both the supervisor's counters and
//! the accelerator's own stats line.
//!
//! ```text
//! cargo run --release -p examples --bin checkpoint_restart
//! ```

use gpu_sim::{CrashFault, FaultPlan, GpuSystem, MachineConfig};
use kernels::{heat, init};
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{
    AccError, AccOptions, ArrayId, CheckpointPolicy, CheckpointStore, Supervisor, SupervisorConfig,
    TileAcc,
};

const N: i64 = 16;
const STEPS: u64 = 8;
const SEED: u64 = 7;

fn arrays(decomp: &Arc<Decomposition>) -> (TileArray, TileArray) {
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::hash_field(SEED));
    (ua, ub)
}

/// One heat step; step parity picks the source array so a replay from any
/// snapshot's step recomputes exactly what the original run did.
fn heat_step(
    acc: &mut TileAcc,
    decomp: &Arc<Decomposition>,
    a: ArrayId,
    b: ArrayId,
    step: u64,
) -> Result<(), AccError> {
    let (src, dst) = if step.is_multiple_of(2) {
        (a, b)
    } else {
        (b, a)
    };
    acc.fill_boundary(src)?;
    for t in tiles_of(decomp, TileSpec::RegionSized) {
        acc.compute2(
            t,
            dst,
            src,
            heat::cost(t.num_cells()),
            "heat",
            |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
        )?;
    }
    Ok(())
}

fn result_array(a: &TileArray, b: &TileArray, steps: u64) -> Vec<f64> {
    if steps.is_multiple_of(2) { a } else { b }
        .to_dense()
        .expect("backed run")
}

fn main() {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(N),
        RegionSpec::Grid([2, 2, 1]),
    ));
    let golden = heat::golden_run(init::hash_field(SEED), N, STEPS as usize, heat::DEFAULT_FAC);

    // -- 2. supervised run killed at a seeded crash point -------------------
    let (ua, ub) = arrays(&decomp);
    let cfg = SupervisorConfig {
        policy: CheckpointPolicy::every(2).keep(3),
        ..SupervisorConfig::default()
    };
    let mut sup = Supervisor::new(cfg);
    let ids: std::cell::Cell<Option<(ArrayId, ArrayId)>> = std::cell::Cell::new(None);
    let d = decomp.clone();
    let outcome = sup
        .run(
            STEPS,
            |attempt| {
                // Attempt 0 dies on its 18th transfer; rebuilds run clean.
                let plan = if attempt == 0 {
                    FaultPlan::none().with_crash(CrashFault::at_transfer(18))
                } else {
                    FaultPlan::none()
                };
                let mut acc = TileAcc::new(
                    GpuSystem::new(MachineConfig::k40m().with_faults(plan)),
                    AccOptions::paper(),
                );
                ids.set(Some((acc.register(&ua), acc.register(&ub))));
                acc
            },
            |acc, step| {
                let (a, b) = ids.get().expect("build ran first");
                heat_step(acc, &d, a, b, step)
            },
        )
        .expect("supervised run completes through the crash");

    let grid = result_array(&ua, &ub, STEPS);
    println!("== supervised crash/restart ==");
    println!(
        "bit-identical to fault-free golden: {}",
        if grid == golden { "yes" } else { "NO" }
    );
    let c = outcome.counters;
    println!(
        "checkpoints taken/restored: {}/{}  crashes: {}  hangs: {}  lost virtual time: {}",
        c.checkpoints_taken,
        c.checkpoints_restored,
        c.crash_detections,
        c.hang_detections,
        c.recovery_time,
    );
    println!("stats: {}", outcome.stats);
    assert_eq!(grid, golden, "restored run diverged from golden");

    // -- 3. cross-process restart from an on-disk snapshot ------------------
    let dir = std::env::temp_dir().join(format!("tack-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = CheckpointPolicy::every(2).keep(3).on_disk(&dir);

    let (va, vb) = arrays(&decomp);
    let mut acc = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), AccOptions::paper());
    let (a, b) = (acc.register(&va), acc.register(&vb));
    let mut store = CheckpointStore::new(policy.clone());
    let kill_at = 5; // "kill -9" the process after this step
    for s in 0..kill_at {
        if s % 2 == 0 {
            store
                .push(&acc.checkpoint(s).expect("alive"))
                .expect("disk");
        }
        heat_step(&mut acc, &decomp, a, b, s).expect("clean run");
    }
    drop(acc); // the process dies here; only the on-disk files survive
    drop(store);

    let store = CheckpointStore::scan_dir(policy, &dir).expect("rescan");
    let (ck, rejected) = store.latest_valid();
    let ck = ck.expect("a valid snapshot on disk");
    println!("\n== process restart from {} ==", dir.display());
    println!(
        "snapshots on disk: {}  rejected: {}  resuming from step {}",
        store.len(),
        rejected,
        ck.step
    );

    let (wa, wb) = arrays(&decomp); // a new process's arrays: blank slate
    wa.fill_valid(|_| 0.0);
    let mut acc2 = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), AccOptions::paper());
    let (a2, b2) = (acc2.register(&wa), acc2.register(&wb));
    tida_acc::restore_into(&mut acc2, &ck).expect("restore");
    for s in ck.step..STEPS {
        heat_step(&mut acc2, &decomp, a2, b2, s).expect("resumed run");
    }
    acc2.sync_to_host(if STEPS.is_multiple_of(2) { a2 } else { b2 })
        .expect("final sync");
    let grid2 = result_array(&wa, &wb, STEPS);
    println!(
        "bit-identical after restart: {}",
        if grid2 == golden { "yes" } else { "NO" }
    );
    println!("stats: {}", acc2.stats());
    assert_eq!(grid2, golden, "restarted run diverged from golden");
    let _ = std::fs::remove_dir_all(&dir);
}
