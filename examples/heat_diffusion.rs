//! The paper's transfer-intensive application: a 3-D heat solver, run
//! through TiDA-acc and validated against the dense golden reference, then
//! timed at paper scale against the CUDA/OpenACC baselines (Fig. 5).
//!
//! ```text
//! cargo run --release -p examples --bin heat_diffusion
//! ```

use baselines::{heat as bheat, tida_heat, MemMode, RunOpts, TidaOpts};
use examples_common::render_slice;
use gpu_sim::MachineConfig;
use kernels::{heat, init, norms};
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, TileAcc};

fn main() {
    let cfg = MachineConfig::k40m();

    // --- Part 1: validated run at small scale -------------------------
    let n = 24i64;
    let steps = 50;
    println!("validated run: {n}^3, {steps} steps, 4 regions, real data");
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(4),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::gaussian(n));

    let mut acc = TileAcc::new(gpu_sim::GpuSystem::new(cfg.clone()), AccOptions::paper());
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let (mut src, mut dst) = (a, b);
    for _ in 0..steps {
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                heat::cost(t.num_cells()),
                "heat",
                |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    acc.finish();

    let result = if src == a { &ua } else { &ub };
    let dense = result.to_dense().expect("backed run");
    let golden = heat::golden_run(init::gaussian(n), n, steps, heat::DEFAULT_FAC);
    println!(
        "  L-inf error vs golden: {:.3e}",
        norms::linf(&dense, &golden)
    );
    assert_eq!(
        dense, golden,
        "TiDA-acc must match the dense reference bitwise"
    );
    println!("  bitwise identical to the dense reference ✓");
    println!("  runtime stats: {}", acc.stats());

    println!("\ncentre slice after diffusion:");
    print!("{}", render_slice(&dense, n, n / 2, 24));

    // --- Part 2: paper-scale timing comparison ------------------------
    println!("\ntiming at paper scale (512^3, timing-only buffers):");
    let n = 512;
    for iters in [1usize, 100] {
        let base = bheat::cuda_heat(&cfg, n, iters, RunOpts::timing(MemMode::Pageable));
        let pinned = bheat::cuda_heat(&cfg, n, iters, RunOpts::timing(MemMode::Pinned));
        let tida = tida_heat(&cfg, n, iters, &TidaOpts::timing(16));
        println!(
            "  {iters:>4} iters: CUDA-pageable {:>10.2} ms | CUDA-pinned {:>10.2} ms ({:.2}x) | TiDA-acc(16r) {:>10.2} ms ({:.2}x)",
            base.ms(),
            pinned.ms(),
            pinned.speedup_over(&base),
            tida.ms(),
            tida.speedup_over(&base),
        );
    }
    println!("\nTiDA-acc hides the transfer latency where transfers dominate (few iterations).");
}
