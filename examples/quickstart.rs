//! Quickstart: decompose a domain, run one GPU kernel per region, read the
//! results back — the paper's §V interface end to end.
//!
//! ```text
//! cargo run --release -p examples --bin quickstart
//! ```

use gpu_sim::{GpuSystem, KernelCost, MachineConfig};
use std::sync::Arc;
use tida::{Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccIter, AccOptions, TileAcc};

fn main() {
    // A 32^3 periodic domain split into 4 z-slab regions (Fig. 2).
    let n = 32i64;
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(4),
    ));
    println!(
        "domain {n}^3 decomposed into {} regions:",
        decomp.num_regions()
    );
    for (id, bx) in decomp.region_boxes().iter().enumerate() {
        println!("  region {id}: {bx}  ({} cells)", bx.num_cells());
    }

    // One ghost-padded array, real (backed) data.
    let u = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    u.fill_valid(|iv| (iv.x() + iv.y() + iv.z()) as f64);

    // The accelerated runtime on a simulated Tesla K40m.
    let mut acc = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), AccOptions::paper());
    let a = acc.register(&u);

    // Traverse tiles with the paper's iterator protocol; GPU enabled.
    let mut it = AccIter::new(&decomp, TileSpec::RegionSized);
    it.reset(&mut acc, true);
    while it.is_valid() {
        let tile = it.tile();
        // The "lambda": triple every cell. Cost: one read + one write.
        acc.compute1(
            tile,
            a,
            KernelCost::Bytes(tile.num_cells() * 16),
            "triple",
            move |v, bx| {
                for iv in bx.iter() {
                    v.update(iv, |x| 3.0 * x);
                }
            },
        )
        .unwrap();
        it.next_tile();
    }

    // Bring the data home and look at it.
    acc.sync_to_host(a).unwrap();
    let elapsed = acc.finish();
    let sample = tida::IntVect::new(1, 2, 3);
    println!(
        "\nu{sample} = {} (expected {})",
        u.value(sample).unwrap(),
        3 * (1 + 2 + 3)
    );
    assert_eq!(u.value(sample), Some(18.0));

    println!("simulated time: {elapsed}");
    println!("runtime stats:  {}", acc.stats());
    println!(
        "transfers: {} MiB up, {} MiB down, {} kernels",
        acc.gpu().stats_bytes_h2d() >> 20,
        acc.gpu().stats_bytes_d2h() >> 20,
        acc.gpu().stats_kernels()
    );
    println!("\nOK — every region was staged to the device, computed, and synced back.");
}
