//! Multi-GPU heat solver: regions distributed across simulated GPUs with
//! pack → peer-copy → unpack halo exchange (the `MultiAcc` extension).
//!
//! ```text
//! cargo run --release -p examples --bin multi_gpu
//! ```

use gpu_sim::{GpuSystem, MachineConfig};
use kernels::{heat, init, norms};
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::MultiAcc;

fn main() {
    // --- Part 1: validated 2-GPU run ----------------------------------
    let n = 16i64;
    let steps = 10;
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(4),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::gaussian(n));

    let mut acc = MultiAcc::new(GpuSystem::multi(MachineConfig::k40m(), 2, true));
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let (mut src, mut dst) = (a, b);
    for _ in 0..steps {
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                heat::cost(t.num_cells()),
                "heat",
                |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    acc.finish();

    println!("region ownership:");
    for r in 0..decomp.num_regions() {
        println!("  region {r} -> GPU {}", acc.owner(r));
    }
    println!(
        "peer-link traffic: {} KiB across {} steps",
        acc.gpu().stats_bytes_p2p() >> 10,
        steps
    );

    let result = if src == a { &ua } else { &ub };
    let dense = result.to_dense().unwrap();
    let golden = heat::golden_run(init::gaussian(n), n, steps, heat::DEFAULT_FAC);
    println!(
        "L-inf error vs dense golden: {:.3e}",
        norms::linf(&dense, &golden)
    );
    assert_eq!(dense, golden);
    println!("2-GPU result is bitwise identical to the dense reference ✓");

    // --- Part 2: strong scaling at paper scale ------------------------
    println!("\nstrong scaling (512^3, 100 steps, 16 regions, timing-only):");
    let cfg = MachineConfig::k40m();
    let base = baselines::tida_heat_multi(&cfg, 512, 100, 16, 1, false);
    println!("  1 GPU : {:>10.2} ms", base.ms());
    for devices in [2usize, 4, 8] {
        let r = baselines::tida_heat_multi(&cfg, 512, 100, 16, devices, false);
        println!(
            "  {devices} GPUs: {:>10.2} ms  ({:.2}x)",
            r.ms(),
            r.speedup_over(&base),
        );
    }
    println!("\nSpeedup saturates where the per-step halo exchange (host index work +");
    println!("peer-link transfers + the acc-wait barrier) stops shrinking with devices.");
}
