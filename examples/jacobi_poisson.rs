//! Jacobi solver for the Poisson equation with device-side residual
//! reductions: the solver pattern the paper's motivating applications run —
//! stencil sweeps, ghost exchange, and a global convergence check per block
//! of iterations, all through the TiDA-acc pipeline.
//!
//! ```text
//! cargo run --release -p examples --bin jacobi_poisson
//! ```

use gpu_sim::{GpuSystem, MachineConfig};
use kernels::jacobi;
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, TileAcc};

fn main() {
    let n = 16i64;
    let check_every = 20;
    let max_sweeps = 200;
    let tol = 1e-4;

    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(4),
    ));
    let mk = || TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let (u, unew, rhs, res) = (mk(), mk(), mk(), mk());
    let f = jacobi::manufactured_rhs(n);
    rhs.from_dense(&f);
    u.fill_valid(|_| 0.0);

    let mut acc = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), AccOptions::paper());
    let (au, aun, af, ar) = (
        acc.register(&u),
        acc.register(&unew),
        acc.register(&rhs),
        acc.register(&res),
    );
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);

    println!("Jacobi / Poisson on a periodic {n}^3 grid, 4 regions, simulated K40m");
    println!("sweeps   max|r|          simulated time");

    let (mut cur, mut next) = (au, aun);
    let mut sweeps = 0;
    while sweeps < max_sweeps {
        for _ in 0..check_every {
            acc.fill_boundary(cur).unwrap();
            for &t in &tiles {
                acc.compute(
                    t,
                    &[next],
                    &[cur, af],
                    jacobi::cost(t.num_cells()),
                    "jacobi",
                    |ws, rs, bx| jacobi::sweep_tile(&mut ws[0], &rs[0], &rs[1], &bx),
                )
                .unwrap();
            }
            std::mem::swap(&mut cur, &mut next);
            sweeps += 1;
        }
        // Residual through the reduction API (device-side partials).
        acc.fill_boundary(cur).unwrap();
        for &t in &tiles {
            acc.compute(
                t,
                &[ar],
                &[cur, af],
                jacobi::cost(t.num_cells()),
                "residual",
                |ws, rs, bx| jacobi::residual_tile(&mut ws[0], &rs[0], &rs[1], &bx),
            )
            .unwrap();
        }
        let r = acc.reduce_max_abs(ar).unwrap().expect("backed run");
        println!("{sweeps:>6}   {r:<14.6e} {}", acc.gpu().host_now());
        if r < tol {
            break;
        }
    }

    acc.sync_to_host(cur).unwrap();
    let elapsed = acc.finish();

    // Cross-check the residual against the dense evaluation.
    let arr = if cur == au { &u } else { &unew };
    let dense = arr.to_dense().unwrap();
    let dense_res = jacobi::golden_residual(&dense, &f, n);
    println!("\nfinal residual (dense check): {dense_res:.6e}");
    println!("total simulated time: {elapsed}");
    println!("runtime stats: {}", acc.stats());

    let golden = jacobi::golden_run(&f, n, sweeps);
    assert_eq!(
        dense, golden,
        "solver must match the dense reference bitwise"
    );
    println!("\nbitwise identical to {sweeps} dense Jacobi sweeps ✓");
}
