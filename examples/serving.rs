//! Multi-tenant serving on one simulated accelerator, end to end.
//!
//! Three tenants share the platform through the serving runtime:
//!
//! * **tenant 0** submits a batch of ordinary jobs — the bystander whose
//!   results must never depend on who else is on the machine;
//! * **tenant 1** is *faulty*: a seeded fault plan scoped to it injects
//!   transient transfer failures into its submissions only. Per-transfer
//!   retries absorb them; no other tenant sees a single fault ordinal
//!   advance;
//! * **tenant 2** submits one long low-priority job, then a high-priority
//!   job arrives mid-run: the long job is preempted through the TACK
//!   checkpoint codec, the VIP runs, and the long job resumes and
//!   finishes **bit-identical** to an uninterrupted run.
//!
//! Every completed digest is checked against the spec's host-computed
//! golden value, and the platform's cross-tenant touch counter must end
//! at zero — the isolation contract, demonstrated rather than asserted in
//! a test harness.
//!
//! ```text
//! cargo run --release -p examples --bin serving
//! ```

use gpu_sim::FaultPlan;
use serving::{JobSpec, ServingConfig, ServingRuntime};

fn main() {
    // Faults are scoped to tenant 1: everyone else's schedule is exempt
    // by construction.
    let mut rt = ServingRuntime::new(ServingConfig {
        max_active: 2,
        fault_plan: FaultPlan::none()
            .with_seed(41)
            .with_transient(0.3)
            .scoped_to(1),
        ..ServingConfig::default()
    });

    println!("== submitting ==");
    let mut goldens = std::collections::HashMap::new();
    for (label, spec) in [
        ("bystander", JobSpec::new(0, 2, 256, 4, 100)),
        ("bystander", JobSpec::new(0, 1, 512, 3, 101)),
        ("faulty-tenant", JobSpec::new(1, 2, 256, 4, 200)),
        ("faulty-tenant", JobSpec::new(1, 2, 128, 6, 201)),
        // Two long low-priority jobs: once the small jobs drain, these
        // hold both device slots — so the VIP below can only run by
        // evicting one (the younger: tenant 2's).
        ("long-bystander", JobSpec::new(0, 2, 2048, 16, 300)),
        ("long-low-prio", JobSpec::new(2, 2, 2048, 16, 301)),
    ] {
        let golden = spec.golden_digest();
        let id = rt.submit(spec).expect("admission");
        goldens.insert(id, (label, golden));
        println!("  job {id:>2} {label:<14} golden {golden:016x}");
    }

    // Serve until the four small jobs are done — at that point the two
    // long jobs occupy both slots — then give them a few steps of headway
    // before the VIP lands.
    while rt.results().len() < 4 && rt.run_rounds(1) {}
    rt.run_rounds(8);
    let vip = JobSpec::new(2, 1, 256, 2, 301).with_priority(9);
    let vip_golden = vip.golden_digest();
    let vip_id = rt.submit(vip).expect("admission");
    goldens.insert(vip_id, ("vip-priority-9", vip_golden));
    println!(
        "  job {vip_id:>2} {:<14} golden {vip_golden:016x}  (arrives mid-run)",
        "vip-prio-9"
    );

    rt.run_until_idle();

    println!("\n== results ==");
    let mut all_golden = true;
    for r in rt.results() {
        let (label, golden) = goldens[&r.job];
        let verdict = match &r.outcome {
            Ok(d) if *d == golden => "GOLDEN",
            Ok(_) => {
                all_golden = false;
                "WRONG DIGEST"
            }
            Err(_) => {
                all_golden = false;
                "FAILED"
            }
        };
        println!(
            "  job {:>2} tenant {} {:<14} {:<12} latency {:>9.3} ms, retries {}, preemptions {}",
            r.job,
            r.tenant,
            label,
            verdict,
            r.latency().as_ms_f64(),
            r.retries,
            r.preemptions,
        );
    }

    let fs = rt.fault_stats();
    let long = rt
        .results()
        .iter()
        .find(|r| goldens[&r.job].0 == "long-low-prio")
        .expect("long job finished");
    println!("\n== isolation ==");
    println!(
        "  injected transfer faults (all into tenant 1): {}",
        fs.h2d_faults + fs.d2h_faults
    );
    println!("  long job preemptions: {}", long.preemptions);
    println!(
        "  cross-tenant buffer touches: {}",
        rt.cross_tenant_touches()
    );
    println!("  scheduler hazards: {}", rt.hazard_counters().total());

    assert!(all_golden, "every job must finish with its golden digest");
    assert!(
        fs.h2d_faults + fs.d2h_faults > 0,
        "the scoped plan did fire into tenant 1"
    );
    assert!(long.preemptions >= 1, "the VIP preempted the long job");
    assert_eq!(rt.cross_tenant_touches(), 0);
    println!("\nall tenants golden; faults stayed scoped; preempted job restored bit-identically");
}
