//! Geometric multigrid with the fine level on the (simulated) GPU: the
//! BoxLib-style application the TiDA lineage was built for. Compares
//! V-cycle convergence against plain device Jacobi at equal fine-sweep
//! counts.
//!
//! ```text
//! cargo run --release -p examples --bin multigrid_poisson
//! ```

use baselines::multigrid::tida_multigrid;
use gpu_sim::MachineConfig;
use kernels::jacobi;

fn main() {
    let cfg = MachineConfig::k40m();
    let n = 16i64;
    let (pre, post) = (3, 3);

    println!("Poisson ∇²u = f on a periodic {n}^3 grid (manufactured mean-free f)");
    println!(
        "fine-level smoothing and residuals on the simulated K40m; coarse grids on the host\n"
    );

    let cycles = 4;
    let mg = tida_multigrid(&cfg, n, cycles, pre, post, 4, true);
    println!("V({pre},{post})-cycle convergence:");
    for (i, r) in mg.residuals.iter().enumerate() {
        let rate = if i > 0 {
            mg.residuals[i] / mg.residuals[i - 1]
        } else {
            f64::NAN
        };
        if i == 0 {
            println!("  cycle {i}: max|r| = {r:.6e}");
        } else {
            println!("  cycle {i}: max|r| = {r:.6e}   (x{rate:.3} per cycle)");
        }
    }
    println!("  simulated time: {}\n", mg.run.elapsed);

    // Plain Jacobi given the same number of fine sweeps.
    let fine_sweeps = cycles * (pre + post);
    let f = jacobi::manufactured_rhs(n);
    let plain = jacobi::golden_run(&f, n, fine_sweeps);
    let plain_res = jacobi::golden_residual(&plain, &f, n);
    println!("plain Jacobi after the same {fine_sweeps} fine sweeps: max|r| = {plain_res:.6e}");
    println!(
        "multigrid is {:.0}x more accurate for the same fine-level work",
        plain_res / mg.residuals.last().unwrap()
    );

    // Paper-scale timing, virtual buffers.
    println!("\npaper-scale timing (128^3, 3 cycles, timing-only):");
    let big = tida_multigrid(&cfg, 128, 3, pre, post, 8, false);
    println!(
        "  elapsed {}; {} kernels, {} MiB H2D, {} MiB D2H",
        big.run.elapsed,
        big.run.kernels,
        big.run.bytes_h2d >> 20,
        big.run.bytes_d2h >> 20
    );
}
