//! Shared helpers for the example binaries.

use tida::{Box3, IntVect, Layout};

/// Render a z-slice of a dense field as an ASCII heat map.
pub fn render_slice(data: &[f64], n: i64, z: i64, width: usize) -> String {
    let l = Layout::new(Box3::cube(n));
    let glyphs: &[u8] = b" .:-=+*#%@";
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in data {
        lo = lo.min(*v);
        hi = hi.max(*v);
    }
    let span = (hi - lo).max(1e-12);
    let step = ((n as usize) / width.max(1)).max(1);
    let mut out = String::new();
    let mut y = 0;
    while y < n {
        let mut x = 0;
        while x < n {
            let v = data[l.offset(IntVect::new(x, y, z))];
            let g = (((v - lo) / span) * (glyphs.len() - 1) as f64).round() as usize;
            out.push(glyphs[g.min(glyphs.len() - 1)] as char);
            x += step as i64;
        }
        out.push('\n');
        y += step as i64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_renders_expected_shape() {
        let n = 8;
        let l = Layout::new(Box3::cube(n));
        let mut data = vec![0.0; l.len()];
        data[l.offset(IntVect::new(4, 4, 0))] = 1.0;
        let art = render_slice(&data, n, 0, 8);
        assert_eq!(art.lines().count(), 8);
        assert!(art.contains('@'));
    }
}
