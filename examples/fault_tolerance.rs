//! Fault injection and graceful degradation, end to end.
//!
//! Runs the same tiled heat problem three times against a simulated PCIe
//! link that misbehaves on purpose:
//!
//! 1. fault-free, as the reference;
//! 2. with seeded *transient* transfer faults — every failed attempt is
//!    retried with exponential backoff and the numerics are unchanged;
//! 3. with a *persistently* dead D2H lane — the runtime salvages dirty
//!    device regions and degrades to the host path, still finishing with
//!    the correct answer.
//!
//! The faulted attempts, backoff waits and salvage copies all show up as
//! their own lanes in the trace, so the recovery cost is visible in the
//! Gantt chart and the run report.
//!
//! ```text
//! cargo run --release -p examples --bin fault_tolerance
//! ```

use gpu_sim::{FaultPlan, GpuSystem, MachineConfig, TransferFaults};
use kernels::{heat, init};
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, TileAcc};

const N: i64 = 16;
const STEPS: usize = 4;

fn run(label: &str, plan: FaultPlan, tracing: bool) -> (Vec<f64>, Option<gpu_sim::Trace>) {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(N),
        RegionSpec::Grid([2, 2, 1]),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::hash_field(7));
    let mut gpu = GpuSystem::new(MachineConfig::k40m().with_faults(plan));
    gpu.set_tracing(tracing);
    let mut acc = TileAcc::new(gpu, AccOptions::paper().with_transfer_retries(6));
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let (mut src, mut dst) = (a, b);
    for _ in 0..STEPS {
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                heat::cost(t.num_cells()),
                "heat",
                |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    let elapsed = acc.finish();

    let st = acc.stats();
    let fs = acc.gpu().fault_stats();
    println!("== {label}");
    println!(
        "   elapsed {elapsed}, device_failed={}",
        acc.device_failed()
    );
    println!(
        "   transfers: {} H2D / {} D2H attempts, {} faulted, {} retries, {} salvaged",
        fs.h2d_attempts,
        fs.d2h_attempts,
        fs.h2d_faults + fs.d2h_faults,
        st.transfer_retries,
        st.salvaged_regions,
    );
    println!(
        "   {}",
        acc.gpu_mut().report().to_string().replace('\n', "\n   ")
    );
    let trace = tracing.then(|| acc.gpu().trace());
    let arr = if src == a { &ua } else { &ub };
    (arr.to_dense().expect("backed run"), trace)
}

fn main() {
    let (reference, _) = run("fault-free reference", FaultPlan::none(), false);

    let flaky = FaultPlan {
        h2d: TransferFaults {
            transient_rate: 0.35,
            ..TransferFaults::default()
        },
        d2h: TransferFaults {
            transient_rate: 0.35,
            ..TransferFaults::default()
        },
        ..FaultPlan::none().with_seed(2017)
    };
    let (transient, trace) = run("transient PCIe faults (35% per transfer)", flaky, true);
    assert_eq!(transient, reference, "retries must preserve the numerics");
    println!("   result identical to the fault-free run\n");
    if let Some(t) = trace {
        print!("{}", t.render_gantt(100));
        println!();
    }

    let dead_d2h = FaultPlan {
        d2h: TransferFaults {
            fail_after: Some(2),
            ..TransferFaults::default()
        },
        ..FaultPlan::none().with_seed(2017)
    };
    let (degraded, _) = run("persistently dead D2H lane", dead_d2h, false);
    assert_eq!(
        degraded, reference,
        "host fallback must preserve the numerics"
    );
    println!("   result identical to the fault-free run — finished on the host path");
}
