//! Silent-corruption defense and stream-hazard detection, end to end.
//!
//! Runs a tiled heat problem four ways:
//!
//! 1. fault-free, as the golden reference — and with the deep hazard
//!    detector on, proving the overlap engine's stream programs are
//!    data-race free (zero hazards);
//! 2. with seeded in-flight bit flips on both transfer directions — every
//!    corruption is caught by the end-to-end digests and repaired by
//!    bounded retransmission, and the final grid is bit-identical;
//! 3. with a resident DRAM strike on *clean* data — the next consumer's
//!    verification repairs the slot from its authoritative host origin;
//! 4. with a resident strike on *dirty* data (host copy stale) under the
//!    run supervisor — the poison is unrepairable in place, surfaces as a
//!    typed `AccError::Integrity`, and the supervisor restores the newest
//!    valid checkpoint; the finished grid is again bit-identical.
//!
//! A final section mis-orders a hand-built stream program on the raw
//! platform and shows the happens-before detector pinning the exact
//! hazard kind and buffer.
//!
//! ```text
//! cargo run --release -p examples --bin integrity_hunt
//! ```

use gpu_sim::{
    CorruptionFault, FaultPlan, GpuSystem, HostMemKind, KernelCost, KernelLaunch, MachineConfig,
    SimTime,
};
use kernels::{heat, init};
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{
    AccError, AccOptions, ArrayId, CheckpointPolicy, Supervisor, SupervisorConfig, TileAcc,
};

const N: i64 = 16;
const STEPS: u64 = 8;
const SEED: u64 = 11;

fn arrays(decomp: &Arc<Decomposition>) -> (TileArray, TileArray) {
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::hash_field(SEED));
    (ua, ub)
}

fn heat_step(
    acc: &mut TileAcc,
    decomp: &Arc<Decomposition>,
    a: ArrayId,
    b: ArrayId,
    step: u64,
) -> Result<(), AccError> {
    let (src, dst) = if step.is_multiple_of(2) {
        (a, b)
    } else {
        (b, a)
    };
    acc.fill_boundary(src)?;
    for t in tiles_of(decomp, TileSpec::RegionSized) {
        acc.compute2(
            t,
            dst,
            src,
            heat::cost(t.num_cells()),
            "heat",
            |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
        )?;
    }
    Ok(())
}

fn result_array(a: &TileArray, b: &TileArray, steps: u64) -> Vec<f64> {
    if steps.is_multiple_of(2) { a } else { b }
        .to_dense()
        .expect("backed run")
}

/// Run the heat problem to completion under one fault plan; returns the
/// final grid and the accelerator.
fn run_with_plan(decomp: &Arc<Decomposition>, plan: FaultPlan, deep: bool) -> (Vec<f64>, TileAcc) {
    let (ua, ub) = arrays(decomp);
    let mut acc = TileAcc::new(
        GpuSystem::new(MachineConfig::k40m().with_faults(plan)),
        AccOptions::paper(),
    );
    if deep {
        acc.gpu_mut().set_deep_hazard_tracking(true);
    }
    let (a, b) = (acc.register(&ua), acc.register(&ub));
    for s in 0..STEPS {
        heat_step(&mut acc, decomp, a, b, s).expect("run completes");
    }
    acc.sync_to_host(if STEPS.is_multiple_of(2) { a } else { b })
        .expect("final sync");
    acc.finish();
    (result_array(&ua, &ub, STEPS), acc)
}

fn main() {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(N),
        RegionSpec::Grid([2, 2, 1]),
    ));
    let golden = heat::golden_run(init::hash_field(SEED), N, STEPS as usize, heat::DEFAULT_FAC);

    // -- 1. clean run under the deep hazard detector ------------------------
    let (grid, acc) = run_with_plan(&decomp, FaultPlan::none(), true);
    let hz = acc.gpu().hazard_counters();
    println!("== clean run, deep hazard detector ==");
    println!(
        "hazards: {} (records: {})  integrity: {:?}",
        hz.total(),
        acc.gpu().hazard_records().len(),
        acc.gpu().integrity_stats(),
    );
    assert_eq!(grid, golden, "clean run must match golden");
    assert_eq!(hz.total(), 0, "the overlap engine must be hazard-free");

    // -- 2. in-flight bit flips on the bus ----------------------------------
    let plan = FaultPlan::none()
        .with_seed(SEED)
        .with_corruption(CorruptionFault {
            h2d_rate: 0.08,
            d2h_rate: 0.08,
            ..CorruptionFault::default()
        });
    let (grid, acc) = run_with_plan(&decomp, plan, false);
    let i = acc.gpu().integrity_stats();
    println!("\n== in-flight corruption, digest + retransmit ==");
    println!(
        "verified: {}  detected: {}  repaired: {}  unrepaired: {}",
        i.verified, i.detected, i.repaired, i.unrepaired
    );
    println!("stats: {}", acc.stats());
    assert!(i.detected > 0, "the seeded flips must be observed");
    assert_eq!(i.unrepaired, 0, "bounded retransmits repair every flip");
    assert_eq!(grid, golden, "repaired run must be bit-identical");

    // -- 3. resident strike on clean data: repaired from the host origin ----
    let plan = FaultPlan::none()
        .with_seed(SEED)
        .with_corruption(CorruptionFault {
            strike_after_h2d: vec![2, 9],
            ..CorruptionFault::default()
        });
    let (grid, acc) = run_with_plan(&decomp, plan, false);
    let i = acc.gpu().integrity_stats();
    println!("\n== resident strike on a clean slot ==");
    println!(
        "detected: {}  repaired from origin: {}  unrepaired: {}",
        i.detected, i.repaired, i.unrepaired
    );
    assert_eq!(grid, golden, "origin repair must be bit-identical");

    // -- 4. resident strike on dirty data: checkpoint fallback --------------
    let (ua, ub) = arrays(&decomp);
    let cfg = SupervisorConfig {
        policy: CheckpointPolicy::every(2).keep(3),
        ..SupervisorConfig::default()
    };
    let mut sup = Supervisor::new(cfg);
    let ids: std::cell::Cell<Option<(ArrayId, ArrayId)>> = std::cell::Cell::new(None);
    let d = decomp.clone();
    let outcome = sup
        .run(
            STEPS,
            |attempt| {
                // Attempt 0 takes a DRAM strike on the 10th kernel's freshly
                // written (dirty) output; rebuilds run clean.
                let plan = if attempt == 0 {
                    FaultPlan::none()
                        .with_seed(SEED)
                        .with_corruption(CorruptionFault {
                            strike_after_kernel: vec![9],
                            ..CorruptionFault::default()
                        })
                } else {
                    FaultPlan::none()
                };
                let mut acc = TileAcc::new(
                    GpuSystem::new(MachineConfig::k40m().with_faults(plan)),
                    AccOptions::paper(),
                );
                ids.set(Some((acc.register(&ua), acc.register(&ub))));
                acc
            },
            |acc, step| {
                let (a, b) = ids.get().expect("build ran first");
                heat_step(acc, &d, a, b, step)
            },
        )
        .expect("supervised run completes through the corruption");
    let grid = result_array(&ua, &ub, STEPS);
    let c = outcome.counters;
    println!("\n== dirty strike, checkpoint fallback ==");
    println!(
        "corruptions detected: {}  ckpts taken/restored: {}/{}  lost virtual time: {}",
        c.corruption_detections, c.checkpoints_taken, c.checkpoints_restored, c.recovery_time,
    );
    println!("stats: {}", outcome.stats);
    assert!(
        c.corruption_detections > 0,
        "the dirty strike must surface as a typed integrity error"
    );
    assert_eq!(grid, golden, "restored run must be bit-identical");

    // -- 5. negative control: a mis-ordered raw stream program --------------
    let mut g = GpuSystem::new(MachineConfig::k40m());
    g.set_deep_hazard_tracking(true);
    let h = g.malloc_host(1024, HostMemKind::Pinned);
    let dbuf = g.malloc_device(1024).unwrap();
    let s_copy = g.create_stream();
    let s_k = g.create_stream();
    g.memcpy_h2d_async(dbuf, 0, h, 0, 1024, s_copy);
    // BUG (deliberate): the kernel reads the buffer on another stream with
    // no event ordering it after the copy.
    g.launch_kernel(
        s_k,
        KernelLaunch::new("unsynced-read", KernelCost::Fixed(SimTime::from_us(10)))
            .reads(dbuf.into()),
    );
    g.finish();
    let hz = g.hazard_counters();
    println!("\n== mis-ordered stream program (negative control) ==");
    println!("hazards: {:?}", hz);
    for r in g.hazard_records() {
        println!(
            "  {}: {:?} — '{}' unordered after '{}'",
            r.kind.name(),
            r.buffer,
            r.second_label,
            r.first_label
        );
    }
    assert_eq!(hz.use_before_transfer, 1, "exactly the seeded hazard");
}
