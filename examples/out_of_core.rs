//! Oversubscribed device memory: the application data does not fit on the
//! GPU, and TiDA-acc stages regions through a small slot pool (Figs. 7/8).
//!
//! The device is configured with memory for only two regions; a CUDA-style
//! whole-array allocation fails outright, while the tiled run completes with
//! bit-exact results and almost no slowdown.
//!
//! ```text
//! cargo run --release -p examples --bin out_of_core
//! ```

use baselines::{tida_busy, tida_heat, TidaOpts};
use gpu_sim::{GpuSystem, MachineConfig};
use kernels::busy;
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, TileAcc};

fn main() {
    // --- Part 1: demonstrate correctness with real data ----------------
    let n = 32i64;
    let regions = 8usize;
    let iters = 10u32;
    let steps = 3usize;

    // Device memory sized to hold ~2.5 region buffers — the whole array
    // cannot fit.
    let region_bytes = {
        let decomp = Decomposition::new(Domain::periodic_cube(n), RegionSpec::Count(regions));
        let ta = TileArray::new(Arc::new(decomp), 0, ExchangeMode::Faces, false);
        ta.max_region_bytes()
    };
    let small_cfg = MachineConfig::k40m().with_device_mem(region_bytes * 5 / 2);

    // A CUDA-style whole-array allocation fails on this device.
    let mut plain = GpuSystem::new(small_cfg.clone());
    let whole = plain.malloc_device((n * n * n) as usize);
    println!(
        "whole-array cudaMalloc on the small device: {}",
        match whole {
            Err(e) => format!("FAILS as expected ({e})"),
            Ok(_) => "unexpectedly succeeded?!".to_string(),
        }
    );

    // TiDA-acc stages regions through the slots that do fit.
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(regions),
    ));
    let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, true);
    u.fill_valid(|_| 0.5);

    let mut acc = TileAcc::new(GpuSystem::new(small_cfg), AccOptions::paper());
    let a = acc.register(&u);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    for _ in 0..steps {
        for &t in &tiles {
            acc.compute1(
                t,
                a,
                busy::cost(t.num_cells(), iters, busy::MathImpl::PgiLibm),
                "busy",
                move |v, bx| busy::apply_tile(v, &bx, iters),
            )
            .unwrap();
        }
    }
    acc.sync_to_host(a).unwrap();
    let elapsed = acc.finish();
    println!(
        "tiled run on the same device: completed in {elapsed}, slots = {}, {}",
        acc.num_slots(),
        acc.stats()
    );
    let expect = 0.5 + (steps as u32 * iters) as f64;
    let got = u.value(tida::IntVect::new(1, 1, 1)).unwrap();
    assert!((got - expect).abs() < 1e-9);
    println!("result check: cell value {got:.6} == init + steps*iters = {expect:.6} ✓");
    assert!(
        acc.stats().evictions > 0,
        "staging must have evicted regions"
    );

    // --- Part 2: the Fig. 8 claim at paper scale ----------------------
    println!("\nFig. 8 regime (512^3, 100 steps, timing-only):");
    let cfg = MachineConfig::k40m();
    let full = tida_busy(
        &cfg,
        512,
        100,
        busy::DEFAULT_KERNEL_ITERATION,
        &TidaOpts::timing(16),
    );
    let limited = tida_busy(
        &cfg,
        512,
        100,
        busy::DEFAULT_KERNEL_ITERATION,
        &TidaOpts::timing(16).with_max_slots(2),
    );
    println!("  all regions resident: {:>12.2} ms", full.ms());
    println!(
        "  2-slot device limit:  {:>12.2} ms  ({:+.2}% overhead)",
        limited.ms(),
        (limited.ms() / full.ms() - 1.0) * 100.0
    );
    println!("\nThe staging traffic hides completely behind the compute-intensive kernel.");

    // --- Part 3: the automatic overlap scheduler (PR 4) ----------------
    // Out-of-core heat behind a narrow PCIe link, where staging dominates:
    // the plain LRU pool reloads every region each sweep, while
    // `with_overlap` turns on the step-plan recorder, the lookahead
    // prefetcher and reuse-distance eviction.
    println!("\nAutomatic lookahead-prefetch scheduler (128^3 heat, starved link):");
    let mut slow = MachineConfig::k40m();
    slow.name = "Tesla K40m / PCIe Gen3 x4".to_string();
    slow.h2d_pinned_bw = 3.3e9;
    slow.d2h_pinned_bw = 3.5e9;
    slow.host_stage_bw = 3.0e9;
    let steps = 24;
    let lru = tida_heat(&slow, 128, steps, &TidaOpts::timing(8).with_max_slots(7));
    let auto_sched = tida_heat(
        &slow,
        128,
        steps,
        &TidaOpts::timing(8)
            .with_max_slots(7)
            .with_overlap(2, tida_acc::SlotPolicy::ReuseDistance),
    );
    println!(
        "  LRU, no prefetch:     {:>12.2} ms  ({:.1} GiB staged in)",
        lru.ms(),
        lru.bytes_h2d as f64 / (1u64 << 30) as f64
    );
    println!(
        "  auto overlap:         {:>12.2} ms  ({:.1} GiB staged in, {:.1}% faster)",
        auto_sched.ms(),
        auto_sched.bytes_h2d as f64 / (1u64 << 30) as f64,
        (1.0 - auto_sched.ms() / lru.ms()) * 100.0
    );
    assert!(
        auto_sched.elapsed < lru.elapsed,
        "the automatic scheduler must win in the transfer-bound regime"
    );
    println!("\nThe recorded step plan lets the runtime start next-sweep loads while the");
    println!("current sweep computes, keep the regions with the nearest reuse resident,");
    println!("and skip write-backs for slots it can prove are clean.");
}
