//! Performance-property tests: the paper's qualitative claims, asserted on
//! the simulated clock. These run timing-only (virtual buffers) so paper
//! scale is cheap.

use baselines::{busy as bbusy, heat as bheat, tida_busy, tida_heat, MemMode, RunOpts, TidaOpts};
use gpu_sim::{MachineConfig, SimTime};
use integration_tests::support;
use kernels::busy::{MathImpl, DEFAULT_KERNEL_ITERATION};
use proptest::prelude::*;

fn cfg() -> MachineConfig {
    MachineConfig::k40m()
}

#[test]
fn overlap_beats_serial_transfers_when_transfer_bound() {
    // One heat step at 512^3: CUDA moves everything, computes, moves back;
    // TiDA-acc pipelines. The paper's headline.
    let tida = tida_heat(&cfg(), 512, 1, &TidaOpts::timing(16));
    let pinned = bheat::cuda_heat(&cfg(), 512, 1, RunOpts::timing(MemMode::Pinned));
    assert!(
        tida.elapsed.as_secs_f64() < 0.75 * pinned.elapsed.as_secs_f64(),
        "pipelined {} vs serial {}",
        tida.elapsed,
        pinned.elapsed
    );
}

#[test]
fn transfer_volume_matches_between_models() {
    // TiDA-acc must not move more payload than the whole-array version for
    // the busy kernel when everything fits (same bytes, different timing).
    let n = 256i64;
    let bytes = (n * n * n) as u64 * 8;
    let tida = tida_busy(&cfg(), n, 3, 10, &TidaOpts::timing(8));
    assert_eq!(
        tida.bytes_h2d, bytes,
        "one upload per region, no re-uploads"
    );
    assert_eq!(tida.bytes_d2h, bytes, "one download per region at drain");
}

#[test]
fn oversubscription_moves_more_bytes_but_not_more_time() {
    let n = 256i64;
    let steps = 6;
    let full = tida_busy(
        &cfg(),
        n,
        steps,
        DEFAULT_KERNEL_ITERATION,
        &TidaOpts::timing(8),
    );
    let tight = tida_busy(
        &cfg(),
        n,
        steps,
        DEFAULT_KERNEL_ITERATION,
        &TidaOpts::timing(8).with_max_slots(2),
    );
    assert!(
        tight.bytes_h2d > full.bytes_h2d,
        "staging re-uploads regions"
    );
    let ratio = tight.elapsed.as_secs_f64() / full.elapsed.as_secs_f64();
    assert!(ratio < 1.05, "but the time overhead stays tiny: {ratio}");
}

#[test]
fn pageable_async_cannot_overlap() {
    // The §II-C observation that motivates pinned memory: with pageable
    // buffers the "async" copies serialize against the host.
    let pageable = bbusy::cuda_busy(
        &cfg(),
        256,
        2,
        4,
        MathImpl::CudaLibm,
        RunOpts::timing(MemMode::Pageable),
    );
    let pinned = bbusy::cuda_busy(
        &cfg(),
        256,
        2,
        4,
        MathImpl::CudaLibm,
        RunOpts::timing(MemMode::Pinned),
    );
    assert!(pageable.elapsed > pinned.elapsed);
}

#[test]
fn managed_memory_slowest_transfer_path() {
    let n = 256i64;
    let t = |mem| bheat::cuda_heat(&cfg(), n, 1, RunOpts::timing(mem)).elapsed;
    assert!(t(MemMode::Managed) > t(MemMode::Pageable));
    assert!(t(MemMode::Pageable) > t(MemMode::Pinned));
}

#[test]
fn region_pipeline_depth_improves_low_iteration_heat() {
    // More regions -> finer pipelining -> better transfer hiding at 1 step
    // (up to overhead limits).
    let one = tida_heat(&cfg(), 512, 1, &TidaOpts::timing(1)).elapsed;
    let sixteen = tida_heat(&cfg(), 512, 1, &TidaOpts::timing(16)).elapsed;
    assert!(
        sixteen.as_secs_f64() < 0.7 * one.as_secs_f64(),
        "16 regions {sixteen} vs 1 region {one}"
    );
}

#[test]
fn trace_shows_both_directions_overlapping_compute() {
    // Three slots: while one slot's kernel runs, a second slot can be
    // writing back (D2H) and a third loading (H2D) at the same instant.
    let opts = TidaOpts::timing(8).with_max_slots(3).with_tracing();
    let r = tida_busy(&cfg(), 128, 3, DEFAULT_KERNEL_ITERATION, &opts);
    let tr = r.trace.unwrap();
    // Engines: 0 = h2d, 1 = d2h, 2 = compute.
    assert!(tr.overlap_time(0, 2) > SimTime::ZERO, "H2D under compute");
    assert!(tr.overlap_time(1, 2) > SimTime::ZERO, "D2H under compute");
    assert!(
        tr.overlap_time(0, 1) > SimTime::ZERO,
        "both DMA engines concurrently"
    );
}

#[test]
fn hazard_free_schedule_under_eviction_pressure() {
    // The foreign-consumer protection: staging into a slot must never
    // overlap a kernel still reading it. Run a tight-memory heat workload
    // with hazard checking enabled.
    use kernels::heat;
    use tida::{tiles_of, RegionSpec, TileSpec};
    use tida_acc::{AccOptions, TileAcc};

    let n = 16i64;
    let decomp = support::heat_decomp(n, RegionSpec::Count(4));
    let (ua, ub) = support::heat_arrays(&decomp, 1);
    let mut gpu = gpu_sim::GpuSystem::new(cfg());
    gpu.set_hazard_checking(true);
    let mut acc = TileAcc::new(gpu, AccOptions::paper().with_max_slots(3));
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let (mut src, mut dst) = (a, b);
    for _ in 0..3 {
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                heat::cost(t.num_cells()),
                "heat",
                |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    acc.finish();

    // Buffer-granularity hazards between *disjoint-cell* accesses (ghost
    // gathers touching different patches of one region buffer) are false
    // positives; true races involve a transfer overlapping a kernel.
    let hazards = acc.gpu_mut().check_hazards();
    let real = support::real_transfer_hazards(&hazards);
    assert!(
        real.is_empty(),
        "transfer overlapping kernel on one buffer: {real:?}"
    );
}

// ---------------------------------------------------------------------------
// The automatic lookahead-prefetch overlap scheduler (PR 4)
// ---------------------------------------------------------------------------

/// Drive out-of-core heat with the automatic scheduler enabled and return
/// the final field plus the run's bookkeeping, for comparison against the
/// analytic golden solution.
fn auto_overlap_heat(
    seed: u64,
    policy: tida_acc::SlotPolicy,
    lookahead: usize,
    transient_rate: f64,
) -> (Vec<f64>, tida_acc::AccStats, Vec<gpu_sim::Hazard>) {
    use kernels::heat;
    use tida::{tiles_of, RegionSpec, TileSpec};
    use tida_acc::{AccOptions, TileAcc};

    let n = 8i64;
    let steps = 6usize; // enough for the period detector to lock on
    let decomp = support::heat_decomp(n, RegionSpec::Count(4));
    let (ua, ub) = support::heat_arrays(&decomp, seed);

    let mut plan = gpu_sim::FaultPlan::none().with_seed(seed ^ 0xA5A5);
    if transient_rate > 0.0 {
        plan = plan.with_transient(transient_rate);
    }
    let mut gpu = gpu_sim::GpuSystem::new(MachineConfig::k40m().with_faults(plan));
    gpu.set_hazard_checking(true);
    let opts = AccOptions::paper()
        .with_max_slots(3)
        .with_policy(policy)
        .with_lookahead(lookahead)
        .with_transfer_retries(10);
    let mut acc = TileAcc::new(gpu, opts);
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let (mut src, mut dst) = (a, b);
    for _ in 0..steps {
        acc.begin_step().unwrap();
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                heat::cost(t.num_cells()),
                "heat",
                |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    acc.finish();
    let stats = acc.stats();
    let hazards = acc.gpu_mut().check_hazards();
    let data = if src == a { &ua } else { &ub }
        .to_dense()
        .expect("backed run");
    (data, stats, hazards)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The scheduler invariant: whatever the eviction policy, lookahead
    /// depth and (transient) fault plan, a prefetched schedule produces
    /// results bit-identical to the analytic golden run, with zero
    /// transfer/kernel hazards and zero integrity findings.
    #[test]
    fn prop_prefetched_schedules_are_bit_identical_to_golden(
        seed in 0u64..32,
        policy_idx in 0usize..3,
        lookahead in 0usize..5,
        faulty in any::<bool>(),
    ) {
        use tida_acc::SlotPolicy;
        let policy = match policy_idx {
            0 => SlotPolicy::StaticInterleaved,
            1 => SlotPolicy::Lru,
            _ => SlotPolicy::ReuseDistance,
        };
        let rate = if faulty { 0.25 } else { 0.0 };
        let (data, stats, hazards) = auto_overlap_heat(seed, policy, lookahead, rate);
        let golden = support::heat_golden(seed, 8, 6);
        prop_assert_eq!(data, golden, "results must be bit-identical to golden");
        let real = support::real_transfer_hazards(&hazards);
        prop_assert!(real.is_empty(), "prefetch must not race a kernel: {real:?}");
        prop_assert_eq!(stats.integrity_detected, 0, "no integrity findings");
        prop_assert!(stats.prefetch_hits <= stats.prefetch_loads);
    }
}

/// The headline acceptance criterion: on out-of-core heat over a starved
/// interconnect, the automatic scheduler (plan recorder + lookahead
/// prefetch + reuse-distance eviction + deferred clean write-backs) cuts
/// the simulated makespan by at least 15% against the LRU no-prefetch
/// baseline, without changing a single byte of the results.
#[test]
fn auto_scheduler_cuts_out_of_core_makespan() {
    use tida_bench::experiments::{overlap_bench, Scale};
    let b = overlap_bench(Scale::Quick, 2, false);
    assert!(
        b.auto_sched.makespan_ms <= 0.85 * b.baseline.makespan_ms,
        "auto {:.3}ms vs baseline {:.3}ms ({:.1}% reduction)",
        b.auto_sched.makespan_ms,
        b.baseline.makespan_ms,
        b.reduction_pct
    );
    assert!(
        b.auto_sched.prefetch_loads > 0,
        "the win must involve prefetching"
    );
    assert_eq!(
        b.auto_sched.prefetch_fallbacks, 0,
        "a clean run must not degrade any prefetch"
    );
}
