//! Fault-isolation suite of the multi-tenant serving runtime.
//!
//! The isolation contract: faults, silent corruption, and even a
//! whole-platform crash *scoped to one tenant* must leave every other
//! tenant's results **bit-identical to a solo golden run**, with zero
//! cross-tenant buffer touches and zero scheduler hazards. The faulty
//! tenant itself either recovers to its golden digest or fails with a
//! typed error — a *wrong* digest is never an outcome. Preemption obeys
//! the same bar: a job evicted mid-run and later restored from its
//! checkpoint finishes bit-identical to an uninterrupted run.
//!
//! The property tests draw the fault class, seed and victim tenant; CI's
//! nightly soak displaces the seed window via `FAULT_SEED_OFFSET`.

use gpu_sim::{CorruptionFault, CrashFault, FaultPlan, TransferFaults};
use proptest::prelude::*;
use serving::{JobSpec, ServingConfig, ServingRuntime};

/// CI's scheduled sweep sets `FAULT_SEED_OFFSET` to displace the seed
/// window the property tests explore; local and push/PR runs use offset 0.
fn seed_offset() -> u64 {
    std::env::var("FAULT_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// One plan per fault class, scoped to `faulty`.
fn scoped_plan(kind: usize, seed: u64, faulty: u32) -> FaultPlan {
    match kind {
        // Transient faults on both lanes: absorbed by per-transfer retry.
        0 => FaultPlan::none().with_seed(seed).with_transient(0.25),
        // Persistently dead D2H lane: drains fall back to salvage, or the
        // job fails typed once every budget is spent.
        1 => FaultPlan {
            d2h: TransferFaults {
                fail_after: Some(2),
                ..TransferFaults::default()
            },
            ..FaultPlan::none().with_seed(seed)
        },
        // Silent corruption: in-flight flips (repaired by retransmit) plus
        // a resident strike after a kernel (caught by the integrity layer
        // and resubmitted, or surfaced as a typed integrity error).
        2 => FaultPlan::none()
            .with_seed(seed)
            .with_corruption(CorruptionFault {
                h2d_rate: 0.3,
                strike_after_kernel: vec![1],
                ..CorruptionFault::default()
            }),
        // Whole-platform crash: the trigger counts only the faulty
        // tenant's transfers, but the crash kills everyone — recovery
        // must restart all tenants and still land golden.
        _ => FaultPlan::none()
            .with_seed(seed)
            .with_crash(CrashFault::at_transfer(3 + seed % 5)),
    }
    .scoped_to(faulty)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn faults_scoped_to_one_tenant_never_leak(
        seed in 0u64..1 << 32,
        faulty in 0u32..4,
        kind in 0usize..4,
    ) {
        let seed = seed + seed_offset();
        let mut rt = ServingRuntime::new(ServingConfig {
            max_active: 2,
            fault_plan: scoped_plan(kind, seed, faulty),
            ..ServingConfig::default()
        });
        let specs: Vec<JobSpec> = (0..8u64)
            .map(|i| JobSpec::new((i % 4) as u32, 2, 48, 3, seed ^ (i << 8)))
            .collect();
        for s in &specs {
            rt.submit(s.clone()).unwrap();
        }
        rt.run_until_idle();
        prop_assert_eq!(rt.results().len(), specs.len());
        for r in rt.results() {
            // Each tenant submitted two jobs; the acceptable digests are
            // exactly its specs' goldens.
            let golden: Vec<u64> = specs
                .iter()
                .filter(|s| s.tenant == r.tenant)
                .map(|s| s.golden_digest())
                .collect();
            if r.tenant != faulty {
                // Bystanders: exactly golden — same bits a solo run yields.
                let ok = matches!(&r.outcome, Ok(d) if golden.contains(d));
                prop_assert!(ok, "bystander tenant {} must be golden: {:?}", r.tenant, r);
                prop_assert_eq!(r.retries, 0, "no fault ever reached tenant {}", r.tenant);
            } else {
                // The victim recovers to golden or fails typed — a wrong
                // digest is never an outcome.
                let acceptable = match &r.outcome {
                    Ok(d) => golden.contains(d),
                    Err(_) => true,
                };
                prop_assert!(acceptable, "victim produced a wrong digest: {:?}", r);
            }
        }
        prop_assert_eq!(rt.cross_tenant_touches(), 0, "zero cross-tenant buffer touches");
        prop_assert_eq!(rt.hazard_counters().total(), 0, "zero scheduler hazards");
    }

    #[test]
    fn preempted_then_restored_jobs_match_uninterrupted_runs(
        seed in 0u64..1 << 32,
        regions in 1usize..4,
        len in 16usize..128,
        steps in 1u64..12,
        warmup in 1usize..12,
    ) {
        let seed = seed + seed_offset();
        let spec = JobSpec::new(0, regions, len, steps, seed);
        let golden = spec.golden_digest();

        // Uninterrupted reference run.
        let mut solo = ServingRuntime::new(ServingConfig {
            max_active: 1,
            ..ServingConfig::default()
        });
        solo.submit(spec.clone()).unwrap();
        solo.run_until_idle();
        prop_assert_eq!(solo.results()[0].outcome.clone(), Ok(golden));

        // Same job, but a high-priority arrival lands mid-run; whether the
        // eviction fires depends on how far the job got, and the result
        // must be bit-identical either way.
        let mut rt = ServingRuntime::new(ServingConfig {
            max_active: 1,
            ..ServingConfig::default()
        });
        let id = rt.submit(spec).unwrap();
        rt.run_rounds(warmup);
        rt.submit(JobSpec::new(1, 1, 32, 1, seed ^ 0xbeef).with_priority(9))
            .unwrap();
        rt.run_until_idle();
        let r = rt
            .results()
            .iter()
            .find(|r| r.job == id)
            .expect("the long job has a result")
            .clone();
        prop_assert_eq!(
            r.outcome.clone(),
            Ok(golden),
            "restored run diverged after {} preemption(s): {:?}",
            r.preemptions,
            r
        );
        prop_assert_eq!(rt.cross_tenant_touches(), 0);
    }
}

/// The non-statistical core of the contract, pinned directly: solo-run
/// digests of three bystander tenants, recorded first, then reproduced
/// bit-for-bit while tenant 2 is being actively faulted next to them.
#[test]
fn bystanders_match_their_solo_runs_bit_for_bit() {
    let specs: Vec<JobSpec> = (0..4)
        .map(|t| JobSpec::new(t, 2, 64, 4, 40 + t as u64))
        .collect();
    let solo: Vec<u64> = specs
        .iter()
        .map(|s| {
            let mut rt = ServingRuntime::new(ServingConfig::default());
            rt.submit(s.clone()).unwrap();
            rt.run_until_idle();
            match rt.results()[0].outcome {
                Ok(d) => d,
                ref e => panic!("solo run failed: {e:?}"),
            }
        })
        .collect();

    let mut rt = ServingRuntime::new(ServingConfig {
        max_active: 2,
        fault_plan: FaultPlan::none()
            .with_seed(5)
            .with_transient(0.3)
            .scoped_to(2),
        ..ServingConfig::default()
    });
    for s in &specs {
        rt.submit(s.clone()).unwrap();
    }
    rt.run_until_idle();
    assert!(
        rt.fault_stats().h2d_faults + rt.fault_stats().d2h_faults > 0,
        "the scoped schedule did fire into tenant 2"
    );
    for r in rt.results() {
        if r.tenant != 2 {
            assert_eq!(
                r.outcome,
                Ok(solo[r.tenant as usize]),
                "bystander tenant {} diverged from its solo run",
                r.tenant
            );
        }
    }
    assert_eq!(rt.cross_tenant_touches(), 0);
}
