//! Results are physics; times are the machine's. Changing the machine
//! model (PCIe K40m → NVLink P100, 1 GPU → 4 GPUs, tiny device memory)
//! must never change a single bit of the computed fields — only the clock.

use baselines::{tida_heat, tida_heat_multi, tuning, TidaOpts};
use gpu_sim::MachineConfig;
use kernels::{heat, init};

#[test]
fn machine_config_never_changes_results() {
    let n = 8i64;
    let steps = 3;
    let golden = heat::golden_run(init::hash_field(11), n, steps, heat::DEFAULT_FAC);

    let k40 = tida_heat(&MachineConfig::k40m(), n, steps, &TidaOpts::validated(4));
    let p100 = tida_heat(
        &MachineConfig::p100_nvlink(),
        n,
        steps,
        &TidaOpts::validated(4),
    );
    assert_eq!(k40.result.as_ref().unwrap(), &golden);
    assert_eq!(p100.result.as_ref().unwrap(), &golden);
    assert_ne!(
        k40.elapsed, p100.elapsed,
        "different machines should take different simulated time"
    );
    assert!(p100.elapsed < k40.elapsed, "NVLink platform is faster");
}

#[test]
fn device_count_never_changes_results() {
    let n = 8i64;
    let steps = 3;
    let golden = heat::golden_run(init::hash_field(11), n, steps, heat::DEFAULT_FAC);
    for devices in [1usize, 2, 4] {
        let r = tida_heat_multi(&MachineConfig::k40m(), n, steps, 4, devices, true);
        assert_eq!(r.result.as_ref().unwrap(), &golden, "{devices} devices");
    }
}

#[test]
fn slot_budget_never_changes_results() {
    let n = 8i64;
    let steps = 3;
    let golden = heat::golden_run(init::hash_field(11), n, steps, heat::DEFAULT_FAC);
    for slots in [2usize, 3, 5, 8] {
        let r = tida_heat(
            &MachineConfig::k40m(),
            n,
            steps,
            &TidaOpts::validated(4).with_max_slots(slots),
        );
        assert_eq!(r.result.as_ref().unwrap(), &golden, "{slots} slots");
    }
}

#[test]
fn autotuner_agrees_with_exhaustive_sweep() {
    // The tuner's choice must be the argmin of per-candidate timings
    // measured independently.
    let cfg = MachineConfig::k40m();
    let candidates = [1usize, 2, 4, 8];
    let t = tuning::autotune_heat_regions(&cfg, 64, 1, &candidates);
    let mut best = (0usize, gpu_sim::SimTime::from_secs_f64(1e9));
    for &r in &candidates {
        let e = tida_heat(&cfg, 64, 1, &TidaOpts::timing(r)).elapsed;
        if e < best.1 {
            best = (r, e);
        }
    }
    assert_eq!(t.best_regions, best.0);
    assert_eq!(t.best_time, best.1);
}

#[test]
fn prefetch_overlaps_unrelated_host_work() {
    // Prefetch all regions, then do host-side work: the uploads hide under
    // it. Without prefetch, the same uploads serialize after the host work.
    use std::sync::Arc;
    use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
    use tida_acc::{AccOptions, TileAcc};

    let run = |prefetch: bool| {
        let n = 128i64;
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(8),
        ));
        let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, false);
        let mut acc = TileAcc::new(
            gpu_sim::GpuSystem::with_backing(MachineConfig::k40m(), false),
            AccOptions::paper(),
        );
        let a = acc.register(&u);
        if prefetch {
            acc.prefetch_all(a).unwrap();
        }
        // Unrelated host-side preparation (e.g. building the next phase's
        // work lists).
        acc.gpu_mut()
            .host_work(gpu_sim::SimTime::from_ms(2), "prep");
        for t in tiles_of(&decomp, TileSpec::RegionSized) {
            acc.compute1(
                t,
                a,
                gpu_sim::KernelCost::Bytes(t.num_cells() * 16),
                "k",
                |_, _| {},
            )
            .unwrap();
        }
        acc.sync_to_host(a).unwrap();
        acc.finish()
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with < without,
        "prefetch should hide uploads under host work: {with} !< {without}"
    );
}
