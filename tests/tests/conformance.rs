//! Cross-implementation conformance suite.
//!
//! The same application programs run through every execution model the
//! repo implements — the TileAcc runtime, the multi-device runtime pinned
//! to one device, and the whole-array CUDA baselines — and must agree:
//!
//! * **results** — bit-identical final grids, all equal to the host-only
//!   analytic solver (not merely close: the simulator executes real f64
//!   arithmetic in a fixed order per implementation, and the tiled order is
//!   engineered to match the dense order exactly);
//! * **counter invariants** — transfer byte counters are self-consistent
//!   (every model must upload at least one problem's worth of data and
//!   download at least one problem's worth of results; kernel counts match
//!   each model's launch structure);
//! * **trace ↔ counter agreement** — for models that expose an execution
//!   trace, the per-span transfer payloads parsed back out of the trace sum
//!   to exactly the runtime's own byte counters, so the schedule the trace
//!   claims is the schedule the accounting saw.

use baselines::{
    cuda_jacobi, tida_heat, tida_heat_multi, tida_jacobi, MemMode, RunOpts, RunResult, TidaOpts,
};
use gpu_sim::MachineConfig;
use integration_tests::support;
use kernels::jacobi;

const N: i64 = 8;
const STEPS: usize = 4;
const REGIONS: usize = 4;

fn cfg() -> MachineConfig {
    MachineConfig::k40m()
}

fn problem_bytes() -> u64 {
    (N * N * N) as u64 * 8
}

/// Bitwise-compare two runs' grids, with a context label for the failure.
fn assert_same_result(a: &RunResult, b: &RunResult) {
    assert_eq!(
        a.result.as_ref().expect("validated run"),
        b.result.as_ref().expect("validated run"),
        "{} and {} disagree",
        a.label,
        b.label
    );
}

/// Byte counters every conforming model must satisfy, whatever its
/// staging strategy: the problem is uploaded and the answer downloaded.
fn assert_counter_floor(r: &RunResult) {
    assert!(
        r.bytes_h2d >= problem_bytes(),
        "{}: uploaded {} < one problem ({})",
        r.label,
        r.bytes_h2d,
        problem_bytes()
    );
    assert!(
        r.bytes_d2h >= problem_bytes(),
        "{}: downloaded {} < one problem ({})",
        r.label,
        r.bytes_d2h,
        problem_bytes()
    );
    assert!(r.kernels > 0, "{}: no kernels ran", r.label);
}

/// The trace must account for exactly the bytes the runtime counted.
fn assert_trace_matches_counters(r: &RunResult) {
    let trace = r.trace.as_ref().expect("tracing run");
    let (h2d, d2h) = support::transfer_bytes_from_trace(trace);
    assert_eq!(
        h2d, r.bytes_h2d,
        "{}: trace H2D payloads disagree with the byte counter",
        r.label
    );
    assert_eq!(
        d2h, r.bytes_d2h,
        "{}: trace D2H payloads disagree with the byte counter",
        r.label
    );
}

// ---------------------------------------------------------------------------
// Program 1: heat — TileAcc vs MultiAcc(1 device) vs CUDA whole-array
// ---------------------------------------------------------------------------

#[test]
fn heat_conforms_across_implementations() {
    let tida = tida_heat(
        &cfg(),
        N,
        STEPS,
        &TidaOpts::validated(REGIONS).with_tracing(),
    );
    let multi = tida_heat_multi(&cfg(), N, STEPS, REGIONS, 1, true);
    let cuda_pinned = baselines::heat::cuda_heat(
        &cfg(),
        N,
        STEPS,
        RunOpts::validated(MemMode::Pinned).with_tracing(),
    );
    let cuda_pageable =
        baselines::heat::cuda_heat(&cfg(), N, STEPS, RunOpts::validated(MemMode::Pageable));

    // All four implementations agree bitwise, and with the analytic solver.
    assert_same_result(&tida, &multi);
    assert_same_result(&tida, &cuda_pinned);
    assert_same_result(&tida, &cuda_pageable);
    assert_eq!(
        tida.result.as_ref().unwrap(),
        &support::heat_golden(11, N, STEPS as u64),
        "tiled execution diverged from the analytic solution"
    );

    for r in [&tida, &multi, &cuda_pinned, &cuda_pageable] {
        assert_counter_floor(r);
    }

    // Launch structure: the whole-array baseline runs one fused kernel per
    // step; the tiled runtimes run one kernel per tile per step plus the
    // ghost-exchange traffic, so they must launch strictly more.
    assert_eq!(cuda_pinned.kernels, STEPS as u64);
    assert!(tida.kernels >= (STEPS * REGIONS) as u64);
    assert_eq!(
        tida.kernels, multi.kernels,
        "one device must mirror TileAcc"
    );

    // Trace accounting, for the models that expose a trace.
    assert_trace_matches_counters(&tida);
    assert_trace_matches_counters(&cuda_pinned);
}

// ---------------------------------------------------------------------------
// Program 2: jacobi — two-operand compute path, CUDA vs TileAcc
// ---------------------------------------------------------------------------

#[test]
fn jacobi_conforms_across_implementations() {
    let sweeps = 3;
    let cuda = cuda_jacobi(
        &cfg(),
        N,
        sweeps,
        RunOpts::validated(MemMode::Pinned).with_tracing(),
    );
    let tida = tida_jacobi(
        &cfg(),
        N,
        sweeps,
        &TidaOpts::validated(REGIONS).with_tracing(),
    );

    assert_same_result(&cuda, &tida);
    assert_eq!(
        cuda.result.as_ref().unwrap(),
        &jacobi::golden_run(&jacobi::manufactured_rhs(N), N, sweeps),
        "jacobi diverged from the analytic solution"
    );

    for r in [&cuda, &tida] {
        assert_counter_floor(r);
        assert_trace_matches_counters(r);
    }

    // The baseline uploads u and f once (2 problems); the tiled runtime
    // additionally re-exchanges ghosts every sweep, so it moves more.
    assert_eq!(cuda.bytes_h2d, 2 * problem_bytes());
    assert!(tida.bytes_h2d > cuda.bytes_h2d);
    assert_eq!(cuda.kernels, sweeps as u64);
}

// ---------------------------------------------------------------------------
// Program 3: out-of-core staging — slot-capped TileAcc vs uncapped
// ---------------------------------------------------------------------------

#[test]
fn out_of_core_staging_conforms_to_in_core() {
    let in_core = tida_heat(
        &cfg(),
        N,
        STEPS,
        &TidaOpts::validated(REGIONS).with_tracing(),
    );
    let staged = tida_heat(
        &cfg(),
        N,
        STEPS,
        &TidaOpts::validated(REGIONS)
            .with_max_slots(3)
            .with_tracing(),
    );
    // And the full overlap machinery on top of the slot cap: lookahead
    // prefetch + reuse-distance eviction must still be conforming.
    let overlapped = tida_heat(
        &cfg(),
        N,
        STEPS,
        &TidaOpts::validated(REGIONS)
            .with_max_slots(3)
            .with_overlap(2, tida_acc::SlotPolicy::ReuseDistance)
            .with_tracing(),
    );

    assert_same_result(&in_core, &staged);
    assert_same_result(&in_core, &overlapped);
    assert_eq!(
        in_core.result.as_ref().unwrap(),
        &support::heat_golden(11, N, STEPS as u64)
    );

    for r in [&in_core, &staged, &overlapped] {
        assert_counter_floor(r);
        assert_trace_matches_counters(r);
    }

    // Eviction pressure forces re-uploads: the capped run moves strictly
    // more H2D traffic than the in-core run, with identical results.
    assert!(
        staged.bytes_h2d > in_core.bytes_h2d,
        "slot cap must force restaging ({} vs {})",
        staged.bytes_h2d,
        in_core.bytes_h2d
    );
    // Staging changes transfer/gather structure (the capped run routes
    // ghost exchange through the host instead of device-side gathers) but
    // every variant still runs the full per-tile stencil schedule.
    for r in [&in_core, &staged, &overlapped] {
        assert!(
            r.kernels >= (STEPS * REGIONS) as u64,
            "{}: fewer launches than stencil tiles",
            r.label
        );
    }
}

// ---------------------------------------------------------------------------
// Program 4: the cluster runtime — 1-node Cluster vs MultiAcc vs TileAcc
// ---------------------------------------------------------------------------

/// A one-node cluster is just another execution model and must conform
/// like the rest: bitwise-identical heat and Jacobi grids (against the
/// other runtimes and the analytic solvers), the counter floors, and
/// trace-parsed transfer payloads summing exactly to the byte counters.
#[test]
fn cluster_conforms_across_implementations() {
    // Heat: Cluster(1 node) vs TileAcc vs MultiAcc(1 device).
    let clu = baselines::cluster_heat(&cfg(), N, STEPS, REGIONS, 1, true, true);
    let tida = tida_heat(
        &cfg(),
        N,
        STEPS,
        &TidaOpts::validated(REGIONS).with_tracing(),
    );
    let multi = tida_heat_multi(&cfg(), N, STEPS, REGIONS, 1, true);
    assert_same_result(&clu, &tida);
    assert_same_result(&clu, &multi);
    assert_eq!(
        clu.result.as_ref().unwrap(),
        &support::heat_golden(11, N, STEPS as u64),
        "cluster execution diverged from the analytic solution"
    );
    assert_counter_floor(&clu);
    assert_trace_matches_counters(&clu);
    // The stencil schedule is intact: at least one launch per region per
    // step (the exchange-protocol shell kernels may add more).
    assert!(clu.kernels >= (STEPS * REGIONS) as u64);

    // Jacobi: the two-operand path, rhs riding as the aux operand.
    let sweeps = 3;
    let cj = baselines::cluster_jacobi(&cfg(), N, sweeps, REGIONS, 1, true, true);
    let tj = tida_jacobi(
        &cfg(),
        N,
        sweeps,
        &TidaOpts::validated(REGIONS).with_tracing(),
    );
    assert_same_result(&cj, &tj);
    assert_eq!(
        cj.result.as_ref().unwrap(),
        &jacobi::golden_run(&jacobi::manufactured_rhs(N), N, sweeps),
        "cluster jacobi diverged from the analytic solution"
    );
    assert_counter_floor(&cj);
    assert_trace_matches_counters(&cj);
}

/// On two nodes the same accounting discipline must extend to the wire:
/// the NET spans parsed back out of the merged trace sum to exactly the
/// runtime's network byte counter, which in turn equals the link model's
/// own ledger — and the PCIe counters still reconcile with the trace.
#[test]
fn cluster_wire_accounting_matches_trace() {
    use cluster::{Cluster, ClusterConfig};
    use kernels::heat;
    use tida::{Decomposition, Domain, ExchangeMode, RegionSpec, TileArray};

    let decomp = std::sync::Arc::new(Decomposition::new(
        Domain::periodic_cube(N),
        RegionSpec::Count(REGIONS),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(kernels::init::hash_field(11));

    let mut cl = Cluster::new(ClusterConfig::new(2).machine(cfg()));
    cl.set_tracing(true);
    let a = cl.register(&ua);
    let b = cl.register(&ub);
    let (mut src, mut dst) = (a, b);
    for _ in 0..STEPS {
        cl.step(dst, src, None, heat::cost, "heat", |d, s, _aux, bx| {
            heat::step_tile(d, s, &bx, heat::DEFAULT_FAC)
        })
        .unwrap();
        std::mem::swap(&mut src, &mut dst);
    }
    cl.sync_to_host(src).unwrap();
    cl.finish();

    let trace = cl.trace();
    assert!(
        cl.bytes_net() > 0,
        "a 2-node run must put ghosts on the wire"
    );
    assert_eq!(
        baselines::net_bytes_from_trace(&trace),
        cl.bytes_net(),
        "trace NET payloads disagree with the network byte counter"
    );
    assert_eq!(
        cl.bytes_net(),
        cl.net_stats().bytes(),
        "runtime and link-model ledgers disagree"
    );
    let (h2d, d2h) = support::transfer_bytes_from_trace(&trace);
    assert_eq!(h2d, cl.bytes_h2d(), "merged-trace H2D accounting broke");
    assert_eq!(d2h, cl.bytes_d2h(), "merged-trace D2H accounting broke");

    // And the result is still the analytic golden, of course.
    let final_array = if src == a { &ua } else { &ub };
    assert_eq!(
        final_array.to_dense().unwrap(),
        support::heat_golden(11, N, STEPS as u64)
    );
}

// ---------------------------------------------------------------------------
// Schedule-space tie-in: the conformance programs are schedule-invariant
// ---------------------------------------------------------------------------

/// The model checker's oracle hooks into the same simulator the baselines
/// run on, so conformance extends across *schedules*, not just across
/// implementations: random-walk exploration of the full TileAcc heat
/// program keeps producing the conforming grid.
#[test]
fn conformance_holds_under_explored_schedules() {
    use schedcheck::programs::{self, HeatConfig};
    use schedcheck::{CheckSpec, Checker, Strategy};

    let cfg = HeatConfig::default();
    let checker = Checker::new(programs::heat_overlap(cfg), CheckSpec::default());
    let report = checker.explore(Strategy::RandomWalk {
        seed: 0x5EED_CAFE,
        budget: 6,
    });
    assert!(
        report.failure.is_none(),
        "schedule-dependent conformance break:\n{}",
        report.failure.map(|f| f.render()).unwrap_or_default()
    );
}
