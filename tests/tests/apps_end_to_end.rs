//! End-to-end application tests beyond the paper's two kernels: the
//! multi-operand compute (Gray–Scott), full edge/corner ghost exchange on
//! the device (27-point smoother), reductions in a convergence loop
//! (Jacobi/Poisson), and sub-region tiles on the GPU path.

use kernels::{gray_scott, init, jacobi, stencil27};
use std::sync::Arc;
use tida::{
    tiles_of, Box3, Decomposition, Domain, ExchangeMode, IntVect, Layout, RegionSpec, TileArray,
    TileSpec,
};
use tida_acc::{AccOptions, TileAcc};

fn acc_with(max_slots: Option<usize>) -> TileAcc {
    let mut opts = AccOptions::paper();
    opts.max_slots = max_slots;
    TileAcc::new(
        gpu_sim::GpuSystem::new(gpu_sim::MachineConfig::k40m()),
        opts,
    )
}

fn dense_from(n: i64, f: impl Fn(IntVect) -> f64) -> Vec<f64> {
    let l = Layout::new(Box3::cube(n));
    (0..l.len()).map(|o| f(l.cell_at(o))).collect()
}

#[test]
fn gray_scott_multi_operand_compute_matches_golden() {
    let n = 8i64;
    let steps = 4;
    let p = gray_scott::GrayScott::default();
    let d = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(4),
    ));
    let mk = || TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
    let (au, av, bu, bv) = (mk(), mk(), mk(), mk());
    let (fu, fv) = gray_scott::seed(n);
    au.fill_valid(&fu);
    av.fill_valid(&fv);

    let mut acc = acc_with(None);
    let ids = [
        acc.register(&au),
        acc.register(&av),
        acc.register(&bu),
        acc.register(&bv),
    ];
    let tiles = tiles_of(&d, TileSpec::RegionSized);
    let (mut cur, mut next) = ([ids[0], ids[1]], [ids[2], ids[3]]);
    for _ in 0..steps {
        acc.fill_boundary(cur[0]).unwrap();
        acc.fill_boundary(cur[1]).unwrap();
        for &t in &tiles {
            acc.compute(
                t,
                &next,
                &cur,
                gray_scott::cost(t.num_cells()),
                "gray-scott",
                move |ws, rs, bx| gray_scott::step_tile(ws, rs, &bx, p),
            )
            .unwrap();
        }
        std::mem::swap(&mut cur, &mut next);
    }
    acc.sync_to_host(cur[0]).unwrap();
    acc.sync_to_host(cur[1]).unwrap();
    acc.finish();

    // Golden dense run.
    let mut gu = dense_from(n, &fu);
    let mut gv = dense_from(n, &fv);
    let mut tu = vec![0.0; gu.len()];
    let mut tv = vec![0.0; gv.len()];
    for _ in 0..steps {
        gray_scott::golden_step(&mut tu, &mut tv, &gu, &gv, n, p);
        std::mem::swap(&mut gu, &mut tu);
        std::mem::swap(&mut gv, &mut tv);
    }

    let (ru, rv) = if cur[0] == ids[0] {
        (&au, &av)
    } else {
        (&bu, &bv)
    };
    assert_eq!(ru.to_dense().unwrap(), gu);
    assert_eq!(rv.to_dense().unwrap(), gv);
    assert!(acc.stats().kernels_gpu > 0);
}

#[test]
fn gray_scott_limited_memory_still_exact() {
    // 4 arrays x 2 regions = 8 global regions through 5 slots.
    let n = 6i64;
    let steps = 3;
    let p = gray_scott::GrayScott::default();
    let d = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(2),
    ));
    let mk = || TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
    let (au, av, bu, bv) = (mk(), mk(), mk(), mk());
    let (fu, fv) = gray_scott::seed(n);
    au.fill_valid(&fu);
    av.fill_valid(&fv);

    let mut acc = acc_with(Some(5));
    let ids = [
        acc.register(&au),
        acc.register(&av),
        acc.register(&bu),
        acc.register(&bv),
    ];
    let tiles = tiles_of(&d, TileSpec::RegionSized);
    let (mut cur, mut next) = ([ids[0], ids[1]], [ids[2], ids[3]]);
    for _ in 0..steps {
        acc.fill_boundary(cur[0]).unwrap();
        acc.fill_boundary(cur[1]).unwrap();
        for &t in &tiles {
            acc.compute(
                t,
                &next,
                &cur,
                gray_scott::cost(t.num_cells()),
                "gray-scott",
                move |ws, rs, bx| gray_scott::step_tile(ws, rs, &bx, p),
            )
            .unwrap();
        }
        std::mem::swap(&mut cur, &mut next);
    }
    acc.sync_to_host(cur[0]).unwrap();
    acc.sync_to_host(cur[1]).unwrap();
    acc.finish();

    let mut gu = dense_from(n, &fu);
    let mut gv = dense_from(n, &fv);
    let mut tu = vec![0.0; gu.len()];
    let mut tv = vec![0.0; gv.len()];
    for _ in 0..steps {
        gray_scott::golden_step(&mut tu, &mut tv, &gu, &gv, n, p);
        std::mem::swap(&mut gu, &mut tu);
        std::mem::swap(&mut gv, &mut tv);
    }
    let (ru, rv) = if cur[0] == ids[0] {
        (&au, &av)
    } else {
        (&bu, &bv)
    };
    assert_eq!(ru.to_dense().unwrap(), gu);
    assert_eq!(rv.to_dense().unwrap(), gv);
}

#[test]
fn stencil27_full_exchange_on_device() {
    // Edge/corner ghost patches must flow through the device gather path.
    let n = 8i64;
    let steps = 3;
    let d = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Grid([2, 2, 1]),
    ));
    let ua = TileArray::new(d.clone(), 1, ExchangeMode::Full, true);
    let ub = TileArray::new(d.clone(), 1, ExchangeMode::Full, true);
    let f = init::hash_field(21);
    ua.fill_grown(|_| f64::NAN); // poison: any missed patch breaks equality
    ub.fill_grown(|_| f64::NAN);
    ua.fill_valid(&f);

    let mut acc = acc_with(None);
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let tiles = tiles_of(&d, TileSpec::RegionSized);
    let (mut src, mut dst) = (a, b);
    for _ in 0..steps {
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                stencil27::cost(t.num_cells()),
                "s27",
                |dv, sv, bx| stencil27::step_tile(dv, sv, &bx),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    acc.finish();

    let mut golden = dense_from(n, &f);
    let mut tmp = vec![0.0; golden.len()];
    for _ in 0..steps {
        stencil27::golden_step(&mut tmp, &golden, n);
        std::mem::swap(&mut golden, &mut tmp);
    }
    let arr = if src == a { &ua } else { &ub };
    assert_eq!(arr.to_dense().unwrap(), golden);
    assert!(acc.stats().ghost_gpu > 0);
}

#[test]
fn jacobi_converges_with_device_reductions() {
    let n = 8i64;
    let d = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(4),
    ));
    let mk = || TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
    let (u, unew, rhs, res) = (mk(), mk(), mk(), mk());
    let f = jacobi::manufactured_rhs(n);
    rhs.from_dense(&f);
    u.fill_valid(|_| 0.0);

    let mut acc = acc_with(None);
    let (au, aun, af, ar) = (
        acc.register(&u),
        acc.register(&unew),
        acc.register(&rhs),
        acc.register(&res),
    );
    let tiles = tiles_of(&d, TileSpec::RegionSized);

    let mut residuals = Vec::new();
    let (mut cur, mut next) = (au, aun);
    for sweep in 0..60 {
        acc.fill_boundary(cur).unwrap();
        for &t in &tiles {
            acc.compute(
                t,
                &[next],
                &[cur, af],
                jacobi::cost(t.num_cells()),
                "jacobi",
                |ws, rs, bx| jacobi::sweep_tile(&mut ws[0], &rs[0], &rs[1], &bx),
            )
            .unwrap();
        }
        std::mem::swap(&mut cur, &mut next);
        if sweep % 20 == 19 {
            // Residual check through the reduction API.
            acc.fill_boundary(cur).unwrap();
            for &t in &tiles {
                acc.compute(
                    t,
                    &[ar],
                    &[cur, af],
                    jacobi::cost(t.num_cells()),
                    "residual",
                    |ws, rs, bx| jacobi::residual_tile(&mut ws[0], &rs[0], &rs[1], &bx),
                )
                .unwrap();
            }
            residuals.push(acc.reduce_max_abs(ar).unwrap().expect("backed run"));
        }
    }
    acc.sync_to_host(cur).unwrap();
    acc.finish();

    assert_eq!(residuals.len(), 3);
    assert!(
        residuals[1] < residuals[0] && residuals[2] < residuals[1],
        "residuals must decrease: {residuals:?}"
    );

    // Final iterate matches the dense golden run bitwise.
    let golden = jacobi::golden_run(&f, n, 60);
    let arr = if cur == au { &u } else { &unew };
    assert_eq!(arr.to_dense().unwrap(), golden);
    // And the reduction agrees with the dense residual evaluation.
    let dense_res = jacobi::golden_residual(&golden, &f, n);
    assert!((residuals[2] - dense_res).abs() < 1e-12);
}

#[test]
fn sub_region_tiles_on_gpu_path() {
    // Multiple tiles per region: the paper notes this launches one kernel
    // per tile (not recommended for performance, but must be correct).
    // Partial-tile writes must not trigger the write-intent skip.
    let n = 8i64;
    let steps = 2;
    let d = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(2),
    ));
    let ua = TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::hash_field(8));
    ub.fill_valid(init::hash_field(8)); // dst pre-filled: partial writes keep the rest

    let mut acc = acc_with(None);
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    // 4x8x4 tiles: several per region.
    let tiles = tiles_of(&d, TileSpec::Size(IntVect::new(4, 8, 4)));
    assert!(tiles.len() > d.num_regions());

    let (mut src, mut dst) = (a, b);
    for _ in 0..steps {
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                kernels::heat::cost(t.num_cells()),
                "heat",
                |dv, sv, bx| kernels::heat::step_tile(dv, sv, &bx, kernels::heat::DEFAULT_FAC),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    acc.finish();

    let golden =
        kernels::heat::golden_run(init::hash_field(8), n, steps, kernels::heat::DEFAULT_FAC);
    let arr = if src == a { &ua } else { &ub };
    assert_eq!(arr.to_dense().unwrap(), golden);
    assert_eq!(acc.stats().write_allocs, 0, "partial tiles must upload dst");
}

#[test]
fn wave_three_time_levels_matches_golden() {
    // Three arrays rotate roles (prev, cur, next) each step: the runtime
    // must keep all three coherent across residency changes.
    let n = 8i64;
    let steps = 6;
    let c2 = kernels::wave::DEFAULT_C2;
    let d = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(4),
    ));
    let mk = || TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
    let bufs = [mk(), mk(), mk()];
    let f = init::gaussian(n);
    bufs[0].fill_valid(&f); // prev
    bufs[1].fill_valid(&f); // cur (start from rest)

    let mut acc = acc_with(None);
    let ids = [
        acc.register(&bufs[0]),
        acc.register(&bufs[1]),
        acc.register(&bufs[2]),
    ];
    let tiles = tiles_of(&d, TileSpec::RegionSized);
    let (mut prev, mut cur, mut next) = (ids[0], ids[1], ids[2]);
    for _ in 0..steps {
        acc.fill_boundary(cur).unwrap();
        for &t in &tiles {
            acc.compute(
                t,
                &[next],
                &[cur, prev],
                kernels::wave::cost(t.num_cells()),
                "wave",
                move |ws, rs, bx| kernels::wave::step_tile(&mut ws[0], &rs[0], &rs[1], &bx, c2),
            )
            .unwrap();
        }
        let old_prev = prev;
        prev = cur;
        cur = next;
        next = old_prev;
    }
    acc.sync_to_host(cur).unwrap();
    acc.finish();

    let golden = kernels::wave::golden_run(&f, n, steps, c2);
    let pos = ids.iter().position(|&i| i == cur).unwrap();
    assert_eq!(bufs[pos].to_dense().unwrap(), golden);
}

#[test]
fn wave_limited_memory_three_arrays() {
    // 3 arrays x 4 regions = 12 global regions through 4 slots: the slot
    // pool must juggle three rotating roles under eviction pressure.
    let n = 6i64;
    let steps = 4;
    let c2 = kernels::wave::DEFAULT_C2;
    let d = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(3),
    ));
    let mk = || TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
    let bufs = [mk(), mk(), mk()];
    let f = init::gaussian(n);
    bufs[0].fill_valid(&f);
    bufs[1].fill_valid(&f);

    let mut acc = acc_with(Some(4));
    let ids = [
        acc.register(&bufs[0]),
        acc.register(&bufs[1]),
        acc.register(&bufs[2]),
    ];
    let tiles = tiles_of(&d, TileSpec::RegionSized);
    let (mut prev, mut cur, mut next) = (ids[0], ids[1], ids[2]);
    for _ in 0..steps {
        acc.fill_boundary(cur).unwrap();
        for &t in &tiles {
            acc.compute(
                t,
                &[next],
                &[cur, prev],
                kernels::wave::cost(t.num_cells()),
                "wave",
                move |ws, rs, bx| kernels::wave::step_tile(&mut ws[0], &rs[0], &rs[1], &bx, c2),
            )
            .unwrap();
        }
        let old_prev = prev;
        prev = cur;
        cur = next;
        next = old_prev;
    }
    acc.sync_to_host(cur).unwrap();
    acc.finish();
    assert!(acc.stats().evictions > 0);

    let golden = kernels::wave::golden_run(&f, n, steps, c2);
    let pos = ids.iter().position(|&i| i == cur).unwrap();
    assert_eq!(bufs[pos].to_dense().unwrap(), golden);
}

#[test]
fn wave_on_two_gpus_with_reductions() {
    // Three time levels distributed over two devices, energy checked via
    // the distributed reduction — the full multi-GPU API surface at once.
    use tida_acc::MultiAcc;
    let n = 8i64;
    let steps = 5;
    let c2 = kernels::wave::DEFAULT_C2;
    let d = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(4),
    ));
    let mk = || TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
    let bufs = [mk(), mk(), mk()];
    let f = init::gaussian(n);
    bufs[0].fill_valid(&f);
    bufs[1].fill_valid(&f);

    let mut acc = MultiAcc::new(gpu_sim::GpuSystem::multi(
        gpu_sim::MachineConfig::k40m(),
        2,
        true,
    ));
    let ids = [
        acc.register(&bufs[0]),
        acc.register(&bufs[1]),
        acc.register(&bufs[2]),
    ];
    let tiles = tiles_of(&d, TileSpec::RegionSized);
    let (mut prev, mut cur, mut next) = (ids[0], ids[1], ids[2]);
    for _ in 0..steps {
        acc.fill_boundary(cur).unwrap();
        for &t in &tiles {
            acc.compute(
                t,
                &[next],
                &[cur, prev],
                kernels::wave::cost(t.num_cells()),
                "wave",
                move |ws, rs, bx| kernels::wave::step_tile(&mut ws[0], &rs[0], &rs[1], &bx, c2),
            )
            .unwrap();
        }
        let old_prev = prev;
        prev = cur;
        cur = next;
        next = old_prev;
    }
    // Distributed max-abs reduction agrees with the dense field.
    let max_dev = acc
        .reduce(cur, "max-abs", 0.0, f64::abs, f64::max)
        .unwrap()
        .expect("backed");
    acc.sync_to_host(cur).unwrap();
    acc.finish();

    let golden = kernels::wave::golden_run(&f, n, steps, c2);
    let pos = ids.iter().position(|&i| i == cur).unwrap();
    assert_eq!(bufs[pos].to_dense().unwrap(), golden);
    let max_dense = golden.iter().fold(0f64, |m, &x| m.max(x.abs()));
    assert!((max_dev - max_dense).abs() < 1e-14);
    assert!(acc.gpu().stats_bytes_p2p() > 0);
}
