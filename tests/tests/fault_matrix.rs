//! Fault-matrix integration suite: the deterministic fault-injection layer
//! in `gpu-sim` crossed with TiDA-acc's graceful degradation.
//!
//! The contract under test, per fault class:
//!
//! * **disabled** — a `FaultPlan` that is present but disabled changes
//!   nothing: results, simulated time and accelerator statistics are
//!   bit-identical to a run without the layer;
//! * **transient** — transfers retry with backoff and the run produces
//!   numerically identical results (time and retry counters differ);
//! * **persistent** — the device is declared failed, dirty regions are
//!   salvaged, and the run completes correctly on the host path;
//! * **alloc** — `cudaMalloc`-style failures shrink the slot pool and the
//!   run still matches the golden solution;
//! * **stall / degrade** — scheduling perturbations cost time only.

use gpu_sim::{
    DegradeWindow, FaultPlan, FaultStats, GpuSystem, MachineConfig, SimTime, StreamStall,
    TransferFaults,
};
use kernels::{heat, init};
use proptest::prelude::*;
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, AccStats, ArrayId, Residency, TileAcc};

const N: i64 = 8;
const STEPS: usize = 3;

/// Everything one faulted run produces, for comparison against a clean run.
struct FaultRun {
    result: Vec<f64>,
    elapsed: SimTime,
    stats: AccStats,
    fault_stats: FaultStats,
    num_slots: usize,
    device_failed: bool,
    residency: Vec<Residency>,
    trace: Option<gpu_sim::Trace>,
    report: String,
}

fn drive_heat(
    acc: &mut TileAcc,
    decomp: &Arc<Decomposition>,
    mut src: ArrayId,
    mut dst: ArrayId,
    steps: usize,
) -> ArrayId {
    let tiles = tiles_of(decomp, TileSpec::RegionSized);
    for _ in 0..steps {
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                heat::cost(t.num_cells()),
                "heat",
                |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    src
}

fn run_faulted(plan: FaultPlan, opts: AccOptions, tracing: bool) -> FaultRun {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(N),
        RegionSpec::Grid([2, 2, 1]),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::hash_field(7));
    let mut gpu = GpuSystem::new(MachineConfig::k40m().with_faults(plan));
    gpu.set_tracing(tracing);
    let mut acc = TileAcc::new(gpu, opts);
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let last = drive_heat(&mut acc, &decomp, a, b, STEPS);
    let elapsed = acc.finish();
    let residency = (0..decomp.num_regions())
        .map(|r| acc.residency(last, r))
        .collect();
    let report = acc.gpu_mut().report().to_string();
    FaultRun {
        result: if last == a { &ua } else { &ub }
            .to_dense()
            .expect("backed run"),
        elapsed,
        stats: acc.stats(),
        fault_stats: acc.gpu().fault_stats(),
        num_slots: acc.num_slots(),
        device_failed: acc.device_failed(),
        residency,
        trace: tracing.then(|| acc.gpu().trace()),
        report,
    }
}

fn golden() -> Vec<f64> {
    heat::golden_run(init::hash_field(7), N, STEPS, heat::DEFAULT_FAC)
}

/// CI's scheduled sweep sets `FAULT_SEED_OFFSET` to displace the seed window
/// the property tests explore; local and push/PR runs use offset 0.
fn seed_offset() -> u64 {
    std::env::var("FAULT_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn transient(rate: f64) -> TransferFaults {
    TransferFaults {
        transient_rate: rate,
        ..TransferFaults::default()
    }
}

fn dead_after(n: u64) -> TransferFaults {
    TransferFaults {
        fail_after: Some(n),
        ..TransferFaults::default()
    }
}

// ---------------------------------------------------------------------------
// (a) present-but-disabled layer is bit-identical
// ---------------------------------------------------------------------------

#[test]
fn disabled_plan_is_bit_identical() {
    let clean = run_faulted(FaultPlan::none(), AccOptions::paper(), false);
    let gated = run_faulted(
        FaultPlan::none().with_seed(0xDEAD_BEEF),
        AccOptions::paper(),
        false,
    );
    assert_eq!(clean.result, golden());
    assert_eq!(clean.result, gated.result);
    assert_eq!(clean.elapsed, gated.elapsed);
    assert_eq!(clean.stats, gated.stats);
    assert_eq!(clean.fault_stats, FaultStats::default());
    assert_eq!(gated.fault_stats, FaultStats::default());
    assert_eq!(clean.residency, gated.residency);
}

// ---------------------------------------------------------------------------
// (b) transient faults: retried, numerically identical
// ---------------------------------------------------------------------------

#[test]
fn transient_faults_retry_to_identical_results() {
    let clean = run_faulted(FaultPlan::none(), AccOptions::paper(), false);
    let plan = FaultPlan {
        h2d: transient(0.3),
        d2h: transient(0.3),
        ..FaultPlan::none().with_seed(11)
    };
    let faulted = run_faulted(plan, AccOptions::paper().with_transfer_retries(10), false);
    assert_eq!(faulted.result, golden());
    assert!(
        faulted.fault_stats.h2d_faults + faulted.fault_stats.d2h_faults > 0,
        "fault plan injected nothing: {:?}",
        faulted.fault_stats
    );
    assert!(faulted.stats.transfer_retries > 0);
    assert!(
        !faulted.device_failed,
        "transient faults must not kill the device"
    );
    assert_eq!(faulted.stats.fault_fallbacks, 0);
    assert!(
        faulted.elapsed > clean.elapsed,
        "recovery must cost simulated time: {} !> {}",
        faulted.elapsed,
        clean.elapsed
    );
    assert!(faulted.fault_stats.lost_time > SimTime::ZERO);
}

// ---------------------------------------------------------------------------
// (c) persistent faults: complete correctly via the host path
// ---------------------------------------------------------------------------

#[test]
fn persistent_h2d_fault_falls_back_to_host() {
    let plan = FaultPlan {
        h2d: dead_after(0),
        ..FaultPlan::none().with_seed(3)
    };
    let run = run_faulted(plan, AccOptions::paper(), false);
    assert_eq!(run.result, golden());
    assert!(run.device_failed, "dead H2D lane must fail the device");
    assert!(run.stats.fault_fallbacks > 0, "{:?}", run.stats);
    assert!(run.stats.transfer_retries > 0, "retries precede giving up");
    assert!(run.residency.iter().all(|r| *r == Residency::Host));
}

#[test]
fn persistent_d2h_fault_salvages_and_falls_back() {
    // H2D works, so regions go up and turn dirty on the device before the
    // dead D2H lane is discovered; recovery must salvage them.
    let plan = FaultPlan {
        d2h: dead_after(0),
        ..FaultPlan::none().with_seed(3)
    };
    let run = run_faulted(plan, AccOptions::paper(), false);
    assert_eq!(run.result, golden());
    assert!(run.device_failed);
    assert!(run.stats.salvaged_regions > 0, "{:?}", run.stats);
    assert!(run.fault_stats.salvages > 0, "{:?}", run.fault_stats);
    assert!(run.residency.iter().all(|r| *r == Residency::Host));
}

#[test]
fn mid_run_d2h_death_still_correct() {
    // The lane dies only after some successful downloads: the device holds
    // live, dirty state at the moment of failure.
    let plan = FaultPlan {
        d2h: dead_after(2),
        ..FaultPlan::none().with_seed(5)
    };
    let run = run_faulted(plan, AccOptions::paper(), false);
    assert_eq!(run.result, golden());
    assert!(run.device_failed);
}

// ---------------------------------------------------------------------------
// (d) allocation faults: slot pool shrinks, run still golden
// ---------------------------------------------------------------------------

#[test]
fn alloc_faults_shrink_slot_pool() {
    let clean = run_faulted(FaultPlan::none(), AccOptions::paper(), false);
    let plan = FaultPlan {
        alloc_fail_nth: vec![1, 3], // 0-based malloc ordinals
        ..FaultPlan::none().with_seed(3)
    };
    let run = run_faulted(plan, AccOptions::paper(), false);
    assert_eq!(run.result, golden());
    assert_eq!(run.stats.slot_shrinks, 2);
    assert_eq!(run.num_slots, clean.num_slots - 2);
    assert!(!run.device_failed, "a shrunken pool is degraded, not dead");
}

#[test]
fn all_allocs_failing_means_host_only_run() {
    let plan = FaultPlan {
        alloc_fail_nth: (0..64).collect(),
        ..FaultPlan::none().with_seed(3)
    };
    let run = run_faulted(plan, AccOptions::paper(), false);
    assert_eq!(run.result, golden());
    assert_eq!(run.num_slots, 0);
    assert!(run.device_failed);
    assert_eq!(run.stats.kernels_gpu, 0);
    assert!(run.stats.kernels_host > 0);
}

// ---------------------------------------------------------------------------
// (e) stalls and bandwidth-degrade windows cost time only
// ---------------------------------------------------------------------------

#[test]
fn stalls_and_degrade_windows_only_cost_time() {
    let clean = run_faulted(FaultPlan::none(), AccOptions::paper(), false);
    let plan = FaultPlan {
        // One slot per stream means few transfers each: stall every transfer
        // on every stream the run could use.
        stalls: (0..16)
            .map(|stream| StreamStall {
                stream,
                every: 1,
                stall: SimTime::from_us(500),
            })
            .collect(),
        degrade: vec![DegradeWindow {
            from: SimTime::ZERO,
            until: SimTime::from_us(u64::MAX / 2_000),
            factor: 3.0,
        }],
        ..FaultPlan::none().with_seed(3)
    };
    let run = run_faulted(plan, AccOptions::paper(), false);
    assert_eq!(run.result, clean.result);
    assert_eq!(run.result, golden());
    assert!(run.fault_stats.stalls > 0, "{:?}", run.fault_stats);
    assert!(run.fault_stats.degraded > 0, "{:?}", run.fault_stats);
    assert!(
        run.elapsed > clean.elapsed,
        "{} !> {}",
        run.elapsed,
        clean.elapsed
    );
    assert!(!run.device_failed);
    assert_eq!(run.stats.transfer_retries, 0, "stalls are not faults");
}

// ---------------------------------------------------------------------------
// (f) recovery is visible: trace categories and run report
// ---------------------------------------------------------------------------

#[test]
fn fault_recovery_is_visible_in_trace_and_report() {
    let plan = FaultPlan {
        h2d: transient(0.4),
        d2h: transient(0.4),
        ..FaultPlan::none().with_seed(21)
    };
    let run = run_faulted(plan, AccOptions::paper().with_transfer_retries(12), true);
    assert_eq!(run.result, golden());
    let trace = run.trace.expect("tracing run");
    let has = |cat: &str| trace.spans.iter().any(|s| s.category == cat);
    assert!(
        has("h2d-fault") || has("d2h-fault"),
        "faulted attempts must appear as their own span category"
    );
    assert!(has("backoff"), "retry backoff must appear in the trace");
    assert!(run.report.contains("faults:"), "report:\n{}", run.report);
    assert!(run.fault_stats.events() > 0);
    // Chrome export is category-generic: the new categories survive it.
    let json = trace.to_chrome_json();
    assert!(json.contains("backoff"));
}

// ---------------------------------------------------------------------------
// (g) property: any transient-only plan is result-identical to fault-free
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_transient_only_plans_are_result_identical(
        seed in 0u64..10_000,
        h2d_rate in 0.0f64..0.25,
        d2h_rate in 0.0f64..0.25,
        max_slots in proptest::option::of(2usize..6),
    ) {
        let plan = FaultPlan {
            h2d: transient(h2d_rate),
            d2h: transient(d2h_rate),
            ..FaultPlan::none().with_seed(seed + seed_offset())
        };
        let mut opts = AccOptions::paper().with_transfer_retries(10);
        opts.max_slots = max_slots;
        let clean = run_faulted(FaultPlan::none(), opts.clone(), false);
        let faulted = run_faulted(plan, opts, false);
        prop_assert_eq!(&faulted.result, &clean.result);
        prop_assert_eq!(faulted.result, golden());
        prop_assert!(!faulted.device_failed);
        prop_assert_eq!(&faulted.residency, &clean.residency);
        // Every injected fault is answered by exactly one retry (no fallback
        // or salvage happened, so the books must balance).
        prop_assert_eq!(
            faulted.stats.transfer_retries,
            faulted.fault_stats.h2d_faults + faulted.fault_stats.d2h_faults
        );
    }
}

// ---------------------------------------------------------------------------
// (h) regression: retry/backoff accounting pinned for one seeded plan
// ---------------------------------------------------------------------------

#[test]
fn regression_pinned_fault_accounting() {
    // Deterministic by construction: same plan, same program, same counters.
    // These numbers pin the splitmix64 fault-decision stream and the retry
    // accounting; an unintended change to either shows up here first.
    let plan = FaultPlan {
        h2d: transient(0.25),
        d2h: transient(0.25),
        ..FaultPlan::none().with_seed(42)
    };
    let run = run_faulted(
        plan.clone(),
        AccOptions::paper().with_transfer_retries(10),
        false,
    );
    assert_eq!(run.result, golden());
    let fs = run.fault_stats;
    let again = run_faulted(plan, AccOptions::paper().with_transfer_retries(10), false);
    assert_eq!(fs, again.fault_stats, "fault stream must be deterministic");
    assert_eq!(run.elapsed, again.elapsed);
    assert_eq!(run.stats, again.stats);
    assert_eq!(
        run.stats.transfer_retries,
        fs.h2d_faults + fs.d2h_faults,
        "every transient fault answered by exactly one retry"
    );
    assert_eq!(
        fs.h2d_attempts,
        fs.h2d_faults + 4,
        "pinned: 4 clean H2D transfers"
    );
    assert_eq!(
        fs.d2h_attempts,
        fs.d2h_faults + 4,
        "pinned: 4 clean D2H transfers"
    );
    assert_eq!(fs.h2d_faults, 1, "pinned fault stream (seed 42)");
    assert_eq!(fs.d2h_faults, 3, "pinned fault stream (seed 42)");
    assert_eq!(fs.lost_time, SimTime::from_ns(16_530), "pinned lost time");
}
