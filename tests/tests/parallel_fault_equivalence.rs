//! `desim::ParallelDriver` under fault plans: running a batch of *faulted*
//! simulations through the driver must be outcome-identical regardless of
//! the worker-thread count.
//!
//! The fault layer is seeded and deterministic per run, and every
//! simulation owns its platform, so nothing about placement — which OS
//! thread runs which job, in what order jobs finish — may leak into
//! results. The suite fingerprints each job (result digest, simulated
//! time, accelerator statistics, fault counters, hazard counters, slot
//! pool, device health) and demands bit-identical fingerprint vectors
//! from 1-, 2- and 4-thread drivers, and from a plain serial loop.

use desim::ParallelDriver;
use gpu_sim::{
    CorruptionFault, DegradeWindow, FaultPlan, GpuSystem, MachineConfig, SimTime, StreamStall,
    TransferFaults,
};
use kernels::{heat, init};
use memslab::fnv1a64_f64s;
use serving::{JobSpec, ServingConfig, ServingRuntime};
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, ArrayId, TileAcc};

const N: i64 = 8;
const STEPS: usize = 3;

fn drive_heat(
    acc: &mut TileAcc,
    decomp: &Arc<Decomposition>,
    mut src: ArrayId,
    mut dst: ArrayId,
    steps: usize,
) -> ArrayId {
    let tiles = tiles_of(decomp, TileSpec::RegionSized);
    for _ in 0..steps {
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                heat::cost(t.num_cells()),
                "heat",
                |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    src
}

/// Run one faulted heat simulation end to end and reduce everything it
/// produced to a comparable string: result digest, elapsed virtual time,
/// accelerator stats, injected-fault counters, hazard counters, the slot
/// pool size and whether the device was declared failed.
fn heat_fingerprint(plan: FaultPlan) -> String {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(N),
        RegionSpec::Grid([2, 2, 1]),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::hash_field(7));
    let gpu = GpuSystem::new(MachineConfig::k40m().with_faults(plan));
    let mut acc = TileAcc::new(gpu, AccOptions::default());
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let last = drive_heat(&mut acc, &decomp, a, b, STEPS);
    let elapsed = acc.finish();
    let result = if last == a { &ua } else { &ub }
        .to_dense()
        .expect("backed run");
    format!(
        "digest={:016x} elapsed={:?} stats={:?} faults={:?} hazards={:?} slots={} dead={}",
        fnv1a64_f64s(&result),
        elapsed,
        acc.stats(),
        acc.gpu().fault_stats(),
        acc.gpu().hazard_counters(),
        acc.num_slots(),
        acc.device_failed(),
    )
}

/// The fault plans the batch exercises — one per major fault class, so the
/// equivalence claim covers retry paths, salvage, scheduling perturbation
/// and silent-corruption repair, not just the clean fast path.
fn heat_plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::none(),
        FaultPlan::none().with_seed(11).with_transient(0.15),
        FaultPlan {
            seed: 12,
            d2h: TransferFaults {
                fail_after: Some(4),
                ..TransferFaults::default()
            },
            ..FaultPlan::none()
        },
        FaultPlan {
            seed: 13,
            stalls: vec![StreamStall {
                stream: 0,
                every: 3,
                stall: SimTime::from_us(40),
            }],
            degrade: vec![DegradeWindow {
                from: SimTime::ZERO,
                until: SimTime::from_ms(2),
                factor: 3.0,
            }],
            ..FaultPlan::none()
        },
        FaultPlan::none()
            .with_seed(14)
            .with_corruption(CorruptionFault {
                h2d_rate: 0.2,
                ..CorruptionFault::default()
            }),
    ]
}

#[test]
fn faulted_heat_batches_are_outcome_identical_across_thread_counts() {
    // Serial reference: no driver involved at all.
    let reference: Vec<String> = heat_plans().into_iter().map(heat_fingerprint).collect();
    for threads in [1usize, 2, 4] {
        let jobs: Vec<_> = heat_plans()
            .into_iter()
            .map(|plan| move || heat_fingerprint(plan))
            .collect();
        let got = ParallelDriver::new(threads).run(jobs);
        assert_eq!(
            got, reference,
            "a {threads}-thread driver must reproduce the serial outcomes"
        );
    }
}

/// Same claim for the multi-node runtime: whole cluster simulations —
/// network model, link faults, node deaths and failover included — reduce
/// to a fingerprint (result digest, virtual time, accelerator stats, wire
/// counters, recovery count) that must be bit-identical whatever thread
/// count the driver uses.
fn cluster_fingerprint(nodes: usize, plan: FaultPlan) -> String {
    use cluster::{Cluster, ClusterConfig, ClusterError};

    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(N),
        RegionSpec::Count(4),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::hash_field(7));
    let mut cl = Cluster::new(ClusterConfig::new(nodes).fault(plan));
    let ids = [cl.register(&ua), cl.register(&ub)];
    let ck = cl.checkpoint(0).expect("pristine checkpoint");
    let mut s = 0u64;
    let mut recoveries = 0u64;
    while s < STEPS as u64 {
        let (src, dst) = (ids[(s % 2) as usize], ids[((s + 1) % 2) as usize]);
        match cl.step(dst, src, None, heat::cost, "heat", |d, s, _aux, bx| {
            heat::step_tile(d, s, &bx, heat::DEFAULT_FAC)
        }) {
            Ok(()) => s += 1,
            Err(ClusterError::NodeLost { .. }) | Err(ClusterError::Crashed { .. }) => {
                recoveries += 1;
                assert!(recoveries <= 8, "failover livelock");
                s = cl.failover(&ck).expect("survivors remain");
            }
            Err(e) => panic!("unexpected cluster error: {e}"),
        }
    }
    cl.sync_to_host(ids[(s % 2) as usize]).unwrap();
    let elapsed = cl.finish();
    let result = if s % 2 == 0 { &ua } else { &ub }
        .to_dense()
        .expect("backed run");
    format!(
        "digest={:016x} elapsed={:?} stats={:?} net={:?} recoveries={}",
        fnv1a64_f64s(&result),
        elapsed,
        cl.stats(),
        cl.net_stats(),
        recoveries,
    )
}

/// One cluster job per fault class: clean fabric on one and three nodes,
/// lossy and reordering links, and a mid-run node death with failover.
fn cluster_plans() -> Vec<(usize, FaultPlan)> {
    use cluster::LinkFault;
    vec![
        (1, FaultPlan::none()),
        (3, FaultPlan::none()),
        (
            2,
            FaultPlan::none()
                .with_seed(31)
                .with_link_fault(LinkFault::on("*").drops(0.4)),
        ),
        (
            2,
            FaultPlan::none()
                .with_seed(32)
                .with_link_fault(LinkFault::on("*").reorders(0.4, SimTime::from_us(25))),
        ),
        (
            2,
            FaultPlan::none()
                .with_seed(33)
                .with_device_death(gpu_sim::DeviceDeath::at_transfer(1, 2)),
        ),
    ]
}

#[test]
fn faulted_cluster_batches_are_outcome_identical_across_thread_counts() {
    let reference: Vec<String> = cluster_plans()
        .into_iter()
        .map(|(nodes, plan)| cluster_fingerprint(nodes, plan))
        .collect();
    for threads in [1usize, 2, 4] {
        let jobs: Vec<_> = cluster_plans()
            .into_iter()
            .map(|(nodes, plan)| move || cluster_fingerprint(nodes, plan))
            .collect();
        let got = ParallelDriver::new(threads).run(jobs);
        assert_eq!(
            got, reference,
            "a {threads}-thread driver must reproduce the serial cluster outcomes"
        );
    }
}

/// Same claim one layer up: whole multi-tenant serving runtimes — each
/// with its own fault plan, including tenant-scoped ones — run through the
/// driver and must be placement-independent too.
fn serving_fingerprint(seed: u64, plan: FaultPlan) -> String {
    let mut rt = ServingRuntime::new(ServingConfig {
        max_active: 2,
        fault_plan: plan,
        ..ServingConfig::default()
    });
    for i in 0..6u64 {
        rt.submit(JobSpec::new((i % 3) as u32, 2, 48, 3, seed + i))
            .unwrap();
    }
    rt.run_until_idle();
    format!(
        "results={:?} cross={} hazards={} crashes={} faults={}",
        rt.results(),
        rt.cross_tenant_touches(),
        rt.hazard_counters().total(),
        rt.crashes_survived(),
        rt.total_fault_events(),
    )
}

#[test]
fn faulted_serving_runtimes_are_outcome_identical_across_thread_counts() {
    let plans = || {
        vec![
            (100u64, FaultPlan::none()),
            (200, FaultPlan::none().with_seed(21).with_transient(0.2)),
            (
                300,
                FaultPlan::none()
                    .with_seed(22)
                    .with_transient(0.3)
                    .scoped_to(1),
            ),
            (
                400,
                FaultPlan::none().with_crash(gpu_sim::CrashFault::at_transfer(5)),
            ),
        ]
    };
    let reference: Vec<String> = plans()
        .into_iter()
        .map(|(seed, plan)| serving_fingerprint(seed, plan))
        .collect();
    for threads in [1usize, 2, 4] {
        let jobs: Vec<_> = plans()
            .into_iter()
            .map(|(seed, plan)| move || serving_fingerprint(seed, plan))
            .collect();
        let got = ParallelDriver::new(threads).run(jobs);
        assert_eq!(
            got, reference,
            "a {threads}-thread driver must reproduce the serial serving outcomes"
        );
    }
}
