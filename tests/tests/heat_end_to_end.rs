//! End-to-end validation: the full TiDA-acc protocol (ghost exchange +
//! compute + residency management) must reproduce the dense golden heat
//! solution bitwise under every configuration — decomposition shape, slot
//! budget, slot policy, write-back policy, and execution mode.

use kernels::{heat, init};
use proptest::prelude::*;
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, ArrayId, SlotPolicy, TileAcc, WritebackPolicy};

fn drive_heat(
    acc: &mut TileAcc,
    decomp: &Arc<Decomposition>,
    mut src: ArrayId,
    mut dst: ArrayId,
    steps: usize,
) -> ArrayId {
    let tiles = tiles_of(decomp, TileSpec::RegionSized);
    for _ in 0..steps {
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                heat::cost(t.num_cells()),
                "heat",
                |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    src
}

fn run_config(n: i64, spec: RegionSpec, steps: usize, opts: AccOptions, seed: u64) -> Vec<f64> {
    let decomp = Arc::new(Decomposition::new(Domain::periodic_cube(n), spec));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::hash_field(seed));
    let mut acc = TileAcc::new(
        gpu_sim::GpuSystem::new(gpu_sim::MachineConfig::k40m()),
        opts,
    );
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let last = drive_heat(&mut acc, &decomp, a, b, steps);
    acc.finish();
    let arr = if last == a { &ua } else { &ub };
    arr.to_dense().expect("backed run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random decomposition, slot budget and policies: always bitwise golden.
    #[test]
    fn prop_heat_always_matches_golden(
        grid in proptest::array::uniform3(1usize..3),
        steps in 1usize..4,
        max_slots in proptest::option::of(1usize..6),
        lru in any::<bool>(),
        dirty_only in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let n = 8i64;
        let mut opts = AccOptions::paper();
        opts.max_slots = max_slots.map(|s| s.max(2)); // >= num_arrays for GPU path
        opts.policy = if lru { SlotPolicy::Lru } else { SlotPolicy::StaticInterleaved };
        opts.writeback = if dirty_only { WritebackPolicy::DirtyOnly } else { WritebackPolicy::Always };
        let got = run_config(n, RegionSpec::Grid(grid), steps, opts, seed);
        let golden = heat::golden_run(init::hash_field(seed), n, steps, heat::DEFAULT_FAC);
        prop_assert_eq!(got, golden);
    }

    /// The schedule is a function of the program, not of the data: any two
    /// runs of the same configuration take identical simulated time.
    #[test]
    fn prop_simulated_time_deterministic(
        regions in 1usize..5,
        steps in 1usize..4,
        max_slots in proptest::option::of(2usize..5),
    ) {
        let run = || {
            let decomp = Arc::new(Decomposition::new(
                Domain::periodic_cube(8),
                RegionSpec::Count(regions),
            ));
            let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, false);
            let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, false);
            let mut opts = AccOptions::paper();
            opts.max_slots = max_slots;
            let mut acc = TileAcc::new(
                gpu_sim::GpuSystem::with_backing(gpu_sim::MachineConfig::k40m(), false),
                opts,
            );
            let a = acc.register(&ua);
            let b = acc.register(&ub);
            drive_heat(&mut acc, &decomp, a, b, steps);
            acc.finish()
        };
        prop_assert_eq!(run(), run());
    }
}

#[test]
fn single_region_exchange_and_compute() {
    // Degenerate decomposition: one region, self-periodic ghosts.
    let got = run_config(6, RegionSpec::Count(1), 3, AccOptions::paper(), 3);
    let golden = heat::golden_run(init::hash_field(3), 6, 3, heat::DEFAULT_FAC);
    assert_eq!(got, golden);
}

#[test]
fn tight_memory_two_slots() {
    // 2 slots for 2 arrays x 4 regions: every step stages everything.
    let opts = AccOptions::paper().with_max_slots(2);
    let got = run_config(8, RegionSpec::Count(4), 3, opts, 9);
    let golden = heat::golden_run(init::hash_field(9), 8, 3, heat::DEFAULT_FAC);
    assert_eq!(got, golden);
}

#[test]
fn many_steps_accumulate_correctly() {
    let got = run_config(6, RegionSpec::Grid([2, 1, 2]), 25, AccOptions::paper(), 4);
    let golden = heat::golden_run(init::hash_field(4), 6, 25, heat::DEFAULT_FAC);
    assert_eq!(got, golden);
}

#[test]
fn full_exchange_mode_also_correct() {
    // Full (26-neighbour) exchange is a superset of what the 7-point stencil
    // needs; results must be identical.
    let n = 6i64;
    let steps = 3;
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Grid([2, 2, 1]),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Full, true);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Full, true);
    ua.fill_valid(init::hash_field(5));
    let mut acc = TileAcc::new(
        gpu_sim::GpuSystem::new(gpu_sim::MachineConfig::k40m()),
        AccOptions::paper(),
    );
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let last = drive_heat(&mut acc, &decomp, a, b, steps);
    acc.finish();
    let arr = if last == a { &ua } else { &ub };
    assert_eq!(
        arr.to_dense().unwrap(),
        heat::golden_run(init::hash_field(5), n, steps, heat::DEFAULT_FAC)
    );
}

#[test]
fn regression_lru_dirtyonly_tight_slots() {
    // Found by prop_heat_always_matches_golden: with LRU + dirty-only
    // write-back and two slots, a region could be evicted *clean* (no
    // write-back, hence no sync point) while its upload was still pending
    // in simulated time; a host-side ghost update then wrote the host
    // buffer eagerly and the pending upload observed data from its future.
    // acquire_host now waits for the last transfer touching the host
    // buffer. See TileAcc::host_slab_op.
    //
    // This is the directed re-pin of the one seed that used to live in
    // `heat_end_to_end.proptest-regressions` (cc 413dbbc8…, shrunk to
    // grid = [2, 2, 1], steps = 2, max_slots = Some(1), lru, dirty_only,
    // seed = 0). The raw shrink says Some(1), but the generator clamps
    // the slot budget to >= 2 (two registered arrays need two slots for
    // the GPU path), so the case proptest actually replayed is exactly
    // this configuration. With the bug fixed and the case pinned here,
    // the seed file was retired — see DESIGN.md's note on proptest
    // regression seeds.
    let mut opts = AccOptions::paper();
    opts.max_slots = Some(2);
    opts.policy = SlotPolicy::Lru;
    opts.writeback = WritebackPolicy::DirtyOnly;
    let got = run_config(8, RegionSpec::Grid([2, 2, 1]), 2, opts, 0);
    let golden = heat::golden_run(init::hash_field(0), 8, 2, heat::DEFAULT_FAC);
    assert_eq!(got, golden);
}

#[test]
fn out_of_order_tile_traversal_is_bitwise_identical() {
    // The caching/ordering protocol must make results independent of the
    // order tiles are submitted in (the paper's iterator is out-of-order).
    let n = 8i64;
    let steps = 3;
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(4),
    ));
    let run = |seed: Option<u64>| {
        let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        ua.fill_valid(init::hash_field(2));
        let mut acc = TileAcc::new(
            gpu_sim::GpuSystem::new(gpu_sim::MachineConfig::k40m()),
            AccOptions::paper().with_max_slots(3),
        );
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let tiles: Vec<tida::Tile> = match seed {
            None => tida::TileIter::new(&decomp, TileSpec::RegionSized).collect(),
            Some(s) => {
                tida::TileIter::new_out_of_order(&decomp, TileSpec::RegionSized, s).collect()
            }
        };
        let (mut src, mut dst) = (a, b);
        for _ in 0..steps {
            acc.fill_boundary(src).unwrap();
            for &t in &tiles {
                acc.compute2(
                    t,
                    dst,
                    src,
                    heat::cost(t.num_cells()),
                    "heat",
                    |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
                )
                .unwrap();
            }
            std::mem::swap(&mut src, &mut dst);
        }
        acc.sync_to_host(src).unwrap();
        acc.finish();
        let arr = if src == a { &ua } else { &ub };
        arr.to_dense().unwrap()
    };
    let golden = heat::golden_run(init::hash_field(2), n, steps, heat::DEFAULT_FAC);
    assert_eq!(run(None), golden);
    for seed in [1u64, 5, 9] {
        assert_eq!(run(Some(seed)), golden, "seed {seed}");
    }
}
