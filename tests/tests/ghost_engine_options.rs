//! The ghost-engine extensions (batched gathers, barrier-free exchange)
//! must be invisible to the physics — bitwise-identical results in every
//! combination, under full and limited memory — while changing the
//! schedule in the expected direction.

use kernels::{heat, init};
use proptest::prelude::*;
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, ArrayId, TileAcc};

fn heat_run(
    n: i64,
    regions: usize,
    steps: usize,
    opts: AccOptions,
    backed: bool,
) -> (Option<Vec<f64>>, gpu_sim::SimTime, u64) {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(regions),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, backed);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, backed);
    ua.fill_valid(init::hash_field(17));
    let mut acc = TileAcc::new(
        gpu_sim::GpuSystem::with_backing(gpu_sim::MachineConfig::k40m(), backed),
        opts,
    );
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let (mut src, mut dst): (ArrayId, ArrayId) = (a, b);
    for _ in 0..steps {
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                heat::cost(t.num_cells()),
                "heat",
                |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    let elapsed = acc.finish();
    let kernels = acc.gpu().stats_kernels();
    let arr = if src == a { &ua } else { &ub };
    (arr.to_dense(), elapsed, kernels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every combination of {barrier, batching} × slot budget is bitwise
    /// identical to the golden dense run.
    #[test]
    fn prop_ghost_options_bitwise_identical(
        barrier in any::<bool>(),
        batching in any::<bool>(),
        max_slots in proptest::option::of(2usize..6),
        steps in 1usize..4,
    ) {
        let n = 8i64;
        let mut opts = AccOptions::paper();
        opts.ghost_barrier = barrier;
        opts.ghost_batching = batching;
        opts.max_slots = max_slots;
        let (got, _, _) = heat_run(n, 4, steps, opts, true);
        let golden = heat::golden_run(init::hash_field(17), n, steps, heat::DEFAULT_FAC);
        prop_assert_eq!(got.unwrap(), golden);
    }
}

#[test]
fn batching_launches_fewer_kernels() {
    let mut batched = AccOptions::paper();
    batched.ghost_batching = true;
    let (_, _, k_batched) = heat_run(32, 8, 3, batched, false);
    let (_, _, k_plain) = heat_run(32, 8, 3, AccOptions::paper(), false);
    assert!(
        k_batched < k_plain,
        "batching must reduce launches: {k_batched} vs {k_plain}"
    );
}

#[test]
fn barrier_free_is_not_slower() {
    let mut free = AccOptions::paper();
    free.ghost_barrier = false;
    let (_, t_free, _) = heat_run(128, 16, 10, free, false);
    let (_, t_barrier, _) = heat_run(128, 16, 10, AccOptions::paper(), false);
    assert!(
        t_free <= t_barrier,
        "removing the barrier cannot slow the run: {t_free} vs {t_barrier}"
    );
}

#[test]
fn combined_extensions_fastest_ghost_engine() {
    let run = |barrier: bool, batching: bool| {
        let mut o = AccOptions::paper();
        o.ghost_barrier = barrier;
        o.ghost_batching = batching;
        heat_run(128, 16, 10, o, false).1
    };
    let paper = run(true, false);
    let both = run(false, true);
    assert!(
        both <= paper,
        "batched + barrier-free must not lose to the paper config: {both} vs {paper}"
    );
}

#[test]
fn barrier_free_hazard_free_under_eviction() {
    // The strongest safety claim: without the global barrier, under slot
    // pressure, no staging transfer may overlap a kernel on the same buffer.
    let n = 16i64;
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(4),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::hash_field(3));
    let mut gpu = gpu_sim::GpuSystem::new(gpu_sim::MachineConfig::k40m());
    gpu.set_hazard_checking(true);
    let mut opts = AccOptions::paper().with_max_slots(3);
    opts.ghost_barrier = false;
    opts.ghost_batching = true;
    let mut acc = TileAcc::new(gpu, opts);
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let (mut src, mut dst) = (a, b);
    for _ in 0..3 {
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                heat::cost(t.num_cells()),
                "heat",
                |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    acc.finish();

    let hazards = acc.gpu_mut().check_hazards();
    let is_transfer = |l: &str| l == "h2d" || l == "d2h";
    let real: Vec<_> = hazards
        .iter()
        .filter(|h| is_transfer(&h.first_label) || is_transfer(&h.second_label))
        .collect();
    assert!(real.is_empty(), "transfer/kernel overlap: {real:?}");
}
