//! Acceptance suite of the multi-tenant serving runtime.
//!
//! The claims under test, straight from the serving layer's contract:
//!
//! * an **open-loop flood** of ≥1000 queued jobs across ≥4 tenants is
//!   fully served — every job completes with its spec's golden digest,
//!   with zero cross-tenant buffer touches and zero scheduler hazards;
//! * **overlap across tenants** — sharing the platform between two
//!   tenants finishes sooner than the sum of their solo runs, because one
//!   tenant's transfers run under the other's kernels (the paper's
//!   overlap argument applied across tenants);
//! * **weighted fair share** — a tenant with a larger scheduler weight
//!   sees lower mean latency than an equally loaded weight-1 tenant;
//! * **typed failures** — a persistently dead device path surfaces as a
//!   typed error on the affected tenant after the job-retry budget, while
//!   co-tenants stay golden.

use std::collections::HashMap;

use gpu_sim::{FaultPlan, SimTime, TransferFaults};
use serving::{JobId, JobSpec, ServingConfig, ServingRuntime};

#[test]
fn open_loop_flood_of_1000_jobs_across_4_tenants_stays_golden() {
    const JOBS: usize = 1000;
    const TENANTS: u32 = 4;
    let mut rt = ServingRuntime::new(ServingConfig {
        max_queue_depth: JOBS + 8,
        per_tenant_quota: JOBS,
        max_active: 4,
        ..ServingConfig::default()
    });
    // Queue the full open-loop backlog up front, then serve it down.
    let mut golden: HashMap<JobId, u64> = HashMap::new();
    for i in 0..JOBS {
        let spec = JobSpec::new(i as u32 % TENANTS, 1, 32, 2, 10_000 + i as u64);
        let digest = spec.golden_digest();
        let id = rt.submit(spec).expect("queue is sized for the flood");
        golden.insert(id, digest);
    }
    assert_eq!(rt.queue_depth(), JOBS, "the whole flood is queued at once");
    rt.run_until_idle();

    let results = rt.results();
    assert_eq!(results.len(), JOBS, "every queued job produced a result");
    for r in results {
        assert_eq!(
            r.outcome,
            Ok(golden[&r.job]),
            "job {} of tenant {} must be golden",
            r.job,
            r.tenant
        );
        assert!(r.started.is_some() && r.finished >= r.submitted);
    }
    assert_eq!(rt.cross_tenant_touches(), 0, "tenants never share a buffer");
    assert_eq!(rt.hazard_counters().total(), 0, "no scheduler hazards");
    for t in 0..TENANTS {
        let st = rt.tenant_stats(t);
        assert_eq!(st.completed, (JOBS as u64) / TENANTS as u64);
        assert_eq!(st.failed + st.deadline_missed, 0);
    }
    // Latency distribution sanity: the flood is served, not starved.
    let mut lat: Vec<u64> = results.iter().map(|r| r.latency().as_ns()).collect();
    lat.sort_unstable();
    let p50 = lat[lat.len() / 2];
    let p99 = lat[lat.len() * 99 / 100];
    assert!(p50 > 0 && p99 >= p50, "p50={p50}ns p99={p99}ns");
}

fn makespan(specs: &[JobSpec], max_active: usize) -> SimTime {
    let mut rt = ServingRuntime::new(ServingConfig {
        max_active,
        ..ServingConfig::default()
    });
    for s in specs {
        rt.submit(s.clone()).unwrap();
    }
    rt.run_until_idle();
    for r in rt.results() {
        assert!(r.outcome.is_ok(), "clean run: {r:?}");
    }
    rt.now()
}

#[test]
fn sharing_the_platform_beats_serialized_solo_runs() {
    // Jobs sized so the copy and compute engines both carry real load
    // (512 KiB per direction, compute ≈ 2× one transfer): the regime
    // where running tenant A's H2D under tenant B's kernels pays.
    let specs: Vec<JobSpec> = (0..4)
        .map(|i| JobSpec::new(i % 2, 1, 65536, 12, 1 + i as u64))
        .collect();
    let serial: SimTime = specs
        .iter()
        .map(|s| makespan(std::slice::from_ref(s), 1))
        .fold(SimTime::ZERO, |acc, t| acc + t);
    let shared = makespan(&specs, 2);
    assert!(
        shared.as_ns() * 100 < serial.as_ns() * 85,
        "tenants sharing the platform must beat back-to-back solo runs \
         by at least 15%: shared={shared:?} serial={serial:?}"
    );
}

#[test]
fn weighted_fair_share_shifts_latency_toward_the_heavy_tenant() {
    let mut rt = ServingRuntime::new(ServingConfig {
        max_active: 2,
        ..ServingConfig::default()
    });
    rt.set_weight(0, 4);
    for i in 0..8u64 {
        rt.submit(JobSpec::new(0, 2, 256, 8, 600 + i)).unwrap();
        rt.submit(JobSpec::new(1, 2, 256, 8, 700 + i)).unwrap();
    }
    rt.run_until_idle();
    let mean = |tenant: u32| {
        let lats: Vec<u64> = rt
            .results()
            .iter()
            .filter(|r| r.tenant == tenant)
            .map(|r| r.latency().as_ns())
            .collect();
        assert_eq!(lats.len(), 8);
        lats.iter().sum::<u64>() / lats.len() as u64
    };
    let heavy = mean(0);
    let light = mean(1);
    assert!(
        heavy < light,
        "weight-4 tenant must see lower mean latency: heavy={heavy}ns light={light}ns"
    );
    for r in rt.results() {
        assert!(
            r.outcome.is_ok(),
            "weights change timing, not results: {r:?}"
        );
    }
}

#[test]
fn dead_device_path_fails_one_tenant_typed_while_cotenants_stay_golden() {
    // Tenant 3's H2D lane is dead from the first attempt; the fault plan
    // is scoped, so the co-tenants' transfers are exempt by construction
    // *and* their fault ordinals never advance.
    let plan = FaultPlan {
        h2d: TransferFaults {
            fail_after: Some(0),
            ..TransferFaults::default()
        },
        ..FaultPlan::none().with_seed(9)
    }
    .scoped_to(3);
    let mut rt = ServingRuntime::new(ServingConfig {
        max_active: 2,
        fault_plan: plan,
        ..ServingConfig::default()
    });
    let specs: Vec<JobSpec> = (0..4)
        .map(|t| JobSpec::new(t, 2, 64, 3, 800 + t as u64))
        .collect();
    for s in &specs {
        rt.submit(s.clone()).unwrap();
    }
    rt.run_until_idle();
    assert_eq!(rt.results().len(), 4);
    for r in rt.results() {
        let spec = specs.iter().find(|s| s.tenant == r.tenant).unwrap();
        if r.tenant == 3 {
            assert!(
                matches!(r.outcome, Err(tida_acc::AccError::TransferExhausted { .. })),
                "the dead lane must surface as a typed transfer failure: {r:?}"
            );
            assert_eq!(
                r.retries,
                rt.tenant_stats(3).retries as u32,
                "the job-level retry budget was spent before failing"
            );
            assert!(r.retries > 0);
        } else {
            assert_eq!(
                r.outcome,
                Ok(spec.golden_digest()),
                "co-tenant stays golden"
            );
        }
    }
    assert_eq!(rt.tenant_stats(3).failed, 1);
    assert_eq!(rt.cross_tenant_touches(), 0);
}
