//! Crash/hang recovery matrix: crash-consistent checkpoints crossed with
//! seeded faults, driven by the run supervisor.
//!
//! The contract under test:
//!
//! * **round trip** — a checkpoint taken mid-run, encoded to the versioned
//!   binary format and decoded back, restores into a fresh accelerator whose
//!   continuation is bit-identical to an uninterrupted run;
//! * **crash matrix** — for seeded (crash point × checkpoint interval)
//!   pairs, a supervised run killed by the crash fault completes after
//!   restore and the final grid is bit-identical to the fault-free golden
//!   solution;
//! * **torn / corrupt snapshots** — a snapshot with a flipped bit or a
//!   truncated tail is rejected by its section checksums and recovery falls
//!   back to the previous valid one;
//! * **hang detection** — a livelock-faulted stream (work accepted, never
//!   completed) is detected by the progress watchdog within one step and the
//!   run still completes, bit-identical, via restore + resume;
//! * **ghost exchange** — a crash landing *inside* `fill_boundary` leaves
//!   ghost cells stale; restoring the pre-exchange checkpoint and replaying
//!   the exchange reproduces the golden grid exactly.

use gpu_sim::{CrashFault, FaultPlan, GpuSystem, MachineConfig, SimTime};
use integration_tests::support::{self, heat_step, result_in_first};
use kernels::heat;
use proptest::prelude::*;
use std::cell::Cell;
use std::sync::Arc;
use tida::{tiles_of, Decomposition, RegionSpec, TileArray, TileSpec};
use tida_acc::{
    AccOptions, ArrayId, Checkpoint, CheckpointPolicy, CheckpointStore, RecoveryError,
    RecoveryOutcome, Supervisor, SupervisorConfig, TileAcc,
};

const N: i64 = 8;
const SEED: u64 = 7;

fn decomp() -> Arc<Decomposition> {
    support::heat_decomp(N, RegionSpec::Grid([2, 2, 1]))
}

fn arrays(d: &Arc<Decomposition>) -> (TileArray, TileArray) {
    support::heat_arrays(d, SEED)
}

fn golden(steps: u64) -> Vec<f64> {
    support::heat_golden(SEED, N, steps)
}

/// Run `steps` under the supervisor with `plan` armed on attempt 0 only;
/// return (final grid, outcome).
fn supervised_run(
    steps: u64,
    cfg: SupervisorConfig,
    plan: FaultPlan,
) -> (Vec<f64>, RecoveryOutcome) {
    let d = decomp();
    let (ua, ub) = arrays(&d);
    let mut sup = Supervisor::new(cfg);
    let ids: Cell<Option<(ArrayId, ArrayId)>> = Cell::new(None);
    let outcome = sup
        .run(
            steps,
            |attempt| {
                let p = if attempt == 0 {
                    plan.clone()
                } else {
                    FaultPlan::none()
                };
                let gpu = GpuSystem::new(MachineConfig::k40m().with_faults(p));
                let mut acc = TileAcc::new(gpu, AccOptions::paper());
                let a = acc.register(&ua);
                let b = acc.register(&ub);
                ids.set(Some((a, b)));
                acc
            },
            |acc, step| {
                let (a, b) = ids.get().expect("build ran first");
                heat_step(acc, &d, a, b, step)
            },
        )
        .expect("supervised run must complete");
    let grid = if result_in_first(steps) { &ua } else { &ub }
        .to_dense()
        .expect("backed run");
    (grid, outcome)
}

// ---------------------------------------------------------------------------
// Checkpoint round trip (main-lane smoke)
// ---------------------------------------------------------------------------

/// Encode → decode → restore into a *fresh* accelerator, continue, and the
/// final grid matches an uninterrupted run bit for bit.
#[test]
fn checkpoint_round_trip_resumes_bit_identical() {
    const STEPS: u64 = 6;
    const MID: u64 = 3;
    let d = decomp();

    let (ua, ub) = arrays(&d);
    let mut acc = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), AccOptions::paper());
    let (a, b) = (acc.register(&ua), acc.register(&ub));
    for s in 0..MID {
        heat_step(&mut acc, &d, a, b, s).unwrap();
    }
    let blob = acc.checkpoint(MID).unwrap().encode();

    // A fresh accelerator over fresh arrays: nothing survives but the blob.
    let (va, vb) = arrays(&d);
    va.fill_valid(|_| f64::NAN); // restore must overwrite every cell
    let mut acc2 = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), AccOptions::paper());
    let (a2, b2) = (acc2.register(&va), acc2.register(&vb));
    let ck = Checkpoint::decode(&blob).unwrap();
    assert_eq!(ck.step, MID);
    tida_acc::restore_into(&mut acc2, &ck).unwrap();
    for s in MID..STEPS {
        heat_step(&mut acc2, &d, a2, b2, s).unwrap();
    }
    let last = if result_in_first(STEPS) { a2 } else { b2 };
    acc2.sync_to_host(last).unwrap();
    let got = if result_in_first(STEPS) { &va } else { &vb }
        .to_dense()
        .unwrap();
    assert_eq!(got, golden(STEPS), "restored continuation diverged");
    assert!(acc2.stats().checkpoints_restored >= 1);
}

// ---------------------------------------------------------------------------
// Crash matrix: (crash point × checkpoint interval) — property test
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any seeded crash point, under any checkpoint cadence, yields a final
    /// grid bit-identical to the fault-free golden run.
    #[test]
    fn crash_matrix_is_bit_identical_to_golden(
        crash_at in 1u64..60,
        interval in 1u64..5,
    ) {
        const STEPS: u64 = 6;
        let cfg = SupervisorConfig {
            policy: CheckpointPolicy::every(interval).keep(4),
            ..SupervisorConfig::default()
        };
        let plan = FaultPlan::none().with_crash(CrashFault::at_transfer(crash_at));
        let (grid, outcome) = supervised_run(STEPS, cfg, plan);
        prop_assert_eq!(grid, golden(STEPS));
        // A high ordinal may lie past the run's last transfer (the crash
        // never fires); when it does fire, exactly one recovery happens.
        let c = outcome.counters;
        prop_assert!(c.crash_detections <= 1);
        prop_assert_eq!(c.checkpoints_restored, c.crash_detections);
        prop_assert_eq!(outcome.stats.checkpoints_restored, c.crash_detections);
        if crash_at <= 4 {
            // The first step alone enqueues four region uploads, so these
            // ordinals are reached under every checkpoint interval.
            prop_assert_eq!(c.crash_detections, 1);
            prop_assert!(c.recovery_time > SimTime::ZERO);
        }
    }
}

/// Exhaustive (crash point × checkpoint interval) sweep for the nightly CI
/// lane: every transfer ordinal a 6-step run can reach, under every
/// cadence, must recover bit-identically. Run with `-- --ignored`.
#[test]
#[ignore = "nightly crash-matrix sweep; run with -- --ignored"]
fn exhaustive_crash_matrix_is_bit_identical_to_golden() {
    const STEPS: u64 = 6;
    let mut fired = 0u32;
    for interval in 1u64..6 {
        for crash_at in 1u64..80 {
            let cfg = SupervisorConfig {
                policy: CheckpointPolicy::every(interval).keep(4),
                ..SupervisorConfig::default()
            };
            let plan = FaultPlan::none().with_crash(CrashFault::at_transfer(crash_at));
            let (grid, outcome) = supervised_run(STEPS, cfg, plan);
            assert_eq!(
                grid,
                golden(STEPS),
                "diverged at crash_at={crash_at} interval={interval}"
            );
            fired += outcome.counters.crash_detections as u32;
        }
    }
    assert!(fired > 100, "the sweep must actually exercise crashes");
}

/// A crash on a kernel launch (not a transfer) recovers the same way.
#[test]
fn kernel_crash_recovers_bit_identical() {
    const STEPS: u64 = 5;
    let cfg = SupervisorConfig {
        policy: CheckpointPolicy::every(2).keep(3),
        ..SupervisorConfig::default()
    };
    let plan = FaultPlan::none().with_crash(CrashFault::at_kernel(9));
    let (grid, outcome) = supervised_run(STEPS, cfg, plan);
    assert_eq!(grid, golden(STEPS));
    assert_eq!(outcome.counters.crash_detections, 1);
    assert_eq!(outcome.counters.hang_detections, 0);
}

/// A crash budget of zero surfaces a typed error, not a panic.
#[test]
fn retries_exhausted_is_a_typed_error() {
    let d = decomp();
    let (ua, ub) = arrays(&d);
    let mut sup = Supervisor::new(SupervisorConfig {
        max_recoveries: 0,
        ..SupervisorConfig::default()
    });
    let ids: Cell<Option<(ArrayId, ArrayId)>> = Cell::new(None);
    let err = sup
        .run(
            4,
            |_| {
                let plan = FaultPlan::none().with_crash(CrashFault::at_transfer(1));
                let mut acc = TileAcc::new(
                    GpuSystem::new(MachineConfig::k40m().with_faults(plan)),
                    AccOptions::paper(),
                );
                ids.set(Some((acc.register(&ua), acc.register(&ub))));
                acc
            },
            |acc, step| {
                let (a, b) = ids.get().unwrap();
                heat_step(acc, &d, a, b, step)
            },
        )
        .unwrap_err();
    assert_eq!(err, RecoveryError::RetriesExhausted);
    assert_eq!(sup.counters().crash_detections, 1);
}

// ---------------------------------------------------------------------------
// Torn / corrupt snapshots are rejected; recovery falls back
// ---------------------------------------------------------------------------

/// Run a clean prefix to stock the store, sabotage the newest snapshot, then
/// crash: recovery must reject the sabotaged snapshot (checksum / torn) and
/// fall back to the step-0 one — and still finish bit-identical to golden.
fn sabotaged_run(sabotage: impl FnOnce(&mut Supervisor)) {
    const STEPS: u64 = 6;
    let d = decomp();
    let (ua, ub) = arrays(&d);
    let mut sup = Supervisor::new(SupervisorConfig {
        policy: CheckpointPolicy::every(2).keep(4),
        ..SupervisorConfig::default()
    });
    let ids: Cell<Option<(ArrayId, ArrayId)>> = Cell::new(None);

    // Phase A: clean run of 3 steps leaves snapshots at steps 0 and 2.
    sup.run(
        3,
        |_| {
            let mut acc = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), AccOptions::paper());
            ids.set(Some((acc.register(&ua), acc.register(&ub))));
            acc
        },
        |acc, step| {
            let (a, b) = ids.get().unwrap();
            heat_step(acc, &d, a, b, step)
        },
    )
    .unwrap();
    assert_eq!(sup.snapshots(), 2);
    sabotage(&mut sup); // newest (step-2) snapshot is now invalid

    // Phase B: crash early, before this run's first interval checkpoint.
    // Recovery must skip the sabotaged step-2 snapshot, restore step 0
    // (the initial grid), then replay the whole run.
    let outcome = sup
        .run(
            STEPS,
            |attempt| {
                let plan = if attempt == 0 {
                    FaultPlan::none().with_crash(CrashFault::at_transfer(2))
                } else {
                    FaultPlan::none()
                };
                let mut acc = TileAcc::new(
                    GpuSystem::new(MachineConfig::k40m().with_faults(plan)),
                    AccOptions::paper(),
                );
                ids.set(Some((acc.register(&ua), acc.register(&ub))));
                acc
            },
            |acc, step| {
                let (a, b) = ids.get().unwrap();
                heat_step(acc, &d, a, b, step)
            },
        )
        .unwrap();
    assert!(
        outcome.counters.snapshots_rejected >= 1,
        "the sabotaged snapshot must be rejected, not restored"
    );
    assert_eq!(outcome.counters.checkpoints_restored, 1);
    let got = if result_in_first(STEPS) { &ua } else { &ub }
        .to_dense()
        .unwrap();
    assert_eq!(got, golden(STEPS));
}

#[test]
fn bitflipped_snapshot_is_rejected_and_run_recovers() {
    sabotaged_run(|sup| sup.corrupt_snapshot(0, 64));
}

#[test]
fn torn_snapshot_is_rejected_and_run_recovers() {
    sabotaged_run(|sup| sup.tear_snapshot(0, 0.6));
}

// ---------------------------------------------------------------------------
// Hang detection (pinned seed)
// ---------------------------------------------------------------------------

/// A livelocked stream — work accepted, never completed — does not error,
/// so only the progress watchdog can catch it. Pinned: exactly one hang is
/// declared, one restore happens, and the grid still matches golden.
#[test]
fn livelock_is_detected_and_recovered_within_deadline() {
    const STEPS: u64 = 5;
    let horizon = SimTime::from_ms(10_000u64);
    let cfg = SupervisorConfig {
        policy: CheckpointPolicy::every(2).keep(3),
        progress_deadline: SimTime::from_ms(100u64),
        max_recoveries: 3,
    };
    // Stream 0 wedges after its 2nd transfer enqueue; each wedged transfer
    // burns 10 s of virtual time against a 100 ms per-step deadline.
    let plan = FaultPlan::none().with_seed(42).with_livelock(0, 2, horizon);
    let (grid, outcome) = supervised_run(STEPS, cfg, plan);
    assert_eq!(grid, golden(STEPS));
    assert_eq!(outcome.counters.hang_detections, 1, "pinned for seed 42");
    assert_eq!(outcome.counters.checkpoints_restored, 1);
    assert_eq!(outcome.counters.crash_detections, 0);
    assert!(
        outcome.counters.recovery_time >= horizon,
        "the wedged step's burnt horizon is lost work"
    );
    assert_eq!(outcome.stats.hang_detections, 1);
    assert_eq!(outcome.stats.checkpoints_restored, 1);
}

// ---------------------------------------------------------------------------
// Ghost exchange across a checkpoint boundary
// ---------------------------------------------------------------------------

/// Crash *inside* a device-side `fill_boundary`: the interrupted exchange
/// leaves ghost cells stale. Restoring the pre-exchange checkpoint and
/// replaying from its step must be bit-identical to golden. Probes a window
/// of kernel-launch ordinals (ghost gathers are kernels) and requires that
/// at least one crash lands mid-exchange so the scenario is exercised.
#[test]
fn crash_during_ghost_exchange_replays_correctly() {
    const STEPS: u64 = 5;
    const MID: u64 = 2;
    let mut hit_exchange = 0u32;

    for crash_at in 1u64..60 {
        let d = decomp();
        let (ua, ub) = arrays(&d);
        let plan = FaultPlan::none().with_crash(CrashFault::at_kernel(crash_at));
        let mut acc = TileAcc::new(
            GpuSystem::new(MachineConfig::k40m().with_faults(plan)),
            AccOptions::paper(),
        );
        let (a, b) = (acc.register(&ua), acc.register(&ub));

        // Run to the checkpoint; a crash in the prefix is out of scope for
        // this probe (the crash matrix covers it).
        let mut crashed = false;
        for s in 0..MID {
            if heat_step(&mut acc, &d, a, b, s).is_err() {
                crashed = true;
                break;
            }
        }
        if crashed {
            continue;
        }
        let blob = match acc.checkpoint(MID) {
            Ok(ck) => ck.encode(),
            Err(_) => continue,
        };

        // Continue with the exchange separated from the stencil so the probe
        // can see exactly where the crash surfaced.
        let mut in_exchange = false;
        'run: for s in MID..STEPS {
            let (src, dst) = if s % 2 == 0 { (a, b) } else { (b, a) };
            match acc.fill_boundary(src) {
                Ok(()) => {}
                Err(_) => {
                    crashed = true;
                    in_exchange = true;
                    break 'run;
                }
            }
            for t in tiles_of(&d, TileSpec::RegionSized) {
                let r = acc.compute2(
                    t,
                    dst,
                    src,
                    heat::cost(t.num_cells()),
                    "heat",
                    |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
                );
                if r.is_err() {
                    crashed = true;
                    break 'run;
                }
            }
        }
        if !crashed {
            continue; // the ordinal was never reached post-checkpoint
        }
        if in_exchange {
            hit_exchange += 1;
        }

        // Fresh accelerator, same arrays; the restore overwrites the torn
        // mid-exchange state and the replay starts cleanly from step MID.
        let mut acc2 = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), AccOptions::paper());
        let (a2, b2) = (acc2.register(&ua), acc2.register(&ub));
        let ck = Checkpoint::decode(&blob).unwrap();
        tida_acc::restore_into(&mut acc2, &ck).unwrap();
        for s in MID..STEPS {
            heat_step(&mut acc2, &d, a2, b2, s).unwrap();
        }
        let last = if result_in_first(STEPS) { a2 } else { b2 };
        acc2.sync_to_host(last).unwrap();
        let got = if result_in_first(STEPS) { &ua } else { &ub }
            .to_dense()
            .unwrap();
        assert_eq!(
            got,
            golden(STEPS),
            "replayed exchange diverged for crash_at={crash_at}"
        );
    }
    assert!(
        hit_exchange >= 1,
        "no probed crash point landed inside fill_boundary"
    );
}

// ---------------------------------------------------------------------------
// On-disk store: torn files are rejected on rescan (cross-process restart)
// ---------------------------------------------------------------------------

#[test]
fn disk_store_rescan_rejects_torn_file_and_falls_back() {
    const STEPS: u64 = 6;
    const MID: u64 = 4;
    let dir = std::env::temp_dir().join(format!("tack-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let d = decomp();
    let (ua, ub) = arrays(&d);
    let mut acc = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), AccOptions::paper());
    let (a, b) = (acc.register(&ua), acc.register(&ub));
    let policy = CheckpointPolicy::every(2).keep(3).on_disk(&dir);
    let mut store = CheckpointStore::new(policy.clone());
    for s in 0..MID {
        if s % 2 == 0 {
            store.push(&acc.checkpoint(s).unwrap()).unwrap();
        }
        heat_step(&mut acc, &d, a, b, s).unwrap();
    }
    store.push(&acc.checkpoint(MID).unwrap()).unwrap();
    drop(store);
    drop(acc);

    // Simulate a torn write of the newest file, then a process restart.
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert_eq!(files.len(), 3);
    let newest = files.last().unwrap();
    let bytes = std::fs::read(newest).unwrap();
    std::fs::write(newest, &bytes[..bytes.len() / 2]).unwrap();

    let store = CheckpointStore::scan_dir(policy, &dir).unwrap();
    assert_eq!(store.len(), 3);
    let (ck, rejected) = store.latest_valid();
    let ck = ck.expect("an older snapshot must survive");
    assert_eq!(rejected, 1, "exactly the torn newest file is rejected");
    assert_eq!(ck.step, 2, "fallback is the previous on-disk snapshot");

    // Restore into a fresh process's accelerator and finish the run.
    let (va, vb) = arrays(&d);
    let mut acc2 = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), AccOptions::paper());
    let (a2, b2) = (acc2.register(&va), acc2.register(&vb));
    tida_acc::restore_into(&mut acc2, &ck).unwrap();
    for s in ck.step..STEPS {
        heat_step(&mut acc2, &d, a2, b2, s).unwrap();
    }
    let last = if result_in_first(STEPS) { a2 } else { b2 };
    acc2.sync_to_host(last).unwrap();
    let got = if result_in_first(STEPS) { &va } else { &vb }
        .to_dense()
        .unwrap();
    assert_eq!(got, golden(STEPS));
    let _ = std::fs::remove_dir_all(&dir);
}
