//! Cluster fault-matrix integration suite: seeded link faults and node
//! deaths crossed with the multi-node halo-exchange runtime.
//!
//! The contract under test, per fault class:
//!
//! * **link drops / reorders / flaps** — retransmits and delivery delays
//!   perturb *timing only*: the exchange protocol orders every consumer
//!   after the delivery op in stream order, so the final field is
//!   bit-identical to the failure-free golden and nothing is silently
//!   lost or reordered into wrong data;
//! * **node death** — the step surfaces `NodeLost`, failover restores the
//!   TACK snapshot and live-migrates the dead node's regions onto the
//!   survivors, the replay is bit-identical to a failure-free run, and
//!   the migration's restage traffic is accounted to the byte;
//! * **determinism** — the same plan replays to identical results, stats
//!   and simulated time, whatever the fault class.

use cluster::{Cluster, ClusterConfig, ClusterError, LinkFault, NetStats};
use gpu_sim::{DeviceDeath, FaultPlan, SimTime};
use kernels::{heat, init};
use proptest::prelude::*;
use std::sync::Arc;
use tida::{Decomposition, Domain, ExchangeMode, RegionSpec, TileArray};
use tida_acc::AccStats;

const N: i64 = 8;
const REGIONS: usize = 4;
const STEPS: u64 = 4;

/// CI's scheduled sweep sets `FAULT_SEED_OFFSET` to displace the seed
/// window the property tests explore; local and push/PR runs use offset 0.
fn seed_offset() -> u64 {
    std::env::var("FAULT_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn golden() -> Vec<f64> {
    heat::golden_run(init::hash_field(7), N, STEPS as usize, heat::DEFAULT_FAC)
}

struct ClusterRun {
    result: Vec<f64>,
    elapsed: SimTime,
    stats: AccStats,
    net: NetStats,
    recoveries: u64,
    hazards: u64,
}

fn decomp() -> Arc<Decomposition> {
    Arc::new(Decomposition::new(
        Domain::periodic_cube(N),
        RegionSpec::Count(REGIONS),
    ))
}

/// Drive `STEPS` heat steps on a `nodes`-node cluster under `plan`,
/// riding out node losses with the checkpoint/failover protocol. Any
/// error other than a node loss fails the run loudly — a faulted cluster
/// must never return a wrong answer quietly.
fn run_cluster(nodes: usize, plan: FaultPlan, hazard_checking: bool) -> ClusterRun {
    let d = decomp();
    let ua = TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::hash_field(7));

    let mut cl = Cluster::new(ClusterConfig::new(nodes).fault(plan));
    cl.set_hazard_checking(hazard_checking);
    let ids = [cl.register(&ua), cl.register(&ub)];
    let ck = cl.checkpoint(0).expect("pristine checkpoint");

    let mut s = 0u64;
    let mut recoveries = 0u64;
    while s < STEPS {
        let (src, dst) = (ids[(s % 2) as usize], ids[((s + 1) % 2) as usize]);
        match cl.step(dst, src, None, heat::cost, "heat", |d, s, _aux, bx| {
            heat::step_tile(d, s, &bx, heat::DEFAULT_FAC)
        }) {
            Ok(()) => s += 1,
            Err(ClusterError::NodeLost { .. }) | Err(ClusterError::Crashed { .. }) => {
                recoveries += 1;
                assert!(recoveries <= 8, "failover livelock");
                s = cl.failover(&ck).expect("survivors remain");
            }
            Err(e) => panic!("cluster run must degrade gracefully, got {e}"),
        }
    }
    cl.sync_to_host(ids[(s % 2) as usize]).expect("final drain");
    let elapsed = cl.finish();
    ClusterRun {
        result: if s % 2 == 0 { &ua } else { &ub }
            .to_dense()
            .expect("backed run"),
        elapsed,
        stats: cl.stats(),
        net: cl.net_stats(),
        recoveries,
        hazards: cl.hazard_total(),
    }
}

// ---------------------------------------------------------------------------
// (a) directed: each link-fault class injects, costs time, changes nothing
// ---------------------------------------------------------------------------

#[test]
fn link_drops_inject_and_cost_time_only() {
    let clean = run_cluster(2, FaultPlan::none(), false);
    assert_eq!(clean.result, golden());
    let plan = FaultPlan::none()
        .with_seed(9)
        .with_link_fault(LinkFault::on("*").drops(0.5));
    let run = run_cluster(2, plan, false);
    assert_eq!(run.result, golden(), "drops must never change data");
    assert!(run.net.drops > 0, "plan injected nothing: {:?}", run.net);
    assert!(
        run.elapsed >= clean.elapsed,
        "retransmits cost time: {} !>= {}",
        run.elapsed,
        clean.elapsed
    );
    assert_eq!(run.recoveries, 0, "drops are not node losses");
}

#[test]
fn link_reorders_inject_and_cost_time_only() {
    let plan = FaultPlan::none()
        .with_seed(13)
        .with_link_fault(LinkFault::on("*").reorders(0.5, SimTime::from_us(40)));
    let run = run_cluster(2, plan, false);
    assert_eq!(run.result, golden(), "reorders must never change data");
    assert!(run.net.reorders > 0, "plan injected nothing: {:?}", run.net);
    assert_eq!(run.recoveries, 0);
}

#[test]
fn link_flaps_inject_and_cost_time_only() {
    let clean = run_cluster(2, FaultPlan::none(), false);
    let plan = FaultPlan::none().with_seed(17).with_link_fault(
        LinkFault::on("*").flaps(
            SimTime::ZERO,
            SimTime::from_us(50),
            SimTime::from_us(25),
            0,
        ),
    );
    let run = run_cluster(2, plan, false);
    assert_eq!(run.result, golden(), "flaps must never change data");
    assert!(
        run.net.flap_stalls > 0,
        "plan injected nothing: {:?}",
        run.net
    );
    assert!(run.elapsed > clean.elapsed, "down windows stall the wire");
    assert_eq!(run.recoveries, 0);
}

// ---------------------------------------------------------------------------
// (b) directed: node death → failover → bit-identical replay, bytes booked
// ---------------------------------------------------------------------------

#[test]
fn node_death_failover_is_bit_identical_and_accounted() {
    let plan = FaultPlan::none()
        .with_seed(21)
        .with_device_death(DeviceDeath::at_transfer(1, 3));
    let run = run_cluster(2, plan, true);
    assert_eq!(run.result, golden(), "post-failover replay must be exact");
    assert!(run.recoveries >= 1, "the death must actually fire");
    assert_eq!(run.stats.checkpoints_restored, run.recoveries);
    assert!(run.stats.regions_migrated > 0);
    assert_eq!(run.hazards, 0, "recovery must stay HB-clean");

    // Restage accounting to the byte: every migrated region re-adopts one
    // grown host slab per registered array (two arrays here), and the
    // booked bytes are exactly those slabs.
    let grown_bytes = decomp().region_box(0).grow(1).num_cells() as u64 * 8;
    assert_eq!(
        run.stats.migration_restage_loads,
        2 * run.stats.regions_migrated,
        "two arrays per region"
    );
    assert_eq!(
        run.stats.migration_restage_bytes,
        run.stats.migration_restage_loads * grown_bytes,
        "migration restage bytes must match the re-adopted slabs"
    );
}

// ---------------------------------------------------------------------------
// (c) property: seeds × node counts × fault classes — never lost, never wrong
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum FaultClass {
    Clean,
    Drop,
    Reorder,
    Flap,
    NodeDeath,
}

fn fault_class() -> impl Strategy<Value = FaultClass> {
    prop_oneof![
        Just(FaultClass::Clean),
        Just(FaultClass::Drop),
        Just(FaultClass::Reorder),
        Just(FaultClass::Flap),
        Just(FaultClass::NodeDeath),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn prop_cluster_faults_never_lose_or_corrupt(
        seed in 0u64..10_000,
        nodes in 1usize..=4,
        class in fault_class(),
        death_after in 1u64..6,
    ) {
        // A node death needs a survivor to migrate onto.
        let nodes = match class {
            FaultClass::NodeDeath => nodes.max(2),
            _ => nodes,
        };
        let base = FaultPlan::none().with_seed(seed + seed_offset());
        let plan = match class {
            FaultClass::Clean => base,
            FaultClass::Drop => base.with_link_fault(LinkFault::on("*").drops(0.4)),
            FaultClass::Reorder => {
                base.with_link_fault(LinkFault::on("*").reorders(0.4, SimTime::from_us(25)))
            }
            FaultClass::Flap => base.with_link_fault(LinkFault::on("*").flaps(
                SimTime::ZERO,
                SimTime::from_us(80),
                SimTime::from_us(30),
                0,
            )),
            FaultClass::NodeDeath => base.with_device_death(DeviceDeath::at_transfer(
                (nodes - 1) as usize,
                death_after,
            )),
        };
        let run = run_cluster(nodes, plan, false);
        prop_assert_eq!(&run.result, &golden());
        if let FaultClass::NodeDeath = class {
            // The replay resets the stats to the snapshot's, so migration
            // accounting must still balance after however many failovers.
            if run.recoveries > 0 {
                prop_assert!(run.stats.regions_migrated > 0);
                prop_assert_eq!(
                    run.stats.migration_restage_loads,
                    2 * run.stats.regions_migrated
                );
            }
        } else {
            prop_assert_eq!(run.recoveries, 0, "link faults are not node losses");
        }
    }
}

// ---------------------------------------------------------------------------
// (d) determinism: one seeded plan of every class replays bit-identically
// ---------------------------------------------------------------------------

#[test]
fn faulted_runs_replay_deterministically() {
    let plans: Vec<(&str, FaultPlan)> = vec![
        (
            "drops",
            FaultPlan::none()
                .with_seed(33)
                .with_link_fault(LinkFault::on("*").drops(0.4)),
        ),
        (
            "reorders",
            FaultPlan::none()
                .with_seed(33)
                .with_link_fault(LinkFault::on("*").reorders(0.4, SimTime::from_us(25))),
        ),
        (
            "death",
            FaultPlan::none()
                .with_seed(33)
                .with_device_death(DeviceDeath::at_transfer(1, 2)),
        ),
    ];
    for (label, plan) in plans {
        let first = run_cluster(2, plan.clone(), false);
        let again = run_cluster(2, plan, false);
        assert_eq!(first.result, again.result, "{label}: results");
        assert_eq!(first.elapsed, again.elapsed, "{label}: simulated time");
        assert_eq!(first.stats, again.stats, "{label}: accelerator stats");
        assert_eq!(first.net.drops, again.net.drops, "{label}: drops");
        assert_eq!(first.net.reorders, again.net.reorders, "{label}: reorders");
        assert_eq!(first.recoveries, again.recoveries, "{label}: recoveries");
    }
}
