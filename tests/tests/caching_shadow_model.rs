//! Shadow-model test of the caching protocol (§IV-B-4).
//!
//! A random sequence of operations — GPU kernels, host kernels, host reads,
//! execution-mode flips — is applied both through `TileAcc` (with random
//! slot budgets and policies) and to a plain in-memory model. Whatever the
//! staging, eviction and write-back traffic, the observable data must match
//! the model exactly.

use proptest::prelude::*;
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, SlotPolicy, TileAcc, WritebackPolicy};

#[derive(Debug, Clone)]
enum Op {
    /// Run `x += k` over one region, in the current execution mode.
    AddKernel { region: usize, k: f64 },
    /// Flip between GPU and CPU execution.
    SetGpu(bool),
    /// Read one region's data on the host mid-run (forces residency sync).
    HostProbe { region: usize },
    /// Bring everything home.
    SyncAll,
}

fn arb_op(regions: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0..regions, 1i32..5).prop_map(|(r, k)| Op::AddKernel { region: r, k: k as f64 }),
        1 => any::<bool>().prop_map(Op::SetGpu),
        2 => (0..regions).prop_map(|r| Op::HostProbe { region: r }),
        1 => Just(Op::SyncAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_acc_matches_shadow_model(
        ops in proptest::collection::vec(arb_op(4), 1..30),
        max_slots in proptest::option::of(1usize..5),
        lru in any::<bool>(),
        dirty_only in any::<bool>(),
    ) {
        let n = 8i64;
        let regions = 4usize;
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(regions),
        ));
        let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, true);
        u.fill_valid(|iv| (iv.x() + 10 * iv.y() + 100 * iv.z()) as f64);

        let mut opts = AccOptions::paper();
        opts.max_slots = max_slots;
        opts.policy = if lru { SlotPolicy::Lru } else { SlotPolicy::StaticInterleaved };
        opts.writeback = if dirty_only { WritebackPolicy::DirtyOnly } else { WritebackPolicy::Always };
        let mut acc = TileAcc::new(
            gpu_sim::GpuSystem::new(gpu_sim::MachineConfig::k40m()),
            opts,
        );
        let a = acc.register(&u);
        let tiles = tiles_of(&decomp, TileSpec::RegionSized);

        // Shadow model: one f64 offset per region (the kernel adds a
        // constant, so the whole region shifts uniformly).
        let mut shadow = vec![0.0f64; regions];

        for op in &ops {
            match *op {
                Op::AddKernel { region, k } => {
                    acc.compute1(
                        tiles[region],
                        a,
                        gpu_sim::KernelCost::Bytes(tiles[region].num_cells() * 16),
                        "add",
                        move |v, bx| {
                            for iv in bx.iter() {
                                v.update(iv, |x| x + k);
                            }
                        },
                    )
                    .unwrap();
                    shadow[region] += k;
                }
                Op::SetGpu(on) => acc.set_gpu(on),
                Op::HostProbe { region } => {
                    // acquire through the public path: a host-mode no-op
                    // kernel forces the region back.
                    let was = acc.gpu_enabled();
                    acc.set_gpu(false);
                    acc.compute1(
                        tiles[region],
                        a,
                        gpu_sim::KernelCost::Flops(1.0),
                        "probe",
                        |_, _| {},
                    )
                    .unwrap();
                    acc.set_gpu(was);
                    let lo = decomp.region_box(region).lo();
                    let got = u.value(lo).unwrap();
                    let expect = (lo.x() + 10 * lo.y() + 100 * lo.z()) as f64 + shadow[region];
                    prop_assert!((got - expect).abs() < 1e-9,
                        "probe region {region}: got {got}, expected {expect}");
                }
                Op::SyncAll => acc.sync_to_host(a).unwrap(),
            }
        }

        acc.sync_to_host(a).unwrap();
        acc.finish();
        for (region, &offset) in shadow.iter().enumerate() {
            let bx = decomp.region_box(region);
            for iv in bx.iter() {
                let got = u.value(iv).unwrap();
                let expect = (iv.x() + 10 * iv.y() + 100 * iv.z()) as f64 + offset;
                prop_assert!((got - expect).abs() < 1e-9,
                    "region {region} cell {iv}: got {got}, expected {expect}");
            }
        }
    }
}
