//! Shadow-model test of the caching protocol (§IV-B-4).
//!
//! A random sequence of operations — GPU kernels, host kernels, host reads,
//! execution-mode flips — is applied both through `TileAcc` (with random
//! slot budgets and policies) and to a plain in-memory model. Whatever the
//! staging, eviction and write-back traffic, the observable data must match
//! the model exactly.

use proptest::prelude::*;
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, SlotPolicy, TileAcc, WritebackPolicy};

#[derive(Debug, Clone)]
enum Op {
    /// Run `x += k` over one region, in the current execution mode.
    AddKernel { region: usize, k: f64 },
    /// Flip between GPU and CPU execution.
    SetGpu(bool),
    /// Read one region's data on the host mid-run (forces residency sync).
    HostProbe { region: usize },
    /// Bring everything home.
    SyncAll,
    /// Warm one region onto the device (no data effect — the shadow model
    /// ignores it; only the observable values must stay intact).
    Prefetch { region: usize },
    /// Warm every region, capped at free-slot capacity.
    PrefetchAll,
    /// Declare a step boundary to the automatic overlap scheduler.
    BeginStep,
}

fn arb_op(regions: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0..regions, 1i32..5).prop_map(|(r, k)| Op::AddKernel { region: r, k: k as f64 }),
        1 => any::<bool>().prop_map(Op::SetGpu),
        2 => (0..regions).prop_map(|r| Op::HostProbe { region: r }),
        1 => Just(Op::SyncAll),
        2 => (0..regions).prop_map(|r| Op::Prefetch { region: r }),
        1 => Just(Op::PrefetchAll),
        2 => Just(Op::BeginStep),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_acc_matches_shadow_model(
        ops in proptest::collection::vec(arb_op(4), 1..30),
        max_slots in proptest::option::of(1usize..5),
        policy_idx in 0usize..3,
        lookahead in 0usize..3,
        dirty_only in any::<bool>(),
    ) {
        let n = 8i64;
        let regions = 4usize;
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(regions),
        ));
        let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, true);
        u.fill_valid(|iv| (iv.x() + 10 * iv.y() + 100 * iv.z()) as f64);

        let mut opts = AccOptions::paper();
        opts.max_slots = max_slots;
        opts.policy = match policy_idx {
            0 => SlotPolicy::StaticInterleaved,
            1 => SlotPolicy::Lru,
            _ => SlotPolicy::ReuseDistance,
        };
        opts.lookahead = lookahead;
        opts.writeback = if dirty_only { WritebackPolicy::DirtyOnly } else { WritebackPolicy::Always };
        let mut acc = TileAcc::new(
            gpu_sim::GpuSystem::new(gpu_sim::MachineConfig::k40m()),
            opts,
        );
        let a = acc.register(&u);
        let tiles = tiles_of(&decomp, TileSpec::RegionSized);

        // Shadow model: one f64 offset per region (the kernel adds a
        // constant, so the whole region shifts uniformly).
        let mut shadow = vec![0.0f64; regions];

        for op in &ops {
            match *op {
                Op::AddKernel { region, k } => {
                    acc.compute1(
                        tiles[region],
                        a,
                        gpu_sim::KernelCost::Bytes(tiles[region].num_cells() * 16),
                        "add",
                        move |v, bx| {
                            for iv in bx.iter() {
                                v.update(iv, |x| x + k);
                            }
                        },
                    )
                    .unwrap();
                    shadow[region] += k;
                }
                Op::SetGpu(on) => acc.set_gpu(on),
                Op::HostProbe { region } => {
                    // acquire through the public path: a host-mode no-op
                    // kernel forces the region back.
                    let was = acc.gpu_enabled();
                    acc.set_gpu(false);
                    acc.compute1(
                        tiles[region],
                        a,
                        gpu_sim::KernelCost::Flops(1.0),
                        "probe",
                        |_, _| {},
                    )
                    .unwrap();
                    acc.set_gpu(was);
                    let lo = decomp.region_box(region).lo();
                    let got = u.value(lo).unwrap();
                    let expect = (lo.x() + 10 * lo.y() + 100 * lo.z()) as f64 + shadow[region];
                    prop_assert!((got - expect).abs() < 1e-9,
                        "probe region {region}: got {got}, expected {expect}");
                }
                Op::SyncAll => acc.sync_to_host(a).unwrap(),
                Op::Prefetch { region } => acc.prefetch(a, region).unwrap(),
                Op::PrefetchAll => acc.prefetch_all(a).unwrap(),
                Op::BeginStep => acc.begin_step().unwrap(),
            }
        }

        acc.sync_to_host(a).unwrap();
        acc.finish();

        // Accounting invariants of the prefetch/hit split: a prefetched
        // region can be claimed as a prefetch hit at most once per staging,
        // and prefetch loads are a subset of all loads.
        let stats = acc.stats();
        prop_assert!(stats.prefetch_hits <= stats.prefetch_loads,
            "{} prefetch hits from {} prefetch loads", stats.prefetch_hits, stats.prefetch_loads);
        prop_assert!(stats.prefetch_loads <= stats.loads,
            "{} prefetch loads of {} loads", stats.prefetch_loads, stats.loads);

        for (region, &offset) in shadow.iter().enumerate() {
            let bx = decomp.region_box(region);
            for iv in bx.iter() {
                let got = u.value(iv).unwrap();
                let expect = (iv.x() + 10 * iv.y() + 100 * iv.z()) as f64 + offset;
                prop_assert!((got - expect).abs() < 1e-9,
                    "region {region} cell {iv}: got {got}, expected {expect}");
            }
        }
    }
}

/// Pin the hit-accounting split: a first use that finds its region resident
/// only because a prefetch warmed it is a `prefetch_hits`, not an organic
/// `hits` — and later uses of the same region count as ordinary hits again.
#[test]
fn prefetch_warmed_first_use_counts_separately_from_organic_hits() {
    let n = 8i64;
    let regions = 4usize;
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(regions),
    ));
    let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, true);
    u.fill_valid(|iv| (iv.x() + 10 * iv.y() + 100 * iv.z()) as f64);

    let mut acc = TileAcc::new(
        gpu_sim::GpuSystem::new(gpu_sim::MachineConfig::k40m()),
        AccOptions::paper(),
    );
    let a = acc.register(&u);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let add = |acc: &mut TileAcc, region: usize| {
        acc.compute1(
            tiles[region],
            a,
            gpu_sim::KernelCost::Bytes(tiles[region].num_cells() * 16),
            "add",
            |v, bx| {
                for iv in bx.iter() {
                    v.update(iv, |x| x + 1.0);
                }
            },
        )
        .unwrap();
    };

    acc.prefetch(a, 0).unwrap();
    let s = acc.stats();
    assert_eq!(
        (s.prefetch_loads, s.loads, s.hits),
        (1, 1, 0),
        "staged once"
    );

    add(&mut acc, 0); // warmed first use
    let s = acc.stats();
    assert_eq!(s.prefetch_hits, 1, "warm first use is a prefetch hit");
    assert_eq!(s.hits, 0, "...and must not inflate organic hits");

    add(&mut acc, 0); // second use: ordinary residency hit
    let s = acc.stats();
    assert_eq!((s.prefetch_hits, s.hits), (1, 1));

    add(&mut acc, 1); // unprefetched region: demand load, no hit of any kind
    let s = acc.stats();
    assert_eq!((s.loads, s.prefetch_loads), (2, 1));
    assert_eq!((s.prefetch_hits, s.hits), (1, 1));

    acc.prefetch(a, 1).unwrap(); // already resident: a no-op, not a load
    let s = acc.stats();
    assert_eq!((s.loads, s.prefetch_loads, s.prefetch_fallbacks), (2, 1, 0));

    acc.sync_to_host(a).unwrap();
    acc.finish();
}
