//! Integrity-matrix integration suite: silent-corruption defense crossed
//! with the stream-hazard detector.
//!
//! The contract under test, per corruption site:
//!
//! * **in-flight (H2D / D2H)** — a bit flip on the bus is caught by the
//!   end-to-end digest at completion and repaired by bounded retransmission
//!   from the authoritative side; the final grid is bit-identical to the
//!   golden run. Ghost-exchange transfers share the copy lanes, so the
//!   rate-driven plans corrupt them with the same probability as bulk
//!   region traffic.
//! * **resident, clean** — a DRAM strike on an unmodified slot is detected
//!   by the next consumer's verification and repaired from the host origin.
//! * **resident, dirty** — a strike on freshly written (not yet
//!   downloaded) data is unrepairable in place: it must surface as a typed
//!   [`AccError::Integrity`], never as a silently wrong grid. Under the
//!   PR 2 [`Supervisor`] the typed error triggers checkpoint fallback and
//!   the run still finishes bit-identical.
//!
//! Plus determinism: for a fixed seed, integrity accounting and deep-mode
//! hazard traces are reproducible run to run, and every clean workload
//! configuration is hazard-free under the deep detector.

use gpu_sim::{CorruptionFault, FaultPlan, GpuSystem, MachineConfig};
use integration_tests::support::{self, heat_step};
use proptest::prelude::*;
use std::sync::Arc;
use tida::{Decomposition, RegionSpec, TileArray};
use tida_acc::{
    AccError, AccOptions, ArrayId, CheckpointPolicy, SlotPolicy, Supervisor, SupervisorConfig,
    TileAcc, WritebackPolicy,
};

const N: i64 = 8;
const STEPS: u64 = 4;
const SEED: u64 = 7;

/// CI's scheduled hazard lane sets `FAULT_SEED_OFFSET` to displace the seed
/// window the property tests explore; local and push/PR runs use offset 0.
fn seed_offset() -> u64 {
    std::env::var("FAULT_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn golden() -> Vec<f64> {
    support::heat_golden(SEED, N, STEPS)
}

fn decomp() -> Arc<Decomposition> {
    support::heat_decomp(N, RegionSpec::Grid([2, 2, 1]))
}

fn arrays(decomp: &Arc<Decomposition>) -> (TileArray, TileArray) {
    support::heat_arrays(decomp, SEED)
}

fn result_array(a: &TileArray, b: &TileArray) -> Vec<f64> {
    support::result_array(a, b, STEPS)
}

/// One unsupervised run under `plan`. `Ok` carries the final grid and the
/// accelerator (for its counters); `Err` is whatever typed error the
/// runtime surfaced.
fn try_run(plan: FaultPlan, opts: AccOptions, deep: bool) -> Result<(Vec<f64>, TileAcc), AccError> {
    let d = decomp();
    let (ua, ub) = arrays(&d);
    let mut acc = TileAcc::new(
        GpuSystem::new(MachineConfig::k40m().with_faults(plan)),
        opts,
    );
    if deep {
        acc.gpu_mut().set_deep_hazard_tracking(true);
    }
    let (a, b) = (acc.register(&ua), acc.register(&ub));
    for s in 0..STEPS {
        heat_step(&mut acc, &d, a, b, s)?;
    }
    acc.sync_to_host(if STEPS.is_multiple_of(2) { a } else { b })?;
    acc.finish();
    Ok((result_array(&ua, &ub), acc))
}

/// Supervised run: `plan` is armed on attempt 0 only, rebuilds run clean —
/// the checkpoint-fallback path for unrepairable corruption.
fn run_supervised(plan: FaultPlan) -> (Vec<f64>, gpu_sim::RecoveryCounters) {
    let d = decomp();
    let (ua, ub) = arrays(&d);
    let cfg = SupervisorConfig {
        policy: CheckpointPolicy::every(2).keep(3),
        ..SupervisorConfig::default()
    };
    let mut sup = Supervisor::new(cfg);
    let ids: std::cell::Cell<Option<(ArrayId, ArrayId)>> = std::cell::Cell::new(None);
    let dd = d.clone();
    let outcome = sup
        .run(
            STEPS,
            |attempt| {
                let p = if attempt == 0 {
                    plan.clone()
                } else {
                    FaultPlan::none()
                };
                let mut acc = TileAcc::new(
                    GpuSystem::new(MachineConfig::k40m().with_faults(p)),
                    AccOptions::paper(),
                );
                ids.set(Some((acc.register(&ua), acc.register(&ub))));
                acc
            },
            |acc, step| {
                let (a, b) = ids.get().expect("build ran first");
                heat_step(acc, &dd, a, b, step)
            },
        )
        .expect("supervised run completes through the corruption");
    (result_array(&ua, &ub), outcome.counters)
}

fn in_flight(seed: u64, h2d: f64, d2h: f64) -> FaultPlan {
    FaultPlan::none()
        .with_seed(seed)
        .with_corruption(CorruptionFault {
            h2d_rate: h2d,
            d2h_rate: d2h,
            ..CorruptionFault::default()
        })
}

fn strike_clean(seed: u64, ordinal: u64) -> FaultPlan {
    FaultPlan::none()
        .with_seed(seed)
        .with_corruption(CorruptionFault {
            strike_after_h2d: vec![ordinal],
            ..CorruptionFault::default()
        })
}

fn strike_dirty(seed: u64, ordinal: u64) -> FaultPlan {
    FaultPlan::none()
        .with_seed(seed)
        .with_corruption(CorruptionFault {
            strike_after_kernel: vec![ordinal],
            ..CorruptionFault::default()
        })
}

// ---------------------------------------------------------------------------
// (a) clean run: digests verify, detector stays silent, grid is golden
// ---------------------------------------------------------------------------

#[test]
fn clean_run_verifies_digests_and_is_hazard_free() {
    let (grid, acc) = try_run(FaultPlan::none(), AccOptions::paper(), true).expect("clean run");
    let i = acc.gpu().integrity_stats();
    assert!(i.verified > 0, "digest verification must be exercised");
    assert_eq!(i.detected, 0);
    assert_eq!(i.unrepaired, 0);
    assert_eq!(acc.gpu().hazard_counters().total(), 0);
    assert!(acc.gpu().hazard_records().is_empty());
    assert_eq!(grid, golden());
}

/// The overlap engine stays hazard-free across its whole configuration
/// space — the always-on oracle for every example workload: tiny slot pools
/// (forcing eviction + conflict traffic), both writeback policies, device
/// and host ghost paths, barrier-free and batched exchanges.
#[test]
fn clean_workload_configurations_are_hazard_free() {
    let barrier_free = || {
        let mut o = AccOptions::paper()
            .with_policy(SlotPolicy::Lru)
            .with_writeback(WritebackPolicy::DirtyOnly);
        o.ghost_barrier = false;
        o
    };
    let mut host_ghost = AccOptions::paper();
    host_ghost.ghost_on_device = false;
    let mut batched = barrier_free();
    batched.ghost_batching = true;
    let configs: Vec<(&str, AccOptions)> = vec![
        ("paper", AccOptions::paper()),
        ("barrier-free lru", barrier_free()),
        ("two-slot eviction", AccOptions::paper().with_max_slots(2)),
        ("three-slot barrier-free", barrier_free().with_max_slots(3)),
        ("host ghost path", host_ghost),
        ("batched gather", batched),
    ];

    for (name, opts) in configs {
        let (grid, acc) = try_run(FaultPlan::none(), opts, true).expect(name);
        let hz = acc.gpu().hazard_counters();
        assert_eq!(
            hz.total(),
            0,
            "config '{name}' raised hazards: {hz:?}\nrecords: {:#?}",
            acc.gpu().hazard_records()
        );
        assert_eq!(grid, golden(), "config '{name}' diverged from golden");
    }
}

// ---------------------------------------------------------------------------
// (b) in-flight corruption: repaired bit-identical or typed, never silent
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The zero-silent-wrong-answer property: any rate-driven in-flight
    /// corruption plan either finishes bit-identical to golden (all flips
    /// repaired by retransmission) or surfaces a typed integrity error
    /// (retransmit budget exhausted). Nothing else is acceptable.
    #[test]
    fn prop_in_flight_corruption_never_silently_wrong(
        seed in 0u64..10_000,
        h2d_rate in 0.0f64..0.2,
        d2h_rate in 0.0f64..0.2,
    ) {
        let plan = in_flight(seed + seed_offset(), h2d_rate, d2h_rate);
        match try_run(plan, AccOptions::paper(), false) {
            Ok((grid, acc)) => {
                let i = acc.gpu().integrity_stats();
                prop_assert_eq!(i.unrepaired, 0, "completed run left corruption behind");
                // `detected` counts every corrupted attempt (a retransmit can
                // be struck again); `repaired` counts transfers that ended
                // clean, so it never exceeds detections.
                prop_assert!(i.repaired <= i.detected);
                prop_assert_eq!(grid, golden());
            }
            Err(AccError::Integrity { .. }) => {} // typed, loud: acceptable
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// A resident strike on clean data is always repairable from the host
    /// origin: the run completes and the grid is golden, whatever ordinal
    /// the strike lands on (including past the end of the program).
    #[test]
    fn prop_resident_clean_strike_repairs_from_origin(
        seed in 0u64..10_000,
        ordinal in 0u64..32,
    ) {
        let plan = strike_clean(seed + seed_offset(), ordinal);
        let (grid, acc) = try_run(plan, AccOptions::paper(), false)
            .expect("clean-slot strikes never kill a run");
        let i = acc.gpu().integrity_stats();
        prop_assert_eq!(i.unrepaired, 0);
        prop_assert_eq!(grid, golden());
    }

    /// A resident strike on dirty data (host copy stale) is unrepairable in
    /// place: the run either never consumes the poisoned slot again (strike
    /// past the end, or the slab fully overwritten before any read — grid
    /// still golden) or surfaces the typed error. Never a wrong grid.
    #[test]
    fn prop_resident_dirty_strike_is_typed_or_harmless(
        seed in 0u64..10_000,
        ordinal in 0u64..32,
    ) {
        let plan = strike_dirty(seed + seed_offset(), ordinal);
        match try_run(plan, AccOptions::paper(), false) {
            Ok((grid, _)) => prop_assert_eq!(grid, golden()),
            Err(AccError::Integrity { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// Under the supervisor the whole corruption matrix — both in-flight
    /// directions, clean strikes, dirty strikes — recovers to a
    /// bit-identical grid: repairable damage is fixed in place, and
    /// unrepairable damage falls back to the newest valid checkpoint.
    #[test]
    fn prop_supervised_matrix_recovers_bit_identical(
        seed in 0u64..10_000,
        site in 0usize..4,
        ordinal in 0u64..24,
        rate in 0.02f64..0.15,
    ) {
        let s = seed + seed_offset();
        let plan = match site {
            0 => in_flight(s, rate, 0.0),
            1 => in_flight(s, 0.0, rate),
            2 => strike_clean(s, ordinal),
            _ => strike_dirty(s, ordinal),
        };
        let (grid, _) = run_supervised(plan);
        prop_assert_eq!(grid, golden());
    }
}

// ---------------------------------------------------------------------------
// (c) the dirty-strike checkpoint fallback, pinned for one seed
// ---------------------------------------------------------------------------

#[test]
fn dirty_strike_recovers_through_checkpoint_and_counts() {
    // Ordinal 9 lands on a mid-run kernel output that a later step reads:
    // the poison must be detected, surfaced, and recovered from.
    let (grid, c) = run_supervised(strike_dirty(SEED, 9));
    assert!(
        c.corruption_detections > 0,
        "the dirty strike must surface as a typed integrity error: {c:?}"
    );
    assert!(c.checkpoints_restored > 0, "{c:?}");
    assert_eq!(grid, golden());
}

#[test]
fn unsupervised_dirty_strike_is_a_typed_error() {
    match try_run(strike_dirty(SEED, 9), AccOptions::paper(), false) {
        Err(AccError::Integrity { region, kind }) => {
            // The typed error names a concrete region and a concrete kind —
            // enough for a caller to decide what to restore.
            let msg = AccError::Integrity { region, kind }.to_string();
            assert!(msg.contains("unrepairable corruption"), "{msg}");
        }
        Ok(_) => panic!("the seeded dirty strike must not complete silently"),
        Err(e) => panic!("unexpected error class: {e}"),
    }
}

// ---------------------------------------------------------------------------
// (d) determinism: fixed seed => identical accounting and deep traces
// ---------------------------------------------------------------------------

#[test]
fn integrity_accounting_is_deterministic_for_fixed_seed() {
    let run = |deep| try_run(in_flight(SEED, 0.35, 0.35), AccOptions::paper(), deep);
    let (g1, a1) = run(true).expect("seeded run");
    let (g2, a2) = run(true).expect("seeded run");
    assert_eq!(g1, g2);
    let (i1, i2) = (a1.gpu().integrity_stats(), a2.gpu().integrity_stats());
    assert_eq!(i1.verified, i2.verified);
    assert_eq!(i1.detected, i2.detected);
    assert_eq!(i1.repaired, i2.repaired);
    assert!(i1.detected > 0, "seed 7 at 35% must inject something");
    // Deep mode observed the same (hazard-free) schedule both times.
    let t1 = a1.gpu().hazard_trace();
    let t2 = a2.gpu().hazard_trace();
    assert_eq!(format!("{t1:?}"), format!("{t2:?}"));
}

#[test]
fn deep_hazard_trace_is_deterministic_for_fixed_program() {
    use gpu_sim::{HostMemKind, KernelCost, KernelLaunch, SimTime};
    // A deliberately racy two-stream program producing several hazards.
    let misordered = || {
        let mut g = GpuSystem::new(MachineConfig::k40m());
        g.set_deep_hazard_tracking(true);
        let h = g.malloc_host(512, HostMemKind::Pinned);
        let d0 = g.malloc_device(512).unwrap();
        let d1 = g.malloc_device(512).unwrap();
        let (s0, s1) = (g.create_stream(), g.create_stream());
        g.memcpy_h2d_async(d0, 0, h, 0, 512, s0);
        g.launch_kernel(
            s1,
            KernelLaunch::new("race-read", KernelCost::Fixed(SimTime::from_us(5))).reads(d0.into()),
        );
        g.memcpy_h2d_async(d1, 0, h, 0, 512, s0);
        g.launch_kernel(
            s1,
            KernelLaunch::new("race-write", KernelCost::Fixed(SimTime::from_us(5)))
                .writes(d1.into()),
        );
        g.finish();
        g
    };
    let (g1, g2) = (misordered(), misordered());
    let (c1, c2) = (g1.hazard_counters(), g2.hazard_counters());
    assert_eq!(c1, c2);
    assert!(c1.any(), "the racy program must raise hazards");
    assert_eq!(
        format!("{:?}", g1.hazard_records()),
        format!("{:?}", g2.hazard_records()),
        "deep-mode records must be replayable"
    );
    let (t1, t2) = (g1.hazard_trace(), g2.hazard_trace());
    assert_eq!(t1.spans.len() as u64, c1.total());
    assert_eq!(format!("{t1:?}"), format!("{t2:?}"));
}
