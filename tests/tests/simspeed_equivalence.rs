//! Equivalence properties behind the simulator hot-path overhaul.
//!
//! The overhaul's contract is that trace levels change only what is
//! *recorded*, never what is *simulated*, and that the parallel multi-run
//! driver is a pure fan-out. Concretely:
//!
//! * `TraceLevel::Off` and `Counters` runs are bit-identical to `Full`
//!   runs — same makespan, same AccStats, same hazard counters, same
//!   decision points, and (on backed runs) the same final grid data.
//! * `desim::ParallelDriver` produces exactly the outcomes sequential
//!   execution produces, run for run.

use desim::ParallelDriver;
use gpu_sim::{GpuSystem, MachineConfig, TraceLevel};
use kernels::{heat, init};
use proptest::prelude::*;
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, AccStats, SlotPolicy, TileAcc};
use tida_bench::simspeed::{run_heat, HeatParams, RunOutcome};

const LEVELS: [TraceLevel; 3] = [TraceLevel::Off, TraceLevel::Counters, TraceLevel::Full];

/// Everything observable from one backed heat run: the final grid plus the
/// counters the timing-only equivalence checks (`data` is the digest — any
/// effect misapplied or skipped under a cheaper trace level changes it).
#[derive(Debug, Clone, PartialEq)]
struct BackedOutcome {
    data: Vec<f64>,
    makespan_ns: u64,
    stats: AccStats,
    hazard_total: u64,
}

fn backed_run(level: TraceLevel, n: i64, steps: usize, slots: usize, seed: u64) -> BackedOutcome {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(8),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::hash_field(seed));
    let mut gpu = GpuSystem::new(MachineConfig::k40m());
    gpu.set_trace_level(level);
    let mut opts = AccOptions::paper()
        .with_policy(SlotPolicy::ReuseDistance)
        .with_lookahead(2);
    opts.max_slots = Some(slots);
    let mut acc = TileAcc::new(gpu, opts);
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let (mut src, mut dst) = (a, b);
    for _ in 0..steps {
        acc.begin_step().unwrap();
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                heat::cost(t.num_cells()),
                "heat",
                |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    let makespan = acc.gpu_mut().finish();
    let stats = acc.stats();
    let hazard_total = acc.gpu().hazard_counters().total();
    let arr = if src == a { &ua } else { &ub };
    BackedOutcome {
        data: arr.to_dense().expect("backed run"),
        makespan_ns: makespan.as_ns(),
        stats,
        hazard_total,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Timing-only runs (the regime simspeed, schedcheck and the fault
    /// sweeps live in): every trace level yields the same RunOutcome.
    #[test]
    fn prop_trace_levels_identical_timing_only(
        steps in 2usize..5,
        slots in 3usize..8,
        lookahead in 0usize..3,
    ) {
        let p = HeatParams { n: 16, steps, regions: 8, slots, lookahead };
        let full = run_heat(p, TraceLevel::Full);
        for level in [TraceLevel::Off, TraceLevel::Counters] {
            prop_assert_eq!(&run_heat(p, level), &full,
                "trace level {:?} diverged from Full", level);
        }
    }

    /// Backed runs: the final grid (the data digest), makespan, AccStats
    /// and hazard counters are bit-identical across trace levels, and the
    /// grid matches the dense golden solution — cheaper trace levels must
    /// not skip or reorder any data effect.
    #[test]
    fn prop_trace_levels_identical_backed(
        steps in 1usize..4,
        slots in 3usize..6,
        seed in 0u64..1000,
    ) {
        let n = 8i64;
        let full = backed_run(TraceLevel::Full, n, steps, slots, seed);
        let golden = heat::golden_run(init::hash_field(seed), n, steps, heat::DEFAULT_FAC);
        prop_assert_eq!(&full.data, &golden);
        for level in [TraceLevel::Off, TraceLevel::Counters] {
            prop_assert_eq!(&backed_run(level, n, steps, slots, seed), &full,
                "trace level {:?} diverged from Full", level);
        }
    }

    /// The parallel driver is a pure fan-out: N workloads fanned over
    /// threads produce exactly the outcomes sequential execution produces,
    /// in order, at every trace level.
    #[test]
    fn prop_parallel_driver_matches_sequential(
        base_steps in 2usize..4,
        threads in 2usize..5,
        level_idx in 0usize..3,
    ) {
        let level = LEVELS[level_idx];
        let params: Vec<HeatParams> = (0..6)
            .map(|i| HeatParams {
                n: 16,
                steps: base_steps + (i % 3),
                regions: 8,
                slots: 5 + (i % 2),
                lookahead: i % 3,
            })
            .collect();
        let sequential: Vec<RunOutcome> =
            params.iter().map(|&p| run_heat(p, level)).collect();
        let parallel = ParallelDriver::new(threads).run(
            params
                .iter()
                .map(|&p| move || run_heat(p, level))
                .collect::<Vec<_>>(),
        );
        prop_assert_eq!(parallel, sequential);
    }
}
