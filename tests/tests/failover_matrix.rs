//! Failover-matrix integration suite: device-scoped failure modes in
//! `gpu-sim` crossed with `MultiAcc` live region migration and the serving
//! runtime's evacuation path.
//!
//! The contract under test:
//!
//! * **transient / dead-lane × multi-device** — the existing fault matrix
//!   (previously exercised only on the single-device `TileAcc`) holds for
//!   `MultiAcc` cross-device ghost exchange: transients are retried to a
//!   golden result, a dead D2H lane is salvaged, a dead H2D lane surfaces
//!   a typed error — never a panic or silent corruption;
//! * **device death** — a device dying at *any* point of a checkpointed
//!   multi-device heat run is survived by migrating its regions onto the
//!   survivors and replaying from the latest snapshot, bit-identical to a
//!   failure-free run of the same driver, with the migration re-stage
//!   traffic accounted separately from organic loads;
//! * **serving** — an open-loop flood over a multi-device serving runtime
//!   loses zero admitted jobs to a mid-flood device death; every job ends
//!   golden or typed, never silent.
//!
//! `FAULT_SEED_OFFSET` displaces the seed window the property tests
//! explore, as in `fault_matrix.rs`.

use gpu_sim::{DeviceDeath, FaultPlan, GpuSystem, MachineConfig, TransferFaults};
use kernels::{heat, init};
use proptest::prelude::*;
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccError, ArrayId, MultiAcc};

const N: i64 = 8;

fn seed_offset() -> u64 {
    std::env::var("FAULT_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn setup(field_seed: u64, regions: usize) -> (Arc<Decomposition>, TileArray, TileArray) {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(N),
        RegionSpec::Count(regions),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::hash_field(field_seed));
    (decomp, ua, ub)
}

/// Checkpointed heat driver with device-loss failover: on
/// [`AccError::DeviceLost`] the run migrates the lost device's regions
/// onto the survivors, restores the latest snapshot, and replays.
/// Identical in structure to the driver the `MultiAcc` unit tests use, so
/// the golden comparison runs through the same schedule.
fn heat_drive_failover(
    acc: &mut MultiAcc,
    decomp: &Arc<Decomposition>,
    a: ArrayId,
    b: ArrayId,
    steps: usize,
    ck_interval: usize,
) -> ArrayId {
    let tiles = tiles_of(decomp, TileSpec::RegionSized);
    let mut ck = acc.checkpoint(0).unwrap();
    let mut step = 0usize;
    while step < steps {
        let (src, dst) = if step.is_multiple_of(2) {
            (a, b)
        } else {
            (b, a)
        };
        let result: Result<(), AccError> = (|| {
            acc.fill_boundary(src)?;
            for &t in &tiles {
                acc.compute2(
                    t,
                    dst,
                    src,
                    heat::cost(t.num_cells()),
                    "heat",
                    |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
                )?;
            }
            Ok(())
        })();
        match result {
            Ok(()) => {}
            Err(AccError::DeviceLost { .. }) => {
                step = acc.failover(&ck).unwrap() as usize;
                continue;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        step += 1;
        if step.is_multiple_of(ck_interval) || step == steps {
            match acc.checkpoint(step as u64) {
                Ok(c) => ck = c,
                Err(AccError::DeviceLost { .. }) => {
                    step = acc.failover(&ck).unwrap() as usize;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
    if steps.is_multiple_of(2) {
        a
    } else {
        b
    }
}

fn dense_of(last: ArrayId, a: ArrayId, ua: &TileArray, ub: &TileArray) -> Vec<f64> {
    if last == a {
        ua.to_dense().unwrap()
    } else {
        ub.to_dense().unwrap()
    }
}

// ---------------------------------------------------------------------------
// (a) transient faults × cross-device ghost exchange
// ---------------------------------------------------------------------------

#[test]
fn multiacc_ghost_exchange_absorbs_transient_faults() {
    let transient = |rate: f64| TransferFaults {
        transient_rate: rate,
        ..TransferFaults::default()
    };
    let plan = FaultPlan {
        h2d: transient(0.3),
        d2h: transient(0.3),
        ..FaultPlan::none().with_seed(19 + seed_offset())
    };
    let (decomp, ua, ub) = setup(51, 4);
    let mut acc = MultiAcc::new(GpuSystem::multi(
        MachineConfig::k40m().with_faults(plan),
        2,
        true,
    ));
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    // ck_interval 2 keeps regions resident across a step boundary so the
    // cross-device ghost/P2P path is actually exercised between snapshots.
    let last = heat_drive_failover(&mut acc, &decomp, a, b, 4, 2);
    acc.finish();
    assert_eq!(
        dense_of(last, a, &ua, &ub),
        heat::golden_run(init::hash_field(51), N, 4, heat::DEFAULT_FAC),
        "retries must absorb transients across devices"
    );
    assert!(
        acc.gpu().stats_bytes_p2p() > 0,
        "cross-device halos exercised the P2P path"
    );
    let fs = acc.gpu().fault_stats();
    assert!(fs.h2d_faults + fs.d2h_faults > 0, "plan injected nothing");
    assert!(acc.stats().transfer_retries > 0);
    assert_eq!(fs.device_deaths, 0, "transients must not kill a device");
    assert_eq!(acc.gpu().hazard_counters().total(), 0);
}

// ---------------------------------------------------------------------------
// (b) dead lanes × multi-device
// ---------------------------------------------------------------------------

#[test]
fn multiacc_dead_d2h_lane_salvages_cross_device_state() {
    // The D2H lane dies after two successful downloads: dirty state sits on
    // both devices and must come home over the fault-exempt salvage path.
    let plan = FaultPlan {
        d2h: TransferFaults {
            fail_after: Some(2),
            ..TransferFaults::default()
        },
        ..FaultPlan::none().with_seed(7)
    };
    let (decomp, ua, ub) = setup(52, 4);
    let mut acc = MultiAcc::new(GpuSystem::multi(
        MachineConfig::k40m().with_faults(plan),
        2,
        true,
    ));
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let last = heat_drive_failover(&mut acc, &decomp, a, b, 2, 2);
    acc.finish();
    assert_eq!(
        dense_of(last, a, &ua, &ub),
        heat::golden_run(init::hash_field(52), N, 2, heat::DEFAULT_FAC),
        "salvage must rescue the computed bytes"
    );
    let st = acc.stats();
    assert!(st.salvaged_regions > 0, "{st}");
    assert!(st.transfer_retries > 0, "retries precede giving up: {st}");
    assert!(acc.gpu().fault_stats().salvages > 0);
}

#[test]
fn multiacc_dead_h2d_lane_surfaces_typed_exhaustion() {
    // Uploads never succeed: the run must fail with a *typed* error after
    // the retry budget — never a panic, never silent corruption.
    let plan = FaultPlan {
        h2d: TransferFaults {
            fail_after: Some(0),
            ..TransferFaults::default()
        },
        ..FaultPlan::none().with_seed(7)
    };
    let (decomp, ua, ub) = setup(53, 4);
    let mut acc = MultiAcc::new(GpuSystem::multi(
        MachineConfig::k40m().with_faults(plan),
        2,
        true,
    ));
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let err = (|| -> Result<(), AccError> {
        acc.fill_boundary(a)?;
        for &t in &tiles {
            acc.compute2(t, b, a, heat::cost(t.num_cells()), "heat", |d, s, bx| {
                heat::step_tile(d, s, &bx, heat::DEFAULT_FAC)
            })?;
        }
        acc.sync_to_host(b)?;
        Ok(())
    })()
    .expect_err("a dead H2D lane cannot produce a result");
    assert!(
        matches!(err, AccError::TransferExhausted { .. }),
        "typed exhaustion, got {err:?}"
    );
    assert!(acc.stats().transfer_retries > 0);
    let _ = ub; // result array never materialized — the error came first
}

// ---------------------------------------------------------------------------
// (c) property: device death at any point is bit-identical after failover
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_device_death_fails_over_bit_identical(
        field_seed in 0u64..10_000,
        ordinal in 1u64..=10,
        ck_interval in 1usize..=2,
        steps in 2usize..=4,
    ) {
        let field_seed = field_seed + seed_offset();

        // Failure-free golden through the same checkpointed driver.
        let (decomp, ua, ub) = setup(field_seed, 4);
        let mut acc = MultiAcc::new(GpuSystem::multi(MachineConfig::k40m(), 2, true));
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive_failover(&mut acc, &decomp, a, b, steps, ck_interval);
        acc.finish();
        let golden = dense_of(last, a, &ua, &ub);

        // Device 1 dies on its `ordinal`-th transfer — anywhere from the
        // first upload to deep inside the run.
        let (decomp, ua, ub) = setup(field_seed, 4);
        let plan = FaultPlan::none().with_device_death(DeviceDeath::at_transfer(1, ordinal));
        let mut acc =
            MultiAcc::new(GpuSystem::multi(MachineConfig::k40m().with_faults(plan), 2, true));
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive_failover(&mut acc, &decomp, a, b, steps, ck_interval);
        acc.finish();
        prop_assert_eq!(
            dense_of(last, a, &ua, &ub),
            golden,
            "failover must be bit-identical (ordinal {}, ck {}, steps {})",
            ordinal, ck_interval, steps
        );

        let st = acc.stats();
        let fs = acc.gpu().fault_stats();
        prop_assert_eq!(acc.gpu().hazard_counters().total(), 0);
        prop_assert_eq!(st.integrity_detected, 0, "no integrity findings");
        if fs.device_deaths > 0 {
            // The death fired: its regions moved to the survivor and the
            // re-stage traffic is accounted separately, one upload per
            // migrated region per registered array.
            prop_assert_eq!(acc.owner(2), 0);
            prop_assert_eq!(acc.owner(3), 0);
            prop_assert!(st.regions_migrated > 0);
            prop_assert_eq!(st.migration_restage_loads, st.regions_migrated * 2);
            prop_assert!(st.migration_restage_bytes > 0);
            prop_assert!(st.checkpoints_restored >= 1);
        } else {
            // The trigger ordinal was never reached — the run must look
            // exactly like a fault-free one.
            prop_assert_eq!(st.regions_migrated, 0);
            prop_assert_eq!(st.migration_restage_loads, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// (d) property: the serving runtime never loses a job to a device death
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_serving_device_death_never_loses_jobs(
        seed in 0u64..10_000,
        ordinal in 1u64..=20,
    ) {
        use serving::{JobSpec, ServingConfig, ServingRuntime};
        let seed = seed + seed_offset();
        let mut rt = ServingRuntime::new(ServingConfig {
            num_devices: 2,
            max_active: 4,
            fault_plan: FaultPlan::none()
                .with_seed(seed)
                .with_device_death(DeviceDeath::at_transfer(1, ordinal)),
            ..ServingConfig::default()
        });
        let specs: Vec<JobSpec> = (0..12u64)
            .map(|i| JobSpec::new((i % 4) as u32, 2, 48, 3, seed ^ (i << 8)))
            .collect();
        let mut ids = Vec::new();
        for s in &specs {
            ids.push(rt.submit(s.clone()).unwrap());
        }
        rt.run_until_idle();
        prop_assert_eq!(rt.results().len(), specs.len(), "no admitted job vanished");
        for (id, spec) in ids.iter().zip(&specs) {
            let r = rt.results().iter().find(|r| r.job == *id).unwrap();
            // A surviving device exists, so evacuation + reschedule must
            // land every job golden — the loss never consumes the job's
            // retry budget, so the budget cannot run out either.
            prop_assert_eq!(
                r.outcome.clone(),
                Ok(spec.golden_digest()),
                "job {} (death ordinal {})",
                id, ordinal
            );
        }
        prop_assert_eq!(rt.cross_tenant_touches(), 0);
        prop_assert_eq!(rt.hazard_counters().total(), 0);
    }
}
