//! Shared drivers for the integration suites.
//!
//! Every suite that steps the heat equation through TiDA-acc (integrity
//! matrix, recovery matrix, overlap properties, conformance) used to carry
//! its own copy of the decomposition / array / step helpers; they live here
//! once, parameterized by grid size, seed and region spec.

use gpu_sim::{Hazard, Trace};
use kernels::{heat, init};
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccError, ArrayId, TileAcc};

/// Periodic `n³` cube split by `spec` — the decomposition every heat suite
/// runs on.
pub fn heat_decomp(n: i64, spec: RegionSpec) -> Arc<Decomposition> {
    Arc::new(Decomposition::new(Domain::periodic_cube(n), spec))
}

/// Backed double-buffer pair with one ghost layer; the first array holds
/// the seeded initial condition.
pub fn heat_arrays(d: &Arc<Decomposition>, seed: u64) -> (TileArray, TileArray) {
    let ua = TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
    let ub = TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
    ua.fill_valid(init::hash_field(seed));
    (ua, ub)
}

/// One heat step: exchange ghosts of the source, then stencil into the
/// destination. Step parity decides which array is the source, so a replay
/// from any step index recomputes exactly what the original run did.
pub fn heat_step(
    acc: &mut TileAcc,
    d: &Arc<Decomposition>,
    a: ArrayId,
    b: ArrayId,
    step: u64,
) -> Result<(), AccError> {
    let (src, dst) = if step.is_multiple_of(2) {
        (a, b)
    } else {
        (b, a)
    };
    acc.fill_boundary(src)?;
    for t in tiles_of(d, TileSpec::RegionSized) {
        acc.compute2(
            t,
            dst,
            src,
            heat::cost(t.num_cells()),
            "heat",
            |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
        )?;
    }
    Ok(())
}

/// After `steps` steps of the parity scheme the result lives in the first
/// array iff the step count is even.
pub fn result_in_first(steps: u64) -> bool {
    steps.is_multiple_of(2)
}

/// Dense final grid of the parity scheme after `steps` steps.
pub fn result_array(a: &TileArray, b: &TileArray, steps: u64) -> Vec<f64> {
    if result_in_first(steps) { a } else { b }
        .to_dense()
        .expect("backed run")
}

/// Analytic reference: the host-only solver on the same seeded field.
pub fn heat_golden(seed: u64, n: i64, steps: u64) -> Vec<f64> {
    heat::golden_run(init::hash_field(seed), n, steps as usize, heat::DEFAULT_FAC)
}

/// Sum the transfer payloads a trace actually scheduled, independently of
/// the runtime's own byte counters. Clean transfer spans are labelled
/// `H2D[{bytes}B]` / `D2H[{bytes}B]` under categories `h2d` / `d2h`;
/// fault/livelock variants use different categories, so on a fault-free run
/// these sums must equal `stats_bytes_h2d` / `stats_bytes_d2h` exactly.
pub fn transfer_bytes_from_trace(trace: &Trace) -> (u64, u64) {
    let payload = |label: &str, prefix: &str| -> u64 {
        label
            .strip_prefix(prefix)
            .and_then(|r| r.strip_suffix("B]"))
            .and_then(|digits| digits.parse().ok())
            .unwrap_or_else(|| panic!("malformed transfer label {label:?}"))
    };
    let mut h2d = 0u64;
    let mut d2h = 0u64;
    for s in &trace.spans {
        match s.category.as_str() {
            "h2d" => h2d += payload(&s.label, "H2D["),
            "d2h" => d2h += payload(&s.label, "D2H["),
            _ => {}
        }
    }
    (h2d, d2h)
}

/// Drop buffer-granularity false positives: ghost gathers touching
/// disjoint patches of one region buffer alias at buffer granularity, so
/// only hazards with a transfer on at least one side are real findings.
pub fn real_transfer_hazards(hazards: &[Hazard]) -> Vec<&Hazard> {
    let is_transfer = |l: &str| l == "h2d" || l == "d2h";
    hazards
        .iter()
        .filter(|h| is_transfer(&h.first_label) || is_transfer(&h.second_label))
        .collect()
}
