//! Cross-crate integration tests live in `tests/tests/`; this library
//! target carries the shared test-support module so the heat-workload
//! drivers are written once, not per suite.

pub mod support;
