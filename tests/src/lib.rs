//! Cross-crate integration tests live in `tests/tests/`; this library
//! target exists only to anchor the package.
