//! `simspeed` — simulator hot-path throughput harness.
//!
//! Everything above desim (fault matrices, schedcheck exploration, the
//! overlap perf gate, any future serving bench) is bounded by how fast one
//! deterministic [`GpuSystem`] run executes. This module measures that
//! directly: repeated runs of the paper-scale out-of-core heat program
//! (the same workload as `BENCH_overlap.json`'s `auto-overlap` row) at
//! every [`TraceLevel`], single-threaded and fanned out over N OS threads
//! with [`desim::ParallelDriver`], reporting runs/sec and ns per scheduler
//! decision point.
//!
//! Every timed configuration is also checked against the reference run
//! (TraceLevel::Full, sequential): makespan, AccStats counters and hazard
//! counters must be bit-identical, so the bench doubles as a determinism
//! test — a speedup that changes the simulation is a failure, not a win.

use desim::ParallelDriver;
use gpu_sim::{GpuSystem, TraceLevel};
use std::sync::Arc;
use std::time::Instant;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, AccStats, SlotPolicy, TileAcc};

use crate::experiments::Scale;

/// Workload shape for one simspeed heat run.
#[derive(Debug, Clone, Copy)]
pub struct HeatParams {
    pub n: i64,
    pub steps: usize,
    pub regions: usize,
    pub slots: usize,
    pub lookahead: usize,
}

impl HeatParams {
    pub fn of(scale: Scale) -> Self {
        match scale {
            // The overlap bench's paper-scale configuration: out-of-core
            // (more regions than slots), ReuseDistance + lookahead prefetch.
            Scale::Paper => HeatParams {
                n: 128,
                steps: 24,
                regions: 8,
                slots: 7,
                lookahead: 2,
            },
            Scale::Quick => HeatParams {
                n: 64,
                steps: 12,
                regions: 8,
                slots: 7,
                lookahead: 2,
            },
        }
    }
}

/// The observable outcome of one run — everything equivalence is judged on.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    pub makespan_ns: u64,
    pub stats: AccStats,
    pub hazard_total: u64,
    pub decision_points: u64,
    pub ops_executed: u64,
}

/// One deterministic out-of-core heat run at the given trace level.
///
/// Timing-only (virtual slabs): the cost model needs byte counts, not data,
/// which is exactly the regime schedcheck walks and fault sweeps run in.
pub fn run_heat(p: HeatParams, level: TraceLevel) -> RunOutcome {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(p.n),
        RegionSpec::Count(p.regions),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, false);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, false);

    // Same interconnect-starved machine as the overlap bench, so the two
    // benches describe the same simulation.
    let mut machine = gpu_sim::MachineConfig::k40m();
    machine.name = "Tesla K40m / PCIe Gen3 x4".to_string();
    machine.h2d_pinned_bw = 3.3e9;
    machine.d2h_pinned_bw = 3.5e9;
    machine.host_stage_bw = 3.0e9;

    let mut gpu = GpuSystem::with_backing(machine, false);
    gpu.set_trace_level(level);
    let mut opts = AccOptions::paper()
        .with_policy(SlotPolicy::ReuseDistance)
        .with_lookahead(p.lookahead);
    opts.max_slots = Some(p.slots);
    let mut acc = TileAcc::new(gpu, opts);
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let fac = kernels::heat::DEFAULT_FAC;
    let (mut src, mut dst) = (a, b);
    for _ in 0..p.steps {
        acc.begin_step().unwrap();
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                kernels::heat::cost(t.num_cells()),
                "heat",
                move |d, s, bx| kernels::heat::step_tile(d, s, &bx, fac),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    let makespan = acc.gpu_mut().finish();
    let stats = acc.stats();
    let hazard_total = acc.gpu().hazard_counters().total();
    RunOutcome {
        makespan_ns: makespan.as_ns(),
        stats,
        hazard_total,
        decision_points: acc.gpu().decision_points(),
        ops_executed: acc.gpu().ops_executed(),
    }
}

/// One timed configuration of the bench.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SimspeedRun {
    pub trace_level: String,
    pub threads: usize,
    pub runs: u64,
    /// Total wall-clock across all measurement batches.
    pub wall_ns: u64,
    /// Best-batch throughput (runs are timed in up to 5 batches; transient
    /// host load only ever slows a batch, so the fastest batch estimates
    /// the simulator's actual cost).
    pub runs_per_sec: f64,
    pub decision_points_per_run: u64,
    pub ns_per_decision_point: f64,
    pub ops_per_run: u64,
    /// Simulated makespan — identical across every configuration or the
    /// bench panics.
    pub makespan_ms: f64,
}

/// The `BENCH_simspeed.json` payload.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SimspeedBench {
    pub workload: String,
    /// OS threads the parallel configurations used.
    pub fanout_threads: usize,
    /// `available_parallelism()` of the measuring host — context for the
    /// fanout rows (a 1-core container cannot show thread scaling).
    pub host_parallelism: usize,
    pub configs: Vec<SimspeedRun>,
    /// runs/sec of the best configuration.
    pub best_runs_per_sec: f64,
    /// runs/sec of the sequential `TraceLevel::Off` configuration — the
    /// number the CI gate compares.
    pub gate_runs_per_sec: f64,
    /// Committed pre-overhaul reference (PR 6 dev machine, sequential,
    /// spans always on): lets the JSON carry its own before/after ratio.
    pub pre_overhaul_runs_per_sec: f64,
    /// `gate / pre_overhaul` — only meaningful at paper scale (the anchor
    /// was measured there), so `None` for quick-scale runs.
    pub speedup_vs_pre_overhaul: Option<f64>,
}

/// Sequential runs/sec of this exact bench (paper scale, tracing off)
/// measured at the pre-overhaul parent commit — per-op label `String`s,
/// per-node dependency `Vec`s, string-keyed hazard accesses, O(cells)
/// virtual ghost patches — on the single-core dev container this PR was
/// built in (release profile, best of several batches). The CI gate does
/// NOT use this number — it compares against
/// `results/BENCH_simspeed_baseline.json`, regenerated on deliberate perf
/// changes — it only anchors `speedup_vs_pre_overhaul`.
pub const PRE_OVERHAUL_RUNS_PER_SEC: f64 = 200.0;

fn time_config(
    p: HeatParams,
    level: TraceLevel,
    threads: usize,
    runs: u64,
    reference: &RunOutcome,
) -> SimspeedRun {
    // Wall-clock throughput on a shared host is noisy (co-tenant load can
    // swing single measurements by ±30%), so measure in batches and report
    // the best batch: transient load can only slow a batch down, never
    // speed it up, so the fastest batch is the closest estimate of the
    // simulator's actual cost.
    let batches = (runs as usize).clamp(1, 5);
    let per_batch = runs / batches as u64;
    let mut wall_ns = 0u64;
    let mut best_batch_ns_per_run = f64::INFINITY;
    for b in 0..batches as u64 {
        // Distribute the remainder so every run is timed exactly once.
        let n = per_batch + u64::from(b < runs % batches as u64);
        let start = Instant::now();
        let outcomes: Vec<RunOutcome> = if threads <= 1 {
            (0..n).map(|_| run_heat(p, level)).collect()
        } else {
            let driver = ParallelDriver::new(threads);
            driver.run(
                (0..n)
                    .map(|_| move || run_heat(p, level))
                    .collect::<Vec<_>>(),
            )
        };
        let batch_ns = start.elapsed().as_nanos() as u64;
        wall_ns += batch_ns;
        best_batch_ns_per_run = best_batch_ns_per_run.min(batch_ns as f64 / n.max(1) as f64);
        for o in &outcomes {
            assert_eq!(
                o, reference,
                "simspeed run diverged from the Full/sequential reference \
                 (level {level:?}, {threads} threads)"
            );
        }
    }
    let runs_per_sec = 1e9 / best_batch_ns_per_run;
    let per_run_ns = best_batch_ns_per_run;
    SimspeedRun {
        trace_level: format!("{level:?}"),
        threads,
        runs,
        wall_ns,
        runs_per_sec,
        decision_points_per_run: reference.decision_points,
        ns_per_decision_point: per_run_ns / reference.decision_points.max(1) as f64,
        ops_per_run: reference.ops_executed,
        makespan_ms: reference.makespan_ns as f64 / 1e6,
    }
}

/// Run the full bench: trace levels Off/Counters/Full at 1 thread, then
/// Off/Full fanned out over `threads` OS threads.
pub fn simspeed_bench(scale: Scale, threads: usize, runs: u64) -> SimspeedBench {
    let p = HeatParams::of(scale);
    let reference = run_heat(p, TraceLevel::Full);
    // One warmup per level so lazy interning/allocator warmup is not billed
    // to the first timed configuration.
    let _ = run_heat(p, TraceLevel::Off);

    let mut configs = Vec::new();
    for level in [TraceLevel::Off, TraceLevel::Counters, TraceLevel::Full] {
        configs.push(time_config(p, level, 1, runs, &reference));
    }
    for level in [TraceLevel::Off, TraceLevel::Full] {
        configs.push(time_config(p, level, threads, runs, &reference));
    }

    let best = configs
        .iter()
        .map(|c| c.runs_per_sec)
        .fold(0.0f64, f64::max);
    let gate = configs
        .iter()
        .find(|c| c.threads == 1 && c.trace_level == "Off")
        .map(|c| c.runs_per_sec)
        .unwrap_or(best);
    SimspeedBench {
        workload: format!(
            "out-of-core heat {n}^3, {steps} steps, {regions} regions x 2 arrays, {slots} slots, \
             ReuseDistance + lookahead-{la} prefetch, timing-only buffers",
            n = p.n,
            steps = p.steps,
            regions = p.regions,
            slots = p.slots,
            la = p.lookahead,
        ),
        fanout_threads: threads,
        host_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        configs,
        best_runs_per_sec: best,
        gate_runs_per_sec: gate,
        pre_overhaul_runs_per_sec: PRE_OVERHAUL_RUNS_PER_SEC,
        speedup_vs_pre_overhaul: (scale == Scale::Paper)
            .then_some(gate / PRE_OVERHAUL_RUNS_PER_SEC),
    }
}
