//! One runner per paper figure, plus the ablations from DESIGN.md.
//!
//! Every runner executes the relevant implementations on the simulated K40m
//! platform (timing-only buffers at full paper scale) and returns a
//! [`FigData`] with the same series the paper plots. `Scale::Paper` uses the
//! paper's exact workload sizes; `Scale::Quick` shrinks them for CI and
//! Criterion runs without changing any qualitative ordering.

use crate::report::{FigData, Series};
use baselines::{busy as bbusy, heat as bheat, tida_busy, tida_heat, MemMode, RunOpts, TidaOpts};
use gpu_sim::MachineConfig;
use kernels::busy::{MathImpl, DEFAULT_KERNEL_ITERATION};
use tida_acc::{AccOptions, SlotPolicy, WritebackPolicy};

/// Workload size selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's sizes: 384³/512³ domains, up to 1000 iterations.
    Paper,
    /// Reduced sizes for CI / Criterion; same qualitative shapes.
    Quick,
}

impl Scale {
    fn heat_n(self) -> i64 {
        match self {
            Scale::Paper => 512,
            Scale::Quick => 128,
        }
    }

    fn fig1_n(self) -> i64 {
        match self {
            Scale::Paper => 384,
            Scale::Quick => 96,
        }
    }

    fn fig1_steps(self) -> usize {
        match self {
            Scale::Paper => 100,
            Scale::Quick => 10,
        }
    }

    fn fig5_iters(self) -> &'static [usize] {
        match self {
            Scale::Paper => &[1, 10, 100, 1000],
            Scale::Quick => &[1, 10, 100],
        }
    }

    fn busy_n(self) -> i64 {
        match self {
            Scale::Paper => 512,
            Scale::Quick => 128,
        }
    }

    fn busy_steps(self) -> usize {
        match self {
            Scale::Paper => 100,
            Scale::Quick => 10,
        }
    }

    fn fig8_steps(self) -> usize {
        match self {
            Scale::Paper => 1000,
            Scale::Quick => 50,
        }
    }
}

fn cfg() -> MachineConfig {
    MachineConfig::k40m()
}

/// Fig. 1: heat solver running time under {CUDA, OpenACC, CUDA-memory +
/// OpenACC-kernels} × {pageable, pinned, managed}, 384³, 100 iterations.
pub fn fig1(scale: Scale) -> FigData {
    let c = cfg();
    let n = scale.fig1_n();
    let steps = scale.fig1_steps();
    let mut fig = FigData::new(
        format!("Fig 1: heat {n}^3, {steps} iterations, execution models x memory management"),
        "time [ms]",
    );
    let mems = [MemMode::Pageable, MemMode::Pinned, MemMode::Managed];
    let mut cuda = Series::new("CUDA");
    let mut acc = Series::new("OpenACC");
    let mut hybrid = Series::new("CUDAmem+OpenACCkern");
    for mem in mems {
        cuda.push(
            mem.label(),
            bheat::cuda_heat(&c, n, steps, RunOpts::timing(mem)).ms(),
        );
        acc.push(
            mem.label(),
            bheat::openacc_heat(&c, n, steps, RunOpts::timing(mem)).ms(),
        );
        hybrid.push(
            mem.label(),
            bheat::hybrid_heat(&c, n, steps, RunOpts::timing(mem)).ms(),
        );
    }
    fig.series.extend([cuda, acc, hybrid]);
    fig.notes.push(
        "paper: CUDA-pinned fastest; pageable/managed slower in every model; \
         hybrid recovers most of the CUDA-vs-OpenACC gap"
            .into(),
    );
    fig
}

/// Fig. 5: heat-solver speedup over CUDA-pageable at 1/10/100/1000
/// iterations, 512³, TiDA-acc with 16 regions.
pub fn fig5(scale: Scale) -> FigData {
    let c = cfg();
    let n = scale.heat_n();
    let mut fig = FigData::new(
        format!("Fig 5: heat {n}^3 speedup over CUDA-pageable vs iteration count"),
        "speedup (x)",
    );
    let mut pinned = Series::new("CUDA-pinned");
    let mut acc = Series::new("OpenACC-pageable");
    let mut tida = Series::new("TiDA-acc(16r)");
    for &iters in scale.fig5_iters() {
        let base = bheat::cuda_heat(&c, n, iters, RunOpts::timing(MemMode::Pageable));
        let x = iters.to_string();
        pinned.push(
            &x,
            bheat::cuda_heat(&c, n, iters, RunOpts::timing(MemMode::Pinned)).speedup_over(&base),
        );
        acc.push(
            &x,
            bheat::openacc_heat(&c, n, iters, RunOpts::timing(MemMode::Pageable))
                .speedup_over(&base),
        );
        tida.push(
            &x,
            tida_heat(&c, n, iters, &TidaOpts::timing(16)).speedup_over(&base),
        );
    }
    fig.series.extend([pinned, acc, tida]);
    fig.notes.push(
        "paper: TiDA-acc wins at low iteration counts (transfers dominate and are hidden); \
         CUDA variants converge to it as compute amortizes the transfers"
            .into(),
    );
    fig
}

/// Fig. 6: compute-intensive kernel execution times, 512³.
pub fn fig6(scale: Scale) -> FigData {
    let c = cfg();
    let n = scale.busy_n();
    let steps = scale.busy_steps();
    let iters = DEFAULT_KERNEL_ITERATION;
    let mut fig = FigData::new(
        format!("Fig 6: compute-intensive kernel {n}^3, {steps} steps, kernel_iteration={iters}"),
        "time [ms]",
    );
    let mut s = Series::new("time");
    s.push(
        "CUDA",
        bbusy::cuda_busy(
            &c,
            n,
            steps,
            iters,
            MathImpl::CudaLibm,
            RunOpts::timing(MemMode::Pageable),
        )
        .ms(),
    );
    s.push(
        "CUDA-pinned",
        bbusy::cuda_busy(
            &c,
            n,
            steps,
            iters,
            MathImpl::CudaLibm,
            RunOpts::timing(MemMode::Pinned),
        )
        .ms(),
    );
    s.push(
        "CUDA-pinned-fastmath",
        bbusy::cuda_busy(
            &c,
            n,
            steps,
            iters,
            MathImpl::FastMath,
            RunOpts::timing(MemMode::Pinned),
        )
        .ms(),
    );
    s.push(
        "OpenACC-pageable",
        bbusy::openacc_busy(&c, n, steps, iters, RunOpts::timing(MemMode::Pageable)).ms(),
    );
    s.push(
        "TiDA-acc(16r)",
        tida_busy(&c, n, steps, iters, &TidaOpts::timing(16)).ms(),
    );
    fig.series.push(s);
    fig.notes.push(
        "paper: PGI-math builds (OpenACC, TiDA-acc) beat CUDA's math.h; fast-math closes the \
         gap; TiDA-acc adds no overhead"
            .into(),
    );
    fig
}

/// Fig. 7: the limited-memory timeline — a Gantt chart of two slot streams
/// staging regions (D2H/H2D) fully overlapped with compute.
pub fn fig7() -> String {
    let c = cfg();
    let opts = TidaOpts::timing(6).with_max_slots(2).with_tracing();
    let r = tida_busy(&c, 64, 2, DEFAULT_KERNEL_ITERATION, &opts);
    let trace = r.trace.expect("tracing enabled");
    let mut out = format!(
        "Fig 7: TiDA-acc under limited memory (6 regions, 2 device slots)\n\
         elapsed {}; h2d {} MiB, d2h {} MiB, kernels {}\n\n",
        r.elapsed,
        r.bytes_h2d >> 20,
        r.bytes_d2h >> 20,
        r.kernels
    );
    out.push_str(&trace.render_gantt(100));
    let h2d_compute = trace.overlap_time(0, 2);
    let d2h_compute = trace.overlap_time(1, 2);
    out.push_str(&format!(
        "\noverlap: h2d||compute {h2d_compute}, d2h||compute {d2h_compute} \
         (paper: transfers fully hidden behind compute)\n"
    ));
    out
}

/// Fig. 8: compute-intensive kernel, 512³, 1000 steps: TiDA-acc with all
/// regions resident vs a 2-slot device limit vs a single whole-domain
/// region.
pub fn fig8(scale: Scale) -> FigData {
    let c = cfg();
    let n = scale.busy_n();
    let steps = scale.fig8_steps();
    let iters = DEFAULT_KERNEL_ITERATION;
    let mut fig = FigData::new(
        format!("Fig 8: limited device memory, busy kernel {n}^3, {steps} steps"),
        "time [ms]",
    );
    let mut s = Series::new("time");
    s.push(
        "TiDA-acc(16r)",
        tida_busy(&c, n, steps, iters, &TidaOpts::timing(16)).ms(),
    );
    s.push(
        "TiDA-acc(16r,2slots)",
        tida_busy(&c, n, steps, iters, &TidaOpts::timing(16).with_max_slots(2)).ms(),
    );
    s.push(
        "TiDA-acc(1r)",
        tida_busy(&c, n, steps, iters, &TidaOpts::timing(1)).ms(),
    );
    fig.series.push(s);
    fig.notes.push(
        "paper: the 2-slot limit costs almost nothing (staging hides behind compute); \
         the single-region configuration shows the library adds no overhead"
            .into(),
    );
    fig
}

/// Ablation A (DESIGN.md): static interleaved slot mapping (paper) vs LRU
/// pool, heat solver under memory pressure.
pub fn ablation_slots(scale: Scale) -> FigData {
    let c = cfg();
    let n = scale.heat_n();
    let steps = match scale {
        Scale::Paper => 50,
        Scale::Quick => 10,
    };
    let mut fig = FigData::new(
        format!("Ablation A: slot policy under memory pressure, heat {n}^3, {steps} steps"),
        "time [ms]",
    );
    for slots in [3usize, 8, 16] {
        let mut s = Series::new(format!("{slots} slots"));
        for (name, policy) in [
            ("static", SlotPolicy::StaticInterleaved),
            ("lru", SlotPolicy::Lru),
        ] {
            let mut o = TidaOpts::timing(8).with_max_slots(slots);
            o.acc = o.acc.with_policy(policy);
            s.push(name, tida_heat(&c, n, steps, &o).ms());
        }
        fig.series.push(s);
    }
    fig
}

/// Ablation B: region-count sweep for the heat solver — the paper states
/// 16 regions gave the best performance at 512³.
pub fn ablation_regions(scale: Scale) -> FigData {
    let c = cfg();
    let n = scale.heat_n();
    let steps = match scale {
        Scale::Paper => 10,
        Scale::Quick => 4,
    };
    let mut fig = FigData::new(
        format!("Ablation B: region count, heat {n}^3, {steps} steps"),
        "time [ms]",
    );
    let mut s = Series::new("TiDA-acc");
    for regions in [1usize, 2, 4, 8, 16, 32, 64] {
        if regions as i64 > n {
            continue;
        }
        s.push(
            regions.to_string(),
            tida_heat(&c, n, steps, &TidaOpts::timing(regions)).ms(),
        );
    }
    fig.series.push(s);
    fig.notes
        .push("paper: 16 regions performed best for the 512^3 heat solver".into());
    fig
}

/// Ablation C: device-side ghost update with host index-calc overlap
/// (paper) vs forcing every ghost patch through the host.
pub fn ablation_ghost(scale: Scale) -> FigData {
    let c = cfg();
    let n = scale.heat_n();
    let steps = match scale {
        Scale::Paper => 50,
        Scale::Quick => 10,
    };
    let mut fig = FigData::new(
        format!("Ablation C: ghost-update location, heat {n}^3, {steps} steps"),
        "time [ms]",
    );
    let mut s = Series::new("TiDA-acc(16r)");
    let device = TidaOpts::timing(16);
    s.push("device-ghosts", tida_heat(&c, n, steps, &device).ms());
    let mut host = TidaOpts::timing(16);
    host.acc.ghost_on_device = false;
    s.push("host-ghosts", tida_heat(&c, n, steps, &host).ms());
    fig.series.push(s);
    fig.notes.push(
        "host-path ghosts bounce every region over PCIe each step; the paper's device \
         update avoids that entirely"
            .into(),
    );
    fig
}

/// Ablation D: the write-intent allocation and the write-back policy.
pub fn ablation_transfers(scale: Scale) -> FigData {
    let c = cfg();
    let n = scale.heat_n();
    let steps = match scale {
        Scale::Paper => 10,
        Scale::Quick => 4,
    };
    let mut fig = FigData::new(
        format!("Ablation D: transfer-avoidance options, heat {n}^3, {steps} steps, 6 slots"),
        "time [ms]",
    );
    let mut s = Series::new("TiDA-acc(8r)");
    let base = TidaOpts::timing(8).with_max_slots(6);
    s.push("paper-defaults", tida_heat(&c, n, steps, &base).ms());
    let mut upload = base.clone();
    upload.acc.upload_written_regions = true;
    s.push("upload-written", tida_heat(&c, n, steps, &upload).ms());
    let mut dirty = base.clone();
    dirty.acc = dirty.acc.with_writeback(WritebackPolicy::DirtyOnly);
    s.push("dirty-only-writeback", tida_heat(&c, n, steps, &dirty).ms());
    fig.series.push(s);
    fig
}

/// Extension experiment E1: the paper's §I NVLink motivation — how does the
/// Fig. 5 picture change when the interconnect is ~5× faster (and the
/// device proportionally stronger)? Runs the Fig. 5 sweep on the
/// P100/NVLink machine model.
pub fn nvlink_whatif(scale: Scale) -> FigData {
    let c = MachineConfig::p100_nvlink();
    let n = scale.heat_n();
    let mut fig = FigData::new(
        format!("E1: Fig 5 sweep on {}, heat {n}^3", c.name),
        "speedup over CUDA-pageable (x)",
    );
    let mut pinned = Series::new("CUDA-pinned");
    let mut tida = Series::new("TiDA-acc(16r)");
    for &iters in scale.fig5_iters() {
        let base = bheat::cuda_heat(&c, n, iters, RunOpts::timing(MemMode::Pageable));
        let x = iters.to_string();
        pinned.push(
            &x,
            bheat::cuda_heat(&c, n, iters, RunOpts::timing(MemMode::Pinned)).speedup_over(&base),
        );
        tida.push(
            &x,
            tida_heat(&c, n, iters, &TidaOpts::timing(16)).speedup_over(&base),
        );
    }
    fig.series.extend([pinned, tida]);
    fig.notes.push(
        "faster links shrink the transfer share, so overlap buys less at low iteration \
         counts than on PCIe — but the ordering at 1 iteration is preserved"
            .into(),
    );
    fig
}

/// Extension experiment E2: multi-GPU strong scaling of the heat solver
/// (regions distributed over devices, pack/P2P/unpack halos).
pub fn multi_gpu_scaling(scale: Scale) -> FigData {
    let c = cfg();
    let n = scale.heat_n();
    let steps = match scale {
        Scale::Paper => 100,
        Scale::Quick => 10,
    };
    let regions = 16;
    let mut fig = FigData::new(
        format!("E2: multi-GPU strong scaling, heat {n}^3, {steps} steps, {regions} regions"),
        "time [ms]",
    );
    let mut s = Series::new("TiDA-multi");
    for devices in [1usize, 2, 4, 8] {
        let r = baselines::tida_heat_multi(&c, n, steps, regions, devices, false);
        s.push(format!("{devices}gpu"), r.ms());
    }
    fig.series.push(s);
    fig.notes.push(
        "compute scales with devices; cross-device halo traffic over the PCIe peer link \
         bounds the speedup (Amdahl on the exchange phase)"
            .into(),
    );
    fig
}

/// Extension experiment E3: interconnect sensitivity. Scales the PCIe
/// bandwidth from 0.25× to 8× the K40m baseline and reports where overlap
/// stops paying: the crossover between TiDA-acc and a synchronous
/// CUDA-pinned run at one heat step.
pub fn interconnect_sweep(scale: Scale) -> FigData {
    let n = scale.heat_n();
    let mut fig = FigData::new(
        format!("E3: interconnect sensitivity, heat {n}^3, 1 step"),
        "TiDA-acc speedup over CUDA-pinned (x)",
    );
    let mut s = Series::new("speedup");
    for mult in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let mut c = cfg();
        c.h2d_pinned_bw *= mult;
        c.d2h_pinned_bw *= mult;
        c.host_stage_bw *= mult;
        let pinned = bheat::cuda_heat(&c, n, 1, RunOpts::timing(MemMode::Pinned));
        let tida = tida_heat(&c, n, 1, &TidaOpts::timing(16));
        s.push(format!("{mult}x"), tida.speedup_over(&pinned));
    }
    fig.series.push(s);
    fig.notes.push(
        "slow links make overlap decisive (transfers dominate and are hidden); fast links \
         shrink the transfer share until the library's fixed overheads win out — the \
         quantitative form of the paper's NVLink discussion (§I)"
            .into(),
    );
    fig
}

/// Ablation E: the ghost-engine schedule — the paper's per-patch kernels
/// behind a global `acc wait` barrier vs batched gathers vs barrier-free
/// event ordering vs both.
pub fn ablation_ghost_engine(scale: Scale) -> FigData {
    let c = cfg();
    let n = scale.heat_n();
    let steps = match scale {
        Scale::Paper => 100,
        Scale::Quick => 10,
    };
    let mut fig = FigData::new(
        format!("Ablation E: ghost-engine schedule, heat {n}^3, {steps} steps, 16 regions"),
        "time [ms]",
    );
    let mut s = Series::new("TiDA-acc(16r)");
    let variants: [(&str, bool, bool); 4] = [
        ("paper (barrier, per-patch)", true, false),
        ("batched gathers", true, true),
        ("barrier-free", false, false),
        ("barrier-free + batched", false, true),
    ];
    for (name, barrier, batching) in variants {
        let mut o = TidaOpts::timing(16);
        o.acc.ghost_barrier = barrier;
        o.acc.ghost_batching = batching;
        s.push(name, tida_heat(&c, n, steps, &o).ms());
    }
    fig.series.push(s);
    fig.notes.push(
        "per-slot event ordering makes the global acc-wait redundant; batching cuts \
         launch overhead. Both are bitwise-invisible to results (see \
         tests/ghost_engine_options.rs)"
            .into(),
    );
    fig
}

/// Extension experiment E4: CPU vs GPU crossover. The same TiDA-acc
/// program runs on the host path (`reset(GPU=false)`) and the device path;
/// at small problems the transfers and launch overheads make the CPU win —
/// the classic offload break-even the single-source API lets users probe
/// with one flag.
pub fn cpu_gpu_crossover(scale: Scale) -> FigData {
    let c = cfg();
    let steps = 10;
    let sizes: &[i64] = match scale {
        Scale::Paper => &[16, 32, 64, 128, 256, 512],
        Scale::Quick => &[16, 32, 64, 128],
    };
    let mut fig = FigData::new(
        format!("E4: CPU vs GPU crossover, heat solver, {steps} steps"),
        "time [ms]",
    );
    let mut cpu = Series::new("TiDA-acc CPU path");
    let mut gpu = Series::new("TiDA-acc GPU path");
    for &n in sizes {
        let regions = 8.min(n as usize);
        let mut o = TidaOpts::timing(regions);
        o.acc.gpu = false;
        cpu.push(format!("{n}^3"), tida_heat(&c, n, steps, &o).ms());
        gpu.push(
            format!("{n}^3"),
            tida_heat(&c, n, steps, &TidaOpts::timing(regions)).ms(),
        );
    }
    fig.series.extend([cpu, gpu]);
    fig.notes.push(
        "one source, one flag: the GPU pays off once the per-cell work dwarfs launch and          transfer overheads"
            .into(),
    );
    fig
}

/// Extension experiment E5: temporal blocking on top of region staging.
/// In the out-of-core regime (4-slot device limit), computing `block` time
/// steps per region residency amortizes the staging transfers.
///
/// Every point is a MEASURED makespan of a run through the fused runtime
/// path ([`baselines::tida_heat_fused`]: one depth-`block` launch per
/// region per outer step, deep halos, the lookahead overlap scheduler on
/// top) — nothing here is modelled analytically, and the fused data
/// effects are pinned bitwise against the unfused goldens by the
/// baselines/conformance suites.
pub fn temporal_blocking(scale: Scale) -> FigData {
    let c = cfg();
    let n = scale.heat_n();
    let regions = 16;
    let steps = match scale {
        Scale::Paper => 48,
        Scale::Quick => 12,
    };
    let mut fig = FigData::new(
        format!("E5: temporal blocking under staging, heat {n}^3, {steps} steps, {regions} regions, 4 slots"),
        "time [ms]",
    );
    let mut s = Series::new("TiDA-fused");
    for block in [1usize, 2, 4] {
        let r = baselines::tida_heat_fused(&c, n, steps, regions, block, Some(4), false, true);
        s.push(format!("block {block}"), r.ms());
    }
    fig.series.push(s);
    fig.notes.push(
        "measured fused-runtime makespans: wider halos and trapezoid re-compute buy fewer \
         stagings; the optimum depends on the transfer/compute ratio"
            .into(),
    );
    fig
}

/// R1: checkpoint overhead vs. interval, with and without a mid-run crash.
///
/// A supervised heat run (timing-only buffers) at several snapshot cadences:
/// the fault-free series prices the checkpoints themselves (each one drains
/// dirty regions to the host), and the crashed series adds the replayed work
/// — tighter intervals cost more up front but lose less on recovery.
pub fn checkpoint_overhead(scale: Scale) -> FigData {
    use gpu_sim::{CrashFault, FaultPlan, GpuSystem};
    use std::cell::Cell;
    use std::sync::Arc;
    use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
    use tida_acc::{ArrayId, CheckpointPolicy, Supervisor, SupervisorConfig, TileAcc};

    let (n, steps, regions) = match scale {
        Scale::Paper => (128i64, 32u64, 16usize),
        Scale::Quick => (32i64, 12u64, 8usize),
    };
    let mut fig = FigData::new(
        format!(
            "R1: checkpoint interval vs. run time, heat {n}^3, {steps} steps, {regions} regions"
        ),
        "time [ms]",
    );

    let run = |interval: u64, crash: bool| {
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(regions),
        ));
        let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, false);
        let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, false);
        let mut sup = Supervisor::new(SupervisorConfig {
            policy: CheckpointPolicy::every(interval).keep(2),
            ..SupervisorConfig::default()
        });
        let ids: Cell<Option<(ArrayId, ArrayId)>> = Cell::new(None);
        let d = decomp.clone();
        // Mid-run: every step launches one kernel per region (plus ghost
        // gathers), so this ordinal lands about halfway through attempt 0.
        let crash_at = steps / 2 * regions as u64;
        sup.run(
            steps,
            |attempt| {
                let plan = if crash && attempt == 0 {
                    FaultPlan::none().with_crash(CrashFault::at_kernel(crash_at))
                } else {
                    FaultPlan::none()
                };
                let mut acc =
                    TileAcc::new(GpuSystem::new(cfg().with_faults(plan)), AccOptions::paper());
                ids.set(Some((acc.register(&ua), acc.register(&ub))));
                acc
            },
            |acc, step| {
                let (a, b) = ids.get().expect("build ran first");
                let (src, dst) = if step % 2 == 0 { (a, b) } else { (b, a) };
                acc.fill_boundary(src)?;
                for t in tiles_of(&d, TileSpec::RegionSized) {
                    acc.compute2(
                        t,
                        dst,
                        src,
                        kernels::heat::cost(t.num_cells()),
                        "heat",
                        |dv, sv, bx| {
                            kernels::heat::step_tile(dv, sv, &bx, kernels::heat::DEFAULT_FAC)
                        },
                    )?;
                }
                Ok(())
            },
        )
        .expect("supervised bench run completes")
    };

    let intervals = [0u64, 16, 8, 4, 2, 1];
    let mut clean = Series::new("fault-free");
    let mut crashed = Series::new("crash at midpoint");
    let mut lost = String::from("lost virtual time after the crash:");
    for iv in intervals {
        let label = if iv == 0 {
            "no ckpt".to_string()
        } else {
            format!("every {iv}")
        };
        clean.push(label.clone(), run(iv, false).elapsed.as_ms_f64());
        let o = run(iv, true);
        crashed.push(label, o.elapsed.as_ms_f64());
        lost.push_str(&format!(
            " [{iv}: {:.2}ms]",
            o.counters.recovery_time.as_ms_f64()
        ));
    }
    fig.series.extend([clean, crashed]);
    fig.notes.push(
        "each snapshot drains dirty regions to the host, so tight intervals tax the \
         fault-free run; after a crash the un-checkpointed suffix is replayed, so loose \
         intervals pay on recovery"
            .into(),
    );
    fig.notes.push(lost);
    fig
}

/// R2 (PR 3): host-side cost of always-on transfer digests. Digest
/// verification spends host CPU time, not virtual device time — the
/// schedule is byte-identical either way — so this figure reports
/// wall-clock milliseconds for backed heat runs with the defenses off,
/// with digests on, and with digests plus the deep hazard tracker.
pub fn integrity_overhead(scale: Scale) -> FigData {
    use gpu_sim::GpuSystem;
    use std::sync::Arc;
    use std::time::Instant;
    use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
    use tida_acc::TileAcc;

    let (n, steps, region_counts): (i64, usize, &[usize]) = match scale {
        Scale::Paper => (96, 12, &[4, 8, 16]),
        Scale::Quick => (32, 6, &[2, 4, 8]),
    };
    let mut fig = FigData::new(
        format!("R2: digest-verification overhead, backed heat {n}^3, {steps} steps"),
        "host time [ms]",
    );

    // Returns (wall-clock ms, digests verified, virtual elapsed).
    let run = |regions: usize, digests: bool, deep: bool| {
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(regions),
        ));
        let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        ua.fill_valid(baselines::heat::heat_init());

        let mut gpu = GpuSystem::with_backing(cfg(), true);
        gpu.set_integrity_checking(digests);
        gpu.set_deep_hazard_tracking(deep);
        let mut acc = TileAcc::new(gpu, AccOptions::paper());
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let tiles = tiles_of(&decomp, TileSpec::RegionSized);
        let fac = kernels::heat::DEFAULT_FAC;

        let t0 = Instant::now();
        let (mut src, mut dst) = (a, b);
        for _ in 0..steps {
            acc.fill_boundary(src).unwrap();
            for &t in &tiles {
                acc.compute2(t, dst, src, kernels::heat::cost(t.num_cells()), "heat", {
                    move |d, s, bx| kernels::heat::step_tile(d, s, &bx, fac)
                })
                .unwrap();
            }
            std::mem::swap(&mut src, &mut dst);
        }
        acc.sync_to_host(src).unwrap();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = acc.gpu().integrity_stats();
        assert_eq!(stats.detected, 0, "fault-free run must stay clean");
        (wall_ms, stats.verified, acc.finish())
    };

    let mut off = Series::new("defenses off");
    let mut digests = Series::new("digests");
    let mut full = Series::new("digests + deep hazards");
    let mut counts = String::from("digests verified per run:");
    for &r in region_counts {
        let label = format!("{r} regions");
        let (ms_off, _, t_off) = run(r, false, false);
        let (ms_dig, verified, t_dig) = run(r, true, false);
        let (ms_full, _, t_full) = run(r, true, true);
        assert!(verified > 0, "digest path must actually run");
        assert_eq!(t_off, t_dig, "verification must not perturb the schedule");
        assert_eq!(t_off, t_full, "deep tracking must not perturb the schedule");
        off.push(label.clone(), ms_off);
        digests.push(label.clone(), ms_dig);
        full.push(label, ms_full);
        counts.push_str(&format!(" [{r}r: {verified}]"));
    }
    fig.series.extend([off, digests, full]);
    fig.notes.push(
        "virtual elapsed time is identical across all three modes (asserted); the digest \
         layer costs one FNV-1a pass per transfer endpoint on the host"
            .into(),
    );
    fig.notes.push(counts);
    fig
}

/// One run of the overlap-scheduler benchmark (see [`overlap_bench`]):
/// makespan, how much transfer time was hidden behind compute, the
/// critical-path split, and the runtime's caching/prefetch counters.
#[derive(Debug, Clone, serde::Serialize)]
pub struct OverlapRun {
    pub label: String,
    pub lookahead: usize,
    pub makespan_ms: f64,
    /// Fraction of H2D busy time concurrent with compute, in `[0,1]`.
    pub h2d_overlap_fraction: f64,
    /// Fraction of D2H busy time concurrent with compute, in `[0,1]`.
    pub d2h_overlap_fraction: f64,
    /// Critical-path milliseconds attributed to transfers (h2d + d2h).
    pub transfer_critical_ms: f64,
    /// Critical-path milliseconds attributed to kernels.
    pub compute_critical_ms: f64,
    /// Critical-path milliseconds attributed to host work.
    pub host_critical_ms: f64,
    pub loads: u64,
    pub hits: u64,
    pub prefetch_loads: u64,
    pub prefetch_hits: u64,
    pub prefetch_fallbacks: u64,
    pub evictions: u64,
    pub writebacks_deferred: u64,
}

/// The full `BENCH_overlap.json` payload: the no-prefetch LRU baseline, the
/// automatic scheduler, the headline makespan reduction, and (optionally)
/// a lookahead sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct OverlapBench {
    pub workload: String,
    pub baseline: OverlapRun,
    pub auto_sched: OverlapRun,
    /// Makespan reduction of `auto_sched` over `baseline`, in percent.
    pub reduction_pct: f64,
    pub sweep: Vec<OverlapRun>,
}

/// Drive out-of-core heat through `TileAcc` directly (the figure drivers'
/// [`baselines::RunResult`] carries no `AccStats`). Returns the run metrics
/// plus the final field (backed runs only) for bit-identity checks.
#[allow(clippy::too_many_arguments)]
fn overlap_heat_run(
    n: i64,
    steps: usize,
    regions: usize,
    slots: usize,
    lookahead: usize,
    policy: SlotPolicy,
    auto_step: bool,
    backed: bool,
    label: &str,
) -> (OverlapRun, Option<Vec<f64>>) {
    use gpu_sim::GpuSystem;
    use std::sync::Arc;
    use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
    use tida_acc::TileAcc;

    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(regions),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, backed);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, backed);
    ua.fill_valid(baselines::heat::heat_init());

    // The overlap scheduler targets the interconnect-starved regime (the
    // paper's out-of-core motivation): a K40m behind a narrow PCIe link
    // (Gen3 x4-class), where staging is the bottleneck and every byte the
    // scheduler avoids moving — Belady keeps hot regions resident, clean
    // write-backs are skipped — comes straight off the critical path. Both
    // runs share this config, so the comparison stays apples-to-apples.
    let mut machine = cfg();
    machine.name = "Tesla K40m / PCIe Gen3 x4".to_string();
    machine.h2d_pinned_bw = 3.3e9;
    machine.d2h_pinned_bw = 3.5e9;
    machine.host_stage_bw = 3.0e9;
    let mut gpu = GpuSystem::with_backing(machine, backed);
    gpu.set_tracing(true);
    let mut opts = AccOptions::paper()
        .with_policy(policy)
        .with_lookahead(lookahead);
    opts.max_slots = Some(slots);
    let mut acc = TileAcc::new(gpu, opts);
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let fac = kernels::heat::DEFAULT_FAC;
    let (mut src, mut dst) = (a, b);
    for _ in 0..steps {
        if auto_step {
            acc.begin_step().unwrap();
        }
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                kernels::heat::cost(t.num_cells()),
                "heat",
                move |d, s, bx| kernels::heat::step_tile(d, s, &bx, fac),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    let report = acc.report();
    assert!(
        !report.hazards.any(),
        "overlap bench must be hazard-free: {:?}",
        report.hazards
    );
    let trace = acc.gpu().trace();
    let stats = acc.stats();
    let crit_ms = |cat: &str| {
        report
            .critical_by_category
            .get(cat)
            .copied()
            .unwrap_or(gpu_sim::SimTime::ZERO)
            .as_ms_f64()
    };
    let run = OverlapRun {
        label: label.to_string(),
        lookahead,
        makespan_ms: report.elapsed.as_ms_f64(),
        // Single-device engine lanes: 0 = h2d, 1 = d2h, 2 = compute.
        h2d_overlap_fraction: trace.overlap_fraction(0, 2),
        d2h_overlap_fraction: trace.overlap_fraction(1, 2),
        transfer_critical_ms: crit_ms("h2d") + crit_ms("d2h"),
        compute_critical_ms: crit_ms("kernel"),
        host_critical_ms: crit_ms("host") + crit_ms("hostfn"),
        loads: stats.loads,
        hits: stats.hits,
        prefetch_loads: stats.prefetch_loads,
        prefetch_hits: stats.prefetch_hits,
        prefetch_fallbacks: stats.prefetch_fallbacks,
        evictions: stats.evictions,
        writebacks_deferred: stats.writebacks_deferred,
    };
    let data = if backed {
        let arr = if src == a { &ua } else { &ub };
        arr.to_dense()
    } else {
        None
    };
    (run, data)
}

/// R3 (PR 4): the automatic lookahead-prefetch overlap scheduler on
/// out-of-core heat — more regions than device slots, so every step stages
/// regions in and out. The baseline is the plain LRU pool with no
/// prefetching; the automatic run records the step plan, prefetches
/// `lookahead` steps ahead into idle slot streams, evicts by reuse
/// distance, and defers clean write-backs. Backed at quick scale, so the
/// two runs are also checked bit-identical.
pub fn overlap_bench(scale: Scale, lookahead: usize, sweep: bool) -> OverlapBench {
    let (n, steps, regions, slots, backed) = match scale {
        Scale::Paper => (128i64, 24usize, 8usize, 7usize, false),
        Scale::Quick => (64, 16, 8, 7, true),
    };
    let workload = format!(
        "out-of-core heat {n}^3, {steps} steps, {regions} regions x 2 arrays, {slots} slots"
    );
    let (baseline, base_data) = overlap_heat_run(
        n,
        steps,
        regions,
        slots,
        0,
        SlotPolicy::Lru,
        false,
        backed,
        "lru-no-prefetch",
    );
    let (auto_sched, auto_data) = overlap_heat_run(
        n,
        steps,
        regions,
        slots,
        lookahead,
        SlotPolicy::ReuseDistance,
        true,
        backed,
        "auto-overlap",
    );
    if backed {
        assert_eq!(
            base_data, auto_data,
            "the automatic scheduler must not change results"
        );
    }
    let reduction_pct = (1.0 - auto_sched.makespan_ms / baseline.makespan_ms.max(1e-12)) * 100.0;
    let sweep_runs = if sweep {
        [0usize, 1, 2, 4]
            .iter()
            .map(|&l| {
                overlap_heat_run(
                    n,
                    steps,
                    regions,
                    slots,
                    l,
                    SlotPolicy::ReuseDistance,
                    true,
                    backed,
                    &format!("auto-overlap-L{l}"),
                )
                .0
            })
            .collect()
    } else {
        Vec::new()
    };
    OverlapBench {
        workload,
        baseline,
        auto_sched,
        reduction_pct,
        sweep: sweep_runs,
    }
}

// ----------------------------------------------------------------------
// The temporal-blocking bench (BENCH_temporal): staged-byte amortization.
// ----------------------------------------------------------------------

/// One fused temporal-blocking run at a fixed depth `k`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TemporalRun {
    pub label: String,
    /// Fusion depth: time steps executed per region residency.
    pub depth: usize,
    pub makespan_ms: f64,
    /// Host→device bytes staged over the whole run.
    pub staged_bytes_h2d: u64,
    pub staged_bytes_d2h: u64,
    /// Host→device bytes per computed time step — the quantity temporal
    /// blocking amortizes and the gate measures.
    pub staged_bytes_per_step: f64,
    pub transfer_critical_ms: f64,
    pub compute_critical_ms: f64,
    pub loads: u64,
    pub hits: u64,
    pub fused_launches: u64,
    pub fused_substeps: u64,
}

/// The `BENCH_temporal.json` payload: the k=1 baseline vs the
/// automatically chosen depth, plus an optional depth sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TemporalBench {
    pub workload: String,
    /// Depth 1 through the same fused planner path (the control).
    pub baseline: TemporalRun,
    /// The automatically chosen depth.
    pub fused: TemporalRun,
    /// Depth picked by [`tida_acc::recommend_fusion_depth`] from the
    /// baseline's transfer/compute critical-path split.
    pub auto_depth: usize,
    /// Deepest halo the decomposition supports (thinnest region extent).
    pub halo_cap: usize,
    /// `baseline.staged_bytes_per_step / fused.staged_bytes_per_step` —
    /// how many× fewer bytes each computed step stages. The CI gate pins
    /// this at >= 1.5.
    pub staging_amortization_x: f64,
    pub makespan_speedup_x: f64,
    pub sweep: Vec<TemporalRun>,
}

/// Drive out-of-core heat through the fused `TileAcc` path at depth `k` on
/// the interconnect-starved machine (same PCIe Gen3 x4-class link as the
/// overlap bench). Returns the run metrics plus the final field (backed
/// runs only) for bit-identity checks.
fn temporal_heat_run(
    n: i64,
    steps: usize,
    regions: usize,
    slots: usize,
    depth: usize,
    backed: bool,
    label: &str,
) -> (TemporalRun, Option<Vec<f64>>) {
    use gpu_sim::GpuSystem;
    use std::sync::Arc;
    use tida::{Decomposition, Domain, ExchangeMode, RegionSpec, TileArray};
    use tida_acc::TileAcc;

    assert!(
        steps.is_multiple_of(depth),
        "steps ({steps}) must be a multiple of the depth ({depth})"
    );
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(regions),
    ));
    let mode = if depth == 1 {
        ExchangeMode::Faces
    } else {
        ExchangeMode::Full
    };
    let ua = TileArray::new(decomp.clone(), depth as i64, mode, backed);
    let ub = TileArray::new(decomp.clone(), depth as i64, mode, backed);
    ua.fill_valid(baselines::heat::heat_init());

    // Same interconnect-starved regime as the overlap bench: a K40m behind
    // a narrow PCIe link, where staging dominates and deeper fusion buys
    // k× fewer trips per computed step.
    let mut machine = cfg();
    machine.name = "Tesla K40m / PCIe Gen3 x4".to_string();
    machine.h2d_pinned_bw = 3.3e9;
    machine.d2h_pinned_bw = 3.5e9;
    machine.host_stage_bw = 3.0e9;
    let mut gpu = GpuSystem::with_backing(machine, backed);
    gpu.set_tracing(true);
    let mut opts = AccOptions::paper()
        .with_policy(SlotPolicy::ReuseDistance)
        .with_lookahead(2);
    opts.max_slots = Some(slots);
    let mut acc = TileAcc::new(gpu, opts);
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let fac = kernels::heat::DEFAULT_FAC;
    let (mut src, mut dst) = (a, b);
    for _ in 0..steps / depth {
        acc.begin_step().unwrap();
        acc.fill_boundary(src).unwrap();
        for r in 0..decomp.num_regions() {
            let valid = decomp.region_box(r);
            acc.compute_fused(
                r,
                dst,
                src,
                depth,
                kernels::heat::fused_cost(depth, &valid),
                "heat-fused",
                move |d, s, bx| kernels::heat::step_tile(d, s, &bx, fac),
            )
            .unwrap();
        }
        if depth % 2 == 1 {
            std::mem::swap(&mut src, &mut dst);
        }
    }
    acc.sync_to_host(src).unwrap();
    let report = acc.report();
    assert!(
        !report.hazards.any(),
        "temporal bench must be hazard-free: {:?}",
        report.hazards
    );
    let stats = acc.stats();
    assert_eq!(stats.integrity_detected, 0, "temporal bench must be clean");
    let crit_ms = |cat: &str| {
        report
            .critical_by_category
            .get(cat)
            .copied()
            .unwrap_or(gpu_sim::SimTime::ZERO)
            .as_ms_f64()
    };
    let bytes_h2d = acc.gpu().stats_bytes_h2d();
    let run = TemporalRun {
        label: label.to_string(),
        depth,
        makespan_ms: report.elapsed.as_ms_f64(),
        staged_bytes_h2d: bytes_h2d,
        staged_bytes_d2h: acc.gpu().stats_bytes_d2h(),
        staged_bytes_per_step: bytes_h2d as f64 / steps as f64,
        transfer_critical_ms: crit_ms("h2d") + crit_ms("d2h"),
        compute_critical_ms: crit_ms("kernel"),
        loads: stats.loads,
        hits: stats.hits,
        fused_launches: stats.kernels_fused,
        fused_substeps: stats.fused_substeps,
    };
    let data = if backed {
        let arr = if src == a { &ua } else { &ub };
        arr.to_dense()
    } else {
        None
    };
    (run, data)
}

/// The temporal-blocking bench behind the `temporal` bin and the CI
/// `temporal-gate` lane.
///
/// A depth-1 probe run measures the transfer/compute critical-path split
/// (the same numbers `BENCH_overlap.json` reports);
/// [`tida_acc::recommend_fusion_depth`] turns that split into a depth,
/// capped by the decomposition's halo limit
/// ([`tida::Decomposition::max_ghost_depth`]) and step-count
/// divisibility; the fused run then executes that many time steps per
/// residency. Backed at quick scale, where baseline and fused runs are
/// also checked bit-identical.
pub fn temporal_bench(scale: Scale, sweep: bool) -> TemporalBench {
    use std::sync::Arc;
    use tida::{Decomposition, Domain, RegionSpec};

    let (n, steps, regions, slots, backed) = match scale {
        Scale::Paper => (128i64, 48usize, 16usize, 4usize, false),
        Scale::Quick => (64, 24, 8, 4, true),
    };
    let workload = format!(
        "out-of-core heat {n}^3, {steps} steps, {regions} regions x 2 arrays, {slots} slots, \
         PCIe Gen3 x4-class link"
    );
    let halo_cap = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(regions),
    ))
    .max_ghost_depth() as usize;

    let (baseline, base_data) = temporal_heat_run(n, steps, regions, slots, 1, backed, "depth-1");
    // Pick k from the probe's critical-path split, capped by what the halo
    // and the step count allow.
    let mut cap = halo_cap.min(steps);
    while cap > 1 && !steps.is_multiple_of(cap) {
        cap -= 1;
    }
    let auto_depth = tida_acc::recommend_fusion_depth(
        baseline.transfer_critical_ms,
        baseline.compute_critical_ms,
        cap,
    );
    let (fused, fused_data) = temporal_heat_run(
        n,
        steps,
        regions,
        slots,
        auto_depth,
        backed,
        &format!("auto-depth-{auto_depth}"),
    );
    if backed {
        assert_eq!(
            base_data, fused_data,
            "fusion must not change results (depth {auto_depth})"
        );
    }
    let staging_amortization_x =
        baseline.staged_bytes_per_step / fused.staged_bytes_per_step.max(1e-12);
    let makespan_speedup_x = baseline.makespan_ms / fused.makespan_ms.max(1e-12);
    let sweep_runs = if sweep {
        [1usize, 2, 4, 8]
            .iter()
            .filter(|&&k| k <= cap && steps.is_multiple_of(k))
            .map(|&k| {
                temporal_heat_run(n, steps, regions, slots, k, backed, &format!("depth-{k}")).0
            })
            .collect()
    } else {
        Vec::new()
    };
    TemporalBench {
        workload,
        baseline,
        fused,
        auto_depth,
        halo_cap,
        staging_amortization_x,
        makespan_speedup_x,
        sweep: sweep_runs,
    }
}

/// The options struct used across the harness (re-exported for benches).
pub fn paper_acc_options() -> AccOptions {
    AccOptions::paper()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Quick-scale smoke tests that also assert the headline shapes.

    #[test]
    fn overlap_bench_auto_scheduler_cuts_makespan() {
        let b = overlap_bench(Scale::Quick, 2, false);
        assert!(
            b.reduction_pct >= 15.0,
            "automatic scheduler must cut the out-of-core makespan by >= 15%: \
             baseline {:.3}ms auto {:.3}ms ({:.1}%)",
            b.baseline.makespan_ms,
            b.auto_sched.makespan_ms,
            b.reduction_pct
        );
        assert!(b.auto_sched.prefetch_loads > 0, "prefetches must be issued");
        assert!(b.auto_sched.prefetch_hits > 0, "prefetches must be used");
        assert!(
            b.auto_sched.loads < b.baseline.loads,
            "reuse-distance eviction must avoid reloads: {} vs {}",
            b.auto_sched.loads,
            b.baseline.loads
        );
        assert!(
            b.auto_sched.transfer_critical_ms < b.baseline.transfer_critical_ms,
            "the scheduler must take transfer time off the critical path: {} vs {}",
            b.auto_sched.transfer_critical_ms,
            b.baseline.transfer_critical_ms
        );
    }

    #[test]
    fn checkpoint_overhead_shape_crash_costs_extra() {
        let f = checkpoint_overhead(Scale::Quick);
        let clean = f.series.iter().find(|s| s.name == "fault-free").unwrap();
        let crashed = f
            .series
            .iter()
            .find(|s| s.name == "crash at midpoint")
            .unwrap();
        assert_eq!(clean.points.len(), 6);
        assert_eq!(crashed.points.len(), 6);
        for ((l, c), (_, x)) in clean.points.iter().zip(&crashed.points) {
            assert!(
                x > c,
                "crashed run must cost more than fault-free at interval {l}: {x} <= {c}"
            );
        }
    }

    #[test]
    fn integrity_overhead_shape_three_modes_per_region_count() {
        let f = integrity_overhead(Scale::Quick);
        assert_eq!(f.series.len(), 3);
        for s in &f.series {
            assert_eq!(s.points.len(), 3, "{}", s.name);
            for (l, ms) in &s.points {
                assert!(*ms > 0.0, "{}/{l}", s.name);
            }
        }
        // Wall-clock noise forbids ordering asserts; the schedule-equality
        // and verified-count invariants are asserted inside the runner.
    }

    #[test]
    fn fig1_shape_pinned_fastest_managed_slowest() {
        let f = fig1(Scale::Quick);
        let get = |series: &str, x: &str| {
            f.series
                .iter()
                .find(|s| s.name == series)
                .and_then(|s| s.points.iter().find(|(l, _)| l == x))
                .map(|&(_, v)| v)
                .unwrap()
        };
        for model in ["CUDA", "OpenACC", "CUDAmem+OpenACCkern"] {
            assert!(get(model, "pinned") < get(model, "pageable"), "{model}");
            assert!(get(model, "pageable") < get(model, "managed"), "{model}");
        }
        // CUDA beats OpenACC within each memory class.
        for mem in ["pageable", "pinned", "managed"] {
            assert!(get("CUDA", mem) < get("OpenACC", mem), "{mem}");
        }
    }

    #[test]
    fn fig5_shape_tida_wins_low_iters_and_converges() {
        // Shape assertions hold at the paper's 512^3 scale (fixed launch
        // overheads distort the quick scale); timing-only runs are cheap.
        let f = fig5(Scale::Paper);
        let get = |series: &str, x: &str| {
            f.series
                .iter()
                .find(|s| s.name == series)
                .and_then(|s| s.points.iter().find(|(l, _)| l == x))
                .map(|&(_, v)| v)
                .unwrap()
        };
        // At 1 iteration TiDA-acc has the highest speedup.
        assert!(get("TiDA-acc(16r)", "1") > get("CUDA-pinned", "1"));
        assert!(get("TiDA-acc(16r)", "1") > get("OpenACC-pageable", "1"));
        // The TiDA-acc advantage over CUDA-pinned shrinks with iterations.
        let ratio_1 = get("TiDA-acc(16r)", "1") / get("CUDA-pinned", "1");
        let ratio_100 = get("TiDA-acc(16r)", "100") / get("CUDA-pinned", "100");
        assert!(ratio_100 < ratio_1);
    }

    #[test]
    fn fig6_shape_math_ordering() {
        let f = fig6(Scale::Quick);
        let s = &f.series[0];
        let get = |x: &str| {
            s.points
                .iter()
                .find(|(l, _)| l == x)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert!(get("CUDA") > get("OpenACC-pageable"));
        assert!(get("CUDA") > get("CUDA-pinned-fastmath"));
        assert!(get("CUDA") > get("TiDA-acc(16r)"));
    }

    #[test]
    fn fig7_gantt_shows_overlap() {
        let g = fig7();
        assert!(g.contains("h2d"));
        assert!(g.contains("compute"));
        assert!(!g.contains("h2d||compute 0ns"));
    }

    #[test]
    fn fig8_shape_limited_close_to_full() {
        let f = fig8(Scale::Quick);
        let s = &f.series[0];
        let get = |x: &str| {
            s.points
                .iter()
                .find(|(l, _)| l == x)
                .map(|&(_, v)| v)
                .unwrap()
        };
        let full = get("TiDA-acc(16r)");
        let limited = get("TiDA-acc(16r,2slots)");
        let single = get("TiDA-acc(1r)");
        assert!(limited / full < 1.10, "limited {limited} vs full {full}");
        // The single-region configuration is close too (no library overhead).
        assert!(single / full < 1.15, "single {single} vs full {full}");
    }

    #[test]
    fn extension_nvlink_preserves_low_iter_ordering() {
        let f = nvlink_whatif(Scale::Paper);
        let get = |series: &str, x: &str| {
            f.series
                .iter()
                .find(|s| s.name == series)
                .and_then(|s| s.points.iter().find(|(l, _)| l == x))
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert!(get("TiDA-acc(16r)", "1") > get("CUDA-pinned", "1"));
    }

    #[test]
    fn extension_multi_gpu_two_devices_beat_one() {
        let f = multi_gpu_scaling(Scale::Paper);
        let s = &f.series[0];
        let get = |x: &str| {
            s.points
                .iter()
                .find(|(l, _)| l == x)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert!(get("2gpu") < get("1gpu"));
    }

    #[test]
    fn extension_interconnect_monotone_in_bandwidth() {
        // Slower links -> overlap matters more: the speedup series must be
        // (weakly) decreasing in bandwidth.
        let f = interconnect_sweep(Scale::Paper);
        let vals: Vec<f64> = f.series[0].points.iter().map(|&(_, v)| v).collect();
        for w in vals.windows(2) {
            assert!(
                w[0] >= w[1] * 0.98,
                "speedup should fall as links speed up: {vals:?}"
            );
        }
        // At 0.25x bandwidth, overlap is decisive.
        assert!(vals[0] > 1.3, "slow-link speedup {vals:?}");
    }

    #[test]
    fn extension_crossover_gpu_wins_large_cpu_wins_small() {
        let f = cpu_gpu_crossover(Scale::Paper);
        let get = |series: &str, x: &str| {
            f.series
                .iter()
                .find(|s| s.name == series)
                .and_then(|s| s.points.iter().find(|(l, _)| l == x))
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert!(get("TiDA-acc GPU path", "512^3") < get("TiDA-acc CPU path", "512^3"));
        assert!(get("TiDA-acc CPU path", "16^3") < get("TiDA-acc GPU path", "16^3"));
    }

    #[test]
    fn extension_temporal_blocking_wins_when_staging() {
        let f = temporal_blocking(Scale::Paper);
        let s = &f.series[0];
        let get = |x: &str| {
            s.points
                .iter()
                .find(|(l, _)| l == x)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert!(get("block 4") < get("block 2"));
        assert!(get("block 2") < get("block 1"));
    }

    #[test]
    fn temporal_bench_amortizes_staged_bytes() {
        // Quick scale is backed, so temporal_bench also asserts the fused
        // run bit-identical to the depth-1 baseline internally.
        let b = temporal_bench(Scale::Quick, true);
        assert!(
            b.auto_depth >= 2,
            "the PCIe-starved regime must pick a depth > 1, got {}",
            b.auto_depth
        );
        assert!(
            b.staging_amortization_x >= 1.5,
            "fusion must stage >= 1.5x fewer bytes per computed step: \
             {:.0} B/step baseline vs {:.0} B/step fused ({:.2}x)",
            b.baseline.staged_bytes_per_step,
            b.fused.staged_bytes_per_step,
            b.staging_amortization_x
        );
        assert!(
            b.fused.makespan_ms < b.baseline.makespan_ms,
            "fusion must beat the depth-1 makespan: {:.3}ms vs {:.3}ms",
            b.fused.makespan_ms,
            b.baseline.makespan_ms
        );
        assert_eq!(
            b.fused.fused_substeps,
            b.fused.fused_launches * b.auto_depth as u64,
            "every fused launch must amortize exactly k sub-steps"
        );
        // The sweep is monotone in staged bytes: deeper always stages less.
        let per_step: Vec<f64> = b.sweep.iter().map(|r| r.staged_bytes_per_step).collect();
        for w in per_step.windows(2) {
            assert!(
                w[1] < w[0],
                "staged bytes/step must fall with depth: {per_step:?}"
            );
        }
    }

    #[test]
    fn ablation_ghost_device_wins() {
        let f = ablation_ghost(Scale::Quick);
        let s = &f.series[0];
        let get = |x: &str| {
            s.points
                .iter()
                .find(|(l, _)| l == x)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert!(get("device-ghosts") < get("host-ghosts"));
    }

    #[test]
    fn ablation_transfers_paper_defaults_fastest() {
        let f = ablation_transfers(Scale::Quick);
        let s = &f.series[0];
        let get = |x: &str| {
            s.points
                .iter()
                .find(|(l, _)| l == x)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert!(get("paper-defaults") <= get("upload-written"));
    }
}
