//! `tida-bench` — the evaluation harness.
//!
//! [`experiments`] regenerates every figure of the paper's evaluation
//! (Figs. 1, 5, 6, 7, 8) plus the ablations listed in DESIGN.md;
//! [`report`] renders them as tables and bar charts. The `figures` binary is
//! the command-line front end; the Criterion benches under `benches/` wrap
//! the same runners.

pub mod cluster;
pub mod experiments;
pub mod report;
pub mod serving;
pub mod simspeed;
