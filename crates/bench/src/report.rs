//! Text rendering for figure data: aligned tables and horizontal bar charts.

use serde::Serialize;

/// One named series of (x-label, value) points.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    pub name: String,
    pub points: Vec<(String, f64)>,
}

impl Series {
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push((x.into(), y));
    }
}

/// Data behind one regenerated figure.
#[derive(Debug, Clone, Serialize)]
pub struct FigData {
    pub title: String,
    /// What the values are (e.g. `time [ms]` or `speedup over CUDA-pageable`).
    pub unit: String,
    pub series: Vec<Series>,
    pub notes: Vec<String>,
}

impl FigData {
    pub fn new(title: impl Into<String>, unit: impl Into<String>) -> Self {
        FigData {
            title: title.into(),
            unit: unit.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// All x-labels in first-appearance order.
    fn x_labels(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = Vec::new();
        for s in &self.series {
            for (x, _) in &s.points {
                if !labels.contains(&x.as_str()) {
                    labels.push(x);
                }
            }
        }
        labels
    }

    fn value(&self, series: &Series, x: &str) -> Option<f64> {
        series.points.iter().find(|(l, _)| l == x).map(|&(_, v)| v)
    }

    /// Render as an aligned table: one row per series, one column per x.
    pub fn render_table(&self) -> String {
        let xs = self.x_labels();
        let name_w = self
            .series
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let col_w = xs.iter().map(|x| x.len()).max().unwrap_or(6).max(10);

        let mut out = format!("## {}  ({})\n\n", self.title, self.unit);
        out.push_str(&format!("{:name_w$}", ""));
        for x in &xs {
            out.push_str(&format!("  {x:>col_w$}"));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("{:name_w$}", s.name));
            for x in &xs {
                match self.value(s, x) {
                    Some(v) => out.push_str(&format!("  {v:>col_w$.3}")),
                    None => out.push_str(&format!("  {:>col_w$}", "-")),
                }
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Serialize to pretty JSON (for `figures --json`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("figure data serializes")
    }

    /// Render each x-column as a labelled horizontal bar chart.
    pub fn render_bars(&self, width: usize) -> String {
        let xs = self.x_labels();
        let max = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(_, v)| v))
            .fold(0f64, f64::max)
            .max(1e-12);
        let name_w = self
            .series
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        for x in xs {
            if self.series.iter().filter_map(|s| self.value(s, x)).count() == 0 {
                continue;
            }
            out.push_str(&format!("[{x}]\n"));
            for s in &self.series {
                if let Some(v) = self.value(s, x) {
                    let bar = ((v / max) * width as f64).round() as usize;
                    out.push_str(&format!(
                        "  {:name_w$} |{} {v:.3}\n",
                        s.name,
                        "#".repeat(bar.max(1))
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigData {
        let mut f = FigData::new("Fig X", "ms");
        let mut a = Series::new("cuda");
        a.push("1", 10.0);
        a.push("10", 20.0);
        let mut b = Series::new("tida-acc");
        b.push("1", 5.0);
        f.series.push(a);
        f.series.push(b);
        f.notes.push("shape only".into());
        f
    }

    #[test]
    fn table_contains_all_cells() {
        let t = sample().render_table();
        assert!(t.contains("Fig X"));
        assert!(t.contains("cuda"));
        assert!(t.contains("tida-acc"));
        assert!(t.contains("10.000"));
        assert!(t.contains("5.000"));
        assert!(t.contains('-'));
        assert!(t.contains("note: shape only"));
    }

    #[test]
    fn bars_scale_to_max() {
        let b = sample().render_bars(20);
        assert!(b.contains("[1]"));
        assert!(b.contains("[10]"));
        let long = "#".repeat(20);
        assert!(b.contains(&long));
    }

    #[test]
    fn json_roundtrips_structure() {
        let j = sample().to_json();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["title"], "Fig X");
        assert_eq!(v["series"][0]["name"], "cuda");
        assert_eq!(v["series"][0]["points"][1][1], 20.0);
    }

    #[test]
    fn empty_figure_renders() {
        let f = FigData::new("empty", "ms");
        assert!(f.render_table().contains("empty"));
        assert_eq!(f.render_bars(10), "");
    }
}
