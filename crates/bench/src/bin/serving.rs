//! `serving` — the multi-tenant serving-runtime bench and regression gate.
//!
//! Floods the serving runtime with an open-loop job mix (≥1000 queued jobs
//! across ≥4 tenants) and reports throughput (jobs per simulated second)
//! plus the virtual-time latency distribution, for a clean platform and a
//! transiently faulted one.
//!
//! ```text
//! cargo run --release -p tida-bench --bin serving -- --quick --json BENCH_serving.json
//! cargo run --release -p tida-bench --bin serving -- --quick --check results/BENCH_serving_baseline.json
//! cargo run --release -p tida-bench --bin serving -- --soak
//! ```
//!
//! `--check BASELINE.json` is the CI gate: the run fails (exit 1) if clean
//! throughput drops, or p99 latency rises, more than 5% against the
//! committed baseline. Virtual-time metrics are deterministic, so any trip
//! of the gate is a real scheduling change, not noise.
//!
//! `--soak` is the nightly chaos lane: a matrix of tenant-scoped fault
//! plans (transient, dead-lane, corruption, crash, device-death,
//! link-flap) × seeds, each cell checked for the full isolation contract —
//! an isolation violation or a lost admitted job fails the run.
//! `FAULT_SEED_OFFSET` displaces the seed window; `--soak-cells N` sets
//! the per-class cell count.

use tida_bench::serving::{serving_bench, soak_cell, ServingBench, ServingRun};

/// Regressions beyond this fraction fail the gate.
const TOLERANCE: f64 = 0.05;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn render_run(r: &ServingRun) -> String {
    format!(
        "{:<16} {:>5} jobs / {} tenants | {:>9.1} jobs/s | lat p50 {:>7.3} ms, p99 {:>7.3} ms, \
         mean {:>7.3} ms | makespan {:>8.3} ms | ok {} fail {} | xfer-faults {}, job-retries {}, \
         preemptions {} | cross-tenant {}, hazards {}",
        r.label,
        r.jobs,
        r.tenants,
        r.jobs_per_sec,
        r.p50_ms,
        r.p99_ms,
        r.mean_ms,
        r.makespan_ms,
        r.completed,
        r.failed,
        r.transfer_fault_events,
        r.job_retries,
        r.preemptions,
        r.cross_tenant_touches,
        r.hazards,
    )
}

fn render(b: &ServingBench) -> String {
    let mut out = String::new();
    out.push_str(&format!("# BENCH_serving — {}\n", b.workload));
    out.push_str(&format!("{}\n", render_run(&b.clean)));
    out.push_str(&format!("{}\n", render_run(&b.faulted)));
    out
}

fn baseline_metric(path: &str, field: &str) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("baseline {path} is not JSON: {e}"));
    v["clean"][field]
        .as_f64()
        .unwrap_or_else(|| panic!("baseline {path} lacks clean.{field}"))
}

fn seed_offset() -> u64 {
    std::env::var("FAULT_SEED_OFFSET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn run_soak(cells_per_class: u64) -> bool {
    let offset = seed_offset();
    let mut failures = 0u64;
    let mut fault_events = 0u64;
    let classes = [
        "transient",
        "dead-d2h",
        "corruption",
        "crash",
        "device-death",
        "link-flap",
    ];
    for (kind, name) in classes.iter().enumerate() {
        for s in 0..cells_per_class {
            let seed = 1 + offset + s;
            match soak_cell(kind, seed) {
                Ok(events) => fault_events += events,
                Err(msg) => {
                    eprintln!("SOAK FAIL [{name}]: {msg}");
                    failures += 1;
                }
            }
        }
    }
    println!(
        "soak: {} cells ({} per fault class, seed offset {offset}), {} injected fault events, \
         {failures} isolation violations",
        classes.len() as u64 * cells_per_class,
        cells_per_class,
        fault_events,
    );
    failures == 0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--soak") {
        let cells: u64 = flag_value(&args, "--soak-cells")
            .map(|v| v.parse().expect("--soak-cells takes an integer"))
            .unwrap_or(12);
        if !run_soak(cells) {
            std::process::exit(1);
        }
        return;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let bench = serving_bench(quick);
    let text = render(&bench);
    print!("{text}");

    if let Some(path) = flag_value(&args, "--json") {
        let json = serde_json::to_string_pretty(&bench).expect("serialize bench");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        let txt_path = format!("{}.txt", path.trim_end_matches(".json"));
        std::fs::write(&txt_path, &text).unwrap_or_else(|e| panic!("cannot write {txt_path}: {e}"));
        eprintln!("wrote {path} and {txt_path}");
    }

    let mut failed = false;
    if let Some(path) = flag_value(&args, "--check") {
        let base_tput = baseline_metric(&path, "jobs_per_sec");
        let base_p99 = baseline_metric(&path, "p99_ms");
        let tput = bench.clean.jobs_per_sec;
        let p99 = bench.clean.p99_ms;
        let tput_floor = base_tput * (1.0 - TOLERANCE);
        let p99_ceil = base_p99 * (1.0 + TOLERANCE);
        if tput < tput_floor {
            eprintln!(
                "FAIL: clean throughput {tput:.1} jobs/s dropped more than {:.0}% below the \
                 committed baseline {base_tput:.1} (floor {tput_floor:.1}; baseline file {path})",
                TOLERANCE * 100.0
            );
            failed = true;
        }
        if p99 > p99_ceil {
            eprintln!(
                "FAIL: clean p99 {p99:.3} ms rose more than {:.0}% over the committed baseline \
                 {base_p99:.3} ms (ceiling {p99_ceil:.3} ms; baseline file {path})",
                TOLERANCE * 100.0
            );
            failed = true;
        }
        if !failed {
            eprintln!(
                "perf gate OK: {tput:.1} jobs/s (floor {tput_floor:.1}), p99 {p99:.3} ms \
                 (ceiling {p99_ceil:.3} ms)"
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
