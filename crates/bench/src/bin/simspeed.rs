//! `simspeed` — simulator-throughput harness and CI regression gate.
//!
//! Times repeated deterministic out-of-core heat runs (the overlap bench's
//! workload) at every trace level, sequential and fanned out over OS
//! threads, and reports runs/sec and ns per scheduler decision point.
//!
//! ```text
//! cargo run --release -p tida-bench --bin simspeed -- --json BENCH_simspeed.json
//! cargo run --release -p tida-bench --bin simspeed -- --quick --check results/BENCH_simspeed_baseline.json
//! ```
//!
//! `--check BASELINE.json` is the CI gate: the run fails (exit 1) if the
//! sequential `TraceLevel::Off` runs/sec regressed more than 10% against
//! the committed baseline. Every timed run is also asserted bit-identical
//! to the Full/sequential reference, so a "speedup" that changes the
//! simulation fails loudly instead of passing quietly.

use tida_bench::experiments::Scale;
use tida_bench::simspeed::{simspeed_bench, SimspeedBench};

/// runs/sec regressions beyond this fraction fail the gate. Wider than the
/// overlap gate's 5% because wall-clock throughput on shared CI runners is
/// noisier than simulated makespans.
const TOLERANCE: f64 = 0.10;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn render(b: &SimspeedBench) -> String {
    let mut out = String::new();
    out.push_str(&format!("# BENCH_simspeed — {}\n", b.workload));
    out.push_str(&format!(
        "host parallelism {} (fanout rows use {} threads)\n",
        b.host_parallelism, b.fanout_threads
    ));
    for c in &b.configs {
        out.push_str(&format!(
            "trace {:<8} x{:<2} threads: {:>8.1} runs/sec ({:>7.3} ms/run, {:>6.0} ns/decision, \
             {} decisions, {} ops, makespan {:.3} ms)\n",
            c.trace_level,
            c.threads,
            c.runs_per_sec,
            1e3 / c.runs_per_sec.max(1e-9),
            c.ns_per_decision_point,
            c.decision_points_per_run,
            c.ops_per_run,
            c.makespan_ms,
        ));
    }
    out.push_str(&format!(
        "gate (sequential, trace Off): {:.1} runs/sec | best: {:.1} runs/sec\n",
        b.gate_runs_per_sec, b.best_runs_per_sec,
    ));
    if let Some(speedup) = b.speedup_vs_pre_overhaul {
        out.push_str(&format!(
            "{speedup:.1}x vs pre-overhaul {:.1} runs/sec (paper scale, sequential)\n",
            b.pre_overhaul_runs_per_sec,
        ));
    }
    out
}

/// Pull `gate_runs_per_sec` out of a previously emitted payload.
fn baseline_gate(path: &str) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("baseline {path} is not JSON: {e}"));
    v["gate_runs_per_sec"]
        .as_f64()
        .unwrap_or_else(|| panic!("baseline {path} lacks gate_runs_per_sec"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let threads: usize = flag_value(&args, "--threads")
        .map(|v| v.parse().expect("--threads takes an integer"))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let runs: u64 = flag_value(&args, "--runs")
        .map(|v| v.parse().expect("--runs takes an integer"))
        .unwrap_or(if quick { 60 } else { 40 });

    let bench = simspeed_bench(scale, threads, runs);
    let text = render(&bench);
    print!("{text}");

    if let Some(path) = flag_value(&args, "--json") {
        let json = serde_json::to_string_pretty(&bench).expect("serialize bench");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        let txt_path = format!("{}.txt", path.trim_end_matches(".json"));
        std::fs::write(&txt_path, &text).unwrap_or_else(|e| panic!("cannot write {txt_path}: {e}"));
        eprintln!("wrote {path} and {txt_path}");
    }

    if let Some(path) = flag_value(&args, "--check") {
        let committed = baseline_gate(&path);
        let current = bench.gate_runs_per_sec;
        let limit = committed * (1.0 - TOLERANCE);
        if current < limit {
            eprintln!(
                "FAIL: {current:.1} runs/sec regressed more than {:.0}% below the committed \
                 baseline {committed:.1} runs/sec (limit {limit:.1}; baseline file {path})",
                TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "simspeed gate OK: {current:.1} runs/sec vs committed {committed:.1} (limit {limit:.1})"
        );
    }
}
