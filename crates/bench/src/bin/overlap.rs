//! `overlap` — the overlap-scheduler perf harness and regression gate.
//!
//! Runs out-of-core heat twice (plain LRU pool with no prefetching vs the
//! automatic lookahead-prefetch scheduler) and reports makespan, the
//! overlap fractions, the critical-path split, and the caching counters.
//!
//! ```text
//! cargo run --release -p tida-bench --bin overlap -- --quick --json BENCH_overlap.json
//! cargo run --release -p tida-bench --bin overlap -- --quick --check results/BENCH_overlap_baseline.json
//! cargo run --release -p tida-bench --bin overlap -- --sweep
//! ```
//!
//! `--check BASELINE.json` is the CI perf gate: the run fails (exit 1) if
//! the automatic scheduler's makespan regressed more than 5% against the
//! committed baseline, or if it no longer beats the LRU baseline by at
//! least 15%.

use tida_bench::experiments::{overlap_bench, OverlapBench, OverlapRun, Scale};

/// Makespan regressions beyond this fraction fail the gate.
const TOLERANCE: f64 = 0.05;
/// The automatic scheduler must beat the LRU no-prefetch baseline by at
/// least this many percent (the PR's acceptance criterion).
const MIN_REDUCTION_PCT: f64 = 15.0;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn render_run(r: &OverlapRun) -> String {
    format!(
        "{:<18} L={} makespan {:>8.3} ms | xfer {:>8.3} ms, compute {:>6.3} ms, host {:>5.3} ms \
         | h2d-overlap {:>4.1}% | loads {:>3} (prefetch {}, hits {}/{}), evictions {}, \
         fallbacks {}, deferred-wb {}",
        r.label,
        r.lookahead,
        r.makespan_ms,
        r.transfer_critical_ms,
        r.compute_critical_ms,
        r.host_critical_ms,
        r.h2d_overlap_fraction * 100.0,
        r.loads,
        r.prefetch_loads,
        r.prefetch_hits,
        r.hits + r.prefetch_hits,
        r.evictions,
        r.prefetch_fallbacks,
        r.writebacks_deferred,
    )
}

fn render(b: &OverlapBench) -> String {
    let mut out = String::new();
    out.push_str(&format!("# BENCH_overlap — {}\n", b.workload));
    out.push_str(&format!("{}\n", render_run(&b.baseline)));
    out.push_str(&format!("{}\n", render_run(&b.auto_sched)));
    out.push_str(&format!(
        "makespan reduction: {:.1}% (gate: >= {MIN_REDUCTION_PCT:.0}%)\n",
        b.reduction_pct
    ));
    for r in &b.sweep {
        out.push_str(&format!("{}\n", render_run(r)));
    }
    out
}

/// Pull `auto_sched.makespan_ms` out of a previously emitted payload.
fn baseline_makespan(path: &str) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("baseline {path} is not JSON: {e}"));
    v["auto_sched"]["makespan_ms"]
        .as_f64()
        .unwrap_or_else(|| panic!("baseline {path} lacks auto_sched.makespan_ms"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sweep = args.iter().any(|a| a == "--sweep");
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let lookahead: usize = flag_value(&args, "--lookahead")
        .map(|v| v.parse().expect("--lookahead takes an integer"))
        .unwrap_or(2);

    let bench = overlap_bench(scale, lookahead, sweep);
    let text = render(&bench);
    print!("{text}");

    if let Some(path) = flag_value(&args, "--json") {
        let json = serde_json::to_string_pretty(&bench).expect("serialize bench");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        let txt_path = format!("{}.txt", path.trim_end_matches(".json"));
        std::fs::write(&txt_path, &text).unwrap_or_else(|e| panic!("cannot write {txt_path}: {e}"));
        eprintln!("wrote {path} and {txt_path}");
    }

    let mut failed = false;
    if bench.reduction_pct < MIN_REDUCTION_PCT {
        eprintln!(
            "FAIL: automatic scheduler reduction {:.1}% is below the {MIN_REDUCTION_PCT:.0}% gate",
            bench.reduction_pct
        );
        failed = true;
    }
    if let Some(path) = flag_value(&args, "--check") {
        let committed = baseline_makespan(&path);
        let current = bench.auto_sched.makespan_ms;
        let limit = committed * (1.0 + TOLERANCE);
        if current > limit {
            eprintln!(
                "FAIL: makespan {current:.3} ms regressed more than {:.0}% over the committed \
                 baseline {committed:.3} ms (limit {limit:.3} ms; baseline file {path})",
                TOLERANCE * 100.0
            );
            failed = true;
        } else {
            eprintln!(
                "perf gate OK: makespan {current:.3} ms vs committed baseline {committed:.3} ms \
                 (limit {limit:.3} ms)"
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
