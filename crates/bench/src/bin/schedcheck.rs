//! `schedcheck` — the schedule-space checking lane runner.
//!
//! Drives the model checker's three tiers over the standard program suite
//! and emits a machine-readable summary plus, on failure, a replayable
//! counterexample file for CI to upload as an artifact.
//!
//! ```text
//! cargo run --release -p tida-bench --bin schedcheck -- --tier main --json OUT.json
//! cargo run --release -p tida-bench --bin schedcheck -- --tier nightly --artifact-dir artifacts/
//! ```
//!
//! * `--tier main` — exhaustive DFS on the small fixed programs; the whole
//!   lane is budgeted to finish well under a minute so it rides in the
//!   push/PR pipeline.
//! * `--tier nightly` — sleep-set DPOR on the full heat step program plus
//!   seeded random walks at paper scale (more steps, transient faults,
//!   mid-step restore), for the scheduled lane.
//!
//! Exit status 1 on any schedule-dependent divergence; the counterexample
//! render (forced vector + interleaving) is printed and, with
//! `--artifact-dir`, written to `schedcheck-counterexample-<name>.txt`.

use schedcheck::programs::{self, ClusterHeatConfig, FusedConfig, HeatConfig};
use schedcheck::{CheckSpec, Checker, Program, Report, Strategy};
use serde::Serialize;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

struct Lane {
    name: &'static str,
    strategy: Strategy,
    program: Program,
}

/// One lane's result in the JSON summary.
#[derive(Serialize)]
struct LaneSummary {
    lane: &'static str,
    schedules: u64,
    complete: bool,
    max_decision_points: usize,
    elapsed_s: f64,
    /// Exploration throughput — the number the simulator hot-path overhaul
    /// moved; CI logs carry it so budget headroom stays visible.
    schedules_per_sec: f64,
    failed: bool,
    forced: Option<Vec<usize>>,
    reason: Option<String>,
}

#[derive(Serialize)]
struct TierSummary {
    tier: String,
    lanes: Vec<LaneSummary>,
}

fn main_tier() -> Vec<Lane> {
    vec![
        Lane {
            name: "ghost-exchange-exhaustive",
            strategy: Strategy::Exhaustive {
                max_schedules: 1000,
            },
            program: programs::ghost_exchange(),
        },
        Lane {
            name: "synchronised-ghost-exhaustive",
            strategy: Strategy::Exhaustive {
                max_schedules: 2000,
            },
            program: programs::racy_ghost(false),
        },
        Lane {
            name: "heat-small-dpor",
            strategy: Strategy::Dpor { max_schedules: 12 },
            program: programs::heat_overlap(HeatConfig::default()),
        },
        Lane {
            name: "heat-fused-small-dpor",
            strategy: Strategy::Dpor { max_schedules: 12 },
            program: programs::heat_fused(FusedConfig::default()),
        },
        // Cluster skeleton: exhaustive over the two-node, three-region
        // ghost exchange — 24310 = C(17,8) interleavings of the two
        // per-node op chains, network deliveries included.
        Lane {
            name: "cluster-ghost-exhaustive",
            strategy: Strategy::Exhaustive {
                max_schedules: 30_000,
            },
            program: programs::cluster_ghost(),
        },
        Lane {
            name: "cluster-heat-small-dpor",
            strategy: Strategy::Dpor { max_schedules: 12 },
            program: programs::cluster_heat(ClusterHeatConfig::default()),
        },
    ]
}

/// Nightly budgets after the simulator hot-path overhaul: the same
/// wall-clock that used to buy 120 DPOR schedules now buys several times
/// more (the lane JSON's `schedules_per_sec` keeps the ratio visible), so
/// every budget below was raised ~4x over the pre-overhaul numbers
/// (120/60/48/32).
fn nightly_tier() -> Vec<Lane> {
    vec![
        Lane {
            name: "heat-dpor",
            strategy: Strategy::Dpor { max_schedules: 500 },
            program: programs::heat_overlap(HeatConfig::default()),
        },
        Lane {
            name: "heat-restore-dpor",
            strategy: Strategy::Dpor { max_schedules: 250 },
            program: programs::heat_overlap(HeatConfig {
                restore_mid_step: Some(3),
                ..HeatConfig::default()
            }),
        },
        Lane {
            name: "heat-paper-scale-walk",
            strategy: Strategy::RandomWalk {
                seed: 0x00C0_FFEE,
                budget: 200,
            },
            program: programs::heat_overlap(HeatConfig {
                steps: 10,
                ..HeatConfig::default()
            }),
        },
        Lane {
            name: "heat-faulty-walk",
            strategy: Strategy::RandomWalk {
                seed: 0xDEC0_DE00,
                budget: 128,
            },
            program: programs::heat_overlap(HeatConfig {
                steps: 8,
                transient_rate: 0.25,
                ..HeatConfig::default()
            }),
        },
        Lane {
            name: "heat-fused-dpor",
            strategy: Strategy::Dpor { max_schedules: 250 },
            program: programs::heat_fused(FusedConfig {
                depth: 2,
                steps: 8,
                ..FusedConfig::default()
            }),
        },
        Lane {
            name: "cluster-ghost-dpor",
            strategy: Strategy::Dpor {
                max_schedules: 30_000,
            },
            program: programs::cluster_ghost(),
        },
        Lane {
            name: "cluster-heat-dpor",
            strategy: Strategy::Dpor { max_schedules: 250 },
            program: programs::cluster_heat(ClusterHeatConfig::default()),
        },
    ]
    .into_iter()
    .chain(fused_sweep_lanes())
    .chain(cluster_sweep_lanes())
    .collect()
}

/// The nightly cluster soak: seeded random walks over the multi-step
/// cluster heat program across node counts and fabric fault classes —
/// every sampled interleaving of stream ops and (possibly retransmitted)
/// message deliveries must stay bit-identical to the FIFO golden.
fn cluster_sweep_lanes() -> Vec<Lane> {
    let grid: [(usize, f64, &'static str); 6] = [
        (2, 0.0, "cluster-n2-clean-walk"),
        (3, 0.0, "cluster-n3-clean-walk"),
        (4, 0.0, "cluster-n4-clean-walk"),
        (2, 0.3, "cluster-n2-lossy-walk"),
        (3, 0.3, "cluster-n3-lossy-walk"),
        (4, 0.3, "cluster-n4-lossy-walk"),
    ];
    grid.into_iter()
        .map(|(nodes, drop_rate, name)| Lane {
            name,
            strategy: Strategy::RandomWalk {
                seed: 0xC1_0D00 ^ (nodes as u64) << 8 ^ (drop_rate * 10.0) as u64,
                budget: 48,
            },
            program: programs::cluster_heat(ClusterHeatConfig {
                nodes,
                drop_rate,
                ..ClusterHeatConfig::default()
            }),
        })
        .collect()
}

/// The nightly k-sweep: seeded random walks over the fused step program at
/// every depth the 16³/2-region decomposition supports. Each depth shapes
/// the exchange (halo width), the per-launch work, and the schedule space
/// differently; all must stay bit-identical to the FIFO golden.
fn fused_sweep_lanes() -> Vec<Lane> {
    let depths: [(usize, &'static str); 4] = [
        (1, "heat-fused-k1-walk"),
        (2, "heat-fused-k2-walk"),
        (4, "heat-fused-k4-walk"),
        (8, "heat-fused-k8-walk"),
    ];
    depths
        .into_iter()
        .map(|(depth, name)| Lane {
            name,
            strategy: Strategy::RandomWalk {
                seed: 0xF0_5ED0 ^ depth as u64,
                budget: 64,
            },
            program: programs::heat_fused(FusedConfig {
                depth,
                steps: 8,
                ..FusedConfig::default()
            }),
        })
        .collect()
}

fn run_lane(lane: Lane, artifact_dir: Option<&str>) -> (LaneSummary, bool) {
    let start = std::time::Instant::now();
    let checker = Checker::new(lane.program, CheckSpec::default());
    let Report {
        schedules,
        complete,
        max_decision_points,
        failure,
    } = checker.explore(lane.strategy);
    let elapsed = start.elapsed().as_secs_f64();
    let failed = failure.is_some();

    if let Some(f) = &failure {
        let render = f.render();
        eprintln!("=== {} FAILED ===\n{render}", lane.name);
        if let Some(dir) = artifact_dir {
            let _ = std::fs::create_dir_all(dir);
            let path = format!("{dir}/schedcheck-counterexample-{}.txt", lane.name);
            if let Err(e) = std::fs::write(&path, &render) {
                eprintln!("could not write {path}: {e}");
            } else {
                eprintln!("counterexample written to {path}");
            }
        }
    }

    let schedules_per_sec = schedules as f64 / elapsed.max(1e-9);
    let summary = LaneSummary {
        lane: lane.name,
        schedules,
        complete,
        max_decision_points,
        elapsed_s: elapsed,
        schedules_per_sec,
        failed,
        forced: failure.as_ref().map(|f| f.forced.clone()),
        reason: failure.as_ref().map(|f| f.reason.clone()),
    };
    println!(
        "{:<32} {:>5} schedules{} | {:>4} decision points | {:.2}s ({:.0}/s) | {}",
        lane.name,
        schedules,
        if complete { " (complete)" } else { "" },
        max_decision_points,
        elapsed,
        schedules_per_sec,
        if failed { "FAIL" } else { "ok" },
    );
    (summary, failed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tier = flag_value(&args, "--tier").unwrap_or_else(|| "main".into());
    let artifact_dir = flag_value(&args, "--artifact-dir");
    let json_path = flag_value(&args, "--json");

    let lanes = match tier.as_str() {
        "main" => main_tier(),
        "nightly" => nightly_tier(),
        other => {
            eprintln!("unknown tier {other:?} (use main|nightly)");
            std::process::exit(2);
        }
    };

    let mut summaries = Vec::new();
    let mut any_failed = false;
    for lane in lanes {
        let (summary, failed) = run_lane(lane, artifact_dir.as_deref());
        summaries.push(summary);
        any_failed |= failed;
    }

    let doc = TierSummary {
        tier,
        lanes: summaries,
    };
    if let Some(path) = json_path {
        let text = serde_json::to_string_pretty(&doc).expect("summary serializes");
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("summary written to {path}");
    }

    if any_failed {
        std::process::exit(1);
    }
}
