//! `cluster` — the multi-node scaling harness and regression gate.
//!
//! Sweeps the cluster heat workload over node counts twice: strong
//! scaling (fixed domain, more nodes) and weak scaling (fixed per-node
//! work), and reports makespans, speedups, wire traffic and the curve
//! shape.
//!
//! ```text
//! cargo run --release -p tida-bench --bin cluster -- --quick --json BENCH_cluster.json
//! cargo run --release -p tida-bench --bin cluster -- --check results/BENCH_cluster_baseline.json
//! ```
//!
//! The gate (always evaluated) asserts the scaling-curve *shape*: the
//! strong sweep must reach its peak speedup past a single node, speed up
//! by at least `MIN_PEAK_SPEEDUP_X` somewhere, and flatten by the end of
//! the sweep (the last doubling gains less than `MAX_TAIL_GAIN_X`) — the
//! signature of a fabric-limited stencil. Weak efficiency must stay above
//! `MIN_WEAK_EFFICIENCY`. `--check BASELINE.json` additionally fails the
//! run (exit 1) if the max-node strong makespan regressed more than 5%
//! against the committed baseline.

use tida_bench::cluster::{cluster_bench, ClusterBench, ClusterPoint};
use tida_bench::experiments::Scale;

/// Makespan regressions beyond this fraction fail the gate.
const TOLERANCE: f64 = 0.05;
/// The strong sweep must speed up at least this much at its peak.
const MIN_PEAK_SPEEDUP_X: f64 = 2.0;
/// ...and the last doubling must gain less than this (flattening knee).
const MAX_TAIL_GAIN_X: f64 = 1.6;
/// Weak-scaling efficiency floor across the sweep.
const MIN_WEAK_EFFICIENCY: f64 = 0.5;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn render_point(p: &ClusterPoint) -> String {
    format!(
        "  {:>3} nodes ({:>3} regions): makespan {:>9.3} ms | speedup {:>5.2}x, eff {:>4.2} \
         | net {:>10} B ({:>4} inter, {:>4} local msgs) | pcie {:>11} B",
        p.nodes,
        p.regions,
        p.makespan_ms,
        p.speedup_x,
        p.efficiency,
        p.bytes_net,
        p.msgs_inter,
        p.msgs_local,
        p.bytes_pcie,
    )
}

fn render(b: &ClusterBench) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# BENCH_cluster — {} ({} steps, fabric {} B/us)\n",
        b.workload, b.steps, b.fabric_bytes_per_us
    ));
    out.push_str("strong scaling (fixed domain):\n");
    for p in &b.strong {
        out.push_str(&format!("{}\n", render_point(p)));
    }
    out.push_str("weak scaling (fixed per-node work):\n");
    for p in &b.weak {
        out.push_str(&format!("{}\n", render_point(p)));
    }
    out.push_str(&format!(
        "peak speedup {:.2}x at {} nodes | tail doubling gain {:.2}x \
         (flat < {MAX_TAIL_GAIN_X:.1}x) | weak efficiency floor {:.2}\n",
        b.peak_speedup_x, b.peak_speedup_nodes, b.tail_doubling_gain_x, b.weak_floor_efficiency
    ));
    out
}

/// Pull the max-node strong makespan out of a previously emitted payload.
fn baseline_makespan(path: &str) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("baseline {path} is not JSON: {e}"));
    v["strong"]
        .as_array()
        .and_then(|pts| pts.last())
        .and_then(|p| p["makespan_ms"].as_f64())
        .unwrap_or_else(|| panic!("baseline {path} lacks strong[last].makespan_ms"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Paper };

    let bench = cluster_bench(scale);
    let text = render(&bench);
    print!("{text}");

    let mut failed = false;
    if bench.peak_speedup_x < MIN_PEAK_SPEEDUP_X {
        eprintln!(
            "FAIL: peak strong-scaling speedup {:.2}x is below the {MIN_PEAK_SPEEDUP_X:.1}x gate",
            bench.peak_speedup_x
        );
        failed = true;
    }
    if bench.peak_speedup_nodes <= 1 {
        eprintln!("FAIL: strong-scaling curve never rises (peak at 1 node)");
        failed = true;
    }
    if bench.tail_doubling_gain_x >= MAX_TAIL_GAIN_X {
        eprintln!(
            "FAIL: strong curve does not flatten: last doubling gained {:.2}x \
             (gate < {MAX_TAIL_GAIN_X:.1}x)",
            bench.tail_doubling_gain_x
        );
        failed = true;
    }
    if bench.weak_floor_efficiency < MIN_WEAK_EFFICIENCY {
        eprintln!(
            "FAIL: weak-scaling efficiency floor {:.2} is below the {MIN_WEAK_EFFICIENCY:.1} gate",
            bench.weak_floor_efficiency
        );
        failed = true;
    }

    if let Some(path) = flag_value(&args, "--json") {
        let json = serde_json::to_string_pretty(&bench).expect("serialize bench");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        let txt_path = format!("{}.txt", path.trim_end_matches(".json"));
        std::fs::write(&txt_path, &text).unwrap_or_else(|e| panic!("cannot write {txt_path}: {e}"));
        eprintln!("wrote {path} and {txt_path}");
    }

    if let Some(path) = flag_value(&args, "--check") {
        let committed = baseline_makespan(&path);
        let current = bench.strong.last().unwrap().makespan_ms;
        let limit = committed * (1.0 + TOLERANCE);
        if current > limit {
            eprintln!(
                "FAIL: max-node strong makespan {current:.3} ms regressed more than {:.0}% over \
                 the committed baseline {committed:.3} ms (limit {limit:.3} ms; baseline {path})",
                TOLERANCE * 100.0
            );
            failed = true;
        } else {
            eprintln!(
                "perf gate OK: max-node strong makespan {current:.3} ms vs committed baseline \
                 {committed:.3} ms (limit {limit:.3} ms)"
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
