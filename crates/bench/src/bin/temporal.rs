//! `temporal` — the temporal-blocking perf harness and regression gate.
//!
//! Runs out-of-core heat through the fused planner path twice (depth 1 vs
//! the automatically selected fusion depth) on the interconnect-starved
//! machine, and reports makespan, the staged bytes per computed step, and
//! the fused-launch amortization counters.
//!
//! ```text
//! cargo run --release -p tida-bench --bin temporal -- --quick --json BENCH_temporal.json
//! cargo run --release -p tida-bench --bin temporal -- --quick --check results/BENCH_temporal_baseline.json
//! cargo run --release -p tida-bench --bin temporal -- --sweep
//! ```
//!
//! `--check BASELINE.json` is the CI perf gate: the run fails (exit 1) if
//! the fused run's makespan regressed more than 5% against the committed
//! baseline, or if fusion no longer stages at least 1.5× fewer bytes per
//! computed step than the depth-1 baseline.

use tida_bench::experiments::{temporal_bench, Scale, TemporalBench, TemporalRun};

/// Makespan regressions beyond this fraction fail the gate.
const TOLERANCE: f64 = 0.05;
/// Fusion must stage at least this many times fewer bytes per computed
/// step than the depth-1 baseline (the PR's acceptance criterion).
const MIN_AMORTIZATION_X: f64 = 1.5;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn render_run(r: &TemporalRun) -> String {
    format!(
        "{:<14} k={} makespan {:>9.3} ms | staged {:>12.0} B/step (h2d {:>11} B, d2h {:>11} B) \
         | xfer {:>8.3} ms, compute {:>8.3} ms | loads {:>3}, hits {:>3} \
         | fused {}x{}",
        r.label,
        r.depth,
        r.makespan_ms,
        r.staged_bytes_per_step,
        r.staged_bytes_h2d,
        r.staged_bytes_d2h,
        r.transfer_critical_ms,
        r.compute_critical_ms,
        r.loads,
        r.hits,
        r.fused_launches,
        r.fused_substeps.checked_div(r.fused_launches).unwrap_or(0),
    )
}

fn render(b: &TemporalBench) -> String {
    let mut out = String::new();
    out.push_str(&format!("# BENCH_temporal — {}\n", b.workload));
    out.push_str(&format!("{}\n", render_run(&b.baseline)));
    out.push_str(&format!("{}\n", render_run(&b.fused)));
    out.push_str(&format!(
        "auto depth: {} (halo cap {}) | staged-byte amortization: {:.2}x \
         (gate: >= {MIN_AMORTIZATION_X:.1}x) | makespan speedup: {:.2}x\n",
        b.auto_depth, b.halo_cap, b.staging_amortization_x, b.makespan_speedup_x
    ));
    for r in &b.sweep {
        out.push_str(&format!("{}\n", render_run(r)));
    }
    out
}

/// Pull `fused.makespan_ms` out of a previously emitted payload.
fn baseline_makespan(path: &str) -> f64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("baseline {path} is not JSON: {e}"));
    v["fused"]["makespan_ms"]
        .as_f64()
        .unwrap_or_else(|| panic!("baseline {path} lacks fused.makespan_ms"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sweep = args.iter().any(|a| a == "--sweep");
    let scale = if quick { Scale::Quick } else { Scale::Paper };

    let bench = temporal_bench(scale, sweep);
    let text = render(&bench);
    print!("{text}");

    if let Some(path) = flag_value(&args, "--json") {
        let json = serde_json::to_string_pretty(&bench).expect("serialize bench");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        let txt_path = format!("{}.txt", path.trim_end_matches(".json"));
        std::fs::write(&txt_path, &text).unwrap_or_else(|e| panic!("cannot write {txt_path}: {e}"));
        eprintln!("wrote {path} and {txt_path}");
    }

    let mut failed = false;
    if bench.staging_amortization_x < MIN_AMORTIZATION_X {
        eprintln!(
            "FAIL: staged-byte amortization {:.2}x is below the {MIN_AMORTIZATION_X:.1}x gate",
            bench.staging_amortization_x
        );
        failed = true;
    }
    if let Some(path) = flag_value(&args, "--check") {
        let committed = baseline_makespan(&path);
        let current = bench.fused.makespan_ms;
        let limit = committed * (1.0 + TOLERANCE);
        if current > limit {
            eprintln!(
                "FAIL: fused makespan {current:.3} ms regressed more than {:.0}% over the \
                 committed baseline {committed:.3} ms (limit {limit:.3} ms; baseline file {path})",
                TOLERANCE * 100.0
            );
            failed = true;
        } else {
            eprintln!(
                "perf gate OK: fused makespan {current:.3} ms vs committed baseline \
                 {committed:.3} ms (limit {limit:.3} ms)"
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
