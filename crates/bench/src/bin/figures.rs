//! `figures` — regenerate the paper's evaluation figures on the simulated
//! platform.
//!
//! ```text
//! cargo run --release -p tida-bench --bin figures -- all
//! cargo run --release -p tida-bench --bin figures -- fig5
//! cargo run --release -p tida-bench --bin figures -- fig7 --quick
//! ```
//!
//! Subcommands: `fig1 fig5 fig6 fig7 fig8 ablations extensions recovery integrity all`.
//! Pass `--quick`
//! for the reduced CI-sized workloads.

use tida_bench::experiments::{self as exp, Scale};
use tida_bench::report::FigData;

/// When `--json` is passed, figures are also written to `results/*.json`.
fn emit(fig: &FigData, json: bool, slug: &str) {
    println!("{}", fig.render_table());
    if json {
        std::fs::create_dir_all("results").expect("create results dir");
        let path = format!("results/{slug}.json");
        std::fs::write(&path, fig.to_json()).expect("write results file");
        eprintln!("wrote {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let scale = if quick { Scale::Quick } else { Scale::Paper };
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let mut ran = false;
    let wants = |name: &str| what == name || what == "all";

    println!(
        "# TiDA-acc figure harness — scale: {:?} (simulated Tesla K40m / PCIe Gen3)\n",
        scale
    );

    if wants("fig1") {
        ran = true;
        let f = exp::fig1(scale);
        emit(&f, json, "fig1");
        println!("{}", f.render_bars(60));
    }
    if wants("fig5") {
        ran = true;
        let f = exp::fig5(scale);
        emit(&f, json, "fig5");
        println!("{}", f.render_bars(60));
    }
    if wants("fig6") {
        ran = true;
        let f = exp::fig6(scale);
        emit(&f, json, "fig6");
        println!("{}", f.render_bars(60));
    }
    if wants("fig7") {
        ran = true;
        println!("{}", exp::fig7());
    }
    if wants("fig8") {
        ran = true;
        let f = exp::fig8(scale);
        emit(&f, json, "fig8");
        println!("{}", f.render_bars(60));
    }
    if wants("extensions") {
        ran = true;
        emit(&exp::nvlink_whatif(scale), json, "ext_e1_nvlink");
        emit(&exp::multi_gpu_scaling(scale), json, "ext_e2_multigpu");
        emit(&exp::interconnect_sweep(scale), json, "ext_e3_interconnect");
        emit(&exp::cpu_gpu_crossover(scale), json, "ext_e4_crossover");
        emit(&exp::temporal_blocking(scale), json, "ext_e5_temporal");
    }
    if wants("recovery") {
        ran = true;
        let f = exp::checkpoint_overhead(scale);
        emit(&f, json, "r1_checkpoint_overhead");
        println!("{}", f.render_bars(60));
    }
    if wants("integrity") {
        ran = true;
        let f = exp::integrity_overhead(scale);
        emit(&f, json, "r2_integrity_overhead");
        println!("{}", f.render_bars(60));
    }
    if wants("ablations") {
        ran = true;
        for (f, slug) in [
            (exp::ablation_slots(scale), "abl_a_slots"),
            (exp::ablation_regions(scale), "abl_b_regions"),
            (exp::ablation_ghost(scale), "abl_c_ghost"),
            (exp::ablation_transfers(scale), "abl_d_transfers"),
            (exp::ablation_ghost_engine(scale), "abl_e_ghost_engine"),
        ] {
            emit(&f, json, slug);
        }
    }

    if !ran {
        eprintln!("unknown figure '{what}'; use: fig1 fig5 fig6 fig7 fig8 ablations extensions recovery integrity all [--quick] [--json]");
        std::process::exit(2);
    }
}
