//! Open-loop load generator and metrics for the multi-tenant serving
//! runtime (`crates/serving`).
//!
//! The workload floods the admission queue with a fixed mix of job sizes
//! across several tenants, serves it down, and reports throughput
//! (jobs per *simulated* second) and the virtual-time latency
//! distribution. Everything runs in virtual time on the deterministic
//! simulator, so every number here is bit-stable run to run — which is
//! what lets CI gate on them with a tight tolerance.
//!
//! Two runs are reported: a clean platform, and one with transient faults
//! injected into every tenant — the robustness overhead (retries,
//! salvage, resubmission) shows up as the throughput delta between them.

use gpu_sim::FaultPlan;
use serving::{JobSpec, ServingConfig, ServingRuntime};

/// Metrics of one serving run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServingRun {
    pub label: String,
    pub jobs: usize,
    pub tenants: u32,
    pub completed: u64,
    pub failed: u64,
    /// Virtual time from first dispatch to idle, milliseconds.
    pub makespan_ms: f64,
    /// Completed jobs per simulated second.
    pub jobs_per_sec: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub mean_ms: f64,
    pub transfer_fault_events: u64,
    pub job_retries: u64,
    pub preemptions: u64,
    pub cross_tenant_touches: u64,
    pub hazards: u64,
}

/// The full benchmark payload written to `BENCH_serving.json`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServingBench {
    pub workload: String,
    pub clean: ServingRun,
    pub faulted: ServingRun,
}

/// The job mix: three size classes so the scheduler juggles short and
/// long residencies, deterministic per index.
fn spec_for(i: usize, tenants: u32) -> JobSpec {
    let tenant = i as u32 % tenants;
    let seed = 0x5e21 + i as u64;
    match i % 3 {
        0 => JobSpec::new(tenant, 1, 64, 2, seed),
        1 => JobSpec::new(tenant, 2, 512, 4, seed),
        _ => JobSpec::new(tenant, 1, 4096, 8, seed),
    }
}

fn run(label: &str, jobs: usize, tenants: u32, plan: FaultPlan) -> ServingRun {
    let mut rt = ServingRuntime::new(ServingConfig {
        max_queue_depth: jobs + 8,
        per_tenant_quota: jobs,
        max_active: 4,
        fault_plan: plan,
        ..ServingConfig::default()
    });
    let mut golden = std::collections::HashMap::new();
    for i in 0..jobs {
        let spec = spec_for(i, tenants);
        let digest = spec.golden_digest();
        let id = rt.submit(spec).expect("queue is sized for the flood");
        golden.insert(id, digest);
    }
    rt.run_until_idle();
    let results = rt.results();
    assert_eq!(
        results.len(),
        jobs,
        "every queued job must produce a result"
    );
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut lat: Vec<u64> = Vec::with_capacity(jobs);
    for r in results {
        match &r.outcome {
            Ok(d) => {
                assert_eq!(*d, golden[&r.job], "bench results must stay golden");
                completed += 1;
                lat.push(r.latency().as_ns());
            }
            Err(_) => failed += 1,
        }
    }
    lat.sort_unstable();
    assert!(!lat.is_empty(), "a serving bench run must complete jobs");
    let ms = |ns: u64| ns as f64 / 1.0e6;
    let makespan = rt.now();
    let fs = rt.fault_stats();
    let (retries, preemptions) = (0..tenants).fold((0, 0), |(r, p), t| {
        let st = rt.tenant_stats(t);
        (r + st.retries, p + st.preemptions)
    });
    ServingRun {
        label: label.to_string(),
        jobs,
        tenants,
        completed,
        failed,
        makespan_ms: makespan.as_ms_f64(),
        jobs_per_sec: completed as f64 / makespan.as_secs_f64(),
        p50_ms: ms(lat[lat.len() / 2]),
        p99_ms: ms(lat[lat.len() * 99 / 100]),
        mean_ms: ms(lat.iter().sum::<u64>() / lat.len().max(1) as u64),
        transfer_fault_events: fs.h2d_faults + fs.d2h_faults,
        job_retries: retries,
        preemptions,
        cross_tenant_touches: rt.cross_tenant_touches(),
        hazards: rt.hazard_counters().total(),
    }
}

/// Run the open-loop serving benchmark. `quick` is the CI gate scale
/// (1000 jobs / 4 tenants — the acceptance floor); the full scale is
/// 4000 jobs across 8 tenants.
pub fn serving_bench(quick: bool) -> ServingBench {
    let (jobs, tenants) = if quick { (1000, 4) } else { (4000, 8) };
    let clean = run("clean", jobs, tenants, FaultPlan::none());
    let faulted = run(
        "transient-0.05",
        jobs,
        tenants,
        FaultPlan::none().with_seed(0xFA).with_transient(0.05),
    );
    assert_eq!(clean.cross_tenant_touches, 0);
    assert_eq!(clean.hazards, 0);
    ServingBench {
        workload: format!("open-loop flood, {jobs} jobs across {tenants} tenants, max_active=4"),
        clean,
        faulted,
    }
}

/// One chaos-soak cell: a fault plan of class `kind` scoped to one tenant,
/// served next to three bystander tenants. Returns an error description on
/// any isolation violation (a lost admitted job counts as one).
///
/// Kinds 0–3 (transient, dead-lane, corruption, crash) run on one device;
/// kinds 4–5 (device death, link flap) run on two devices so the runtime
/// has survivors to evacuate onto — the contract there is that *no* tenant
/// fails: the dead device's jobs migrate and finish golden.
pub fn soak_cell(kind: usize, seed: u64) -> Result<u64, String> {
    use gpu_sim::{CorruptionFault, CrashFault, DeviceDeath, LinkFlap, SimTime, TransferFaults};
    let faulty = (seed % 4) as u32;
    let plan = match kind {
        0 => FaultPlan::none().with_seed(seed).with_transient(0.25),
        1 => FaultPlan {
            d2h: TransferFaults {
                fail_after: Some(2),
                ..TransferFaults::default()
            },
            ..FaultPlan::none().with_seed(seed)
        },
        2 => FaultPlan::none()
            .with_seed(seed)
            .with_corruption(CorruptionFault {
                h2d_rate: 0.3,
                strike_after_kernel: vec![1],
                ..CorruptionFault::default()
            }),
        3 => FaultPlan::none()
            .with_seed(seed)
            .with_crash(CrashFault::at_transfer(3 + seed % 7)),
        4 => FaultPlan::none()
            .with_seed(seed)
            .with_device_death(DeviceDeath::at_transfer(1, 2 + seed % 6)),
        _ => FaultPlan::none()
            .with_seed(seed)
            .with_link_flap(LinkFlap::new(
                1,
                SimTime::ZERO,
                SimTime::from_us(500),
                SimTime::from_us(50),
                3,
            )),
    }
    .scoped_to(faulty);
    let num_devices = if kind >= 4 { 2 } else { 1 };
    let mut rt = ServingRuntime::new(ServingConfig {
        max_active: 2,
        num_devices,
        fault_plan: plan,
        ..ServingConfig::default()
    });
    let specs: Vec<JobSpec> = (0..16u64)
        .map(|i| JobSpec::new((i % 4) as u32, 2, 48, 3, seed ^ (i << 8)))
        .collect();
    for s in &specs {
        rt.submit(s.clone())
            .map_err(|e| format!("admission refused: {e:?}"))?;
    }
    rt.run_until_idle();
    if rt.results().len() != specs.len() {
        return Err(format!(
            "{} jobs submitted, {} results",
            specs.len(),
            rt.results().len()
        ));
    }
    for r in rt.results() {
        let golden: Vec<u64> = specs
            .iter()
            .filter(|s| s.tenant == r.tenant)
            .map(|s| s.golden_digest())
            .collect();
        let ok = match &r.outcome {
            Ok(d) => golden.contains(d),
            // Only the scoped tenant may fail, and only with a typed
            // error. Device-scoped cells (4–5) run with a surviving
            // device, so there even the scoped tenant must finish golden:
            // evacuation + retry absorbs the loss entirely.
            Err(_) => kind < 4 && r.tenant == faulty,
        };
        if !ok {
            return Err(format!(
                "kind={kind} seed={seed} faulty={faulty}: tenant {} job {} violated isolation: {:?}",
                r.tenant, r.job, r.outcome
            ));
        }
    }
    if rt.cross_tenant_touches() != 0 {
        return Err(format!(
            "kind={kind} seed={seed}: {} cross-tenant buffer touches",
            rt.cross_tenant_touches()
        ));
    }
    if rt.hazard_counters().total() != 0 {
        return Err(format!(
            "kind={kind} seed={seed}: {} scheduler hazards",
            rt.hazard_counters().total()
        ));
    }
    Ok(rt.total_fault_events())
}
