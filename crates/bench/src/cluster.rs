//! Cluster scaling runner: strong- and weak-scaling heat sweeps over the
//! multi-node halo-exchange runtime, feeding `BENCH_cluster.json` and the
//! `cluster` regression gate.
//!
//! Strong scaling holds the global domain fixed and spreads its regions
//! over 1..=N simulated nodes: per-node staging shrinks like 1/N while
//! the inter-node ghost traffic grows with the number of cut interfaces,
//! so the speedup curve rises and then flattens once the (deliberately
//! constrained) fabric becomes the bottleneck — the classic cluster
//! stencil signature. Weak scaling grows the domain with the node count
//! (fixed region size, two regions per node); ideal is a flat makespan.
//!
//! Runs are unbacked (timing-only): the protocol submits the identical
//! op/message graph, just without touching field data, so a 32-node sweep
//! stays cheap enough for CI.

use cluster::{Cluster, ClusterConfig, NetConfig};
use gpu_sim::FaultPlan;
use kernels::heat;
use std::sync::Arc;
use tida::{Box3, Decomposition, Domain, ExchangeMode, IntVect, RegionSpec, TileArray};

use crate::experiments::Scale;

/// One node-count sample of a scaling sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ClusterPoint {
    pub nodes: usize,
    pub regions: usize,
    pub makespan_ms: f64,
    /// Strong: T(1)/T(N). Weak: T(1)/T(N) as well — ideal is 1.0 there.
    pub speedup_x: f64,
    /// Speedup divided by the node count (strong) or plain T(1)/T(N)
    /// (weak); 1.0 is ideal in both readings.
    pub efficiency: f64,
    pub bytes_net: u64,
    pub bytes_pcie: u64,
    pub msgs_inter: u64,
    pub msgs_local: u64,
    pub net_drops: u64,
}

/// The full payload emitted as `BENCH_cluster.json`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ClusterBench {
    pub workload: String,
    pub steps: usize,
    /// Inter-node fabric bandwidth used for the sweep (bytes/µs).
    pub fabric_bytes_per_us: u64,
    pub strong: Vec<ClusterPoint>,
    pub weak: Vec<ClusterPoint>,
    pub peak_speedup_x: f64,
    pub peak_speedup_nodes: usize,
    /// Speedup gained by the last doubling of the strong sweep — the
    /// flattening witness (2.0 would be ideal linear scaling).
    pub tail_doubling_gain_x: f64,
    /// Worst weak-scaling efficiency across the sweep.
    pub weak_floor_efficiency: f64,
}

/// Time `steps` heat steps of `decomp` on `nodes` simulated nodes and
/// return the sampled point (speedup/efficiency are filled by the caller
/// once T(1) is known).
fn run_point(
    decomp: &Arc<Decomposition>,
    nodes: usize,
    steps: usize,
    net: &NetConfig,
) -> ClusterPoint {
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, false);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, false);
    let mut cl = Cluster::new(
        ClusterConfig::new(nodes)
            .net(net.clone())
            .fault(FaultPlan::none())
            .backed(false),
    );
    let a = cl.register(&ua);
    let b = cl.register(&ub);
    let (mut src, mut dst) = (a, b);
    for _ in 0..steps {
        cl.step(dst, src, None, heat::cost, "heat", |d, s, _aux, bx| {
            heat::step_tile(d, s, &bx, heat::DEFAULT_FAC)
        })
        .expect("clean-machine cluster step");
        std::mem::swap(&mut src, &mut dst);
    }
    let makespan = cl.finish();
    let ns = cl.net_stats();
    ClusterPoint {
        nodes,
        regions: decomp.num_regions(),
        makespan_ms: makespan.as_ns() as f64 / 1e6,
        speedup_x: 0.0,
        efficiency: 0.0,
        bytes_net: cl.bytes_net(),
        bytes_pcie: cl.bytes_h2d() + cl.bytes_d2h(),
        msgs_inter: ns.msgs_inter,
        msgs_local: ns.msgs_local,
        net_drops: ns.drops,
    }
}

/// Run the strong- and weak-scaling sweeps at the given scale.
pub fn cluster_bench(scale: Scale) -> ClusterBench {
    let quick = scale == Scale::Quick;
    // A deliberately modest fabric (1 GB/s inter-node) so the strong curve
    // visibly knees inside the swept range instead of at thousands of nodes.
    let fabric = 1_000u64;
    let net = NetConfig::default().constrained(fabric);
    let steps = if quick { 2 } else { 4 };
    let node_counts: &[usize] = if quick {
        &[1, 2, 4, 8, 16]
    } else {
        &[1, 2, 4, 8, 16, 24, 32]
    };
    let max_nodes = *node_counts.last().unwrap();

    // Strong: fixed 64x64x64 periodic domain cut into one z-slab per
    // maximum node (each slab 64x64x2, interior-free at ghost 1, so every
    // step is pure exchange + boundary kernels — the worst case for the
    // fabric and the most honest one for the knee).
    let edge = if quick { 32 } else { 64 };
    let strong_decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(edge),
        RegionSpec::Count(max_nodes),
    ));
    let mut strong: Vec<ClusterPoint> = node_counts
        .iter()
        .map(|&n| run_point(&strong_decomp, n, steps, &net))
        .collect();
    let t1 = strong[0].makespan_ms;
    for p in &mut strong {
        p.speedup_x = t1 / p.makespan_ms;
        p.efficiency = p.speedup_x / p.nodes as f64;
    }

    // Weak: two 32x32x4 regions per node; the domain grows with the node
    // count, the per-node work does not.
    let mut weak: Vec<ClusterPoint> = node_counts
        .iter()
        .map(|&n| {
            let regions = 2 * n;
            let dom = Domain::periodic(Box3::new(
                IntVect::ZERO,
                IntVect::new(31, 31, 4 * regions as i64 - 1),
            ));
            let decomp = Arc::new(Decomposition::new(dom, RegionSpec::Count(regions)));
            run_point(&decomp, n, steps, &net)
        })
        .collect();
    let w1 = weak[0].makespan_ms;
    for p in &mut weak {
        p.speedup_x = w1 / p.makespan_ms;
        p.efficiency = p.speedup_x;
    }

    let peak = strong
        .iter()
        .max_by(|a, b| a.speedup_x.total_cmp(&b.speedup_x))
        .unwrap();
    let last = strong.last().unwrap();
    let half = strong
        .iter()
        .find(|p| p.nodes * 2 == last.nodes)
        .unwrap_or(&strong[0]);
    ClusterBench {
        workload: format!(
            "heat {edge}^3 strong / 32x32x4-per-region weak, {} nodes max",
            max_nodes
        ),
        steps,
        fabric_bytes_per_us: fabric,
        peak_speedup_x: peak.speedup_x,
        peak_speedup_nodes: peak.nodes,
        tail_doubling_gain_x: last.speedup_x / half.speedup_x,
        weak_floor_efficiency: weak
            .iter()
            .map(|p| p.efficiency)
            .fold(f64::INFINITY, f64::min),
        strong,
        weak,
    }
}
