//! Fig. 6 bench: the compute-intensive kernel across math implementations
//! and execution models.

use baselines::{busy, tida_busy, MemMode, RunOpts, TidaOpts};
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::MachineConfig;
use kernels::busy::{MathImpl, DEFAULT_KERNEL_ITERATION};

fn bench_fig6(c: &mut Criterion) {
    let cfg = MachineConfig::k40m();
    let (n, steps, iters) = (128, 10, DEFAULT_KERNEL_ITERATION);

    let f = tida_bench::experiments::fig6(tida_bench::experiments::Scale::Quick);
    eprintln!("{}", f.render_table());

    let mut g = c.benchmark_group("fig6_busy_models");
    g.sample_size(10);
    g.bench_function("cuda_pageable_libm", |b| {
        b.iter(|| {
            busy::cuda_busy(
                &cfg,
                n,
                steps,
                iters,
                MathImpl::CudaLibm,
                RunOpts::timing(MemMode::Pageable),
            )
            .elapsed
        })
    });
    g.bench_function("cuda_pinned_libm", |b| {
        b.iter(|| {
            busy::cuda_busy(
                &cfg,
                n,
                steps,
                iters,
                MathImpl::CudaLibm,
                RunOpts::timing(MemMode::Pinned),
            )
            .elapsed
        })
    });
    g.bench_function("cuda_pinned_fastmath", |b| {
        b.iter(|| {
            busy::cuda_busy(
                &cfg,
                n,
                steps,
                iters,
                MathImpl::FastMath,
                RunOpts::timing(MemMode::Pinned),
            )
            .elapsed
        })
    });
    g.bench_function("openacc_pageable", |b| {
        b.iter(|| {
            busy::openacc_busy(&cfg, n, steps, iters, RunOpts::timing(MemMode::Pageable)).elapsed
        })
    });
    g.bench_function("tida_acc_16r", |b| {
        b.iter(|| tida_busy(&cfg, n, steps, iters, &TidaOpts::timing(16)).elapsed)
    });
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
