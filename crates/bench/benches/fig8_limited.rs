//! Fig. 8 bench: the limited-memory case — all regions resident vs a
//! two-slot device limit vs one whole-domain region.

use baselines::{tida_busy, TidaOpts};
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::MachineConfig;
use kernels::busy::DEFAULT_KERNEL_ITERATION;

fn bench_fig8(c: &mut Criterion) {
    let cfg = MachineConfig::k40m();
    let (n, steps, iters) = (128, 20, DEFAULT_KERNEL_ITERATION);

    let f = tida_bench::experiments::fig8(tida_bench::experiments::Scale::Quick);
    eprintln!("{}", f.render_table());

    let mut g = c.benchmark_group("fig8_limited_memory");
    g.sample_size(10);
    g.bench_function("tida_acc_16r_full", |b| {
        b.iter(|| tida_busy(&cfg, n, steps, iters, &TidaOpts::timing(16)).elapsed)
    });
    g.bench_function("tida_acc_16r_2slots", |b| {
        b.iter(|| {
            tida_busy(
                &cfg,
                n,
                steps,
                iters,
                &TidaOpts::timing(16).with_max_slots(2),
            )
            .elapsed
        })
    });
    g.bench_function("tida_acc_1region", |b| {
        b.iter(|| tida_busy(&cfg, n, steps, iters, &TidaOpts::timing(1)).elapsed)
    });
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
