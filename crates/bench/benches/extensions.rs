//! Benches for the extension experiments: multi-GPU scaling, the NVLink
//! what-if, interconnect sensitivity, and the autotuner.

use baselines::{tida_heat, tida_heat_multi, tida_heat_timetiled, tuning, TidaOpts};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::MachineConfig;
use tida_bench::experiments::{self, Scale};

fn bench_multi_gpu(c: &mut Criterion) {
    let cfg = MachineConfig::k40m();
    let (n, steps, regions) = (128, 5, 16);
    eprintln!(
        "{}",
        experiments::multi_gpu_scaling(Scale::Quick).render_table()
    );

    let mut g = c.benchmark_group("ext_multi_gpu");
    g.sample_size(10);
    for devices in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("devices", devices), &devices, |b, &d| {
            b.iter(|| tida_heat_multi(&cfg, n, steps, regions, d, false).elapsed)
        });
    }
    g.finish();
}

fn bench_nvlink(c: &mut Criterion) {
    let (n, steps) = (128, 5);
    eprintln!(
        "{}",
        experiments::nvlink_whatif(Scale::Quick).render_table()
    );

    let mut g = c.benchmark_group("ext_nvlink");
    g.sample_size(10);
    g.bench_function("k40m_pcie", |b| {
        b.iter(|| tida_heat(&MachineConfig::k40m(), n, steps, &TidaOpts::timing(16)).elapsed)
    });
    g.bench_function("p100_nvlink", |b| {
        b.iter(|| {
            tida_heat(
                &MachineConfig::p100_nvlink(),
                n,
                steps,
                &TidaOpts::timing(16),
            )
            .elapsed
        })
    });
    g.finish();
}

fn bench_autotune(c: &mut Criterion) {
    let cfg = MachineConfig::k40m();
    let candidates = tuning::default_candidates(128, 32);
    let t = tuning::autotune_heat_regions(&cfg, 128, 2, &candidates);
    eprintln!(
        "autotune heat 128^3 x2 steps: best = {} regions ({})",
        t.best_regions, t.best_time
    );

    let mut g = c.benchmark_group("ext_autotune");
    g.sample_size(10);
    g.bench_function("sweep_6_candidates", |b| {
        b.iter(|| tuning::autotune_heat_regions(&cfg, 128, 2, &candidates).best_regions)
    });
    g.finish();
}

fn bench_temporal_blocking(c: &mut Criterion) {
    let cfg = MachineConfig::k40m();
    let (n, steps, regions) = (128, 8, 8);
    eprintln!(
        "{}",
        experiments::temporal_blocking(Scale::Quick).render_table()
    );

    let mut g = c.benchmark_group("ext_temporal_blocking");
    g.sample_size(10);
    for block in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("block", block), &block, |b, &blk| {
            b.iter(|| tida_heat_timetiled(&cfg, n, steps, regions, blk, Some(4), false).elapsed)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_multi_gpu,
    bench_nvlink,
    bench_autotune,
    bench_temporal_blocking
);
criterion_main!(benches);
