//! Ablation benches for the design choices called out in DESIGN.md:
//! slot policy (A), region count (B), ghost-update location (C), and the
//! transfer-avoidance options (D).

use baselines::{tida_heat, TidaOpts};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::MachineConfig;
use tida_acc::{SlotPolicy, WritebackPolicy};
use tida_bench::experiments::{self, Scale};

fn bench_slot_policy(c: &mut Criterion) {
    let cfg = MachineConfig::k40m();
    let (n, steps) = (128, 5);
    eprintln!(
        "{}",
        experiments::ablation_slots(Scale::Quick).render_table()
    );

    let mut g = c.benchmark_group("ablation_slot_policy");
    g.sample_size(10);
    for (name, policy) in [
        ("static", SlotPolicy::StaticInterleaved),
        ("lru", SlotPolicy::Lru),
    ] {
        g.bench_with_input(BenchmarkId::new("policy", name), &policy, |b, &policy| {
            b.iter(|| {
                let mut o = TidaOpts::timing(8).with_max_slots(6);
                o.acc = o.acc.with_policy(policy);
                tida_heat(&cfg, n, steps, &o).elapsed
            })
        });
    }
    g.finish();
}

fn bench_region_count(c: &mut Criterion) {
    let cfg = MachineConfig::k40m();
    let (n, steps) = (128, 4);
    eprintln!(
        "{}",
        experiments::ablation_regions(Scale::Quick).render_table()
    );

    let mut g = c.benchmark_group("ablation_region_count");
    g.sample_size(10);
    for regions in [1usize, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::new("regions", regions), &regions, |b, &r| {
            b.iter(|| tida_heat(&cfg, n, steps, &TidaOpts::timing(r)).elapsed)
        });
    }
    g.finish();
}

fn bench_ghost_location(c: &mut Criterion) {
    let cfg = MachineConfig::k40m();
    let (n, steps) = (128, 5);
    eprintln!(
        "{}",
        experiments::ablation_ghost(Scale::Quick).render_table()
    );

    let mut g = c.benchmark_group("ablation_ghost_location");
    g.sample_size(10);
    g.bench_function("device_ghosts", |b| {
        b.iter(|| tida_heat(&cfg, n, steps, &TidaOpts::timing(16)).elapsed)
    });
    g.bench_function("host_ghosts", |b| {
        b.iter(|| {
            let mut o = TidaOpts::timing(16);
            o.acc.ghost_on_device = false;
            tida_heat(&cfg, n, steps, &o).elapsed
        })
    });
    g.finish();
}

fn bench_transfer_options(c: &mut Criterion) {
    let cfg = MachineConfig::k40m();
    let (n, steps) = (128, 4);
    eprintln!(
        "{}",
        experiments::ablation_transfers(Scale::Quick).render_table()
    );

    let mut g = c.benchmark_group("ablation_transfer_options");
    g.sample_size(10);
    g.bench_function("paper_defaults", |b| {
        b.iter(|| tida_heat(&cfg, n, steps, &TidaOpts::timing(8).with_max_slots(6)).elapsed)
    });
    g.bench_function("upload_written_regions", |b| {
        b.iter(|| {
            let mut o = TidaOpts::timing(8).with_max_slots(6);
            o.acc.upload_written_regions = true;
            tida_heat(&cfg, n, steps, &o).elapsed
        })
    });
    g.bench_function("dirty_only_writeback", |b| {
        b.iter(|| {
            let mut o = TidaOpts::timing(8).with_max_slots(6);
            o.acc = o.acc.with_writeback(WritebackPolicy::DirtyOnly);
            tida_heat(&cfg, n, steps, &o).elapsed
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_slot_policy,
    bench_region_count,
    bench_ghost_location,
    bench_transfer_options
);
criterion_main!(benches);
