//! Fig. 1 bench: heat solver across execution models × memory managements.
//!
//! Criterion measures the harness wall time (the discrete-event simulation
//! of each variant); the simulated times that regenerate the figure itself
//! are printed once at startup and by `figures -- fig1`.

use baselines::{heat, MemMode, RunOpts};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::MachineConfig;

fn bench_fig1(c: &mut Criterion) {
    let cfg = MachineConfig::k40m();
    let (n, steps) = (96, 10);

    // Print the figure data once so bench logs carry the simulated result.
    let f = tida_bench::experiments::fig1(tida_bench::experiments::Scale::Quick);
    eprintln!("{}", f.render_table());

    let mut g = c.benchmark_group("fig1_heat_models");
    g.sample_size(10);
    for mem in [MemMode::Pageable, MemMode::Pinned, MemMode::Managed] {
        g.bench_with_input(BenchmarkId::new("cuda", mem.label()), &mem, |b, &mem| {
            b.iter(|| heat::cuda_heat(&cfg, n, steps, RunOpts::timing(mem)).elapsed)
        });
        g.bench_with_input(BenchmarkId::new("openacc", mem.label()), &mem, |b, &mem| {
            b.iter(|| heat::openacc_heat(&cfg, n, steps, RunOpts::timing(mem)).elapsed)
        });
        g.bench_with_input(BenchmarkId::new("hybrid", mem.label()), &mem, |b, &mem| {
            b.iter(|| heat::hybrid_heat(&cfg, n, steps, RunOpts::timing(mem)).elapsed)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
