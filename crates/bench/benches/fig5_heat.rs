//! Fig. 5 bench: heat solver at increasing iteration counts — CUDA-pinned
//! and OpenACC baselines vs TiDA-acc's pipelined transfers.

use baselines::{heat, tida_heat, MemMode, RunOpts, TidaOpts};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::MachineConfig;

fn bench_fig5(c: &mut Criterion) {
    let cfg = MachineConfig::k40m();
    let n = 128;

    let f = tida_bench::experiments::fig5(tida_bench::experiments::Scale::Quick);
    eprintln!("{}", f.render_table());

    let mut g = c.benchmark_group("fig5_heat_iterations");
    g.sample_size(10);
    for iters in [1usize, 10, 100] {
        g.bench_with_input(
            BenchmarkId::new("cuda_pageable", iters),
            &iters,
            |b, &it| {
                b.iter(|| heat::cuda_heat(&cfg, n, it, RunOpts::timing(MemMode::Pageable)).elapsed)
            },
        );
        g.bench_with_input(BenchmarkId::new("cuda_pinned", iters), &iters, |b, &it| {
            b.iter(|| heat::cuda_heat(&cfg, n, it, RunOpts::timing(MemMode::Pinned)).elapsed)
        });
        g.bench_with_input(BenchmarkId::new("openacc", iters), &iters, |b, &it| {
            b.iter(|| heat::openacc_heat(&cfg, n, it, RunOpts::timing(MemMode::Pageable)).elapsed)
        });
        g.bench_with_input(BenchmarkId::new("tida_acc_16r", iters), &iters, |b, &it| {
            b.iter(|| tida_heat(&cfg, n, it, &TidaOpts::timing(16)).elapsed)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
