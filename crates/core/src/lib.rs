//! `tida-acc` — the paper's tiling-based GPU programming model.
//!
//! The library (Bastem et al., ICPP 2017) extends the TiDA tiling
//! abstractions to a GPU: regions become the unit of host<->device transfer
//! *and* kernel execution, each device buffer gets its own stream, and a
//! cache list tracks which region occupies which device buffer. Together
//! these give the three headline properties:
//!
//! * **Overlap** — while some regions execute on the device, others are in
//!   flight over the interconnect (Fig. 3);
//! * **Oversubscription** — when the device memory cannot hold all regions,
//!   regions share device buffers and are staged in and out, so the
//!   application still runs (Figs. 7/8);
//! * **Uniform source** — `compute(tile, lambda)` runs the same closure on
//!   the CPU or the GPU, selected by the iterator's `reset(GPU=...)`.
//!
//! The GPU itself is the deterministic simulator from `gpu-sim` (see
//! DESIGN.md §2 for the substitution argument); all data effects are real
//! when buffers are backed, so the whole protocol is validated bit-for-bit
//! against dense golden references.
//!
//! # Quickstart
//!
//! ```
//! use gpu_sim::{GpuSystem, MachineConfig, KernelCost};
//! use tida::{Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec, tiles_of};
//! use tida_acc::{AccOptions, TileAcc};
//! use std::sync::Arc;
//!
//! // 16^3 periodic domain split into 4 z-slab regions, 1 ghost cell.
//! let decomp = Arc::new(Decomposition::new(
//!     Domain::periodic_cube(16),
//!     RegionSpec::Count(4),
//! ));
//! let u = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
//! u.fill_valid(|iv| iv.x() as f64);
//!
//! let mut acc = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), AccOptions::paper());
//! let a = acc.register(&u);
//!
//! // Double every cell on the (simulated) GPU, one kernel per region.
//! for tile in tiles_of(&decomp, TileSpec::RegionSized) {
//!     acc.compute1(tile, a, KernelCost::Bytes(tile.num_cells() * 16), "double",
//!         move |v, bx| {
//!             for iv in bx.iter() { v.update(iv, |x| 2.0 * x); }
//!         }).unwrap();
//! }
//! acc.sync_to_host(a).unwrap();
//! let elapsed = acc.finish();
//! assert!(elapsed > gpu_sim::SimTime::ZERO);
//! assert_eq!(u.value(tida::IntVect::new(3, 0, 0)), Some(6.0));
//! ```

mod checkpoint;
mod error;
mod ghost;
mod health;
mod iter;
mod multi;
mod options;
mod plan;
mod recovery;
mod reduce;
mod stats;
mod tileacc;

pub use checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy, CheckpointStore};
pub use error::{AccError, IntegrityKind};
pub use health::{HealthMonitor, HealthPolicy, HealthState};
pub use iter::AccIter;
pub use multi::MultiAcc;
pub use options::{AccOptions, RetryPolicy, SlotPolicy, WritebackPolicy};
pub use plan::recommend_fusion_depth;
pub use recovery::{restore_into, RecoveryError, RecoveryOutcome, Supervisor, SupervisorConfig};
pub use stats::AccStats;
pub use tileacc::{ArrayId, Residency, TileAcc};

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuSystem, MachineConfig, SimTime};
    use kernels::{busy, heat, init};
    use std::sync::Arc;
    use tida::{
        tiles_of, Decomposition, Domain, ExchangeMode, IntVect, RegionSpec, TileArray, TileSpec,
    };

    fn mk_acc(max_slots: Option<usize>) -> TileAcc {
        let mut opts = AccOptions::paper();
        opts.max_slots = max_slots;
        TileAcc::new(GpuSystem::new(MachineConfig::k40m()), opts)
    }

    /// Drive `steps` heat steps through the full TiDA-acc protocol.
    fn heat_drive(
        acc: &mut TileAcc,
        decomp: &Arc<Decomposition>,
        mut src: ArrayId,
        mut dst: ArrayId,
        steps: usize,
        fac: f64,
    ) -> ArrayId {
        let tiles = tiles_of(decomp, TileSpec::RegionSized);
        for _ in 0..steps {
            acc.fill_boundary(src).unwrap();
            for &t in &tiles {
                acc.compute2(
                    t,
                    dst,
                    src,
                    heat::cost(t.num_cells()),
                    "heat",
                    move |d, s, bx| heat::step_tile(d, s, &bx, fac),
                )
                .unwrap();
            }
            std::mem::swap(&mut src, &mut dst);
        }
        acc.sync_to_host(src).unwrap();
        src
    }

    fn heat_setup(n: i64, spec: RegionSpec) -> (Arc<Decomposition>, TileArray, TileArray) {
        let decomp = Arc::new(Decomposition::new(Domain::periodic_cube(n), spec));
        let a = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        let b = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        a.fill_valid(init::hash_field(7));
        (decomp, a, b)
    }

    #[test]
    fn heat_gpu_matches_golden_exactly() {
        let n = 8;
        let steps = 4;
        let (decomp, ua, ub) = heat_setup(n, RegionSpec::Count(4));
        let mut acc = mk_acc(None);
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive(&mut acc, &decomp, a, b, steps, heat::DEFAULT_FAC);
        acc.finish();

        let golden = heat::golden_run(init::hash_field(7), n, steps, heat::DEFAULT_FAC);
        let result = if last == a { &ua } else { &ub };
        assert_eq!(result.to_dense().unwrap(), golden);
        let st = acc.stats();
        assert!(st.kernels_gpu > 0);
        assert_eq!(st.kernels_host, 0);
        assert!(st.ghost_gpu > 0, "steady-state ghosts run on the device");
    }

    #[test]
    fn heat_gpu_matches_golden_with_3d_region_grid() {
        let n = 8;
        let steps = 3;
        let (decomp, ua, ub) = heat_setup(n, RegionSpec::Grid([2, 2, 2]));
        let mut acc = mk_acc(None);
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive(&mut acc, &decomp, a, b, steps, heat::DEFAULT_FAC);
        acc.finish();
        let golden = heat::golden_run(init::hash_field(7), n, steps, heat::DEFAULT_FAC);
        let result = if last == a { &ua } else { &ub };
        assert_eq!(result.to_dense().unwrap(), golden);
    }

    #[test]
    fn heat_limited_memory_still_exact() {
        // 4 z-slab regions x 2 arrays = 8 global regions, but only 3 device
        // slots: constant staging, every result still bitwise correct.
        let n = 8;
        let steps = 3;
        let (decomp, ua, ub) = heat_setup(n, RegionSpec::Count(4));
        let mut acc = mk_acc(Some(3));
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive(&mut acc, &decomp, a, b, steps, heat::DEFAULT_FAC);
        acc.finish();
        let golden = heat::golden_run(init::hash_field(7), n, steps, heat::DEFAULT_FAC);
        let result = if last == a { &ua } else { &ub };
        assert_eq!(result.to_dense().unwrap(), golden);
        assert!(acc.stats().evictions > 0, "limited memory must evict");
    }

    #[test]
    fn heat_lru_policy_exact() {
        let n = 8;
        let steps = 3;
        let (decomp, ua, ub) = heat_setup(n, RegionSpec::Count(4));
        let mut opts = AccOptions::paper().with_policy(SlotPolicy::Lru);
        opts.max_slots = Some(3);
        let mut acc = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), opts);
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive(&mut acc, &decomp, a, b, steps, heat::DEFAULT_FAC);
        acc.finish();
        let golden = heat::golden_run(init::hash_field(7), n, steps, heat::DEFAULT_FAC);
        let result = if last == a { &ua } else { &ub };
        assert_eq!(result.to_dense().unwrap(), golden);
    }

    #[test]
    fn heat_dirty_only_writeback_exact() {
        let n = 8;
        let steps = 3;
        let (decomp, ua, ub) = heat_setup(n, RegionSpec::Count(4));
        let opts = AccOptions::paper()
            .with_writeback(WritebackPolicy::DirtyOnly)
            .with_max_slots(3);
        let mut acc = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), opts);
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive(&mut acc, &decomp, a, b, steps, heat::DEFAULT_FAC);
        acc.finish();
        let golden = heat::golden_run(init::hash_field(7), n, steps, heat::DEFAULT_FAC);
        let result = if last == a { &ua } else { &ub };
        assert_eq!(result.to_dense().unwrap(), golden);
        assert!(
            acc.stats().writebacks_skipped > 0,
            "clean slots skip write-back"
        );
    }

    #[test]
    fn heat_cpu_mode_matches_golden() {
        let n = 8;
        let steps = 3;
        let (decomp, ua, ub) = heat_setup(n, RegionSpec::Count(2));
        let mut acc = mk_acc(None);
        acc.set_gpu(false);
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive(&mut acc, &decomp, a, b, steps, heat::DEFAULT_FAC);
        acc.finish();
        let golden = heat::golden_run(init::hash_field(7), n, steps, heat::DEFAULT_FAC);
        let result = if last == a { &ua } else { &ub };
        assert_eq!(result.to_dense().unwrap(), golden);
        let st = acc.stats();
        assert_eq!(st.kernels_gpu, 0);
        assert!(st.kernels_host > 0);
    }

    #[test]
    fn heat_alternating_cpu_gpu_phases_exact() {
        // Phase changes force residency migrations in both directions.
        let n = 8;
        let (decomp, ua, ub) = heat_setup(n, RegionSpec::Count(4));
        let mut acc = mk_acc(None);
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let tiles = tiles_of(&decomp, TileSpec::RegionSized);
        let (mut src, mut dst) = (a, b);
        for step in 0..4 {
            acc.set_gpu(step % 2 == 0);
            acc.fill_boundary(src).unwrap();
            for &t in &tiles {
                acc.compute2(
                    t,
                    dst,
                    src,
                    heat::cost(t.num_cells()),
                    "heat",
                    move |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
                )
                .unwrap();
            }
            std::mem::swap(&mut src, &mut dst);
        }
        acc.sync_to_host(src).unwrap();
        acc.finish();
        let golden = heat::golden_run(init::hash_field(7), n, 4, heat::DEFAULT_FAC);
        let result = if src == a { &ua } else { &ub };
        assert_eq!(result.to_dense().unwrap(), golden);
        let st = acc.stats();
        assert!(st.kernels_gpu > 0 && st.kernels_host > 0);
    }

    #[test]
    fn busy_kernel_single_slot_staging_exact() {
        let n = 8;
        let iters = 5;
        let steps = 2;
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(4),
        ));
        let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, true);
        u.fill_valid(init::gaussian(n));
        let mut acc = mk_acc(Some(1)); // a single device slot
        let a = acc.register(&u);
        let tiles = tiles_of(&decomp, TileSpec::RegionSized);
        for _ in 0..steps {
            for &t in &tiles {
                acc.compute1(
                    t,
                    a,
                    busy::cost(t.num_cells(), iters, busy::MathImpl::PgiLibm),
                    "busy",
                    move |v, bx| busy::apply_tile(v, &bx, iters),
                )
                .unwrap();
            }
        }
        acc.sync_to_host(a).unwrap();
        acc.finish();

        let mut golden: Vec<f64> = {
            let l = tida::Layout::new(tida::Box3::cube(n));
            (0..l.len())
                .map(|o| init::gaussian(n)(l.cell_at(o)))
                .collect()
        };
        for _ in 0..steps {
            busy::golden(&mut golden, iters);
        }
        assert_eq!(u.to_dense().unwrap(), golden);
        assert!(acc.stats().evictions > 0);
    }

    #[test]
    fn cache_hits_avoid_transfers() {
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(8),
            RegionSpec::Count(2),
        ));
        let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, true);
        let mut acc = mk_acc(None);
        let a = acc.register(&u);
        let tiles = tiles_of(&decomp, TileSpec::RegionSized);
        for _ in 0..5 {
            for &t in &tiles {
                acc.compute1(t, a, gpu_sim::KernelCost::Flops(1e6), "noop", |_, _| {})
                    .unwrap();
            }
        }
        acc.finish();
        let st = acc.stats();
        assert_eq!(st.loads, 2, "each region loads exactly once");
        assert_eq!(st.hits, 8, "subsequent passes hit the cache");
        assert_eq!(st.evictions, 0);
    }

    #[test]
    fn transfers_overlap_compute_across_streams() {
        // Several busy regions: stream pipelining must overlap the H2D
        // engine with the compute engine (the paper's Fig. 3).
        let n = 16;
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(8),
        ));
        let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, false);
        let mut acc = mk_acc(None);
        acc.gpu_mut().set_tracing(true);
        let a = acc.register(&u);
        for t in tiles_of(&decomp, TileSpec::RegionSized) {
            acc.compute1(
                t,
                a,
                busy::cost(t.num_cells() * 100_000, 40, busy::MathImpl::PgiLibm),
                "busy",
                |_, _| {},
            )
            .unwrap();
        }
        acc.sync_to_host(a).unwrap();
        acc.finish();
        let tr = acc.gpu().trace();
        // Engines: 0 = h2d, 2 = compute.
        assert!(
            tr.overlap_time(0, 2) > SimTime::ZERO,
            "H2D must overlap kernels:\n{}",
            tr.render_gantt(100)
        );
    }

    #[test]
    fn limited_memory_hidden_behind_compute() {
        // Fig. 8's claim: with a compute-intensive kernel, limiting the
        // device to two region slots costs almost nothing.
        let run = |max_slots: Option<usize>| {
            let n = 32;
            let decomp = Arc::new(Decomposition::new(
                Domain::periodic_cube(n),
                RegionSpec::Count(8),
            ));
            let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, false);
            let mut acc = mk_acc(max_slots);
            let a = acc.register(&u);
            for _ in 0..4 {
                for t in tiles_of(&decomp, TileSpec::RegionSized) {
                    // Scale the per-cell work up so the kernel dominates.
                    acc.compute1(
                        t,
                        a,
                        busy::cost(t.num_cells() * 50_000, 40, busy::MathImpl::PgiLibm),
                        "busy",
                        |_, _| {},
                    )
                    .unwrap();
                }
            }
            acc.sync_to_host(a).unwrap();
            acc.finish()
        };
        let unlimited = run(None);
        let limited = run(Some(2));
        let ratio = limited.as_secs_f64() / unlimited.as_secs_f64();
        assert!(
            ratio < 1.05,
            "staging should hide behind compute; ratio {ratio}"
        );
    }

    #[test]
    fn host_access_after_gpu_write_sees_fresh_data() {
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(4),
            RegionSpec::Count(1),
        ));
        let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, true);
        u.fill_valid(|_| 1.0);
        let mut acc = mk_acc(None);
        let a = acc.register(&u);
        let tiles = tiles_of(&decomp, TileSpec::RegionSized);
        acc.compute1(
            tiles[0],
            a,
            gpu_sim::KernelCost::Flops(1e6),
            "inc",
            |v, bx| {
                for iv in bx.iter() {
                    v.update(iv, |x| x + 1.0);
                }
            },
        )
        .unwrap();
        // Host copy is stale until sync.
        assert_eq!(u.value(IntVect::ZERO), Some(1.0));
        acc.sync_to_host(a).unwrap();
        assert_eq!(u.value(IntVect::ZERO), Some(2.0));
        assert_eq!(acc.residency(a, 0), Residency::Host);
    }

    #[test]
    #[should_panic(expected = "share one decomposition")]
    fn mismatched_decompositions_panic() {
        let d1 = Arc::new(Decomposition::new(
            Domain::periodic_cube(8),
            RegionSpec::Count(2),
        ));
        let d2 = Arc::new(Decomposition::new(
            Domain::periodic_cube(8),
            RegionSpec::Count(4),
        ));
        let u = TileArray::new(d1, 0, ExchangeMode::Faces, true);
        let v = TileArray::new(d2, 0, ExchangeMode::Faces, true);
        let mut acc = mk_acc(None);
        acc.register(&u);
        acc.register(&v);
    }

    #[test]
    fn device_too_small_for_one_region_is_a_typed_error() {
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(16),
            RegionSpec::Count(1),
        ));
        let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, false);
        let gpu = GpuSystem::new(MachineConfig::k40m().with_device_mem(1024));
        let mut acc = TileAcc::new(gpu, AccOptions::paper());
        let a = acc.register(&u);
        let tiles = tiles_of(&decomp, TileSpec::RegionSized);
        let err = acc
            .compute1(tiles[0], a, gpu_sim::KernelCost::Flops(1.0), "k", |_, _| {})
            .unwrap_err();
        assert!(
            matches!(
                err,
                AccError::Capacity {
                    free_bytes: 1024,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    /// `heat_drive` with a `begin_step` boundary per step — the automatic
    /// overlap scheduler's driver shape.
    fn heat_drive_auto(
        acc: &mut TileAcc,
        decomp: &Arc<Decomposition>,
        mut src: ArrayId,
        mut dst: ArrayId,
        steps: usize,
        fac: f64,
    ) -> ArrayId {
        let tiles = tiles_of(decomp, TileSpec::RegionSized);
        for _ in 0..steps {
            acc.begin_step().unwrap();
            acc.fill_boundary(src).unwrap();
            for &t in &tiles {
                acc.compute2(
                    t,
                    dst,
                    src,
                    heat::cost(t.num_cells()),
                    "heat",
                    move |d, s, bx| heat::step_tile(d, s, &bx, fac),
                )
                .unwrap();
            }
            std::mem::swap(&mut src, &mut dst);
        }
        acc.sync_to_host(src).unwrap();
        src
    }

    #[test]
    fn capped_prefetch_all_never_evicts() {
        // 8 regions into 3 slots under LRU: prefetch_all used to thrash —
        // each staged region evicted an earlier one, paying 8 transfers to
        // end with only the last 3 resident. Staging is now capped at pool
        // capacity.
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(16),
            RegionSpec::Count(8),
        ));
        let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, true);
        let opts = AccOptions::paper()
            .with_policy(SlotPolicy::Lru)
            .with_max_slots(3);
        let mut acc = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), opts);
        let a = acc.register(&u);
        acc.prefetch_all(a).unwrap();
        let st = acc.stats();
        assert_eq!(st.evictions, 0, "capped prefetch must never evict");
        assert_eq!(st.prefetch_loads, 3, "exactly the pool capacity staged");
        assert_eq!(st.loads, 3);
        assert_eq!(
            st.prefetch_fallbacks, 0,
            "a full pool is a cap, not a failure"
        );
        // The three staged regions are warm; their first uses are prefetch
        // hits, not organic ones.
        for t in tiles_of(&decomp, TileSpec::RegionSized) {
            acc.compute1(t, a, gpu_sim::KernelCost::Flops(1e6), "noop", |_, _| {})
                .unwrap();
        }
        let st = acc.stats();
        assert_eq!(st.prefetch_hits, 3);
        assert_eq!(st.hits, 0);
        assert_eq!(st.loads, 8, "the other five regions demand-load");
    }

    #[test]
    fn static_slot_conflict_during_prefetch_is_observable() {
        // Two regions share the single static slot: the second prefetch
        // cannot stage and must say so instead of silently no-opping.
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(8),
            RegionSpec::Count(2),
        ));
        let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, true);
        let mut acc = mk_acc(Some(1));
        acc.gpu_mut().set_tracing(true);
        let a = acc.register(&u);
        acc.prefetch(a, 0).unwrap();
        acc.prefetch(a, 1).unwrap();
        let st = acc.stats();
        assert_eq!(st.prefetch_loads, 1);
        assert_eq!(st.prefetch_fallbacks, 1);
        assert_eq!(st.evictions, 0);
        acc.finish();
        let tr = acc.gpu().trace();
        assert!(
            tr.spans.iter().any(|s| s.category == "prefetch"),
            "degraded prefetch must leave a trace marker"
        );
    }

    #[test]
    fn auto_overlap_heat_exact_with_prefetch_active() {
        // Out-of-core heat (8 global regions, 3 slots) under the automatic
        // scheduler: plan-aware eviction + lookahead prefetch, results
        // bit-identical to golden, zero hazards, and the prefetcher
        // actually fired once the period was detected.
        let n = 8;
        let steps = 8;
        let (decomp, ua, ub) = heat_setup(n, RegionSpec::Count(4));
        let opts = AccOptions::paper()
            .with_policy(SlotPolicy::ReuseDistance)
            .with_max_slots(3)
            .with_lookahead(2);
        let mut acc = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), opts);
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive_auto(&mut acc, &decomp, a, b, steps, heat::DEFAULT_FAC);
        acc.finish();
        let golden = heat::golden_run(init::hash_field(7), n, steps, heat::DEFAULT_FAC);
        let result = if last == a { &ua } else { &ub };
        assert_eq!(result.to_dense().unwrap(), golden);
        let st = acc.stats();
        assert_eq!(st.hazards, 0, "prefetched schedule must be race-free");
        assert_eq!(
            acc.plan_period(),
            Some(2),
            "double buffering repeats every 2 steps"
        );
        assert!(
            st.prefetch_loads > 0,
            "the lookahead prefetcher must fire: {st}"
        );
        assert!(
            st.prefetch_hits > 0,
            "prefetched regions must get used: {st}"
        );
    }

    #[test]
    fn reuse_distance_without_plan_degenerates_to_lru() {
        // No begin_step calls: ReuseDistance must schedule exactly like LRU.
        let run = |policy: SlotPolicy| {
            let n = 8;
            let (decomp, ua, ub) = heat_setup(n, RegionSpec::Count(4));
            let opts = AccOptions::paper().with_policy(policy).with_max_slots(3);
            let mut acc = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), opts);
            let a = acc.register(&ua);
            let b = acc.register(&ub);
            heat_drive(&mut acc, &decomp, a, b, 3, heat::DEFAULT_FAC);
            (acc.finish(), acc.stats())
        };
        assert_eq!(run(SlotPolicy::Lru), run(SlotPolicy::ReuseDistance));
    }

    #[test]
    fn virtual_run_has_identical_schedule_to_backed_run() {
        let run = |backed: bool| {
            let n = 8;
            let decomp = Arc::new(Decomposition::new(
                Domain::periodic_cube(n),
                RegionSpec::Count(4),
            ));
            let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, backed);
            let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, backed);
            if backed {
                ua.fill_valid(init::hash_field(7));
            }
            let mut acc = mk_acc(Some(3));
            let a = acc.register(&ua);
            let b = acc.register(&ub);
            heat_drive(&mut acc, &decomp, a, b, 3, heat::DEFAULT_FAC);
            acc.finish()
        };
        assert_eq!(run(true), run(false));
    }
}
