//! Runtime counters.

use std::fmt;

/// Counters accumulated by [`crate::TileAcc`] over a run. Useful for
/// asserting the caching protocol's behaviour (hits avoid transfers,
/// limited memory causes evictions, static-slot conflicts fall back to the
/// host) without inspecting the schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccStats {
    /// Device-cache hits: the region was already resident in its slot.
    pub hits: u64,
    /// Host→device region loads.
    pub loads: u64,
    /// Slots claimed without an upload because the kernel overwrites the
    /// whole region (write-intent allocation).
    pub write_allocs: u64,
    /// Evictions (another region needed the slot).
    pub evictions: u64,
    /// Eviction write-backs skipped because the slot was clean
    /// (only under `WritebackPolicy::DirtyOnly`).
    pub writebacks_skipped: u64,
    /// Device→host transfers triggered by host access.
    pub host_syncs: u64,
    /// Kernels launched on the device path.
    pub kernels_gpu: u64,
    /// Tiles executed on the host path (CPU mode or conflict fallback).
    pub kernels_host: u64,
    /// Tiles that *fell back* to the host because of a static slot conflict.
    pub conflict_fallbacks: u64,
    /// Ghost patches applied via device gather kernels.
    pub ghost_gpu: u64,
    /// Ghost patches applied on the host.
    pub ghost_host: u64,
    /// Transfer attempts re-issued after an injected transient fault.
    pub transfer_retries: u64,
    /// Tiles routed to the host because the device path was declared dead
    /// (persistent transfer failure).
    pub fault_fallbacks: u64,
    /// Device slots the pool gave up on because `cudaMalloc` failed mid-run.
    pub slot_shrinks: u64,
    /// Dirty regions rescued through the fault-exempt salvage copy path.
    pub salvaged_regions: u64,
    /// Crash-consistent checkpoints captured from this runtime.
    pub checkpoints_taken: u64,
    /// Times this runtime's state was rebuilt from a checkpoint.
    pub checkpoints_restored: u64,
    /// Hangs a supervisor detected against this runtime (progress deadline
    /// exceeded with no step retired).
    pub hang_detections: u64,
    /// Digest mismatches the transfer-integrity layer detected (in-flight
    /// corruption or a struck resident slot).
    pub integrity_detected: u64,
    /// Corruption events repaired in place: a bounded retransmit cleaned the
    /// link, or a clean slot was refilled from its host origin.
    pub integrity_repaired: u64,
    /// Device slots quarantined because an unrepairable corruption poisoned
    /// them (the runtime stops placing regions there).
    pub slots_quarantined: u64,
    /// Stream-ordering hazards the happens-before detector flagged
    /// (any kind; a clean run must show zero).
    pub hazards: u64,
    /// Host→device region loads issued by a prefetch (caller-driven or the
    /// lookahead scheduler) rather than by a demand miss. Also counted in
    /// `loads`, which covers every upload.
    pub prefetch_loads: u64,
    /// First organic uses that found their region resident only because a
    /// prefetch warmed it. Kept separate from `hits` so figures don't
    /// over-report organic cache efficiency.
    pub prefetch_hits: u64,
    /// Prefetches that could not stage a region (dead device path, static
    /// slot conflict, quarantine-exhausted pool) and degraded to a no-op.
    pub prefetch_fallbacks: u64,
    /// Clean-slot evictions whose mandatory write-back was elided because a
    /// detected step plan proves the host mirror is already current
    /// (only under `WritebackPolicy::Always` with a live plan).
    pub writebacks_deferred: u64,
    /// Fused temporal-blocking launches (one launch covering k stencil
    /// applications; also counted in `kernels_gpu`).
    pub kernels_fused: u64,
    /// Total stencil applications executed inside fused launches (host or
    /// device): the sum of every fused call's depth. `fused_substeps /
    /// kernels_fused` is the average amortization factor k.
    pub fused_substeps: u64,
    /// Regions re-owned onto a surviving device after a device loss or a
    /// quarantine evacuation (live migration; `MultiAcc` only).
    pub regions_migrated: u64,
    /// Host→device uploads owed to migration: each migrated region of each
    /// array must be re-staged from its host mirror onto its new owner.
    /// Kept separate from `loads` so failover cost is visible on its own.
    pub migration_restage_loads: u64,
    /// Bytes of host-mirror state the migration re-stage moves (the
    /// separate accounting the failover conservation checks pin).
    pub migration_restage_bytes: u64,
}

impl fmt::Display for AccStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} loads={} evictions={} host_syncs={} kernels(gpu/host)={}/{} ghosts(gpu/host)={}/{} conflicts={}",
            self.hits,
            self.loads,
            self.evictions,
            self.host_syncs,
            self.kernels_gpu,
            self.kernels_host,
            self.ghost_gpu,
            self.ghost_host,
            self.conflict_fallbacks,
        )?;
        if self.transfer_retries + self.fault_fallbacks + self.slot_shrinks + self.salvaged_regions
            > 0
        {
            write!(
                f,
                " retries={} fault_fallbacks={} slot_shrinks={} salvaged={}",
                self.transfer_retries,
                self.fault_fallbacks,
                self.slot_shrinks,
                self.salvaged_regions,
            )?;
        }
        if self.checkpoints_taken + self.checkpoints_restored + self.hang_detections > 0 {
            write!(
                f,
                " ckpts(taken/restored)={}/{} hangs={}",
                self.checkpoints_taken, self.checkpoints_restored, self.hang_detections,
            )?;
        }
        if self.integrity_detected + self.integrity_repaired + self.slots_quarantined + self.hazards
            > 0
        {
            write!(
                f,
                " integrity(detected/repaired)={}/{} quarantined={} hazards={}",
                self.integrity_detected,
                self.integrity_repaired,
                self.slots_quarantined,
                self.hazards,
            )?;
        }
        if self.prefetch_loads
            + self.prefetch_hits
            + self.prefetch_fallbacks
            + self.writebacks_deferred
            > 0
        {
            write!(
                f,
                " prefetch(loads/hits)={}/{} prefetch_fallbacks={} deferred_wb={}",
                self.prefetch_loads,
                self.prefetch_hits,
                self.prefetch_fallbacks,
                self.writebacks_deferred,
            )?;
        }
        if self.kernels_fused + self.fused_substeps > 0 {
            write!(
                f,
                " fused(launches/substeps)={}/{}",
                self.kernels_fused, self.fused_substeps,
            )?;
        }
        if self.regions_migrated + self.migration_restage_loads + self.migration_restage_bytes > 0 {
            write!(
                f,
                " migrated={} restage(loads/bytes)={}/{}",
                self.regions_migrated, self.migration_restage_loads, self.migration_restage_bytes,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed_and_displays() {
        let s = AccStats::default();
        assert_eq!(s.hits, 0);
        assert_eq!(s.write_allocs, 0);
        assert_eq!(s.writebacks_skipped, 0);
        let text = s.to_string();
        assert!(text.contains("loads=0"));
        assert!(text.contains("evictions=0"));
    }

    #[test]
    fn display_reflects_counts() {
        let s = AccStats {
            hits: 3,
            loads: 2,
            kernels_gpu: 7,
            ..AccStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("hits=3"));
        assert!(text.contains("loads=2"));
        assert!(text.contains("kernels(gpu/host)=7/0"));
    }

    #[test]
    fn display_adds_fault_suffix_only_when_nonzero() {
        assert!(!AccStats::default().to_string().contains("retries="));
        let s = AccStats {
            transfer_retries: 2,
            fault_fallbacks: 4,
            slot_shrinks: 1,
            salvaged_regions: 1,
            ..AccStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("retries=2"));
        assert!(text.contains("fault_fallbacks=4"));
        assert!(text.contains("slot_shrinks=1"));
        assert!(text.contains("salvaged=1"));
    }

    #[test]
    fn display_adds_recovery_suffix_only_when_nonzero() {
        assert!(!AccStats::default().to_string().contains("ckpts"));
        let s = AccStats {
            checkpoints_taken: 3,
            checkpoints_restored: 1,
            hang_detections: 2,
            ..AccStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("ckpts(taken/restored)=3/1"));
        assert!(text.contains("hangs=2"));
    }

    #[test]
    fn display_adds_integrity_suffix_only_when_nonzero() {
        assert!(!AccStats::default().to_string().contains("integrity"));
        let s = AccStats {
            integrity_detected: 4,
            integrity_repaired: 3,
            slots_quarantined: 1,
            hazards: 2,
            ..AccStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("integrity(detected/repaired)=4/3"));
        assert!(text.contains("quarantined=1"));
        assert!(text.contains("hazards=2"));
    }

    #[test]
    fn display_adds_prefetch_suffix_only_when_nonzero() {
        assert!(!AccStats::default().to_string().contains("prefetch"));
        let s = AccStats {
            prefetch_loads: 5,
            prefetch_hits: 4,
            prefetch_fallbacks: 1,
            writebacks_deferred: 3,
            ..AccStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("prefetch(loads/hits)=5/4"));
        assert!(text.contains("prefetch_fallbacks=1"));
        assert!(text.contains("deferred_wb=3"));
    }

    #[test]
    fn display_adds_fused_suffix_only_when_nonzero() {
        assert!(!AccStats::default().to_string().contains("fused"));
        let s = AccStats {
            kernels_fused: 3,
            fused_substeps: 12,
            ..AccStats::default()
        };
        assert!(s.to_string().contains("fused(launches/substeps)=3/12"));
    }

    #[test]
    fn display_adds_migration_suffix_only_when_nonzero() {
        assert!(!AccStats::default().to_string().contains("migrated"));
        let s = AccStats {
            regions_migrated: 2,
            migration_restage_loads: 4,
            migration_restage_bytes: 4096,
            ..AccStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("migrated=2"));
        assert!(text.contains("restage(loads/bytes)=4/4096"));
    }
}
