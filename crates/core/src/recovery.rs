//! Run supervisor: watchdog, hang detection, bounded-time recovery.
//!
//! [`Supervisor::run`] drives a stepped workload over a [`TileAcc`] under a
//! watchdog. Around every step it drains the accelerator and reads the
//! virtual clock; a step that advances virtual time past
//! [`SupervisorConfig::progress_deadline`] is declared a **hang** (the
//! signature of a livelocked stream — work accepted, never completed), a
//! step that surfaces [`AccError::Crashed`] is a **crash**, and a step that
//! surfaces [`AccError::Integrity`] (unrepairable silent corruption — the
//! authoritative copy of a region is gone) is a **corruption**. Either way the
//! wedged instance is discarded, the latest *valid* snapshot is restored
//! (torn/corrupt ones are rejected by their checksums and counted), and the
//! run resumes from the snapshot's step — bounded by
//! [`SupervisorConfig::max_recoveries`] before surfacing
//! [`RecoveryError::RetriesExhausted`].
//!
//! State machine (documented in DESIGN.md §Recovery):
//!
//! ```text
//! Running --step ok, interval--> Checkpointing --pushed--> Running
//! Running --crash / hang------> Recovering --restore ok--> Running
//! Recovering --no valid ck----> failed(NoValidCheckpoint)
//! Recovering --attempts > max-> failed(RetriesExhausted)
//! Running --all steps retired-> final sync --> done
//! ```
//!
//! Because checkpoints are captured post-`sync_to_host` (host data
//! authoritative, device cache empty), a restored run's continuation depends
//! only on host slab contents — so the final grid is bit-identical to an
//! uninterrupted run's.

use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointPolicy, CheckpointStore};
use crate::error::AccError;
use crate::health::HealthMonitor;
use crate::stats::AccStats;
use crate::tileacc::{ArrayId, TileAcc};
use gpu_sim::{RecoveryCounters, SimTime};
use std::fmt;

/// Watchdog and checkpoint cadence for a supervised run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Snapshot cadence and retention.
    pub policy: CheckpointPolicy,
    /// A single step advancing virtual time by more than this is a hang.
    pub progress_deadline: SimTime,
    /// How many crash/hang recoveries to attempt before giving up.
    pub max_recoveries: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            policy: CheckpointPolicy::default(),
            progress_deadline: SimTime::from_ns(50_000_000),
            max_recoveries: 3,
        }
    }
}

/// Why a supervised run could not be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// More crash/hang events than `max_recoveries` allows.
    RetriesExhausted,
    /// Recovery was needed but no snapshot passed validation.
    NoValidCheckpoint,
    /// A snapshot could not be stored or applied.
    Checkpoint(CheckpointError),
    /// A non-recoverable accelerator failure (not a crash).
    Fatal(AccError),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::RetriesExhausted => {
                write!(f, "recovery retries exhausted; run abandoned")
            }
            RecoveryError::NoValidCheckpoint => {
                write!(f, "no valid checkpoint to restore")
            }
            RecoveryError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            RecoveryError::Fatal(e) => write!(f, "fatal accelerator error: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// What a completed supervised run looked like.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Steps retired (= the requested count on success).
    pub steps: u64,
    /// Total virtual time across every attempt — discarded instances
    /// included, since their work (useful prefix plus the lost tail counted
    /// in `counters.recovery_time`) was really spent.
    pub elapsed: SimTime,
    /// Checkpoint/restore/hang accounting across all attempts.
    pub counters: RecoveryCounters,
    /// The final accelerator instance's stats.
    pub stats: AccStats,
}

/// Drives a workload to completion through crashes and hangs. See the
/// module docs for the state machine.
pub struct Supervisor {
    cfg: SupervisorConfig,
    store: CheckpointStore,
    counters: RecoveryCounters,
    /// Virtual time of instances discarded by recovery: a rebuilt
    /// accelerator's clock restarts at zero, so without this the outcome
    /// would silently drop everything the dead attempt spent.
    discarded_time: SimTime,
    /// Health score of the (single) device the supervised [`TileAcc`] runs
    /// on, fed by the same fault/latency/integrity signals the recovery
    /// state machine reacts to. Multi-device placement consults its
    /// [`MultiAcc`](crate::MultiAcc) counterpart instead.
    health: HealthMonitor,
}

enum StepFault {
    Crash,
    Hang,
    /// Unrepairable silent corruption (typed [`AccError::Integrity`]): the
    /// instance's data is untrustworthy, so it is discarded like a crash.
    Corruption,
}

impl Supervisor {
    pub fn new(cfg: SupervisorConfig) -> Self {
        let store = CheckpointStore::new(cfg.policy.clone());
        Supervisor {
            cfg,
            store,
            counters: RecoveryCounters::default(),
            discarded_time: SimTime::ZERO,
            health: HealthMonitor::with_defaults(1),
        }
    }

    /// Recovery accounting so far (useful after [`Supervisor::run`] fails).
    pub fn counters(&self) -> RecoveryCounters {
        self.counters
    }

    /// The device-health view the watchdog signals feed.
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// Run `steps` iterations of `step_fn` under the watchdog.
    ///
    /// `build(attempt)` constructs a fresh accelerator with its arrays
    /// registered; it is called once up front (`attempt = 0`) and once per
    /// recovery (`attempt ≥ 1`), letting a caller arm fault injection only
    /// on the first instance. For the final grid to be observable, register
    /// clones of the *same* [`tida::TileArray`]s each time — restore
    /// overwrites their shared host slabs.
    pub fn run(
        &mut self,
        steps: u64,
        mut build: impl FnMut(u32) -> TileAcc,
        mut step_fn: impl FnMut(&mut TileAcc, u64) -> Result<(), AccError>,
    ) -> Result<RecoveryOutcome, RecoveryError> {
        let mut acc = build(0);
        let mut attempt: u32 = 0;
        let mut step: u64 = 0;

        // A step-0 snapshot so recovery always has a floor to fall back to.
        // A store that already holds snapshots (a resumed supervisor) keeps
        // its existing floor instead.
        if self.store.is_empty() {
            self.take_checkpoint(&mut acc, 0)?;
        }
        let mut last_ck_time = acc.finish();

        loop {
            if step >= steps {
                // Drain everything to the host so the caller's arrays hold
                // the final grid. A crash here is recoverable like any other.
                let fault = match Self::final_sync(&mut acc) {
                    Ok(()) => break,
                    Err(AccError::Crashed) => StepFault::Crash,
                    Err(AccError::Integrity { .. }) => StepFault::Corruption,
                    Err(e) => return Err(RecoveryError::Fatal(e)),
                };
                self.note_fault(fault, &mut acc, last_ck_time);
                (acc, step, attempt, last_ck_time) = self.recover(attempt, &mut build)?;
                continue;
            }

            let before = acc.finish();
            let fault = match step_fn(&mut acc, step) {
                Ok(()) => {
                    let after = acc.finish();
                    if after.saturating_sub(before) > self.cfg.progress_deadline {
                        Some(StepFault::Hang)
                    } else {
                        None
                    }
                }
                Err(AccError::Crashed) => Some(StepFault::Crash),
                Err(AccError::Integrity { .. }) => Some(StepFault::Corruption),
                Err(e) => return Err(RecoveryError::Fatal(e)),
            };

            if let Some(fault) = fault {
                self.note_fault(fault, &mut acc, last_ck_time);
                (acc, step, attempt, last_ck_time) = self.recover(attempt, &mut build)?;
                continue;
            }

            self.health.observe_success(0);
            step += 1;
            let interval = self.cfg.policy.interval;
            if interval > 0 && step.is_multiple_of(interval) && step < steps {
                match self.take_checkpoint(&mut acc, step) {
                    Ok(()) => last_ck_time = acc.finish(),
                    Err(RecoveryError::Fatal(AccError::Crashed)) => {
                        self.note_fault(StepFault::Crash, &mut acc, last_ck_time);
                        (acc, step, attempt, last_ck_time) = self.recover(attempt, &mut build)?;
                    }
                    Err(RecoveryError::Fatal(AccError::Integrity { .. })) => {
                        self.note_fault(StepFault::Corruption, &mut acc, last_ck_time);
                        (acc, step, attempt, last_ck_time) = self.recover(attempt, &mut build)?;
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        let elapsed = self.discarded_time + acc.finish();
        acc.sync_recovery_stats(self.counters);
        Ok(RecoveryOutcome {
            steps,
            elapsed,
            counters: self.counters,
            stats: acc.stats(),
        })
    }

    fn final_sync(acc: &mut TileAcc) -> Result<(), AccError> {
        for a in 0..acc.num_arrays() {
            acc.sync_to_host(ArrayId(a))?;
        }
        acc.finish();
        Ok(())
    }

    fn take_checkpoint(&mut self, acc: &mut TileAcc, step: u64) -> Result<(), RecoveryError> {
        let ck = acc.checkpoint(step).map_err(RecoveryError::Fatal)?;
        self.store.push(&ck).map_err(RecoveryError::Checkpoint)?;
        self.counters.checkpoints_taken += 1;
        Ok(())
    }

    /// Account a crash/hang: the virtual time spent since the last snapshot
    /// is lost work that recovery will replay.
    fn note_fault(&mut self, fault: StepFault, acc: &mut TileAcc, last_ck_time: SimTime) {
        match fault {
            StepFault::Crash => {
                self.counters.crash_detections += 1;
                self.health.observe_fault(0);
            }
            StepFault::Hang => {
                self.counters.hang_detections += 1;
                self.health.observe_latency(0);
            }
            StepFault::Corruption => {
                self.counters.corruption_detections += 1;
                self.health.observe_integrity(0);
            }
        }
        let spent = acc.finish();
        self.discarded_time += spent;
        self.counters.recovery_time += spent.saturating_sub(last_ck_time);
    }

    /// Discard the wedged instance, restore the newest valid snapshot into a
    /// freshly built one, and resume from its step.
    #[allow(clippy::type_complexity)]
    fn recover(
        &mut self,
        attempt: u32,
        build: &mut impl FnMut(u32) -> TileAcc,
    ) -> Result<(TileAcc, u64, u32, SimTime), RecoveryError> {
        let attempt = attempt + 1;
        if attempt > self.cfg.max_recoveries {
            return Err(RecoveryError::RetriesExhausted);
        }
        let (ck, rejected) = self.store.latest_valid();
        self.counters.snapshots_rejected += rejected;
        let Some(ck) = ck else {
            return Err(RecoveryError::NoValidCheckpoint);
        };
        let mut acc = build(attempt);
        acc.restore(&ck).map_err(RecoveryError::Checkpoint)?;
        self.counters.checkpoints_restored += 1;
        acc.sync_recovery_stats(self.counters);
        let step = ck.step;
        let t = acc.finish();
        Ok((acc, step, attempt, t))
    }

    /// Tamper with stored snapshots (tests): flip a bit in the
    /// `idx`-newest blob.
    pub fn corrupt_snapshot(&mut self, idx_from_latest: usize, byte: usize) {
        self.store.tamper(idx_from_latest, byte);
    }

    /// Tear stored snapshots (tests): truncate the `idx`-newest blob.
    pub fn tear_snapshot(&mut self, idx_from_latest: usize, frac: f64) {
        self.store.truncate(idx_from_latest, frac);
    }

    /// Snapshots currently retained.
    pub fn snapshots(&self) -> usize {
        self.store.len()
    }
}

/// Restore a [`Checkpoint`] decoded elsewhere (e.g. from disk) into a fresh
/// accelerator — the cross-process restart path used by
/// `examples/checkpoint_restart.rs`.
pub fn restore_into(acc: &mut TileAcc, ck: &Checkpoint) -> Result<(), CheckpointError> {
    acc.restore(ck)
}
