//! Per-device health scoring with hysteresis-based quarantine.
//!
//! Every retry, integrity finding, and latency overrun the runtime observes
//! is attributed to the device it happened on; a leaky-integrator score per
//! device turns those point events into a level. Two thresholds with a gap
//! between them ([`HealthPolicy::quarantine_threshold`] <
//! [`HealthPolicy::readmit_threshold`]) plus a dwell count give hysteresis:
//! a flapping link pushes a device into quarantine once, and the device is
//! readmitted once — after the score has *recovered past the higher bar* and
//! stayed clean for [`HealthPolicy::readmit_dwell`] consecutive
//! observations — instead of oscillating in and out on every window edge.
//!
//! The monitor is pure bookkeeping: it never touches the simulator. The
//! runtimes consult it for placement ([`crate::MultiAcc`] avoids quarantined
//! devices when re-owning migrated regions) and surface its transition
//! counters through [`gpu_sim::RunReport::health`].

use gpu_sim::HealthCounters;

/// Scoring and hysteresis knobs. Scores live in `[0, 1]`; a fresh device
/// starts at 1.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// A healthy device whose score falls below this is quarantined.
    pub quarantine_threshold: f64,
    /// A quarantined device is readmitted only once its score climbs back
    /// above this (strictly higher than `quarantine_threshold` — the gap is
    /// the hysteresis band).
    pub readmit_threshold: f64,
    /// Weight a clean observation pulls the score toward 1.0 with
    /// (`score += decay * (1 - score)`).
    pub decay: f64,
    /// Score subtracted per retried/failed transfer attempt.
    pub fault_penalty: f64,
    /// Score subtracted per integrity finding pinned to the device.
    pub integrity_penalty: f64,
    /// Score subtracted per latency overrun (hang/progress-deadline miss).
    pub latency_penalty: f64,
    /// Consecutive clean observations a quarantined device must bank (with
    /// its score above `readmit_threshold`) before readmission.
    pub readmit_dwell: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            quarantine_threshold: 0.35,
            readmit_threshold: 0.85,
            decay: 0.25,
            fault_penalty: 0.2,
            integrity_penalty: 0.5,
            latency_penalty: 0.1,
            readmit_dwell: 4,
        }
    }
}

/// Where a device sits in the quarantine state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Eligible for placement.
    Healthy,
    /// Score fell through the floor; not eligible for new placement but
    /// still observed, and readmitted once it proves itself again.
    Quarantined,
    /// Permanently lost (device death); never readmitted.
    Dead,
}

/// Per-device health scores and quarantine transitions. See module docs.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    scores: Vec<f64>,
    states: Vec<HealthState>,
    /// Consecutive clean observations since the last fault, per device.
    dwell: Vec<u32>,
    counters: HealthCounters,
}

impl HealthMonitor {
    pub fn new(num_devices: usize, policy: HealthPolicy) -> Self {
        HealthMonitor {
            policy,
            scores: vec![1.0; num_devices],
            states: vec![HealthState::Healthy; num_devices],
            dwell: vec![0; num_devices],
            counters: HealthCounters::default(),
        }
    }

    pub fn with_defaults(num_devices: usize) -> Self {
        Self::new(num_devices, HealthPolicy::default())
    }

    pub fn num_devices(&self) -> usize {
        self.scores.len()
    }

    pub fn state(&self, device: usize) -> HealthState {
        self.states[device]
    }

    pub fn score(&self, device: usize) -> f64 {
        self.scores[device]
    }

    /// Whether the device is eligible for placement right now.
    pub fn available(&self, device: usize) -> bool {
        self.states[device] == HealthState::Healthy
    }

    /// Devices currently eligible for placement.
    pub fn available_devices(&self) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&d| self.available(d))
            .collect()
    }

    /// Quarantine/readmission/loss transition counts so far.
    pub fn counters(&self) -> HealthCounters {
        self.counters
    }

    /// A clean operation completed on `device`: the score recovers toward
    /// 1.0, and a quarantined device banks dwell toward readmission.
    pub fn observe_success(&mut self, device: usize) {
        if self.states[device] == HealthState::Dead {
            return;
        }
        let s = &mut self.scores[device];
        *s += self.policy.decay * (1.0 - *s);
        self.dwell[device] = self.dwell[device].saturating_add(1);
        if self.states[device] == HealthState::Quarantined
            && *s >= self.policy.readmit_threshold
            && self.dwell[device] >= self.policy.readmit_dwell
        {
            self.states[device] = HealthState::Healthy;
            self.counters.readmissions += 1;
        }
    }

    /// A transfer attempt on `device` failed (retryable fault or flap).
    pub fn observe_fault(&mut self, device: usize) {
        self.penalize(device, self.policy.fault_penalty);
    }

    /// An integrity finding was pinned to `device`.
    pub fn observe_integrity(&mut self, device: usize) {
        self.penalize(device, self.policy.integrity_penalty);
    }

    /// `device` blew a progress deadline (hang / latency overrun).
    pub fn observe_latency(&mut self, device: usize) {
        self.penalize(device, self.policy.latency_penalty);
    }

    /// `device` is permanently gone. Idempotent; counted once.
    pub fn note_dead(&mut self, device: usize) {
        if self.states[device] != HealthState::Dead {
            self.states[device] = HealthState::Dead;
            self.scores[device] = 0.0;
            self.counters.devices_lost += 1;
        }
    }

    fn penalize(&mut self, device: usize, penalty: f64) {
        if self.states[device] == HealthState::Dead {
            return;
        }
        self.dwell[device] = 0;
        let s = &mut self.scores[device];
        *s = (*s - penalty).max(0.0);
        if self.states[device] == HealthState::Healthy && *s < self.policy.quarantine_threshold {
            self.states[device] = HealthState::Quarantined;
            self.counters.quarantines += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_devices_are_healthy_with_full_scores() {
        let m = HealthMonitor::with_defaults(3);
        assert_eq!(m.num_devices(), 3);
        for d in 0..3 {
            assert_eq!(m.state(d), HealthState::Healthy);
            assert_eq!(m.score(d), 1.0);
            assert!(m.available(d));
        }
        assert_eq!(m.available_devices(), vec![0, 1, 2]);
        assert!(!m.counters().any());
    }

    #[test]
    fn faults_quarantine_and_recovery_readmits_exactly_once() {
        let mut m = HealthMonitor::with_defaults(2);
        // A burst of faults drives device 1 through the floor — one
        // quarantine transition, however long the burst.
        for _ in 0..8 {
            m.observe_fault(1);
        }
        assert_eq!(m.state(1), HealthState::Quarantined);
        assert_eq!(m.counters().quarantines, 1);
        assert!(!m.available(1));
        assert_eq!(m.available_devices(), vec![0]);
        // A long clean streak readmits it exactly once.
        for _ in 0..32 {
            m.observe_success(1);
        }
        assert_eq!(m.state(1), HealthState::Healthy);
        assert_eq!(m.counters().readmissions, 1);
        // The bystander device never transitioned.
        assert_eq!(m.counters().quarantines, 1);
        assert_eq!(m.state(0), HealthState::Healthy);
    }

    #[test]
    fn hysteresis_band_blocks_oscillation() {
        // Alternating fault/success around the quarantine threshold must
        // not toggle the state: readmission needs the *higher* bar plus a
        // clean dwell, and any fault resets the dwell.
        let mut m = HealthMonitor::with_defaults(1);
        for _ in 0..8 {
            m.observe_fault(0);
        }
        assert_eq!(m.counters().quarantines, 1);
        for _ in 0..24 {
            m.observe_success(0);
            m.observe_fault(0);
        }
        assert_eq!(
            m.state(0),
            HealthState::Quarantined,
            "mixed signal keeps the device quarantined"
        );
        assert_eq!(m.counters().quarantines, 1, "no re-quarantine churn");
        assert_eq!(m.counters().readmissions, 0, "no premature readmission");
    }

    #[test]
    fn dead_is_terminal_and_counted_once() {
        let mut m = HealthMonitor::with_defaults(2);
        m.note_dead(0);
        m.note_dead(0);
        assert_eq!(m.counters().devices_lost, 1);
        assert_eq!(m.state(0), HealthState::Dead);
        for _ in 0..64 {
            m.observe_success(0);
        }
        assert_eq!(m.state(0), HealthState::Dead, "no resurrection");
        assert_eq!(m.score(0), 0.0);
        assert_eq!(m.available_devices(), vec![1]);
    }

    #[test]
    fn integrity_hits_harder_than_latency() {
        let mut m = HealthMonitor::with_defaults(2);
        m.observe_integrity(0);
        m.observe_latency(1);
        assert!(m.score(0) < m.score(1));
        assert!(m.score(1) < 1.0);
    }
}
