//! Multi-GPU extension: regions distributed across devices.
//!
//! The paper's related work points at multi-GPU systems (dCUDA, XACC) and
//! its model extends naturally: regions are already the unit of transfer
//! and execution, so distributing them over several devices only adds one
//! mechanism — cross-device halo exchange. [`MultiAcc`] implements the
//! standard pack / peer-copy / unpack pipeline for ghost patches whose
//! source and destination regions live on different GPUs:
//!
//! 1. a *pack* kernel on the source device gathers the patch's source cells
//!    into a contiguous staging buffer,
//! 2. a peer copy (`cudaMemcpyPeerAsync`) moves the staging buffer to the
//!    destination device,
//! 3. an *unpack* kernel scatters it into the destination region's ghosts.
//!
//! Each region gets its own stream on its owner device, so kernels and halo
//! traffic pipeline exactly as in the single-GPU runtime. Unlike
//! [`crate::TileAcc`], `MultiAcc` keeps every region resident on its owner
//! (the point of multiple GPUs is aggregate memory); combining distribution
//! with slot staging is future work.

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::error::{AccError, IntegrityKind};
use crate::health::{HealthMonitor, HealthState};
use crate::options::RetryPolicy;
use crate::recovery::RecoveryError;
use crate::stats::AccStats;
use crate::tileacc::ArrayId;
use gpu_sim::{
    DeviceBuffer, GpuSystem, HostBuffer, HostMemKind, KernelCost, KernelLaunch, SimTime, StreamId,
};
use std::sync::Arc;
use tida::{with_dst_src, with_view_mut, Box3, Decomposition, GhostPatch, Tile, TileArray};

struct MArray {
    array: TileArray,
    host: Vec<HostBuffer>,
    dev: Vec<DeviceBuffer>,
    resident: Vec<bool>,
    dirty: Vec<bool>,
}

/// Per-cross-device-patch staging buffers (source-side and destination-side).
#[derive(Clone, Copy)]
struct PatchStaging {
    src_stage: DeviceBuffer,
    dst_stage: DeviceBuffer,
}

/// The multi-GPU runtime. See the module docs.
pub struct MultiAcc {
    gpu: GpuSystem,
    decomp: Option<Arc<Decomposition>>,
    arrays: Vec<MArray>,
    /// Owner device per region (contiguous blocks).
    owner: Vec<usize>,
    /// One stream per region, on its owner device.
    streams: Vec<StreamId>,
    kernel_efficiency: f64,
    initialized: bool,
    /// Staging-buffer cache for cross-device patches, keyed by patch
    /// geometry.
    staging_keys: Vec<(usize, usize, Box3)>,
    staging: Vec<PatchStaging>,
    /// Retry budget for injected transient transfer faults. `MultiAcc`
    /// keeps every region device-resident, so it has no host-fallback path:
    /// exhausting the budget surfaces [`AccError::TransferExhausted`].
    retry: RetryPolicy,
    /// Per-device health scores fed by the retry loops; quarantined devices
    /// are skipped when migration picks new owners.
    health: HealthMonitor,
    stats: AccStats,
}

impl MultiAcc {
    /// Wrap a multi-device platform (see [`GpuSystem::multi`]).
    pub fn new(gpu: GpuSystem) -> Self {
        let health = HealthMonitor::with_defaults(gpu.num_devices());
        MultiAcc {
            gpu,
            decomp: None,
            arrays: Vec::new(),
            owner: Vec::new(),
            streams: Vec::new(),
            kernel_efficiency: 0.95,
            initialized: false,
            staging_keys: Vec::new(),
            staging: Vec::new(),
            // Historical budget: 8 retries, 20 µs base backoff doubling per
            // attempt — now expressed through the shared policy.
            retry: RetryPolicy::new(8, SimTime::from_us(20)),
            health,
            stats: AccStats::default(),
        }
    }

    /// Override the transfer retry budget (see [`RetryPolicy`]).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Register an array (all arrays must share one decomposition).
    pub fn register(&mut self, array: &TileArray) -> ArrayId {
        assert!(!self.initialized, "register arrays before first use");
        match &self.decomp {
            None => self.decomp = Some(array.decomp().clone()),
            Some(d) => assert!(
                Arc::ptr_eq(d, array.decomp()),
                "all registered arrays must share one decomposition"
            ),
        }
        let host: Vec<HostBuffer> = array
            .regions()
            .iter()
            .map(|r| {
                self.gpu
                    .adopt_host_slab(r.slab.clone(), HostMemKind::Pinned)
            })
            .collect();
        self.arrays.push(MArray {
            array: array.clone(),
            host,
            dev: Vec::new(),
            resident: Vec::new(),
            dirty: Vec::new(),
        });
        ArrayId(self.arrays.len() - 1)
    }

    /// Device owning a region.
    pub fn owner(&self, region: usize) -> usize {
        self.owner[region]
    }

    pub fn gpu(&self) -> &GpuSystem {
        &self.gpu
    }

    pub fn gpu_mut(&mut self) -> &mut GpuSystem {
        &mut self.gpu
    }

    pub fn finish(&mut self) -> SimTime {
        self.gpu.finish()
    }

    /// Post-run report (API parity with [`crate::TileAcc::report`]).
    /// `MultiAcc` keeps every region resident on its owner, so the
    /// prefetch/overlap-scheduler counters are always zero here. Health
    /// transitions (quarantine/readmission/device loss) and migration
    /// accounting are merged in from this runtime's monitor.
    pub fn report(&mut self) -> gpu_sim::RunReport {
        let mut h = self.health.counters();
        h.regions_migrated += self.stats.regions_migrated;
        h.migration_restage_bytes += self.stats.migration_restage_bytes;
        self.gpu.report().with_health(h)
    }

    /// Runtime counters (API parity with [`crate::TileAcc::stats`]).
    pub fn stats(&self) -> AccStats {
        self.stats
    }

    /// The per-device health monitor feeding quarantine decisions.
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    fn num_regions(&self) -> usize {
        self.decomp.as_ref().expect("no arrays").num_regions()
    }

    /// Fail fast when the simulated platform has crashed (see
    /// [`crate::TileAcc`]'s equivalent): everything submitted after a crash
    /// is refused, and device-resident data is lost.
    fn check_alive(&self) -> Result<(), AccError> {
        if self.gpu.crashed() {
            Err(AccError::Crashed)
        } else {
            Ok(())
        }
    }

    /// Fail fast when the platform crashed *or* the owner device of region
    /// `r` was lost: either way nothing submitted toward it will complete,
    /// but a device loss is survivable — the caller can
    /// [`failover`](MultiAcc::failover) onto the survivors.
    fn check_region(&self, r: usize) -> Result<(), AccError> {
        self.check_alive()?;
        let device = self.owner[r];
        if self.gpu.device_lost(device) {
            Err(AccError::DeviceLost { device })
        } else {
            Ok(())
        }
    }

    /// Allocate device buffers and streams: region `r` goes to device
    /// `r * D / R` (contiguous blocks minimize cross-device faces for slab
    /// decompositions).
    fn ensure_init(&mut self) -> Result<(), AccError> {
        if self.initialized {
            return Ok(());
        }
        let regions = self.num_regions();
        let devices = self.gpu.num_devices();
        self.owner = (0..regions).map(|r| r * devices / regions).collect();
        self.streams = self
            .owner
            .iter()
            .map(|&d| self.gpu.create_stream_on(d))
            .collect();
        for ai in 0..self.arrays.len() {
            for r in 0..regions {
                let len = self.arrays[ai].array.region(r).slab.len();
                let dev = self.gpu.malloc_device_on(self.owner[r], len).map_err(|_| {
                    AccError::DeviceAlloc {
                        bytes: (len * std::mem::size_of::<f64>()) as u64,
                    }
                })?;
                self.arrays[ai].dev.push(dev);
            }
            self.arrays[ai].resident = vec![false; regions];
            self.arrays[ai].dirty = vec![false; regions];
        }
        self.initialized = true;
        Ok(())
    }

    /// Upload a region to its owner if the host copy is authoritative.
    fn ensure_resident(&mut self, a: ArrayId, r: usize, write_all: bool) -> Result<(), AccError> {
        self.ensure_init()?;
        if self.arrays[a.0].resident[r] {
            return Ok(());
        }
        if !write_all {
            let len = self.arrays[a.0].array.region(r).slab.len();
            let (dev, host) = (self.arrays[a.0].dev[r], self.arrays[a.0].host[r]);
            let device = self.owner[r];
            self.stats.loads += 1;
            let mut op = self
                .gpu
                .memcpy_h2d_async(dev, 0, host, 0, len, self.streams[r]);
            let mut attempt: u32 = 0;
            while self.gpu.op_faulted(op) {
                if self.gpu.crashed() {
                    // A crash is not a persistent transfer fault; retrying a
                    // dead platform would misdiagnose it.
                    return Err(AccError::Crashed);
                }
                if self.gpu.device_lost(device) {
                    // The device died under this transfer: retrying is
                    // hopeless, but the host mirror is intact — surface the
                    // typed loss so the caller can migrate and fail over.
                    return Err(AccError::DeviceLost { device });
                }
                self.health.observe_fault(device);
                if self.retry.exhausted(attempt) {
                    // MultiAcc cannot degrade past a persistent H2D fault:
                    // it keeps every region device-resident.
                    return Err(AccError::TransferExhausted { region: r });
                }
                self.stats.transfer_retries += 1;
                self.gpu
                    .backoff_work(self.retry.backoff(attempt), "h2d-retry-backoff");
                op = self
                    .gpu
                    .memcpy_h2d_async(dev, 0, host, 0, len, self.streams[r]);
                attempt += 1;
            }
            self.health.observe_success(device);
        } else {
            self.stats.write_allocs += 1;
        }
        self.arrays[a.0].resident[r] = true;
        self.arrays[a.0].dirty[r] = write_all;
        Ok(())
    }

    /// Bring a region back to the host (blocking), releasing residency.
    fn acquire_host(&mut self, a: ArrayId, r: usize) -> Result<(), AccError> {
        if !self.initialized || !self.arrays[a.0].resident[r] {
            return Ok(());
        }
        if self.arrays[a.0].dirty[r] {
            let len = self.arrays[a.0].array.region(r).slab.len();
            let (dev, host) = (self.arrays[a.0].dev[r], self.arrays[a.0].host[r]);
            let device = self.owner[r];
            self.stats.host_syncs += 1;
            let mut op = self
                .gpu
                .memcpy_d2h_async(host, 0, dev, 0, len, self.streams[r]);
            let mut attempt: u32 = 0;
            while self.gpu.op_faulted(op) {
                if self.gpu.crashed() {
                    // Device data died with the platform; not even the
                    // salvage path can rescue it.
                    return Err(AccError::Crashed);
                }
                if self.gpu.device_lost(device) {
                    // The dirty device copy died with its device; only a
                    // checkpoint taken before this step can reconstruct it.
                    return Err(AccError::DeviceLost { device });
                }
                self.health.observe_fault(device);
                if self.retry.exhausted(attempt) {
                    // Last resort: the fault-exempt salvage path still gets
                    // the data home (slowly) before we give up retrying.
                    self.stats.salvaged_regions += 1;
                    self.gpu
                        .memcpy_d2h_salvage(host, 0, dev, 0, len, self.streams[r]);
                    break;
                }
                self.stats.transfer_retries += 1;
                self.gpu
                    .backoff_work(self.retry.backoff(attempt), "d2h-retry-backoff");
                op = self
                    .gpu
                    .memcpy_d2h_async(host, 0, dev, 0, len, self.streams[r]);
                attempt += 1;
            }
            if !self.gpu.op_faulted(op) {
                self.health.observe_success(device);
            }
        }
        self.gpu.stream_synchronize(self.streams[r]);
        let dev_struck = self.gpu.device_poisoned(self.arrays[a.0].dev[r]);
        self.arrays[a.0].resident[r] = false;
        self.arrays[a.0].dirty[r] = false;
        // The host copy is authoritative from here on: an unrepairable
        // corruption that made it into the mirror has no degradation path
        // (MultiAcc keeps no second copy) — surface it for checkpoint
        // recovery.
        if self.gpu.host_poisoned(self.arrays[a.0].host[r]) {
            self.stats.integrity_detected += 1;
            self.health.observe_integrity(self.owner[r]);
            return Err(AccError::Integrity {
                region: r,
                kind: if dev_struck {
                    IntegrityKind::DirtySlot
                } else {
                    IntegrityKind::HostMirror
                },
            });
        }
        Ok(())
    }

    /// Bring every region of `array` home (pipelined per-stream drain).
    pub fn sync_to_host(&mut self, array: ArrayId) -> Result<(), AccError> {
        for r in 0..self.num_regions() {
            self.acquire_host(array, r)?;
        }
        Ok(())
    }

    /// In-place kernel over one tile (distributed `compute1`).
    pub fn compute1(
        &mut self,
        tile: Tile,
        array: ArrayId,
        cost: KernelCost,
        label: &'static str,
        f: impl FnOnce(&mut tida::ViewMut<'_>, Box3) + 'static,
    ) -> Result<(), AccError> {
        self.check_alive()?;
        let r = tile.region;
        self.ensure_resident(array, r, false)?;
        let slab = self.gpu.device_slab(self.arrays[array.0].dev[r]);
        let layout = self.arrays[array.0].array.region(r).layout;
        let bx = tile.bx;
        let dev = self.arrays[array.0].dev[r];
        self.gpu.launch_kernel(
            self.streams[r],
            KernelLaunch::new(label, cost)
                .efficiency(self.kernel_efficiency)
                .writes(dev.into())
                .exec(move || {
                    with_view_mut(&slab, layout, |mut v| f(&mut v, bx));
                }),
        );
        self.arrays[array.0].dirty[r] = true;
        self.stats.kernels_gpu += 1;
        // A crash or device-death trigger may have fired on this launch.
        self.check_region(r)
    }

    /// Two-operand kernel over matching regions (distributed `compute2`).
    /// Both operands live on the same device (same region), in one stream —
    /// no cross-stream ordering needed.
    pub fn compute2(
        &mut self,
        tile: Tile,
        dst: ArrayId,
        src: ArrayId,
        cost: KernelCost,
        label: &'static str,
        f: impl FnOnce(&mut tida::ViewMut<'_>, &tida::View<'_>, Box3) + 'static,
    ) -> Result<(), AccError> {
        assert_ne!(dst, src, "compute2 operands must be distinct arrays");
        self.check_alive()?;
        let r = tile.region;
        let write_all = tile.bx == self.arrays[dst.0].array.region(r).valid;
        self.ensure_resident(src, r, false)?;
        self.ensure_resident(dst, r, write_all)?;
        let dslab = self.gpu.device_slab(self.arrays[dst.0].dev[r]);
        let sslab = self.gpu.device_slab(self.arrays[src.0].dev[r]);
        let dl = self.arrays[dst.0].array.region(r).layout;
        let sl = self.arrays[src.0].array.region(r).layout;
        let bx = tile.bx;
        let (ddev, sdev) = (self.arrays[dst.0].dev[r], self.arrays[src.0].dev[r]);
        self.gpu.launch_kernel(
            self.streams[r],
            KernelLaunch::new(label, cost)
                .efficiency(self.kernel_efficiency)
                .reads(sdev.into())
                .writes(ddev.into())
                .exec(move || {
                    with_dst_src((&dslab, dl), (&sslab, sl), |mut d, s| f(&mut d, &s, bx));
                }),
        );
        self.arrays[dst.0].dirty[r] = true;
        self.stats.kernels_gpu += 1;
        // A crash or device-death trigger may have fired on this launch.
        self.check_region(r)
    }

    /// General multi-operand kernel over matching regions (distributed
    /// counterpart of [`crate::TileAcc::compute`]). All operands of one
    /// region live on its owner device, in its stream.
    pub fn compute(
        &mut self,
        tile: Tile,
        writes: &[ArrayId],
        reads: &[ArrayId],
        cost: KernelCost,
        label: &'static str,
        f: impl FnOnce(&mut [tida::ViewMut<'_>], &[tida::View<'_>], Box3) + 'static,
    ) -> Result<(), AccError> {
        assert!(!writes.is_empty(), "compute needs at least one write array");
        self.check_alive()?;
        let r = tile.region;
        let write_all = tile
            .bx
            .contains_box(&self.arrays[writes[0].0].array.region(r).valid);
        for &a in reads {
            self.ensure_resident(a, r, false)?;
        }
        for (i, &a) in writes.iter().enumerate() {
            self.ensure_resident(a, r, i == 0 && write_all && !reads.contains(&a))?;
        }
        let wpairs: Vec<(memslab::Slab, tida::Layout)> = writes
            .iter()
            .map(|a| {
                (
                    self.gpu.device_slab(self.arrays[a.0].dev[r]),
                    self.arrays[a.0].array.region(r).layout,
                )
            })
            .collect();
        let rpairs: Vec<(memslab::Slab, tida::Layout)> = reads
            .iter()
            .map(|a| {
                (
                    self.gpu.device_slab(self.arrays[a.0].dev[r]),
                    self.arrays[a.0].array.region(r).layout,
                )
            })
            .collect();
        let bx = tile.bx;
        let mut launch = KernelLaunch::new(label, cost)
            .efficiency(self.kernel_efficiency)
            .exec(move || {
                let wrefs: Vec<(&memslab::Slab, tida::Layout)> =
                    wpairs.iter().map(|(s, l)| (s, *l)).collect();
                let rrefs: Vec<(&memslab::Slab, tida::Layout)> =
                    rpairs.iter().map(|(s, l)| (s, *l)).collect();
                tida::with_many(&wrefs, &rrefs, |ws, rs| f(ws, rs, bx));
            });
        for &a in reads {
            launch = launch.reads(self.arrays[a.0].dev[r].into());
        }
        for &a in writes {
            launch = launch.writes(self.arrays[a.0].dev[r].into());
        }
        self.gpu.launch_kernel(self.streams[r], launch);
        for &a in writes {
            self.arrays[a.0].dirty[r] = true;
        }
        self.stats.kernels_gpu += 1;
        // A crash or device-death trigger may have fired on this launch.
        self.check_region(r)
    }

    /// Reduce `map(cell)` over every valid cell of `array` with `combine`
    /// (distributed counterpart of [`crate::TileAcc::reduce`]): one
    /// reduction kernel per region on its owner device, partials combined
    /// on the host. Blocking. `None` for virtual runs.
    pub fn reduce<M, C>(
        &mut self,
        array: ArrayId,
        label: &'static str,
        identity: f64,
        map: M,
        combine: C,
    ) -> Result<Option<f64>, AccError>
    where
        M: Fn(f64) -> f64 + Clone + 'static,
        C: Fn(f64, f64) -> f64 + Clone + 'static,
    {
        self.check_alive()?;
        self.ensure_init()?;
        let regions = self.num_regions();
        let partials = std::sync::Arc::new(parking_lot::Mutex::new(vec![identity; regions]));
        let virtual_run = self.array_ref(array).is_virtual();
        for r in 0..regions {
            let reg = self.array_ref(array).region(r).clone();
            let cells = reg.valid.num_cells();
            if self.arrays[array.0].resident[r] {
                let slab = self.gpu.device_slab(self.arrays[array.0].dev[r]);
                let (m, c, out) = (map.clone(), combine.clone(), partials.clone());
                let dev = self.arrays[array.0].dev[r];
                self.gpu.launch_kernel(
                    self.streams[r],
                    KernelLaunch::new(label, KernelCost::Bytes(cells * 8))
                        .efficiency(self.kernel_efficiency)
                        .reads(dev.into())
                        .exec(move || {
                            tida::with_view(&slab, reg.layout, |v| {
                                let mut acc = identity;
                                for iv in reg.valid.iter() {
                                    acc = c(acc, m(v.at(iv)));
                                }
                                out.lock()[reg.id] = acc;
                            });
                        }),
                );
            } else {
                let (m, c, out) = (map.clone(), combine.clone(), partials.clone());
                tida::with_view(&reg.slab, reg.layout, |v| {
                    let mut acc = identity;
                    for iv in reg.valid.iter() {
                        acc = c(acc, m(v.at(iv)));
                    }
                    out.lock()[reg.id] = acc;
                });
                let cost = KernelCost::Bytes(cells * 8);
                let d = cost.duration_on_host(self.gpu.config());
                self.gpu.host_work(d, label);
            }
        }
        self.gpu.device_synchronize();
        if virtual_run {
            return Ok(None);
        }
        let partials = partials.lock();
        Ok(Some(partials.iter().copied().fold(identity, combine)))
    }

    /// Ghost exchange across all regions, using device gathers within a
    /// device and pack → peer-copy → unpack across devices.
    pub fn fill_boundary(&mut self, array: ArrayId) -> Result<(), AccError> {
        self.check_alive()?;
        self.ensure_init()?;
        let patches: Vec<GhostPatch> = self.array_ref(array).patches().to_vec();
        if patches.is_empty() {
            return Ok(());
        }
        // The paper's `acc wait` before the update phase.
        self.gpu.device_synchronize();

        for p in &patches {
            let dst_res = self.arrays[array.0].resident[p.dst_region];
            let src_res = self.arrays[array.0].resident[p.src_region];
            if !dst_res && !src_res {
                // Both authoritative on the host: update in place.
                self.host_patch(array, p)?;
                continue;
            }
            self.ensure_resident(array, p.src_region, false)?;
            self.ensure_resident(array, p.dst_region, false)?;
            if self.owner[p.src_region] == self.owner[p.dst_region] {
                self.same_device_patch(array, p)?;
            } else {
                self.cross_device_patch(array, p)?;
            }
        }
        Ok(())
    }

    fn array_ref(&self, a: ArrayId) -> &TileArray {
        &self.arrays[a.0].array
    }

    fn host_patch(&mut self, array: ArrayId, p: &GhostPatch) -> Result<(), AccError> {
        self.acquire_host(array, p.src_region)?;
        self.acquire_host(array, p.dst_region)?;
        let cells = p.num_cells();
        let cfg = self.gpu.config();
        let cost = cfg.host_index_time(cells) + cfg.host_copy_time(cells * 16);
        self.array_ref(array).apply_patch(p);
        self.gpu.host_work(cost, desim::sym!("ghost-host"));
        self.stats.ghost_host += 1;
        Ok(())
    }

    fn same_device_patch(&mut self, array: ArrayId, p: &GhostPatch) -> Result<(), AccError> {
        let cells = p.num_cells();
        let idx_time = self.gpu.config().host_index_time(cells);
        self.gpu.host_work(idx_time, desim::sym!("ghost-idx"));
        if p.src_region != p.dst_region {
            let ev = self.gpu.record_event(self.streams[p.src_region]);
            self.gpu.stream_wait_event(self.streams[p.dst_region], ev);
        }
        let dst_slab = self.gpu.device_slab(self.arrays[array.0].dev[p.dst_region]);
        let src_slab = self.gpu.device_slab(self.arrays[array.0].dev[p.src_region]);
        let dst_layout = self.array_ref(array).region(p.dst_region).layout;
        let src_layout = self.array_ref(array).region(p.src_region).layout;
        let patch = *p;
        let (sdev, ddev) = (
            self.arrays[array.0].dev[p.src_region],
            self.arrays[array.0].dev[p.dst_region],
        );
        self.gpu.launch_kernel(
            self.streams[p.dst_region],
            KernelLaunch::new("ghost", KernelCost::Bytes(cells * 16))
                .efficiency(self.kernel_efficiency)
                .reads(sdev.into())
                .writes(ddev.into())
                .exec(move || {
                    if dst_slab.is_virtual() || src_slab.is_virtual() {
                        return;
                    }
                    let dst_idx = dst_layout.offsets_of(&patch.dst_box);
                    let src_idx: Vec<usize> = patch
                        .dst_box
                        .iter()
                        .map(|c| src_layout.offset(c - patch.shift))
                        .collect();
                    memslab::gather(&dst_slab, &dst_idx, &src_slab, &src_idx);
                }),
        );
        self.arrays[array.0].dirty[p.dst_region] = true;
        self.stats.ghost_gpu += 1;
        // A crash or device-death trigger may have fired on this launch.
        self.check_region(p.dst_region)
    }

    /// Pack on the source device, peer-copy, unpack on the destination.
    fn cross_device_patch(&mut self, array: ArrayId, p: &GhostPatch) -> Result<(), AccError> {
        let cells = p.num_cells() as usize;
        let idx_time = self.gpu.config().host_index_time(cells as u64);
        self.gpu.host_work(idx_time, desim::sym!("ghost-idx"));

        let staging = self.patch_staging(p, cells)?;
        let src_layout = self.array_ref(array).region(p.src_region).layout;
        let dst_layout = self.array_ref(array).region(p.dst_region).layout;
        let patch = *p;

        // 1. Pack on the source device, in the source region's stream.
        let src_slab = self.gpu.device_slab(self.arrays[array.0].dev[p.src_region]);
        let stage_src_slab = self.gpu.device_slab(staging.src_stage);
        let (srdev, ssdev) = (self.arrays[array.0].dev[p.src_region], staging.src_stage);
        self.gpu.launch_kernel(
            self.streams[p.src_region],
            KernelLaunch::new("pack", KernelCost::Bytes(cells as u64 * 16))
                .efficiency(self.kernel_efficiency)
                .reads(srdev.into())
                .writes(ssdev.into())
                .exec(move || {
                    if src_slab.is_virtual() || stage_src_slab.is_virtual() {
                        return;
                    }
                    let src_idx: Vec<usize> = patch
                        .dst_box
                        .iter()
                        .map(|c| src_layout.offset(c - patch.shift))
                        .collect();
                    let lin: Vec<usize> = (0..src_idx.len()).collect();
                    memslab::gather(&stage_src_slab, &lin, &src_slab, &src_idx);
                }),
        );

        // 2. Peer copy, ordered after the pack, in the destination stream.
        let ev = self.gpu.record_event(self.streams[p.src_region]);
        self.gpu.stream_wait_event(self.streams[p.dst_region], ev);
        self.gpu.memcpy_p2p_async(
            staging.dst_stage,
            0,
            staging.src_stage,
            0,
            cells,
            self.streams[p.dst_region],
        );

        // 3. Unpack into the destination ghosts.
        let dst_slab = self.gpu.device_slab(self.arrays[array.0].dev[p.dst_region]);
        let stage_dst_slab = self.gpu.device_slab(staging.dst_stage);
        let (ddev, dsdev) = (self.arrays[array.0].dev[p.dst_region], staging.dst_stage);
        self.gpu.launch_kernel(
            self.streams[p.dst_region],
            KernelLaunch::new("unpack", KernelCost::Bytes(cells as u64 * 16))
                .efficiency(self.kernel_efficiency)
                .reads(dsdev.into())
                .writes(ddev.into())
                .exec(move || {
                    if dst_slab.is_virtual() || stage_dst_slab.is_virtual() {
                        return;
                    }
                    let dst_idx = dst_layout.offsets_of(&patch.dst_box);
                    let lin: Vec<usize> = (0..dst_idx.len()).collect();
                    memslab::gather(&dst_slab, &dst_idx, &stage_dst_slab, &lin);
                }),
        );
        self.arrays[array.0].dirty[p.dst_region] = true;

        // The next pack into the source staging buffer must wait for this
        // peer copy; serialize via an event back onto the source stream.
        let ev2 = self.gpu.record_event(self.streams[p.dst_region]);
        self.gpu.stream_wait_event(self.streams[p.src_region], ev2);
        self.stats.ghost_gpu += 1;
        // A crash or device-death trigger may have fired anywhere on the
        // pack/copy/unpack chain — either endpoint device counts.
        self.check_region(p.src_region)?;
        self.check_region(p.dst_region)
    }

    /// Get (allocating on first use) the staging pair for a patch. Staging
    /// buffers are keyed by (src_region, dst_region, box) — patch geometry
    /// is static, so each exchange reuses its pair.
    fn patch_staging(&mut self, p: &GhostPatch, cells: usize) -> Result<PatchStaging, AccError> {
        // Staging buffers are small; allocate fresh per call would leak
        // device memory across steps, so cache by key.
        let key = (p.src_region, p.dst_region, p.dst_box);
        if let Some(idx) = self.staging_keys.iter().position(|k| *k == key) {
            return Ok(self.staging[idx]);
        }
        let stage_err = || AccError::DeviceAlloc {
            bytes: (cells * std::mem::size_of::<f64>()) as u64,
        };
        let src_stage = self
            .gpu
            .malloc_device_on(self.owner[p.src_region], cells)
            .map_err(|_| stage_err())?;
        let dst_stage = self
            .gpu
            .malloc_device_on(self.owner[p.dst_region], cells)
            .map_err(|_| stage_err())?;
        let entry = PatchStaging {
            src_stage,
            dst_stage,
        };
        self.staging_keys.push(key);
        self.staging.push(entry);
        Ok(entry)
    }

    // ------------------------------------------------------------------
    // Live region migration / failover.
    // ------------------------------------------------------------------

    /// Re-own every region of `from` onto the surviving devices: fresh
    /// streams and device buffers on the new owners, residency dropped (the
    /// host mirrors are the reconstruction source), and the cross-device
    /// staging cache entries touching moved regions rebuilt lazily. Works
    /// for a dead device (its buffers are simply abandoned — the hardware
    /// is gone) and for a quarantine evacuation alike; quarantined devices
    /// are skipped when picking new owners as long as a healthy survivor
    /// exists.
    ///
    /// The caller must make the host mirrors authoritative before resuming
    /// — on a device loss the dirty device copies are unrecoverable, so
    /// that means [`restore`](MultiAcc::restore) from a snapshot (see
    /// [`failover`](MultiAcc::failover) for the combined protocol).
    pub fn migrate_off(&mut self, from: usize) -> Result<(), AccError> {
        if self.gpu.device_lost(from) {
            self.health.note_dead(from);
        }
        if !self.initialized {
            return Ok(());
        }
        let all: Vec<usize> = (0..self.gpu.num_devices())
            .filter(|&d| d != from && !self.gpu.device_lost(d))
            .collect();
        // Prefer healthy survivors; fall back to quarantined ones rather
        // than failing when quarantine is all that's left.
        let healthy: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&d| self.health.state(d) == HealthState::Healthy)
            .collect();
        let survivors = if healthy.is_empty() { all } else { healthy };
        if survivors.is_empty() {
            return Err(AccError::DeviceLost { device: from });
        }
        let mut moved = vec![false; self.owner.len()];
        let mut next = 0usize;
        for (r, was_moved) in moved.iter_mut().enumerate() {
            if self.owner[r] != from {
                continue;
            }
            let new_owner = survivors[next % survivors.len()];
            next += 1;
            self.owner[r] = new_owner;
            self.streams[r] = self.gpu.create_stream_on(new_owner);
            *was_moved = true;
            self.stats.regions_migrated += 1;
            for ai in 0..self.arrays.len() {
                let len = self.arrays[ai].array.region(r).slab.len();
                let bytes = (len * std::mem::size_of::<f64>()) as u64;
                // The old buffer is stranded on `from`; nothing to free —
                // the device (or its trustworthiness) is gone.
                let dev = self
                    .gpu
                    .malloc_device_on(new_owner, len)
                    .map_err(|_| AccError::DeviceAlloc { bytes })?;
                self.arrays[ai].dev[r] = dev;
                self.arrays[ai].resident[r] = false;
                self.arrays[ai].dirty[r] = false;
                // Credit the re-stage this move owes: the region must come
                // back from its host mirror onto the new owner.
                self.stats.migration_restage_loads += 1;
                self.stats.migration_restage_bytes += bytes;
            }
        }
        // Drop staging pairs whose geometry involves a moved region: their
        // buffers sit on the wrong devices now. Pairs entirely on healthy
        // devices are freed; a stranded buffer on `from` is abandoned.
        let mut i = 0;
        while i < self.staging_keys.len() {
            let (src, dst, _) = self.staging_keys[i];
            if moved[src] || moved[dst] {
                let entry = self.staging.swap_remove(i);
                self.staging_keys.swap_remove(i);
                if self.gpu.device_of(entry.src_stage) != from {
                    self.gpu.free_device(entry.src_stage);
                }
                if self.gpu.device_of(entry.dst_stage) != from {
                    self.gpu.free_device(entry.dst_stage);
                }
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// The full device-loss recovery protocol: restore the snapshot (host
    /// mirrors authoritative again, all residency dropped), then migrate
    /// every lost device's regions onto the survivors. Returns the step to
    /// resume from; replaying the workload from there is bit-identical to a
    /// failure-free run because reconstruction happens purely from the
    /// snapshot's host data.
    pub fn failover(&mut self, ck: &Checkpoint) -> Result<u64, RecoveryError> {
        self.restore(ck).map_err(RecoveryError::Checkpoint)?;
        for d in self.gpu.lost_devices() {
            self.migrate_off(d).map_err(RecoveryError::Fatal)?;
        }
        self.stats.checkpoints_restored += 1;
        Ok(ck.step)
    }

    // ------------------------------------------------------------------
    // Checkpoint / restore (shared [`Checkpoint`] type with `TileAcc`).
    // ------------------------------------------------------------------

    /// Capture a crash-consistent snapshot: all regions are drained home
    /// first, so host slabs are authoritative. `MultiAcc` carries no LRU
    /// clock, so that snapshot field stays at its default.
    pub fn checkpoint(&mut self, step: u64) -> Result<Checkpoint, AccError> {
        self.check_alive()?;
        for a in 0..self.arrays.len() {
            self.sync_to_host(ArrayId(a))?;
        }
        self.check_alive()?;
        self.stats.checkpoints_taken += 1;
        let data: Vec<Vec<Vec<f64>>> = self
            .arrays
            .iter()
            .map(|e| {
                e.array
                    .regions()
                    .iter()
                    .map(|r| r.slab.snapshot().unwrap_or_default())
                    .collect()
            })
            .collect();
        Ok(Checkpoint {
            step,
            clock: 0,
            stats: self.stats,
            data,
            cache: Vec::new(),
            dirty: Vec::new(),
        })
    }

    /// Rebuild this runtime's host state from a snapshot; all residency is
    /// dropped (the host copies are authoritative afterwards).
    pub fn restore(&mut self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        if ck.data.len() != self.arrays.len() {
            return Err(CheckpointError::Incompatible);
        }
        for (e, regions) in self.arrays.iter().zip(&ck.data) {
            if e.array.regions().len() != regions.len() {
                return Err(CheckpointError::Incompatible);
            }
            for (r, saved) in e.array.regions().iter().zip(regions) {
                if !saved.is_empty() && saved.len() != r.slab.len() {
                    return Err(CheckpointError::Incompatible);
                }
            }
        }
        if ck.cache.iter().any(|&c| c != -1) || ck.dirty.iter().any(|&d| d) {
            return Err(CheckpointError::Incompatible);
        }
        for (e, regions) in self.arrays.iter().zip(&ck.data) {
            for (r, saved) in e.array.regions().iter().zip(regions) {
                if !saved.is_empty() {
                    r.slab.materialize();
                    r.slab.with_mut(|dst| {
                        if let Some(dst) = dst {
                            dst.copy_from_slice(saved);
                        }
                    });
                }
            }
        }
        for a in self.arrays.iter_mut() {
            for f in a.resident.iter_mut() {
                *f = false;
            }
            for f in a.dirty.iter_mut() {
                *f = false;
            }
        }
        // The snapshot's host data just overwrote the mirrors, so any host
        // poison recorded against them is cured.
        for a in &self.arrays {
            for &h in &a.host {
                self.gpu.clear_host_poison(h);
            }
        }
        // Counters resume from the snapshot's view of the run; work done
        // since (and discarded by this restore) stays discarded.
        self.stats = ck.stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArrayId;
    use gpu_sim::{GpuSystem, MachineConfig, SimTime};
    use kernels::{busy, heat, init};
    use tida::{tiles_of, Domain, ExchangeMode, RegionSpec, TileSpec};

    fn heat_drive(
        acc: &mut MultiAcc,
        decomp: &Arc<Decomposition>,
        mut src: ArrayId,
        mut dst: ArrayId,
        steps: usize,
    ) -> ArrayId {
        let tiles = tiles_of(decomp, TileSpec::RegionSized);
        for _ in 0..steps {
            acc.fill_boundary(src).unwrap();
            for &t in &tiles {
                acc.compute2(
                    t,
                    dst,
                    src,
                    heat::cost(t.num_cells()),
                    "heat",
                    |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
                )
                .unwrap();
            }
            std::mem::swap(&mut src, &mut dst);
        }
        acc.sync_to_host(src).unwrap();
        src
    }

    #[test]
    fn heat_across_two_devices_matches_golden() {
        let n = 8i64;
        let steps = 4;
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(4),
        ));
        let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        ua.fill_valid(init::hash_field(31));

        let mut acc = MultiAcc::new(GpuSystem::multi(MachineConfig::k40m(), 2, true));
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive(&mut acc, &decomp, a, b, steps);
        acc.finish();

        // Regions 0-1 on device 0, regions 2-3 on device 1.
        assert_eq!(acc.owner(0), 0);
        assert_eq!(acc.owner(3), 1);
        assert!(
            acc.gpu().stats_bytes_p2p() > 0,
            "cross-device halos used P2P"
        );

        let golden = heat::golden_run(init::hash_field(31), n, steps, heat::DEFAULT_FAC);
        let arr = if last == a { &ua } else { &ub };
        assert_eq!(arr.to_dense().unwrap(), golden);
    }

    #[test]
    fn heat_across_four_devices_matches_golden() {
        let n = 8i64;
        let steps = 3;
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(8),
        ));
        let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        ua.fill_valid(init::hash_field(32));

        let mut acc = MultiAcc::new(GpuSystem::multi(MachineConfig::k40m(), 4, true));
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive(&mut acc, &decomp, a, b, steps);
        acc.finish();
        let golden = heat::golden_run(init::hash_field(32), n, steps, heat::DEFAULT_FAC);
        let arr = if last == a { &ua } else { &ub };
        assert_eq!(arr.to_dense().unwrap(), golden);
    }

    #[test]
    fn single_device_multiacc_equals_golden_too() {
        let n = 8i64;
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(4),
        ));
        let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        ua.fill_valid(init::hash_field(33));
        let mut acc = MultiAcc::new(GpuSystem::multi(MachineConfig::k40m(), 1, true));
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive(&mut acc, &decomp, a, b, 3);
        acc.finish();
        assert_eq!(
            acc.gpu().stats_bytes_p2p(),
            0,
            "one device, no peer traffic"
        );
        let golden = heat::golden_run(init::hash_field(33), n, 3, heat::DEFAULT_FAC);
        let arr = if last == a { &ua } else { &ub };
        assert_eq!(arr.to_dense().unwrap(), golden);
    }

    #[test]
    fn compute_bound_work_scales_with_devices() {
        let run = |devices: usize| {
            let decomp = Arc::new(Decomposition::new(
                Domain::periodic_cube(64),
                RegionSpec::Count(8),
            ));
            let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, false);
            let mut acc = MultiAcc::new(GpuSystem::multi(MachineConfig::k40m(), devices, false));
            let a = acc.register(&u);
            for _ in 0..4 {
                for t in tiles_of(&decomp, TileSpec::RegionSized) {
                    acc.compute1(
                        t,
                        a,
                        busy::cost(
                            t.num_cells(),
                            busy::DEFAULT_KERNEL_ITERATION,
                            busy::MathImpl::PgiLibm,
                        ),
                        "busy",
                        |_, _| {},
                    )
                    .unwrap();
                }
            }
            acc.sync_to_host(a).unwrap();
            acc.finish()
        };
        let one = run(1);
        let two = run(2);
        let four = run(4);
        let s2 = one.as_secs_f64() / two.as_secs_f64();
        let s4 = one.as_secs_f64() / four.as_secs_f64();
        assert!(s2 > 1.8, "2-device speedup {s2}");
        assert!(s4 > 3.2, "4-device speedup {s4}");
    }

    #[test]
    fn prop_style_sweep_devices_regions_steps() {
        // Exhaustive small sweep (deterministic stand-in for a proptest:
        // the space is tiny). Every (devices, regions, steps) combination
        // must be bitwise golden.
        for devices in [1usize, 2, 3] {
            for regions in [2usize, 4] {
                for steps in [1usize, 3] {
                    let n = 8i64;
                    let decomp = Arc::new(Decomposition::new(
                        Domain::periodic_cube(n),
                        RegionSpec::Count(regions),
                    ));
                    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
                    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
                    ua.fill_valid(init::hash_field(devices as u64 * 100 + regions as u64));
                    let mut acc =
                        MultiAcc::new(GpuSystem::multi(MachineConfig::k40m(), devices, true));
                    let a = acc.register(&ua);
                    let b = acc.register(&ub);
                    let last = heat_drive(&mut acc, &decomp, a, b, steps);
                    acc.finish();
                    let golden = heat::golden_run(
                        init::hash_field(devices as u64 * 100 + regions as u64),
                        n,
                        steps,
                        heat::DEFAULT_FAC,
                    );
                    let arr = if last == a { &ua } else { &ub };
                    assert_eq!(
                        arr.to_dense().unwrap(),
                        golden,
                        "devices={devices} regions={regions} steps={steps}"
                    );
                }
            }
        }
    }

    #[test]
    fn in_place_kernel_after_exchange_correct() {
        // compute1 + ghost exchange across devices in one flow.
        let n = 6i64;
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(2),
        ));
        let u = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        u.fill_valid(|iv| iv.z() as f64);
        let mut acc = MultiAcc::new(GpuSystem::multi(MachineConfig::k40m(), 2, true));
        let a = acc.register(&u);
        acc.fill_boundary(a).unwrap();
        for t in tiles_of(&decomp, TileSpec::RegionSized) {
            acc.compute1(t, a, gpu_sim::KernelCost::Flops(1e3), "noop", |_, _| {})
                .unwrap();
        }
        acc.sync_to_host(a).unwrap();
        let elapsed = acc.finish();
        assert!(elapsed > SimTime::ZERO);
        assert_eq!(u.value(tida::IntVect::new(0, 0, 5)), Some(5.0));
    }

    /// `heat_drive` with a snapshot every `ck_interval` steps and
    /// device-loss failover: on [`AccError::DeviceLost`] the run migrates
    /// the lost device's regions onto the survivors, restores the latest
    /// snapshot, and replays. Returns the array holding the final result.
    fn heat_drive_failover(
        acc: &mut MultiAcc,
        decomp: &Arc<Decomposition>,
        a: ArrayId,
        b: ArrayId,
        steps: usize,
        ck_interval: usize,
    ) -> ArrayId {
        let tiles = tiles_of(decomp, TileSpec::RegionSized);
        let mut ck = acc.checkpoint(0).unwrap();
        let mut step = 0usize;
        while step < steps {
            let (src, dst) = if step.is_multiple_of(2) {
                (a, b)
            } else {
                (b, a)
            };
            let result: Result<(), AccError> = (|| {
                acc.fill_boundary(src)?;
                for &t in &tiles {
                    acc.compute2(
                        t,
                        dst,
                        src,
                        heat::cost(t.num_cells()),
                        "heat",
                        |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
                    )?;
                }
                Ok(())
            })();
            match result {
                Ok(()) => {}
                Err(AccError::DeviceLost { .. }) => {
                    step = acc.failover(&ck).unwrap() as usize;
                    continue;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            step += 1;
            if step.is_multiple_of(ck_interval) || step == steps {
                match acc.checkpoint(step as u64) {
                    Ok(c) => ck = c,
                    Err(AccError::DeviceLost { .. }) => {
                        step = acc.failover(&ck).unwrap() as usize;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
        // The final checkpoint's sync already drained everything home.
        if steps.is_multiple_of(2) {
            a
        } else {
            b
        }
    }

    #[test]
    fn device_death_mid_run_fails_over_bit_identical() {
        let n = 8i64;
        let steps = 4usize;
        let mk = || {
            let decomp = Arc::new(Decomposition::new(
                Domain::periodic_cube(n),
                RegionSpec::Count(4),
            ));
            let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
            let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
            ua.fill_valid(init::hash_field(77));
            (decomp, ua, ub)
        };

        // Failure-free golden through the same checkpointed driver.
        let (decomp, ua, ub) = mk();
        let mut acc = MultiAcc::new(GpuSystem::multi(MachineConfig::k40m(), 2, true));
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive_failover(&mut acc, &decomp, a, b, steps, 2);
        acc.finish();
        let golden = if last == a {
            ua.to_dense().unwrap()
        } else {
            ub.to_dense().unwrap()
        };

        // Device 1 dies on its 7th transfer — mid-run, past the step-2
        // snapshot. The run must migrate regions 2-3 onto device 0, restore
        // the snapshot, replay, and land on the exact same grid.
        let (decomp, ua, ub) = mk();
        let mut cfg = MachineConfig::k40m();
        cfg.faults =
            gpu_sim::FaultPlan::none().with_device_death(gpu_sim::DeviceDeath::at_transfer(1, 7));
        let mut acc = MultiAcc::new(GpuSystem::multi(cfg, 2, true));
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive_failover(&mut acc, &decomp, a, b, steps, 2);
        acc.finish();
        let resumed = if last == a {
            ua.to_dense().unwrap()
        } else {
            ub.to_dense().unwrap()
        };
        assert_eq!(resumed, golden, "failover must be bit-identical");

        // Every region of every array now lives on the survivor, and the
        // migration re-stage is accounted separately from organic loads.
        assert_eq!(acc.owner(2), 0);
        assert_eq!(acc.owner(3), 0);
        let st = acc.stats();
        assert_eq!(st.regions_migrated, 2, "{st}");
        assert_eq!(st.migration_restage_loads, 4, "2 regions x 2 arrays");
        assert!(st.migration_restage_bytes > 0);
        assert!(st.checkpoints_restored >= 1);
        assert_eq!(acc.gpu().fault_stats().device_deaths, 1);
        let report = acc.report();
        assert_eq!(report.health.devices_lost, 1);
        assert_eq!(report.health.regions_migrated, 2);
        assert!(report.health.migration_restage_bytes > 0);
        assert_eq!(
            acc.health().state(1),
            HealthState::Dead,
            "the monitor pins the loss"
        );
    }

    #[test]
    fn flapping_link_quarantines_then_readmits_without_oscillation() {
        // One down window on device 1's link early in the run: the retry
        // loop eats the faults (backoff outlasts the window), the health
        // monitor quarantines the device, and the clean traffic afterwards
        // readmits it — exactly one transition each way, pinned through
        // RunReport's health counters.
        let n = 8i64;
        let steps = 8usize;
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(4),
        ));
        let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        ua.fill_valid(init::hash_field(78));
        let mut cfg = MachineConfig::k40m();
        cfg.faults = gpu_sim::FaultPlan::none().with_link_flap(gpu_sim::LinkFlap::new(
            1,
            SimTime::ZERO,
            SimTime::from_us(100_000),
            SimTime::from_us(2_000),
            1,
        ));
        let mut acc = MultiAcc::new(GpuSystem::multi(cfg, 2, true));
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive_failover(&mut acc, &decomp, a, b, steps, 1);
        acc.finish();

        let golden = heat::golden_run(init::hash_field(78), n, steps, heat::DEFAULT_FAC);
        let arr = if last == a { &ua } else { &ub };
        assert_eq!(arr.to_dense().unwrap(), golden, "flap must not corrupt");
        assert!(
            acc.stats().transfer_retries > 0,
            "the retry loop absorbed the flap"
        );
        let report = acc.report();
        assert_eq!(report.health.quarantines, 1, "one quarantine transition");
        assert_eq!(report.health.readmissions, 1, "one readmission, no churn");
        assert_eq!(report.health.devices_lost, 0);
        assert_eq!(acc.health().state(1), HealthState::Healthy);
        assert!(acc.gpu().fault_stats().flap_faults > 0);
    }

    #[test]
    fn multiacc_checkpoint_resume_is_bit_identical() {
        let n = 8i64;
        let mk = || {
            let decomp = Arc::new(Decomposition::new(
                Domain::periodic_cube(n),
                RegionSpec::Count(4),
            ));
            let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
            let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
            ua.fill_valid(init::hash_field(55));
            (decomp, ua, ub)
        };

        // Uninterrupted 4-step run.
        let (decomp, ua, ub) = mk();
        let mut acc = MultiAcc::new(GpuSystem::multi(MachineConfig::k40m(), 2, true));
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let last = heat_drive(&mut acc, &decomp, a, b, 4);
        acc.finish();
        let golden = if last == a {
            ua.to_dense().unwrap()
        } else {
            ub.to_dense().unwrap()
        };

        // 2 steps, snapshot, discard the accelerator, restore into a fresh
        // one, 2 more steps: same devices, same grid.
        let (decomp, ua, ub) = mk();
        let mut acc = MultiAcc::new(GpuSystem::multi(MachineConfig::k40m(), 2, true));
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let mid = heat_drive(&mut acc, &decomp, a, b, 2);
        let ck = acc.checkpoint(2).unwrap();
        acc.finish();
        drop(acc);

        let mut acc2 = MultiAcc::new(GpuSystem::multi(MachineConfig::k40m(), 2, true));
        let a2 = acc2.register(&ua);
        let b2 = acc2.register(&ub);
        acc2.restore(&ck).unwrap();
        // The snapshot was taken with `mid` holding the latest state.
        let (src, dst) = if mid == a { (a2, b2) } else { (b2, a2) };
        let last2 = heat_drive(&mut acc2, &decomp, src, dst, 2);
        acc2.finish();
        let resumed = if last2 == a2 {
            ua.to_dense().unwrap()
        } else {
            ub.to_dense().unwrap()
        };
        assert_eq!(resumed, golden, "restored run must be bit-identical");
    }
}
