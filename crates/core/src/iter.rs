//! The GPU-enabled tile iterator (§V).
//!
//! Mirrors the paper's user interface:
//!
//! ```text
//! for (tlIter.reset(GPU=true); tlIter.isValid(); tlIter.next()) {
//!     Tile& tile = tlIter.tile();
//!     compute(tile, lambda);
//! }
//! ```
//!
//! `reset(acc, gpu)` restarts the traversal *and* switches the runtime's
//! execution mode, which is what the paper's `reset(GPU=true)` argument
//! does; `compute` then routes each tile to the host or the device
//! accordingly.

use crate::tileacc::TileAcc;
use tida::{Decomposition, Tile, TileIter, TileSpec};

/// Tile iterator bound to a [`TileAcc`] execution mode.
pub struct AccIter {
    inner: TileIter,
}

impl AccIter {
    /// Iterator over the tiles of `decomp` at the given granularity.
    ///
    /// The paper recommends `TileSpec::RegionSized` for GPU execution (one
    /// kernel per region); smaller tiles help cache reuse on the CPU.
    pub fn new(decomp: &Decomposition, spec: TileSpec) -> AccIter {
        AccIter {
            inner: TileIter::new(decomp, spec),
        }
    }

    /// Restart the traversal and set the execution mode — the paper's
    /// `reset(GPU=...)`.
    pub fn reset(&mut self, acc: &mut TileAcc, gpu: bool) {
        acc.set_gpu(gpu);
        self.inner.reset();
    }

    pub fn is_valid(&self) -> bool {
        self.inner.is_valid()
    }

    pub fn tile(&self) -> Tile {
        self.inner.tile()
    }

    pub fn next_tile(&mut self) {
        self.inner.next_tile();
    }

    /// Number of tiles in the traversal.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::AccOptions;
    use gpu_sim::{GpuSystem, MachineConfig};
    use tida::{Domain, RegionSpec};

    #[test]
    fn reset_switches_acc_mode_and_restarts() {
        let decomp = Decomposition::new(Domain::periodic_cube(8), RegionSpec::Count(2));
        let mut acc = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), AccOptions::default());
        let mut it = AccIter::new(&decomp, TileSpec::RegionSized);
        assert_eq!(it.len(), 2);

        it.reset(&mut acc, false);
        assert!(!acc.gpu_enabled());
        let mut n = 0;
        while it.is_valid() {
            let _ = it.tile();
            it.next_tile();
            n += 1;
        }
        assert_eq!(n, 2);
        assert!(!it.is_valid());

        it.reset(&mut acc, true);
        assert!(acc.gpu_enabled());
        assert!(it.is_valid());
    }
}
