//! Ghost-cell updates (§IV-B-6, Fig. 4).
//!
//! In GPU mode, `fill_boundary` first synchronizes the device (the paper's
//! `acc wait`), then walks the patch list. For each patch whose destination
//! region is (or becomes) device-resident, the *host* computes the
//! source/destination index lists — charged on the host clock — and launches
//! an index-list gather kernel in the destination slot's stream. Because the
//! launches are asynchronous, the host computes the next patch's indices
//! while the device applies the previous one: the CPU/GPU overlap of Fig. 4.
//!
//! Patches whose regions all live on the host are applied directly on the
//! host copies (the paper's "update of ghost cells of a region takes place
//! in CPU or GPU depending on the location of the region"), and a static
//! slot conflict between the two regions of a patch falls back to the host
//! path as well. Fatal failures (a crashed platform) propagate as
//! [`AccError`] — an interrupted exchange leaves ghost cells stale, which is
//! exactly what checkpoint restore repairs by replaying the exchange.

use crate::error::AccError;
use crate::tileacc::{AcquireFail, ArrayId, Residency, TileAcc};
use gpu_sim::{KernelCost, KernelLaunch};
use tida::GhostPatch;

impl TileAcc {
    /// Update the ghost cells of every region of `array` from its
    /// neighbours, on the device when possible.
    pub fn fill_boundary(&mut self, array: ArrayId) -> Result<(), AccError> {
        // The exchange mutates `self` per patch, so it cannot hold a borrow
        // of the patch list; clone the `Arc` handle (a refcount bump) rather
        // than the list itself — this runs once per step and must not
        // allocate.
        let patches = self.array(array).patches_arc();
        if patches.is_empty() {
            return Ok(());
        }
        if !self.gpu_enabled() || !self.ghost_on_device() {
            for p in patches.iter() {
                self.host_patch(array, p)?;
            }
            return Ok(());
        }

        // The paper synchronizes all streams before starting the update
        // (`acc wait`). The barrier-free extension relies on per-slot event
        // ordering instead (foreign-consumer drains below), letting the
        // exchange pipeline behind still-running kernels.
        if self.ghost_barrier() {
            self.gpu_mut().device_synchronize();
        }

        if self.ghost_batching() {
            return self.fill_boundary_batched(array, &patches);
        }
        for p in patches.iter() {
            let dst_res = self.residency(array, p.dst_region);
            let src_res = self.residency(array, p.src_region);
            if dst_res == Residency::Host && src_res == Residency::Host {
                // Both host-resident: update in place, no transfers.
                self.host_patch(array, p)?;
                continue;
            }
            self.device_patch(array, p)?;
        }
        Ok(())
    }

    /// Batched exchange: one combined gather kernel per destination region
    /// covering all of its patches (same traffic, far fewer launches).
    fn fill_boundary_batched(
        &mut self,
        array: ArrayId,
        patches: &[GhostPatch],
    ) -> Result<(), AccError> {
        let regions = self.array(array).num_regions();
        for dst in 0..regions {
            let mine: Vec<GhostPatch> = patches
                .iter()
                .filter(|p| p.dst_region == dst)
                .copied()
                .collect();
            if mine.is_empty() {
                continue;
            }
            let all_host = self.residency(array, dst) == Residency::Host
                && mine
                    .iter()
                    .all(|p| self.residency(array, p.src_region) == Residency::Host);
            if all_host {
                for p in &mine {
                    self.host_patch(array, p)?;
                }
                continue;
            }
            if !self.batched_device_patches(array, dst, &mine)? {
                // Slot conflict among the operands: per-patch fallback.
                self.bump_conflict();
                for p in &mine {
                    let dst_res = self.residency(array, p.dst_region);
                    let src_res = self.residency(array, p.src_region);
                    if dst_res == Residency::Host && src_res == Residency::Host {
                        self.host_patch(array, p)?;
                    } else {
                        self.device_patch(array, p)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Launch one gather kernel updating all ghost patches of `dst`.
    /// `Ok(false)` is a slot conflict among the operands (degradable);
    /// fatal failures propagate.
    fn batched_device_patches(
        &mut self,
        array: ArrayId,
        dst: usize,
        mine: &[GhostPatch],
    ) -> Result<bool, AccError> {
        // Acquire every distinct operand region, pinning as we go.
        let mut pinned: Vec<usize> = Vec::new();
        let mut src_slots: Vec<(usize, usize)> = Vec::new(); // (region, slot)
        for p in mine {
            if src_slots.iter().any(|&(r, _)| r == p.src_region) {
                continue;
            }
            match self.acquire_device(array, p.src_region, &pinned) {
                Ok(s) => {
                    if !pinned.contains(&s) {
                        pinned.push(s);
                    }
                    src_slots.push((p.src_region, s));
                }
                Err(AcquireFail::Fatal(e)) => return Err(e),
                Err(AcquireFail::Fallback) => return Ok(false),
            }
        }
        // The gather writes the destination's ghost cells: a read-write
        // intent, so the plan recorder predicts the dirtying and never
        // prefetches over a region a future exchange is about to write.
        let s_dst = match self.acquire_device_rw(array, dst, &pinned) {
            Ok(s) => s,
            Err(AcquireFail::Fatal(e)) => return Err(e),
            Err(AcquireFail::Fallback) => return Ok(false),
        };

        let total_cells: u64 = mine.iter().map(|p| p.num_cells()).sum();
        let idx_time = self.gpu().config().host_index_time(total_cells);
        self.gpu_mut().host_work(idx_time, desim::sym!("ghost-idx"));

        // Order the combined kernel after every source slot's stream and
        // after foreign uses of the destination slot it writes.
        let dst_stream = self.slot_stream(s_dst);
        for &(_, s) in &src_slots {
            if s != s_dst {
                let src_stream = self.slot_stream(s);
                let ev = self.gpu_mut().record_event(src_stream);
                self.gpu_mut().stream_wait_event(dst_stream, ev);
            }
        }
        self.drain_consumers_pub(s_dst, s_dst);

        let backed = self.gpu().backed();
        let dst_slab = self.gpu().device_slab(self.slot_dev(s_dst));
        let dst_layout = self.array(array).region(dst).layout;
        let srcs: Vec<(GhostPatch, memslab::Slab, tida::Layout)> = if backed {
            mine.iter()
                .map(|p| {
                    let slot = src_slots
                        .iter()
                        .find(|&&(r, _)| r == p.src_region)
                        .expect("acquired above")
                        .1;
                    (
                        *p,
                        self.gpu().device_slab(self.slot_dev(slot)),
                        self.array(array).region(p.src_region).layout,
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        let eff = self.kernel_efficiency();
        let mut launch =
            gpu_sim::KernelLaunch::new("ghost-batch", KernelCost::Bytes(total_cells * 16))
                .efficiency(eff)
                .writes(self.slot_dev(s_dst).into())
                .exec_if(backed, move || {
                    if dst_slab.is_virtual() {
                        return;
                    }
                    for (patch, src_slab, src_layout) in &srcs {
                        if src_slab.is_virtual() {
                            continue;
                        }
                        let dst_idx = dst_layout.offsets_of(&patch.dst_box);
                        let src_idx: Vec<usize> = patch
                            .dst_box
                            .iter()
                            .map(|c| src_layout.offset(c - patch.shift))
                            .collect();
                        memslab::gather(&dst_slab, &dst_idx, src_slab, &src_idx);
                    }
                });
        for &(_, s) in &src_slots {
            launch = launch.reads(self.slot_dev(s).into());
        }
        self.gpu_mut().launch_kernel(dst_stream, launch);
        self.mark_dirty(s_dst);
        for &(_, s) in &src_slots {
            self.note_foreign_read_pub(s, s_dst);
        }
        for _ in mine {
            self.bump_ghost_gpu();
        }
        // The crash trigger may have fired on one of this exchange's
        // transfers or on the gather launch itself.
        self.check_alive_pub()?;
        Ok(true)
    }

    /// Apply one patch on the host copies (also draining any in-flight
    /// write-backs of the two regions).
    fn host_patch(&mut self, array: ArrayId, p: &GhostPatch) -> Result<(), AccError> {
        self.acquire_host(array, p.src_region)?;
        self.acquire_host(array, p.dst_region)?;
        let cells = p.num_cells();
        let cfg = self.gpu().config();
        let cost = cfg.host_index_time(cells) + cfg.host_copy_time(cells * 16);
        self.array(array).apply_patch(p);
        self.gpu_mut().host_work(cost, desim::sym!("ghost-host"));
        self.bump_ghost_host();
        Ok(())
    }

    /// Apply one patch with a device gather kernel.
    fn device_patch(&mut self, array: ArrayId, p: &GhostPatch) -> Result<(), AccError> {
        let s_src = match self.acquire_device(array, p.src_region, &[]) {
            Ok(s) => s,
            Err(AcquireFail::Fatal(e)) => return Err(e),
            Err(AcquireFail::Fallback) => {
                self.bump_conflict();
                return self.host_patch(array, p);
            }
        };
        let s_dst = match self.acquire_device_rw(array, p.dst_region, &[s_src]) {
            Ok(s) => s,
            Err(AcquireFail::Fatal(e)) => return Err(e),
            Err(AcquireFail::Fallback) => {
                self.bump_conflict();
                return self.host_patch(array, p);
            }
        };

        // Host-side index computation (overlaps with previously launched
        // gather kernels because those were asynchronous).
        let cells = p.num_cells();
        let idx_time = self.gpu().config().host_index_time(cells);
        self.gpu_mut().host_work(idx_time, desim::sym!("ghost-idx"));

        if s_src != s_dst {
            let src_stream = self.slot_stream(s_src);
            let dst_stream = self.slot_stream(s_dst);
            let ev = self.gpu_mut().record_event(src_stream);
            self.gpu_mut().stream_wait_event(dst_stream, ev);
        }

        // Barrier-free correctness: the gather writes s_dst, so it must
        // wait for kernels in other streams still reading it.
        self.drain_consumers_pub(s_dst, s_dst);

        let backed = self.gpu().backed();
        let dst_slab = self.gpu().device_slab(self.slot_dev(s_dst));
        let src_slab = self.gpu().device_slab(self.slot_dev(s_src));
        let dst_layout = self.array(array).region(p.dst_region).layout;
        let src_layout = self.array(array).region(p.src_region).layout;
        let patch = *p;
        let eff = self.kernel_efficiency();
        let (sdev, ddev) = (self.slot_dev(s_src), self.slot_dev(s_dst));
        let stream = self.slot_stream(s_dst);
        self.gpu_mut().launch_kernel(
            stream,
            KernelLaunch::new("ghost", KernelCost::Bytes(cells * 16))
                .efficiency(eff)
                .reads(sdev.into())
                .writes(ddev.into())
                .exec_if(backed, move || {
                    // Build the index lists only when data is real; virtual
                    // (timing-only) runs skip the work entirely.
                    if dst_slab.is_virtual() || src_slab.is_virtual() {
                        return;
                    }
                    let dst_idx = dst_layout.offsets_of(&patch.dst_box);
                    let src_idx: Vec<usize> = patch
                        .dst_box
                        .iter()
                        .map(|c| src_layout.offset(c - patch.shift))
                        .collect();
                    memslab::gather(&dst_slab, &dst_idx, &src_slab, &src_idx);
                }),
        );
        self.mark_dirty(s_dst);
        self.note_foreign_read_pub(s_src, s_dst);
        self.bump_ghost_gpu();
        // The crash trigger may have fired on this patch's transfers or on
        // the gather launch itself.
        self.check_alive_pub()
    }
}
