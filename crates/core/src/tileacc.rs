//! `TileAcc` — device memory slots, streams, caching, and the compute API.
//!
//! This is the paper's main data structure (§IV-B). Responsibilities, in the
//! paper's order:
//!
//! 1. **Memory management**: query free device memory (`cudaMemGetInfo`),
//!    allocate one region-sized device buffer per *slot* for as many regions
//!    as fit, and map regions onto slots (regions share slots when the
//!    device memory is insufficient — that is what lets oversubscribed
//!    problems run).
//! 2. **Streams**: one stream per slot; all operations touching a slot are
//!    issued to its stream, so transfers of one region overlap kernels on
//!    others while per-slot order is automatic.
//! 3. **Memory transfers**: regions are the transfer unit; all copies are
//!    asynchronous `cudaMemcpyAsync` equivalents. Host-bound transfers are
//!    followed by a stream synchronize because the caller may touch the data
//!    immediately (§IV-B-3).
//! 4. **Caching**: a cache list records which region currently occupies each
//!    slot (`None` = empty, the paper's `-1`); accesses that hit skip the
//!    transfer, misses queue an eviction write-back plus a load.
//! 5. **Kernels**: the `compute` methods take tiles and a closure (the
//!    paper's C++ lambda) and launch it in the destination slot's stream.
//! 6. **Ghost cell update**: see `ghost.rs`.
//!
//! Deviation from the paper (documented in DESIGN.md): when one kernel needs
//! two regions that live in *different* slots, the kernel is issued to the
//! destination slot's stream with an event-wait on the source slot's stream,
//! and the source slot records a "foreign consumer" event so a later load
//! into it cannot overwrite data a still-running kernel is reading. The
//! paper does not spell out its cross-stream ordering; this is the standard
//! CUDA idiom and preserves the paper's overlap behaviour.

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::error::{AccError, IntegrityKind};
use crate::options::{AccOptions, SlotPolicy, WritebackPolicy};
use crate::plan::StepPlanner;
use crate::stats::AccStats;
use gpu_sim::{
    DeviceBuffer, GpuSystem, HostBuffer, HostMemKind, KernelCost, OpId, PrefetchCounters,
    RecoveryCounters, RunReport, SimTime, StreamId,
};
use std::sync::Arc;
use tida::{with_view_mut, Box3, Decomposition, Tile, TileArray};

/// Handle to an array registered with [`TileAcc::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayId(pub usize);

/// Where a region's authoritative data currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    Host,
    /// Resident in this device slot.
    Device(usize),
}

/// Why a device acquisition produced no slot.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AcquireFail {
    /// Degradable: a static slot conflict or a dead device path. The caller
    /// falls back to the host path.
    Fallback,
    /// Fatal (e.g. the platform crashed): must propagate to the caller.
    Fatal(AccError),
}

/// How an acquiring operation uses the region — recorded by the step-plan
/// recorder (`plan.rs`). Intent affects only plan recording, never the
/// staging behaviour itself (`WriteAll` maps onto the existing write-intent
/// `skip_load` path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccessIntent {
    /// The operation only reads the region.
    Read,
    /// The operation reads and writes the region (in-place kernels, ghost
    /// landings into a resident destination).
    ReadWrite,
    /// The operation overwrites the region's entire valid box, so the load
    /// is skippable (write-intent allocation).
    WriteAll,
}

struct ArrayEntry {
    array: TileArray,
    /// Pinned host buffer handle per region (`cudaMallocHost` in the paper).
    host: Vec<HostBuffer>,
}

struct Slot {
    dev: DeviceBuffer,
    dirty: bool,
    /// Completion events of kernels in *other* streams that read this slot;
    /// the next transfer into the slot must wait for them.
    foreign_consumers: Vec<gpu_sim::Event>,
    lru_stamp: u64,
    /// Set when an unrepairable corruption poisoned this slot's device
    /// buffer (non-ECC DRAM model): the runtime stops placing regions here.
    quarantined: bool,
}

/// The accelerator runtime. One `TileAcc` owns the simulated platform and
/// every registered array. See the module docs.
pub struct TileAcc {
    gpu: GpuSystem,
    opts: AccOptions,
    decomp: Option<Arc<Decomposition>>,
    arrays: Vec<ArrayEntry>,
    /// Device slots (allocated lazily on first use).
    slots: Vec<Slot>,
    streams: Vec<StreamId>,
    /// Paper's cache list: global region occupying each slot.
    cache: Vec<Option<usize>>,
    /// Inverse map: slot holding each global region.
    loc: Vec<Option<usize>>,
    /// In-flight eviction write-backs, dense-indexed by global region.
    inflight_writeback: Vec<Option<OpId>>,
    /// Last enqueued device operation touching each global region's *host*
    /// buffer (H2D reads it, D2H writes it), dense-indexed by global
    /// region. Host-side code must wait for this op before touching the
    /// buffer eagerly, or a simulated transfer scheduled in the past would
    /// observe data written by host code that (in simulated time) runs
    /// after it.
    host_slab_op: Vec<Option<OpId>>,
    clock: u64,
    gpu_mode: bool,
    stats: AccStats,
    /// Bytes of one device slot.
    slot_len: usize,
    /// Set when the device path is declared dead (persistent transfer
    /// failure, or a slot pool that could not allocate a single slot). All
    /// later tiles run on the host; dirty device state was salvaged.
    device_failed: bool,
    /// Step-plan recorder + lookahead predictor for the automatic overlap
    /// scheduler (inert until [`TileAcc::begin_step`] is called).
    planner: StepPlanner,
    /// Global regions staged by a prefetch and not yet organically used —
    /// their first hit is a `prefetch_hits`, not an organic `hits`.
    /// Dense-indexed by global region.
    prefetched: Vec<bool>,
}

/// Set a dense per-region flag, growing the table on first sight of `g`.
fn flag_set(v: &mut Vec<bool>, g: usize) {
    if v.len() <= g {
        v.resize(g + 1, false);
    }
    v[g] = true;
}

/// Clear and return a dense per-region flag.
fn flag_take(v: &mut [bool], g: usize) -> bool {
    v.get_mut(g).map(std::mem::take).unwrap_or(false)
}

/// Record an op in a dense per-region op table, growing it on demand.
fn op_set(v: &mut Vec<Option<OpId>>, g: usize, op: OpId) {
    if v.len() <= g {
        v.resize(g + 1, None);
    }
    v[g] = Some(op);
}

/// Remove and return the op recorded for region `g`, if any.
fn op_take(v: &mut [Option<OpId>], g: usize) -> Option<OpId> {
    v.get_mut(g).and_then(Option::take)
}

impl TileAcc {
    /// Wrap a platform. Arrays are added with [`TileAcc::register`]; device
    /// slots are sized on first use.
    pub fn new(gpu: GpuSystem, opts: AccOptions) -> Self {
        let gpu_mode = opts.gpu;
        TileAcc {
            gpu,
            opts,
            decomp: None,
            arrays: Vec::new(),
            slots: Vec::new(),
            streams: Vec::new(),
            cache: Vec::new(),
            loc: Vec::new(),
            inflight_writeback: Vec::new(),
            host_slab_op: Vec::new(),
            clock: 0,
            gpu_mode,
            stats: AccStats::default(),
            slot_len: 0,
            device_failed: false,
            planner: StepPlanner::default(),
            prefetched: Vec::new(),
        }
    }

    /// Register a tile array. All arrays must share one decomposition (the
    /// paper's kernels iterate matching regions of several arrays). Must be
    /// called before the first compute/ghost operation.
    pub fn register(&mut self, array: &TileArray) -> ArrayId {
        assert!(
            self.slots.is_empty(),
            "register all arrays before the first compute operation"
        );
        match &self.decomp {
            None => self.decomp = Some(array.decomp().clone()),
            Some(d) => assert!(
                Arc::ptr_eq(d, array.decomp()),
                "all registered arrays must share one decomposition"
            ),
        }
        let host: Vec<HostBuffer> = array
            .regions()
            .iter()
            .map(|r| {
                self.gpu
                    .adopt_host_slab(r.slab.clone(), HostMemKind::Pinned)
            })
            .collect();
        self.arrays.push(ArrayEntry {
            array: array.clone(),
            host,
        });
        ArrayId(self.arrays.len() - 1)
    }

    /// Switch between GPU and CPU execution — the paper's
    /// `tileItr.reset(GPU=true/false)`.
    pub fn set_gpu(&mut self, on: bool) {
        self.gpu_mode = on;
    }

    pub fn gpu_enabled(&self) -> bool {
        self.gpu_mode
    }

    /// Whether the runtime has abandoned the device path after a persistent
    /// fault (graceful degradation: all tiles run on the host from then on).
    pub fn device_failed(&self) -> bool {
        self.device_failed
    }

    /// Counters so far. The integrity and hazard counters are composed live
    /// from the platform's digest book and happens-before tracker (they are
    /// monotone over this instance's lifetime and are not rolled back by
    /// [`TileAcc::restore`], matching the supervisor-managed recovery
    /// counters).
    pub fn stats(&self) -> AccStats {
        let mut s = self.stats;
        let i = self.gpu.integrity_stats();
        s.integrity_detected += i.detected;
        s.integrity_repaired += i.repaired;
        s.hazards += self.gpu.hazard_counters().total();
        s
    }

    pub fn gpu(&self) -> &GpuSystem {
        &self.gpu
    }

    /// The prefetch/overlap counters in report form, for merging into a
    /// [`gpu_sim::RunReport`].
    pub fn prefetch_counters(&self) -> PrefetchCounters {
        PrefetchCounters {
            loads: self.stats.prefetch_loads,
            hits: self.stats.prefetch_hits,
            fallbacks: self.stats.prefetch_fallbacks,
            deferred_writebacks: self.stats.writebacks_deferred,
        }
    }

    /// [`gpu_sim::GpuSystem::report`] with this runtime's prefetch counters
    /// merged in (the simulator cannot tell a prefetch load from a demand
    /// load; the runtime can). Drains outstanding work.
    pub fn report(&mut self) -> RunReport {
        let counters = self.prefetch_counters();
        self.gpu.report().with_prefetch(counters)
    }

    /// Step period the plan recorder has detected, if any (`None` until
    /// [`TileAcc::begin_step`] has seen two full matching periods).
    pub fn plan_period(&self) -> Option<usize> {
        self.planner.period()
    }

    pub fn gpu_mut(&mut self) -> &mut GpuSystem {
        &mut self.gpu
    }

    /// Number of device slots (0 before first use).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    pub fn num_arrays(&self) -> usize {
        self.arrays.len()
    }

    fn num_regions(&self) -> usize {
        self.decomp
            .as_ref()
            .expect("no arrays registered")
            .num_regions()
    }

    /// Where a region's authoritative copy lives right now.
    pub fn residency(&self, array: ArrayId, region: usize) -> Residency {
        if self.slots.is_empty() {
            return Residency::Host;
        }
        match self.loc[self.gidx(array, region)] {
            Some(s) => Residency::Device(s),
            None => Residency::Host,
        }
    }

    /// Drain all outstanding work; returns total elapsed simulated time.
    pub fn finish(&mut self) -> SimTime {
        self.gpu.finish()
    }

    /// Global region index: regions of different arrays interleave so the
    /// static policy keeps one kernel's operands in distinct slots.
    fn gidx(&self, array: ArrayId, region: usize) -> usize {
        region * self.arrays.len() + array.0
    }

    fn gsplit(&self, g: usize) -> (usize, usize) {
        (g % self.arrays.len(), g / self.arrays.len())
    }

    /// Lazily size and allocate the slot pool (§IV-B-1): query free device
    /// memory and fit as many region-sized buffers as possible, capped by
    /// the total region count and by `opts.max_slots`.
    fn ensure_slots(&mut self) -> Result<(), AccError> {
        if !self.slots.is_empty() || self.device_failed {
            return Ok(());
        }
        assert!(!self.arrays.is_empty(), "no arrays registered");
        let total = self.num_regions() * self.arrays.len();
        self.slot_len = self
            .arrays
            .iter()
            .flat_map(|a| a.array.regions().iter())
            .map(|r| r.slab.len())
            .max()
            .expect("arrays have regions");
        let bytes = (self.slot_len * std::mem::size_of::<f64>()) as u64;
        let (free, _) = self.gpu.mem_get_info();
        let fit = ((free as f64 * self.opts.mem_fraction) as u64 / bytes) as usize;
        let n = total
            .min(fit)
            .min(self.opts.max_slots.unwrap_or(usize::MAX));
        if n < 1 {
            return Err(AccError::Capacity {
                free_bytes: free,
                region_bytes: bytes,
            });
        }
        for _ in 0..n {
            match self.gpu.malloc_device(self.slot_len) {
                Ok(dev) => {
                    let stream = self.gpu.create_stream();
                    self.slots.push(Slot {
                        dev,
                        dirty: false,
                        foreign_consumers: Vec::new(),
                        lru_stamp: 0,
                        quarantined: false,
                    });
                    self.streams.push(stream);
                }
                Err(_) => {
                    // A mid-run `cudaMalloc` failure (sizing said it fits, so
                    // this is a fault): run with a smaller pool — the normal
                    // eviction/staging machinery absorbs the shrink.
                    self.stats.slot_shrinks += 1;
                }
            }
        }
        self.cache = vec![None; self.slots.len()];
        self.loc = vec![None; total];
        if self.slots.is_empty() {
            // Not a single slot could be allocated: the device is unusable;
            // every tile runs on the host from here.
            self.device_failed = true;
        }
        Ok(())
    }

    /// Fail fast when the simulated platform has crashed: everything
    /// submitted after a crash is refused, so device-path work is futile and
    /// any device-resident data is already lost.
    fn check_alive(&self) -> Result<(), AccError> {
        if self.gpu.crashed() {
            Err(AccError::Crashed)
        } else {
            Ok(())
        }
    }

    fn touch(&mut self, slot: usize) {
        self.clock += 1;
        self.slots[slot].lru_stamp = self.clock;
    }

    /// Choose the slot for global region `g`, never one of `pinned` and
    /// never a quarantined slot. `None` is a static slot conflict (or an
    /// entirely quarantined pool) — the caller degrades to the host path.
    fn pick_slot(&self, g: usize, pinned: &[usize]) -> Option<usize> {
        let n = self.slots.len();
        match self.opts.policy {
            SlotPolicy::StaticInterleaved => {
                let s = g % n;
                if pinned.contains(&s) || self.slots[s].quarantined {
                    None
                } else {
                    Some(s)
                }
            }
            SlotPolicy::Lru => (0..n)
                .filter(|&s| !pinned.contains(&s) && !self.slots[s].quarantined)
                .min_by_key(|&s| (self.cache[s].is_some(), self.slots[s].lru_stamp)),
            // Belady over the predicted window: victimize the occupant with
            // the farthest next use. `next_use` is `u64::MAX` without a plan
            // (or for a region the plan no longer needs), so the key
            // degenerates to exactly the LRU ordering in that case.
            SlotPolicy::ReuseDistance => (0..n)
                .filter(|&s| !pinned.contains(&s) && !self.slots[s].quarantined)
                .min_by_key(|&s| {
                    let dist = self.cache[s].map_or(0, |g2| self.planner.next_use(g2));
                    (
                        self.cache[s].is_some(),
                        std::cmp::Reverse(dist),
                        self.slots[s].lru_stamp,
                    )
                }),
        }
    }

    /// The caching protocol of §IV-B-4: make region (`array`, `region`)
    /// device-resident, queueing at most one eviction write-back and one
    /// load in the slot's stream. Returns the slot. `pinned` slots (held by
    /// the current operation's other operands) are never victimized.
    pub(crate) fn acquire_device(
        &mut self,
        array: ArrayId,
        region: usize,
        pinned: &[usize],
    ) -> Result<usize, AcquireFail> {
        self.acquire_with(array, region, pinned, AccessIntent::Read)
    }

    /// [`TileAcc::acquire_device`] for an operation that reads *and* writes
    /// the region (in-place kernels, ghost landings).
    pub(crate) fn acquire_device_rw(
        &mut self,
        array: ArrayId,
        region: usize,
        pinned: &[usize],
    ) -> Result<usize, AcquireFail> {
        self.acquire_with(array, region, pinned, AccessIntent::ReadWrite)
    }

    /// [`TileAcc::acquire_device`] with a write intent: when `write_all` is
    /// true the caller's kernel overwrites the region's entire valid box, so
    /// (unless `opts.upload_written_regions`) the host→device load is
    /// skipped — the slot is simply claimed and marked dirty.
    pub(crate) fn acquire_device_intent(
        &mut self,
        array: ArrayId,
        region: usize,
        pinned: &[usize],
        write_all: bool,
    ) -> Result<usize, AcquireFail> {
        let intent = if write_all {
            AccessIntent::WriteAll
        } else {
            AccessIntent::ReadWrite
        };
        self.acquire_with(array, region, pinned, intent)
    }

    fn acquire_with(
        &mut self,
        array: ArrayId,
        region: usize,
        pinned: &[usize],
        intent: AccessIntent,
    ) -> Result<usize, AcquireFail> {
        self.ensure_slots().map_err(AcquireFail::Fatal)?;
        if self.device_failed {
            return Err(AcquireFail::Fallback);
        }
        let g = self.gidx(array, region);
        let skip_load = intent == AccessIntent::WriteAll && !self.opts.upload_written_regions;
        self.planner
            .note_access(g, !skip_load, intent != AccessIntent::Read);
        if let Some(s) = self.loc[g] {
            if self.gpu.device_poisoned(self.slots[s].dev) {
                // The hit sits on a struck DRAM slot. A clean slot's host
                // copy is still authoritative: quarantine the slot and fall
                // through to reload the region elsewhere. A dirty slot's
                // data exists nowhere valid — surface it for checkpoint
                // recovery.
                let dirty = self.slots[s].dirty;
                self.quarantine(s);
                self.cache[s] = None;
                self.loc[g] = None;
                self.slots[s].dirty = false;
                flag_take(&mut self.prefetched, g);
                if dirty {
                    return Err(AcquireFail::Fatal(AccError::Integrity {
                        region,
                        kind: IntegrityKind::DirtySlot,
                    }));
                }
            } else {
                if flag_take(&mut self.prefetched, g) {
                    // First organic use of a prefetch-warmed region: this is
                    // transfer cost the prefetcher hid, not organic locality.
                    self.stats.prefetch_hits += 1;
                } else {
                    self.stats.hits += 1;
                }
                self.touch(s);
                return Ok(s);
            }
        }
        let Some(s) = self.pick_slot(g, pinned) else {
            return Err(AcquireFail::Fallback);
        };
        self.stage_into(g, s, skip_load)?;
        Ok(s)
    }

    /// Stage global region `g` into slot `s`: evict the occupant (with
    /// write-back or deferral), then load `g` (or just claim the slot when
    /// `skip_load`). Shared by demand acquisition and both prefetch paths.
    fn stage_into(&mut self, g: usize, s: usize, skip_load: bool) -> Result<(), AcquireFail> {
        // Everything that happens to this slot from here on must wait for
        // kernels in *other* streams still using it.
        self.drain_consumers_into(s, s);

        // Evict the current occupant, writing its data back (§IV-B-4,
        // "second possibility").
        if let Some(g2) = self.cache[s] {
            self.stats.evictions += 1;
            flag_take(&mut self.prefetched, g2);
            let dirty = self.slots[s].dirty;
            let write_back = match self.opts.writeback {
                // With a detected step plan a clean slot's host mirror is
                // provably current, so the unconditional write-back
                // coalesces to nothing: the D2H engine stays free for
                // traffic that matters. Without a plan the paper's
                // always-write-back behaviour is preserved bit for bit.
                WritebackPolicy::Always => dirty || !self.planner.has_plan(),
                WritebackPolicy::DirtyOnly => dirty,
            };
            if write_back {
                let (a2, r2) = self.gsplit(g2);
                let host = self.arrays[a2].host[r2];
                let len = self.arrays[a2].array.region(r2).slab.len();
                let op = self.flush_d2h(s, host, len).map_err(AcquireFail::Fatal)?;
                if self.device_failed {
                    // The write-back exhausted its retries: fail_device
                    // already salvaged and released everything.
                    return Err(AcquireFail::Fallback);
                }
                op_set(&mut self.inflight_writeback, g2, op);
                op_set(&mut self.host_slab_op, g2, op);
            } else if self.opts.writeback == WritebackPolicy::Always {
                self.stats.writebacks_deferred += 1;
            } else {
                self.stats.writebacks_skipped += 1;
            }
            self.loc[g2] = None;
            // The cache-list entry is gone: any enqueued read of this slot
            // that still assumed g2 was resident is a stale-cache-list read.
            // The incoming load (or the claiming kernel's write) re-arms the
            // buffer. The write-back above was enqueued first, so its own
            // read is not flagged.
            self.gpu
                .note_evicted(self.slots[s].dev, desim::sym!("evict"));
        }

        // The incoming load must additionally wait for any in-flight
        // write-back of this region's own host buffer.
        if let Some(op) = op_take(&mut self.inflight_writeback, g) {
            self.gpu.stream_wait_op(self.streams[s], op);
        }

        if skip_load {
            // The kernel overwrites the whole valid box; ghost cells are
            // refreshed by the next fill_boundary before anything reads
            // them, so no upload is needed. The slot is dirty from the
            // moment it is claimed.
            self.stats.write_allocs += 1;
            self.slots[s].dirty = true;
        } else {
            let (a, r) = self.gsplit(g);
            let host = self.arrays[a].host[r];
            let len = self.arrays[a].array.region(r).slab.len();
            let op = self.load_h2d(s, host, len)?;
            op_set(&mut self.host_slab_op, g, op);
            self.stats.loads += 1;
            self.slots[s].dirty = false;
        }
        self.cache[s] = Some(g);
        self.loc[g] = Some(s);
        self.touch(s);
        Ok(())
    }

    /// Host→device region load with bounded retry-with-backoff on injected
    /// transient faults. Exhausting the retries declares the device dead and
    /// the caller degrades to the host path; a crash is fatal (retrying a
    /// dead platform would misdiagnose the crash as a persistent fault).
    fn load_h2d(&mut self, s: usize, host: HostBuffer, len: usize) -> Result<OpId, AcquireFail> {
        let dev = self.slots[s].dev;
        let stream = self.streams[s];
        let mut op = self.gpu.memcpy_h2d_async(dev, 0, host, 0, len, stream);
        let mut attempt: u32 = 0;
        while self.gpu.op_faulted(op) {
            if self.gpu.crashed() {
                return Err(AcquireFail::Fatal(AccError::Crashed));
            }
            if self.opts.retry.exhausted(attempt) {
                self.fail_device();
                return Err(AcquireFail::Fallback);
            }
            self.stats.transfer_retries += 1;
            self.gpu
                .backoff_work(self.opts.retry.backoff(attempt), "h2d-retry-backoff");
            op = self.gpu.memcpy_h2d_async(dev, 0, host, 0, len, stream);
            attempt += 1;
        }
        Ok(op)
    }

    /// Device→host copy with bounded retry-with-backoff. When the retries
    /// are exhausted the region is rescued through the fault-exempt salvage
    /// path (host data stays authoritative even on a dead link) and the
    /// device is declared failed. Returns the op that carries the data.
    pub(crate) fn d2h_retrying(
        &mut self,
        dst: HostBuffer,
        dev: DeviceBuffer,
        len: usize,
        stream: StreamId,
    ) -> Result<OpId, AccError> {
        let mut op = self.gpu.memcpy_d2h_async(dst, 0, dev, 0, len, stream);
        let mut attempt: u32 = 0;
        while self.gpu.op_faulted(op) {
            if self.gpu.crashed() {
                // Device data died with the platform; not even the salvage
                // path can rescue it. The caller restores a checkpoint.
                return Err(AccError::Crashed);
            }
            if self.opts.retry.exhausted(attempt) {
                self.stats.salvaged_regions += 1;
                let op = self.gpu.memcpy_d2h_salvage(dst, 0, dev, 0, len, stream);
                self.fail_device();
                return Ok(op);
            }
            self.stats.transfer_retries += 1;
            self.gpu
                .backoff_work(self.opts.retry.backoff(attempt), "d2h-retry-backoff");
            op = self.gpu.memcpy_d2h_async(dst, 0, dev, 0, len, stream);
            attempt += 1;
        }
        Ok(op)
    }

    /// Write a slot's region back to the host with retry/salvage. Clears the
    /// dirty bit first so a `fail_device` triggered by this very flush does
    /// not salvage the same slot a second time.
    fn flush_d2h(&mut self, s: usize, host: HostBuffer, len: usize) -> Result<OpId, AccError> {
        self.slots[s].dirty = false;
        let dev = self.slots[s].dev;
        let stream = self.streams[s];
        self.d2h_retrying(host, dev, len, stream)
    }

    /// Declare the device path dead (idempotent): salvage every dirty
    /// resident region through the fault-exempt path, release all slots, and
    /// drain the device. Later acquisitions return `SlotConflict` and all
    /// tiles run on the host.
    fn fail_device(&mut self) {
        if self.device_failed {
            return;
        }
        self.device_failed = true;
        for s in 0..self.slots.len() {
            if let Some(g) = self.cache[s] {
                if self.slots[s].dirty {
                    let (a, r) = self.gsplit(g);
                    let host = self.arrays[a].host[r];
                    let len = self.arrays[a].array.region(r).slab.len();
                    self.drain_consumers_into(s, s);
                    self.gpu.memcpy_d2h_salvage(
                        host,
                        0,
                        self.slots[s].dev,
                        0,
                        len,
                        self.streams[s],
                    );
                    self.stats.salvaged_regions += 1;
                    self.slots[s].dirty = false;
                }
                self.cache[s] = None;
                self.loc[g] = None;
            }
        }
        self.gpu.device_synchronize();
        self.inflight_writeback.clear();
        self.host_slab_op.clear();
        self.prefetched.clear();
    }

    /// Quarantine a slot whose device buffer took an unrepairable strike
    /// (idempotent). A quarantined slot is never picked again; with every
    /// slot quarantined the runtime degrades to the host path via the
    /// normal conflict-fallback machinery.
    fn quarantine(&mut self, s: usize) {
        if !self.slots[s].quarantined {
            self.slots[s].quarantined = true;
            self.stats.slots_quarantined += 1;
        }
    }

    /// Count a host fallback under the right reason.
    fn note_fallback(&mut self) {
        if self.device_failed {
            self.stats.fault_fallbacks += 1;
        } else {
            self.stats.conflict_fallbacks += 1;
        }
    }

    /// Host access to a region (§IV-B-4, "GPU disabled iteration"): if it is
    /// device-resident, queue the transfer back and block until it lands
    /// (the caller may touch the data immediately, §IV-B-3). The slot is
    /// released.
    pub(crate) fn acquire_host(&mut self, array: ArrayId, region: usize) -> Result<(), AccError> {
        if self.slots.is_empty() {
            return Ok(()); // nothing was ever on the device
        }
        let g = self.gidx(array, region);
        let mut struck_slot: Option<usize> = None;
        if let Some(s) = self.loc[g] {
            let need_copy = self.opts.writeback == WritebackPolicy::Always || self.slots[s].dirty;
            if need_copy {
                self.drain_consumers_into(s, s);
                let (a, r) = self.gsplit(g);
                let host = self.arrays[a].host[r];
                let len = self.arrays[a].array.region(r).slab.len();
                self.flush_d2h(s, host, len)?;
                self.stats.host_syncs += 1;
                if self.device_failed {
                    // fail_device already drained the device and released
                    // every slot; the host buffer is authoritative.
                    return Ok(());
                }
            }
            self.gpu.stream_synchronize(self.streams[s]);
            if self.gpu.device_poisoned(self.slots[s].dev) {
                struck_slot = Some(s);
            }
            self.cache[s] = None;
            self.loc[g] = None;
            self.slots[s].dirty = false;
            flag_take(&mut self.prefetched, g);
        } else if let Some(op) = op_take(&mut self.inflight_writeback, g) {
            // An eviction write-back is still in flight; wait for it.
            self.gpu.sync_op(op);
        }
        // The caller will touch the host buffer eagerly: every enqueued
        // transfer that reads or writes it must have executed first (a
        // pending upload could otherwise observe host writes from its
        // simulated future).
        if let Some(op) = op_take(&mut self.host_slab_op, g) {
            self.gpu.sync_op(op);
        }
        // The slot took an unrepairable strike: never place a region there
        // again. (The host copy may still be fine — a clean slot whose
        // origin went stale poisons the slot, not the mirror.)
        if let Some(s) = struck_slot {
            self.quarantine(s);
        }
        // The host copy is authoritative from here on: verify nothing
        // unrepairable landed in it. Poison here means a corrupted
        // write-back (or a struck dirty slot) made it into the mirror — the
        // only way back to valid data is a checkpoint.
        if self.gpu.host_poisoned(self.arrays[array.0].host[region]) {
            let kind = if struck_slot.is_some() {
                IntegrityKind::DirtySlot
            } else {
                IntegrityKind::HostMirror
            };
            return Err(AccError::Integrity { region, kind });
        }
        Ok(())
    }

    /// Bring every region of `array` back to the host, region by region —
    /// the drain is pipelined because each region syncs only its own slot's
    /// stream.
    pub fn sync_to_host(&mut self, array: ArrayId) -> Result<(), AccError> {
        for r in 0..self.num_regions() {
            self.acquire_host(array, r)?;
        }
        Ok(())
    }

    /// Asynchronously stage a region onto the device ahead of use
    /// (extension: `cudaMemPrefetchAsync`-style warm-up). A no-op when the
    /// region is already resident or when GPU execution is disabled.
    ///
    /// A prefetch never evicts: it stages into a free slot (under the
    /// static policy, the region's own slot) and is silently capped when no
    /// slot is free — an out-of-core `prefetch_all` warms exactly as many
    /// regions as fit instead of thrashing the pool. Prefetches that
    /// degrade for a *reason* (dead device path, static-slot conflict,
    /// quarantine-exhausted pool) are counted in
    /// `AccStats::prefetch_fallbacks` and leave a `prefetch` marker in the
    /// trace, so a silently useless warm-up loop is observable.
    pub fn prefetch(&mut self, array: ArrayId, region: usize) -> Result<(), AccError> {
        if !self.gpu_mode {
            return Ok(());
        }
        self.check_alive()?;
        self.ensure_slots()?;
        if self.device_failed {
            self.note_prefetch_fallback();
            return Ok(());
        }
        let g = self.gidx(array, region);
        if self.loc[g].is_some() {
            return Ok(());
        }
        let n = self.slots.len();
        let free = |me: &Self, s: usize| me.cache[s].is_none() && !me.slots[s].quarantined;
        let slot = match self.opts.policy {
            SlotPolicy::StaticInterleaved => {
                let s = g % n;
                if free(self, s) {
                    Some(s)
                } else {
                    // The region's one static slot is occupied or
                    // quarantined — the acquire-time conflict this prefetch
                    // was meant to hide will happen anyway.
                    self.note_prefetch_fallback();
                    return Ok(());
                }
            }
            SlotPolicy::Lru | SlotPolicy::ReuseDistance => (0..n)
                .filter(|&s| free(self, s))
                .min_by_key(|&s| self.slots[s].lru_stamp),
        };
        let Some(s) = slot else {
            if self.slots.iter().all(|sl| sl.quarantined) {
                // Quarantine exhausted the pool: every later acquire will
                // degrade to the host. Surface it rather than no-op quietly.
                self.note_prefetch_fallback();
            }
            return Ok(()); // pool full: staging is capped at capacity
        };
        match self.stage_into(g, s, false) {
            Ok(()) => {
                self.stats.prefetch_loads += 1;
                flag_set(&mut self.prefetched, g);
                Ok(())
            }
            Err(AcquireFail::Fallback) => {
                self.note_prefetch_fallback();
                Ok(())
            }
            Err(AcquireFail::Fatal(e)) => Err(e),
        }
    }

    /// Prefetch every region of `array` (pipelined across slot streams),
    /// capped at free-slot capacity — see [`TileAcc::prefetch`].
    pub fn prefetch_all(&mut self, array: ArrayId) -> Result<(), AccError> {
        for r in 0..self.num_regions() {
            self.prefetch(array, r)?;
        }
        Ok(())
    }

    /// Count a prefetch that could not stage its region and leave a
    /// zero-width marker on the trace's host lane so degraded prefetching
    /// shows up on the timeline, not just in the counters.
    fn note_prefetch_fallback(&mut self) {
        self.stats.prefetch_fallbacks += 1;
        self.gpu.note_marker("prefetch", "prefetch-fallback");
    }

    /// Declare a step boundary to the automatic overlap scheduler.
    ///
    /// Call once per iteration, *before* the step's operations. The step
    /// plan recorder archives the finished step's access sequence and looks
    /// for a repeating period (double-buffered stencils repeat every two
    /// steps). Once one is found and `AccOptions::lookahead > 0`, the
    /// lookahead prefetcher issues the predicted host→device loads for the
    /// window `k..k+L` right here — while step `k-1`'s kernels are still
    /// draining — into idle slot streams, capped at capacity the prefetcher
    /// can claim without hurting the window (a slot is eligible only when
    /// empty or when its occupant's next predicted use is farther away than
    /// the staged region's). Harmless to call when prediction is cold or
    /// `lookahead` is 0; never called by the runtime itself, so programs
    /// that don't opt in keep their exact schedule.
    pub fn begin_step(&mut self) -> Result<(), AccError> {
        self.planner.on_step(self.opts.lookahead);
        if self.opts.lookahead == 0
            || !self.gpu_mode
            || self.device_failed
            || self.slots.is_empty()
            || !self.planner.has_plan()
        {
            return Ok(());
        }
        self.check_alive()?;
        let cands: Vec<crate::plan::PrefetchCandidate> = self.planner.candidates().to_vec();
        // Stream idleness at the moment the window opens, queried once: a
        // load routed to an idle lane starts immediately instead of queueing
        // behind the previous step's kernel.
        let idle: Vec<bool> = (0..self.streams.len())
            .map(|s| {
                let st = self.streams[s];
                self.gpu.stream_query(st)
            })
            .collect();
        for c in cands {
            if self.device_failed {
                break;
            }
            if self.loc[c.g].is_some() {
                continue; // already resident
            }
            let Some(s) = self.pick_prefetch_slot(c.g, c.pos, &idle) else {
                continue; // no slot the prefetcher may claim for this region
            };
            match self.stage_into(c.g, s, false) {
                Ok(()) => {
                    self.stats.prefetch_loads += 1;
                    flag_set(&mut self.prefetched, c.g);
                }
                Err(AcquireFail::Fallback) => {
                    self.note_prefetch_fallback();
                    break;
                }
                Err(AcquireFail::Fatal(e)) => return Err(e),
            }
        }
        Ok(())
    }

    /// Slot the lookahead prefetcher may claim for region `g`, whose first
    /// predicted use is at window position `pos`: empty slots, or slots
    /// whose occupant's next predicted use lies strictly beyond `pos` —
    /// displacing only regions needed *later* than what is staged, so the
    /// prefetcher can never evict anything the window needs first (it never
    /// thrashes). Preference order: empty, then idle stream, then farthest
    /// occupant, then LRU (deterministic).
    fn pick_prefetch_slot(&self, g: usize, pos: u64, idle: &[bool]) -> Option<usize> {
        let n = self.slots.len();
        let eligible = |s: usize| -> Option<u64> {
            if self.slots[s].quarantined {
                return None;
            }
            match self.cache[s] {
                None => Some(u64::MAX),
                Some(g2) => {
                    let d = self.planner.next_use(g2);
                    (d > pos).then_some(d)
                }
            }
        };
        if self.opts.policy == SlotPolicy::StaticInterleaved {
            // The demand acquire will use slot g % n and nothing else;
            // staging anywhere else would be evicted unused.
            let s = g % n;
            return eligible(s).map(|_| s);
        }
        (0..n)
            .filter_map(|s| eligible(s).map(|d| (s, d)))
            .min_by_key(|&(s, d)| {
                (
                    self.cache[s].is_some(),
                    !idle[s],
                    std::cmp::Reverse(d),
                    self.slots[s].lru_stamp,
                )
            })
            .map(|(s, _)| s)
    }

    /// Record that a kernel running in `consumer_stream_slot`'s stream reads
    /// (or writes) `src_slot`; a later operation on `src_slot` must wait for
    /// it.
    fn note_foreign_read(&mut self, src_slot: usize, consumer_slot: usize) {
        if src_slot != consumer_slot {
            let ev = self.gpu.record_event(self.streams[consumer_slot]);
            self.slots[src_slot].foreign_consumers.push(ev);
        }
    }

    /// Make the next operation submitted to `stream_slot`'s stream wait for
    /// every recorded foreign use of `slot`.
    fn drain_consumers_into(&mut self, slot: usize, stream_slot: usize) {
        let consumers = std::mem::take(&mut self.slots[slot].foreign_consumers);
        for ev in consumers {
            self.gpu.stream_wait_event(self.streams[stream_slot], ev);
        }
    }

    // ------------------------------------------------------------------
    // The compute API (§V): tiles + a lambda, one source for CPU and GPU.
    // ------------------------------------------------------------------

    /// In-place kernel over one tile of one array:
    /// `compute(tile, [](data, lo, hi) {...})` in the paper's interface.
    ///
    /// `cost` declares the device cost; the closure is the data effect and
    /// runs wherever the tile executes (host, or the simulated device).
    pub fn compute1(
        &mut self,
        tile: Tile,
        array: ArrayId,
        cost: KernelCost,
        label: &'static str,
        f: impl FnOnce(&mut tida::ViewMut<'_>, Box3) + 'static,
    ) -> Result<(), AccError> {
        if !self.gpu_mode {
            return self.compute1_host(tile, array, cost, label, f);
        }
        self.check_alive()?;
        self.ensure_slots()?;
        let s = match self.acquire_device_rw(array, tile.region, &[]) {
            Ok(s) => s,
            Err(AcquireFail::Fatal(e)) => return Err(e),
            Err(AcquireFail::Fallback) => {
                // A single operand cannot statically conflict, but the
                // acquire fails this way when the device path is dead.
                self.note_fallback();
                return self.compute1_host(tile, array, cost, label, f);
            }
        };
        let backed = self.gpu.backed();
        let slab = self.gpu.device_slab(self.slots[s].dev);
        let layout = self.arrays[array.0].array.region(tile.region).layout;
        let bx = tile.bx;
        let dev = self.slots[s].dev;
        self.gpu.launch_kernel(
            self.streams[s],
            gpu_sim::KernelLaunch::new(label, cost)
                .efficiency(self.opts.kernel_efficiency)
                .writes(dev.into())
                .exec_if(backed, move || {
                    with_view_mut(&slab, layout, |mut v| f(&mut v, bx));
                }),
        );
        self.slots[s].dirty = true;
        self.stats.kernels_gpu += 1;
        // The crash trigger may have fired on this very launch, in which
        // case the kernel was submitted effect-less: surface that now.
        self.check_alive()
    }

    fn compute1_host(
        &mut self,
        tile: Tile,
        array: ArrayId,
        cost: KernelCost,
        label: &'static str,
        f: impl FnOnce(&mut tida::ViewMut<'_>, Box3),
    ) -> Result<(), AccError> {
        self.acquire_host(array, tile.region)?;
        let r = self.arrays[array.0].array.region(tile.region);
        let (slab, layout) = (r.slab.clone(), r.layout);
        with_view_mut(&slab, layout, |mut v| f(&mut v, tile.bx));
        let d = cost.duration_on_host(self.gpu.config());
        self.gpu.host_work(d, label);
        self.stats.kernels_host += 1;
        Ok(())
    }

    /// Two-operand kernel over matching regions: `dst <- f(src)` on the
    /// cells of `tile` (the heat step's `compute(tile_new, tile_old, ...)`).
    /// A convenience wrapper over [`TileAcc::compute`].
    pub fn compute2(
        &mut self,
        tile: Tile,
        dst: ArrayId,
        src: ArrayId,
        cost: KernelCost,
        label: &'static str,
        f: impl FnOnce(&mut tida::ViewMut<'_>, &tida::View<'_>, Box3) + 'static,
    ) -> Result<(), AccError> {
        self.compute(tile, &[dst], &[src], cost, label, move |ws, rs, bx| {
            f(&mut ws[0], &rs[0], bx)
        })
    }

    /// The general multi-operand kernel (§V: "If computation involves
    /// multiple tiles as inputs, then the compute method takes these tiles
    /// and a lambda function").
    ///
    /// Over the cells of `tile`, the closure receives mutable views of the
    /// matching region of every array in `writes` and read views of every
    /// array in `reads` (in the given order). Write arrays whose tile covers
    /// the whole valid box are claimed without uploading (write-intent).
    /// `writes` and `reads` must be disjoint; use [`TileAcc::compute1`] for
    /// in-place kernels.
    pub fn compute(
        &mut self,
        tile: Tile,
        writes: &[ArrayId],
        reads: &[ArrayId],
        cost: KernelCost,
        label: &'static str,
        f: impl FnOnce(&mut [tida::ViewMut<'_>], &[tida::View<'_>], Box3) + 'static,
    ) -> Result<(), AccError> {
        assert!(!writes.is_empty(), "compute needs at least one write array");
        for (i, w) in writes.iter().enumerate() {
            assert!(
                !writes[i + 1..].contains(w),
                "compute: duplicate write array {w:?}"
            );
            assert!(
                !reads.contains(w),
                "compute: array {w:?} in both writes and reads; use compute1 for in-place kernels"
            );
        }
        if !self.gpu_mode {
            return self.compute_host(tile, writes, reads, cost, label, f);
        }
        self.check_alive()?;
        self.ensure_slots()?;
        let r = tile.region;
        let write_all = tile.bx == self.arrays[writes[0].0].array.region(r).valid;

        // Acquire every operand, pinning as we go so later acquisitions
        // cannot evict earlier ones. Any static-slot conflict falls back to
        // the host path.
        let mut pinned: Vec<usize> = Vec::with_capacity(reads.len() + writes.len());
        let mut read_slots = Vec::with_capacity(reads.len());
        for &a in reads {
            match self.acquire_device(a, r, &pinned) {
                Ok(s) => {
                    if !pinned.contains(&s) {
                        pinned.push(s);
                    }
                    read_slots.push(s);
                }
                Err(AcquireFail::Fatal(e)) => return Err(e),
                Err(AcquireFail::Fallback) => {
                    self.note_fallback();
                    return self.compute_host(tile, writes, reads, cost, label, f);
                }
            }
        }
        let mut write_slots = Vec::with_capacity(writes.len());
        for &a in writes {
            match self.acquire_device_intent(a, r, &pinned, write_all) {
                Ok(s) => {
                    pinned.push(s);
                    write_slots.push(s);
                }
                Err(AcquireFail::Fatal(e)) => return Err(e),
                Err(AcquireFail::Fallback) => {
                    self.note_fallback();
                    return self.compute_host(tile, writes, reads, cost, label, f);
                }
            }
        }

        // The kernel runs in the first write slot's stream; order it after
        // every other involved slot's outstanding work, and after foreign
        // uses of the slots it will overwrite.
        let ks = write_slots[0];
        let mut ordered: Vec<usize> = Vec::new();
        for &s in read_slots.iter().chain(&write_slots) {
            if s != ks && !ordered.contains(&s) {
                ordered.push(s);
                let ev = self.gpu.record_event(self.streams[s]);
                self.gpu.stream_wait_event(self.streams[ks], ev);
            }
        }
        for &s in &write_slots {
            self.drain_consumers_into(s, ks);
        }

        // Operand slab captures are only needed when the effect will run;
        // timing-only systems skip both the capture vectors and the box.
        let backed = self.gpu.backed();
        let pairs_of = |slf: &Self, arrays: &[ArrayId], slots: &[usize]| {
            if !backed {
                return Vec::new();
            }
            arrays
                .iter()
                .zip(slots)
                .map(|(a, &s)| {
                    (
                        slf.gpu.device_slab(slf.slots[s].dev),
                        slf.arrays[a.0].array.region(r).layout,
                    )
                })
                .collect::<Vec<(memslab::Slab, tida::Layout)>>()
        };
        let wpairs = pairs_of(self, writes, &write_slots);
        let rpairs = pairs_of(self, reads, &read_slots);
        let bx = tile.bx;
        let mut launch = gpu_sim::KernelLaunch::new(label, cost)
            .efficiency(self.opts.kernel_efficiency)
            .exec_if(backed, move || {
                let wrefs: Vec<(&memslab::Slab, tida::Layout)> =
                    wpairs.iter().map(|(s, l)| (s, *l)).collect();
                let rrefs: Vec<(&memslab::Slab, tida::Layout)> =
                    rpairs.iter().map(|(s, l)| (s, *l)).collect();
                tida::with_many(&wrefs, &rrefs, |ws, rs| f(ws, rs, bx));
            });
        for &s in &read_slots {
            launch = launch.reads(self.slots[s].dev.into());
        }
        for &s in &write_slots {
            launch = launch.writes(self.slots[s].dev.into());
        }
        self.gpu.launch_kernel(self.streams[ks], launch);
        for &s in &write_slots {
            self.slots[s].dirty = true;
            self.note_foreign_read(s, ks);
        }
        for &s in &read_slots {
            self.note_foreign_read(s, ks);
        }
        self.stats.kernels_gpu += 1;
        // The crash trigger may have fired on one of this operation's
        // transfers or on the launch itself: surface that now.
        self.check_alive()
    }

    fn compute_host(
        &mut self,
        tile: Tile,
        writes: &[ArrayId],
        reads: &[ArrayId],
        cost: KernelCost,
        label: &'static str,
        f: impl FnOnce(&mut [tida::ViewMut<'_>], &[tida::View<'_>], Box3),
    ) -> Result<(), AccError> {
        for &a in reads.iter().chain(writes) {
            self.acquire_host(a, tile.region)?;
        }
        let wpairs: Vec<(memslab::Slab, tida::Layout)> = writes
            .iter()
            .map(|a| {
                let reg = self.arrays[a.0].array.region(tile.region);
                (reg.slab.clone(), reg.layout)
            })
            .collect();
        let rpairs: Vec<(memslab::Slab, tida::Layout)> = reads
            .iter()
            .map(|a| {
                let reg = self.arrays[a.0].array.region(tile.region);
                (reg.slab.clone(), reg.layout)
            })
            .collect();
        let wrefs: Vec<(&memslab::Slab, tida::Layout)> =
            wpairs.iter().map(|(s, l)| (s, *l)).collect();
        let rrefs: Vec<(&memslab::Slab, tida::Layout)> =
            rpairs.iter().map(|(s, l)| (s, *l)).collect();
        tida::with_many(&wrefs, &rrefs, |ws, rs| f(ws, rs, tile.bx));
        let d = cost.duration_on_host(self.gpu.config());
        self.gpu.host_work(d, label);
        self.stats.kernels_host += 1;
        Ok(())
    }

    /// Temporally blocked kernel: ONE fused launch that applies `f` to
    /// region `r` `depth` times between ghost exchanges, ping-ponging
    /// between `dst` and `src` on a shrinking trapezoid of boxes
    /// (sub-step `i` computes `valid.grow(depth-1-i)`), so each byte staged
    /// through the interconnect is amortized over `depth` time steps.
    ///
    /// This models a fused stencil kernel that double-buffers the
    /// intermediate levels on chip (shared-memory ping-pong): the data
    /// effect still writes every level through to the device slabs so
    /// fused runs stay bitwise-comparable to `depth` separate
    /// [`TileAcc::compute2`] calls, while `cost` (normally a
    /// [`KernelCost::Fused`]) charges the launch the on-chip-reuse DRAM
    /// traffic. After the call the final level sits in `dst` when `depth`
    /// is odd and in `src` when it is even — the caller swaps the handles
    /// exactly as in the unfused ping-pong loop.
    ///
    /// Both arrays need a ghost halo at least `depth` deep and a `Full`
    /// exchange (each application widens the dependence cone diagonally),
    /// and the preceding exchange must have filled `src`'s halo. `depth`
    /// = 1 degenerates to exactly [`TileAcc::compute2`] over the valid box.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_fused(
        &mut self,
        r: usize,
        dst: ArrayId,
        src: ArrayId,
        depth: usize,
        cost: KernelCost,
        label: &'static str,
        f: impl Fn(&mut tida::ViewMut<'_>, &tida::View<'_>, Box3) + 'static,
    ) -> Result<(), AccError> {
        assert!(depth >= 1, "fused depth must be at least 1");
        assert_ne!(dst, src, "fused kernel needs distinct ping-pong arrays");
        let valid = self.arrays[dst.0].array.region(r).valid;
        if depth == 1 {
            let tile = Tile {
                region: r,
                bx: valid,
            };
            return self.compute2(tile, dst, src, cost, label, move |d, s, bx| f(d, s, bx));
        }
        for &a in &[dst, src] {
            let arr = &self.arrays[a.0].array;
            assert!(
                arr.ghost() >= depth as i64,
                "fused depth {depth} needs a ghost halo at least that deep;                  array {a:?} has ghost {}",
                arr.ghost()
            );
            assert_eq!(
                arr.exchange_mode(),
                tida::ExchangeMode::Full,
                "fused depth {depth} widens the dependence cone diagonally;                  array {a:?} needs ExchangeMode::Full"
            );
        }
        if !self.gpu_mode {
            return self.compute_fused_host(r, dst, src, depth, cost, label, f);
        }
        self.check_alive()?;
        self.ensure_slots()?;

        // `src` is read by sub-step 0 and overwritten by sub-step 1, so it
        // acquires read-write; `dst` is fully overwritten (sub-step 0 writes
        // `valid.grow(depth-1)` before anything reads it), so it claims its
        // slot with write intent and skips the upload.
        let s_src = match self.acquire_device_rw(src, r, &[]) {
            Ok(s) => s,
            Err(AcquireFail::Fatal(e)) => return Err(e),
            Err(AcquireFail::Fallback) => {
                self.note_fallback();
                return self.compute_fused_host(r, dst, src, depth, cost, label, f);
            }
        };
        let s_dst = match self.acquire_device_intent(dst, r, &[s_src], true) {
            Ok(s) => s,
            Err(AcquireFail::Fatal(e)) => return Err(e),
            Err(AcquireFail::Fallback) => {
                self.note_fallback();
                return self.compute_fused_host(r, dst, src, depth, cost, label, f);
            }
        };
        debug_assert_ne!(s_src, s_dst, "pinning keeps the ping-pong slots distinct");

        // One launch in the dst slot's stream, ordered after src's
        // outstanding work and after foreign uses of both slots (both are
        // overwritten by the ping-pong).
        let ks = s_dst;
        let ev = self.gpu.record_event(self.streams[s_src]);
        self.gpu.stream_wait_event(self.streams[ks], ev);
        self.drain_consumers_into(s_dst, ks);
        self.drain_consumers_into(s_src, ks);

        let backed = self.gpu.backed();
        let dst_pair = (
            self.gpu.device_slab(self.slots[s_dst].dev),
            self.arrays[dst.0].array.region(r).layout,
        );
        let src_pair = (
            self.gpu.device_slab(self.slots[s_src].dev),
            self.arrays[src.0].array.region(r).layout,
        );
        let launch = gpu_sim::KernelLaunch::new(label, cost)
            .efficiency(self.opts.kernel_efficiency)
            .reads(self.slots[s_src].dev.into())
            .writes(self.slots[s_src].dev.into())
            .writes(self.slots[s_dst].dev.into())
            .exec_if(backed, move || {
                let (mut cur_dst, mut cur_src) = (&dst_pair, &src_pair);
                for i in 0..depth {
                    let bx = valid.grow((depth - 1 - i) as i64);
                    let wrefs = [(&cur_dst.0, cur_dst.1)];
                    let rrefs = [(&cur_src.0, cur_src.1)];
                    tida::with_many(&wrefs, &rrefs, |ws, rs| f(&mut ws[0], &rs[0], bx));
                    std::mem::swap(&mut cur_dst, &mut cur_src);
                }
            });
        self.gpu.launch_kernel(self.streams[ks], launch);
        for s in [s_dst, s_src] {
            self.slots[s].dirty = true;
            self.note_foreign_read(s, ks);
        }
        self.stats.kernels_gpu += 1;
        self.stats.kernels_fused += 1;
        self.stats.fused_substeps += depth as u64;
        self.check_alive()
    }

    #[allow(clippy::too_many_arguments)]
    fn compute_fused_host(
        &mut self,
        r: usize,
        dst: ArrayId,
        src: ArrayId,
        depth: usize,
        cost: KernelCost,
        label: &'static str,
        f: impl Fn(&mut tida::ViewMut<'_>, &tida::View<'_>, Box3),
    ) -> Result<(), AccError> {
        self.acquire_host(src, r)?;
        self.acquire_host(dst, r)?;
        let valid = self.arrays[dst.0].array.region(r).valid;
        let pair = |slf: &Self, a: ArrayId| {
            let reg = slf.arrays[a.0].array.region(r);
            (reg.slab.clone(), reg.layout)
        };
        let dst_pair = pair(self, dst);
        let src_pair = pair(self, src);
        let (mut cur_dst, mut cur_src) = (&dst_pair, &src_pair);
        for i in 0..depth {
            let bx = valid.grow((depth - 1 - i) as i64);
            let wrefs = [(&cur_dst.0, cur_dst.1)];
            let rrefs = [(&cur_src.0, cur_src.1)];
            tida::with_many(&wrefs, &rrefs, |ws, rs| f(&mut ws[0], &rs[0], bx));
            std::mem::swap(&mut cur_dst, &mut cur_src);
        }
        let d = cost.duration_on_host(self.gpu.config());
        self.gpu.host_work(d, label);
        self.stats.kernels_host += 1;
        self.stats.fused_substeps += depth as u64;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Checkpoint / restore (crash-consistent snapshots).
    // ------------------------------------------------------------------

    /// Capture a crash-consistent snapshot of every registered array.
    ///
    /// All arrays are first drained to the host (`sync_to_host`), so the
    /// snapshot's invariant is: host slabs authoritative, device cache empty,
    /// no dirty slots. `restore` validates exactly that invariant, which is
    /// what makes a restored run bit-identical to an uninterrupted one —
    /// the continued computation depends only on host data.
    pub fn checkpoint(&mut self, step: u64) -> Result<Checkpoint, AccError> {
        self.check_alive()?;
        for a in 0..self.arrays.len() {
            self.sync_to_host(ArrayId(a))?;
        }
        self.check_alive()?;
        self.stats.checkpoints_taken += 1;
        let data: Vec<Vec<Vec<f64>>> = self
            .arrays
            .iter()
            .map(|e| {
                e.array
                    .regions()
                    .iter()
                    .map(|r| r.slab.snapshot().unwrap_or_default())
                    .collect()
            })
            .collect();
        let cache: Vec<i64> = self
            .cache
            .iter()
            .map(|c| c.map(|g| g as i64).unwrap_or(-1))
            .collect();
        let dirty: Vec<bool> = self.slots.iter().map(|s| s.dirty).collect();
        Ok(Checkpoint {
            step,
            clock: self.clock,
            stats: self.stats,
            data,
            cache,
            dirty,
        })
    }

    /// Rebuild this runtime's state from a snapshot taken by
    /// [`TileAcc::checkpoint`] (on this accelerator or an identically
    /// configured one). Host slabs are overwritten, the device cache is
    /// emptied, and counters are rolled back to the snapshot's values; the
    /// continued run is bit-identical to one that never crashed.
    pub fn restore(&mut self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        if ck.data.len() != self.arrays.len() {
            return Err(CheckpointError::Incompatible);
        }
        for (e, regions) in self.arrays.iter().zip(&ck.data) {
            if e.array.regions().len() != regions.len() {
                return Err(CheckpointError::Incompatible);
            }
            for (r, saved) in e.array.regions().iter().zip(regions) {
                // An empty saved slab means the region was never grown
                // (virtual); a grown region must match its slab length.
                if !saved.is_empty() && saved.len() != r.slab.len() {
                    return Err(CheckpointError::Incompatible);
                }
            }
        }
        // The snapshot was captured post-sync: a torn writer could not have
        // produced one with resident or dirty slots.
        if ck.cache.iter().any(|&c| c != -1) || ck.dirty.iter().any(|&d| d) {
            return Err(CheckpointError::Incompatible);
        }
        for (e, regions) in self.arrays.iter().zip(&ck.data) {
            for (r, saved) in e.array.regions().iter().zip(regions) {
                if !saved.is_empty() {
                    r.slab.materialize();
                    r.slab.with_mut(|dst| {
                        if let Some(dst) = dst {
                            dst.copy_from_slice(saved);
                        }
                    });
                }
            }
        }
        // Drop all device residency; the host copies are authoritative.
        for c in self.cache.iter_mut() {
            *c = None;
        }
        for l in self.loc.iter_mut() {
            *l = None;
        }
        for s in self.slots.iter_mut() {
            s.dirty = false;
            s.foreign_consumers.clear();
        }
        self.inflight_writeback.clear();
        self.host_slab_op.clear();
        self.prefetched.clear();
        // The replayed steps re-record their plans from scratch; a restored
        // run must never prefetch on a prediction from the timeline it just
        // discarded.
        self.planner.reset_prediction();
        // The snapshot's host data just overwrote the mirrors, so any host
        // poison recorded against them is cured. (Quarantined slots stay
        // quarantined: a struck DRAM page does not heal on restore.)
        for a in &self.arrays {
            for &h in &a.host {
                self.gpu.clear_host_poison(h);
            }
        }
        self.clock = ck.clock;
        self.stats = ck.stats;
        self.stats.checkpoints_restored += 1;
        Ok(())
    }

    /// Mirror a supervisor's cumulative recovery counters into this
    /// runtime's stats. `restore` rolls `stats` back to the snapshot's
    /// values, so the freshly built accelerator cannot know how many times
    /// the *run* has been restored — the supervisor re-applies its totals
    /// after each restore.
    pub(crate) fn sync_recovery_stats(&mut self, c: RecoveryCounters) {
        self.stats.checkpoints_restored = c.checkpoints_restored;
        self.stats.hang_detections = c.hang_detections;
    }

    // Internal accessors for ghost.rs.
    pub(crate) fn array(&self, a: ArrayId) -> &TileArray {
        &self.arrays[a.0].array
    }

    pub(crate) fn slot_dev(&self, s: usize) -> DeviceBuffer {
        self.slots[s].dev
    }

    pub(crate) fn slot_stream(&self, s: usize) -> StreamId {
        self.streams[s]
    }

    pub(crate) fn kernel_efficiency(&self) -> f64 {
        self.opts.kernel_efficiency
    }

    pub(crate) fn ghost_on_device(&self) -> bool {
        self.opts.ghost_on_device && !self.device_failed
    }

    pub(crate) fn ghost_barrier(&self) -> bool {
        self.opts.ghost_barrier
    }

    pub(crate) fn ghost_batching(&self) -> bool {
        self.opts.ghost_batching
    }

    pub(crate) fn drain_consumers_pub(&mut self, slot: usize, stream_slot: usize) {
        self.drain_consumers_into(slot, stream_slot);
    }

    pub(crate) fn check_alive_pub(&self) -> Result<(), AccError> {
        self.check_alive()
    }

    pub(crate) fn mark_dirty(&mut self, s: usize) {
        self.slots[s].dirty = true;
    }

    pub(crate) fn bump_ghost_gpu(&mut self) {
        self.stats.ghost_gpu += 1;
    }

    pub(crate) fn bump_ghost_host(&mut self) {
        self.stats.ghost_host += 1;
    }

    pub(crate) fn bump_conflict(&mut self) {
        self.stats.conflict_fallbacks += 1;
    }

    pub(crate) fn note_foreign_read_pub(&mut self, src_slot: usize, consumer_slot: usize) {
        self.note_foreign_read(src_slot, consumer_slot);
    }

    /// Record a device-resident read that bypasses the acquire path (the
    /// reduction's device arm) with the step-plan recorder. `needs_load` is
    /// false — a resident-only read is not a prefetch opportunity, but it
    /// extends the region's predicted reuse distance for eviction.
    pub(crate) fn note_plan_read(&mut self, array: ArrayId, region: usize) {
        if !self.arrays.is_empty() {
            let g = self.gidx(array, region);
            self.planner.note_access(g, false, false);
        }
    }
}
