//! Runtime configuration of the accelerator layer.

use gpu_sim::SimTime;

/// How regions are mapped to device memory slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotPolicy {
    /// The paper's scheme: region `r` of array `a` statically maps to slot
    /// `(r * num_arrays + a) % num_slots`. Interleaving by array keeps the
    /// source and destination regions of one kernel in distinct slots
    /// whenever `num_slots >= num_arrays`.
    StaticInterleaved,
    /// Extension: any free slot, evicting the least-recently-used occupant
    /// when none is free. Avoids static collisions at the cost of a lookup.
    Lru,
    /// Extension: plan-aware eviction. When the step-plan recorder has
    /// detected a stable period (see `TileAcc::begin_step`), the victim is
    /// the resident region with the farthest predicted next use — Belady's
    /// algorithm over the predicted window. Falls back to LRU whenever no
    /// plan exists.
    ReuseDistance,
}

/// Bounded retry-with-backoff: how many times a transiently failed
/// operation is reattempted, and how long the host backs off before each
/// retry (doubling per attempt, capped at 16 doublings so the shift can
/// never overflow).
///
/// One policy governs every retry loop in the stack — the transfer retries
/// in [`crate::TileAcc`] / [`crate::MultiAcc`] and the job-level admission
/// retries of the serving layer — so a deployment tunes a single knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt before the operation is declared
    /// dead (0 = fail on the first fault).
    pub max_retries: u32,
    /// Host-side backoff charged before the first retry; doubles on each
    /// further attempt.
    pub base_backoff: SimTime,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: SimTime::from_us(20),
        }
    }
}

impl RetryPolicy {
    pub const fn new(max_retries: u32, base_backoff: SimTime) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff,
        }
    }

    /// A policy that never retries: the first fault is final.
    pub const fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: SimTime::ZERO,
        }
    }

    /// Whether `attempt` (0-based count of retries already spent) has
    /// exhausted the budget.
    pub fn exhausted(&self, attempt: u32) -> bool {
        attempt >= self.max_retries
    }

    /// Backoff charged before retry number `attempt` (0-based): the base
    /// doubled `attempt` times, capped at 16 doublings.
    pub fn backoff(&self, attempt: u32) -> SimTime {
        SimTime::from_ns(self.base_backoff.as_ns() << attempt.min(16))
    }
}

/// When an evicted region's device data is copied back to the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritebackPolicy {
    /// The paper's behaviour: every eviction queues a device→host transfer.
    Always,
    /// Extension: skip the transfer when no kernel has written the slot
    /// since it was loaded (the host copy is still current).
    DirtyOnly,
}

/// Options for [`crate::TileAcc`].
#[derive(Debug, Clone)]
pub struct AccOptions {
    pub policy: SlotPolicy,
    pub writeback: WritebackPolicy,
    /// Artificial cap on the number of device slots, regardless of free
    /// memory — how the paper limits the GPU to two regions in Fig. 7/8.
    pub max_slots: Option<usize>,
    /// Fraction of free device memory the slot pool may claim.
    pub mem_fraction: f64,
    /// Initial execution mode (the tile iterator's `reset(GPU=...)`).
    pub gpu: bool,
    /// Efficiency of the library's kernels. TiDA-acc kernels are generated
    /// by the OpenACC compiler from the `compute` lambda (§IV-B-5); the
    /// library supplies `collapse`/`deviceptr` hints and launches one kernel
    /// per region, which the cost model credits as near-tuned (0.95) rather
    /// than hand-tuned CUDA (1.0).
    pub kernel_efficiency: f64,
    /// Upload a region that the next kernel fully overwrites. `false`
    /// (default) skips the host→device copy when `compute`'s destination
    /// tile covers the region's whole valid box — without this, the heat
    /// solver moves twice the necessary data and the paper's low-iteration
    /// wins (Fig. 5) are impossible, so the original library must have had
    /// an equivalent. Set `true` to measure the difference (ablation).
    pub upload_written_regions: bool,
    /// Run ghost-cell updates on the device when regions are resident
    /// (§IV-B-6). `false` forces every ghost patch onto the host path —
    /// the ablation for the paper's device-update design choice.
    pub ghost_on_device: bool,
    /// Synchronize the whole device before each ghost exchange, as the
    /// paper does (`acc wait`, §IV-B-6). `false` is the barrier-free
    /// extension: per-slot event ordering replaces the global barrier, so
    /// the exchange of one region overlaps compute still draining on
    /// others.
    pub ghost_barrier: bool,
    /// Launch one combined gather kernel per destination region instead of
    /// one kernel per patch (extension): same traffic, ~6× fewer launches
    /// for face exchanges.
    pub ghost_batching: bool,
    /// Lookahead window (in steps) of the automatic overlap scheduler:
    /// while step `k`'s kernels drain, `TileAcc::begin_step` issues the
    /// predicted host→device loads for steps `k..k+lookahead` into idle
    /// slot streams, capped at free-slot capacity. `0` (default) disables
    /// automatic prefetching; the step-plan recorder still runs so
    /// `SlotPolicy::ReuseDistance` can victimize by reuse distance.
    pub lookahead: usize,
    /// Retry-with-backoff budget for transient transfer faults; exhausting
    /// it declares the device path dead and degrades to the host.
    pub retry: RetryPolicy,
}

impl Default for AccOptions {
    fn default() -> Self {
        AccOptions {
            policy: SlotPolicy::StaticInterleaved,
            writeback: WritebackPolicy::Always,
            max_slots: None,
            mem_fraction: 0.95,
            gpu: true,
            kernel_efficiency: 0.95,
            upload_written_regions: false,
            ghost_on_device: true,
            ghost_barrier: true,
            ghost_batching: false,
            lookahead: 0,
            retry: RetryPolicy::default(),
        }
    }
}

impl AccOptions {
    /// The paper's configuration (static slots, unconditional write-back).
    pub fn paper() -> Self {
        Self::default()
    }

    pub fn with_max_slots(mut self, n: usize) -> Self {
        self.max_slots = Some(n);
        self
    }

    pub fn with_policy(mut self, p: SlotPolicy) -> Self {
        self.policy = p;
        self
    }

    pub fn with_writeback(mut self, w: WritebackPolicy) -> Self {
        self.writeback = w;
        self
    }

    pub fn with_transfer_retries(mut self, n: u32) -> Self {
        self.retry.max_retries = n;
        self
    }

    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    pub fn with_lookahead(mut self, steps: usize) -> Self {
        self.lookahead = steps;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = AccOptions::paper();
        assert_eq!(o.policy, SlotPolicy::StaticInterleaved);
        assert_eq!(o.writeback, WritebackPolicy::Always);
        assert_eq!(o.max_slots, None);
        assert!(o.gpu);
        assert_eq!(o.lookahead, 0, "automatic prefetch is opt-in");
    }

    #[test]
    fn builders_apply() {
        let o = AccOptions::default()
            .with_max_slots(2)
            .with_policy(SlotPolicy::ReuseDistance)
            .with_writeback(WritebackPolicy::DirtyOnly)
            .with_lookahead(2);
        assert_eq!(o.max_slots, Some(2));
        assert_eq!(o.policy, SlotPolicy::ReuseDistance);
        assert_eq!(o.writeback, WritebackPolicy::DirtyOnly);
        assert_eq!(o.lookahead, 2);
    }

    #[test]
    fn retry_defaults_are_bounded() {
        let o = AccOptions::default();
        assert_eq!(o.retry.max_retries, 3);
        assert!(o.retry.base_backoff > SimTime::ZERO);
        assert_eq!(o.with_transfer_retries(9).retry.max_retries, 9);
    }

    #[test]
    fn retry_policy_backoff_doubles_and_caps() {
        let p = RetryPolicy::new(3, SimTime::from_us(20));
        assert_eq!(p.backoff(0), SimTime::from_us(20));
        assert_eq!(p.backoff(1), SimTime::from_us(40));
        assert_eq!(p.backoff(2), SimTime::from_us(80));
        // The doubling caps at 16 shifts so huge attempt counts can't
        // overflow the nanosecond arithmetic.
        assert_eq!(p.backoff(16), p.backoff(40));
        assert!(!p.exhausted(2));
        assert!(p.exhausted(3));
        assert!(RetryPolicy::none().exhausted(0));
        assert_eq!(RetryPolicy::none().backoff(0), SimTime::ZERO);
    }
}
