//! Step-plan recording and lookahead prediction — the brain of the
//! automatic overlap scheduler (DESIGN.md §9).
//!
//! [`StepPlanner`] watches the per-step sequence of region acquisitions
//! produced by the compute/ghost/reduce call stream. Stencil codes are
//! periodic: the heat solver's double buffering repeats every two steps,
//! an in-place sweep every step. Once the recorder has seen one full
//! period repeat, the coming steps' accesses are predictable, which buys
//! two schedulers:
//!
//! * the **lookahead prefetcher**: regions whose next predicted use is a
//!   host→device load can be staged while the current step's kernels are
//!   still draining (`TileAcc::begin_step`);
//! * **reuse-distance eviction** (`SlotPolicy::ReuseDistance`): the victim
//!   is the resident region with the farthest predicted next use — Belady's
//!   algorithm over the predicted window, falling back to LRU when no plan
//!   has been detected.
//!
//! Prediction is purely structural: it depends only on the acquisition call
//! stream, never on data values, so a virtual (unbacked) run schedules
//! identically to a backed one and a prefetched run stays bit-identical to
//! the demand-fetched golden.

use std::collections::VecDeque;

/// One recorded acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StepAccess {
    /// Global region index (`TileAcc::gidx`).
    pub g: usize,
    /// Whether the acquisition uploads host data on a miss (`false` for
    /// write-intent claims, which skip the load).
    pub needs_load: bool,
    /// Whether the acquiring operation writes the region (dirties the slot).
    pub dirties: bool,
}

/// A region the prefetcher may stage: `pos` is the global position of its
/// first predicted needs-load access within the lookahead window.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrefetchCandidate {
    pub g: usize,
    pub pos: u64,
}

/// Longest step period the detector considers.
const MAX_PERIOD: usize = 4;
/// Completed step plans kept for period detection (two full max periods).
const MAX_HISTORY: usize = 2 * MAX_PERIOD;
/// Per-step recording cap — bounds memory on aperiodic workloads.
const MAX_RECORD: usize = 4096;

/// Records per-step access plans, detects the repetition period, and
/// maintains the predicted future-use table for the current step. See the
/// module docs.
#[derive(Debug, Default)]
pub(crate) struct StepPlanner {
    /// Set by the first `on_step` call — the application opted into step
    /// boundaries; recording and prediction stay inert otherwise.
    enabled: bool,
    /// `on_step` has run at least once, so `cur` holds a complete step.
    started: bool,
    /// Accesses recorded since the last step boundary.
    cur: Vec<StepAccess>,
    /// Completed step plans, oldest first.
    history: VecDeque<Vec<StepAccess>>,
    /// Detected repetition period (in steps), if any.
    period: Option<usize>,
    /// Predicted future positions per global region over the horizon,
    /// dense-indexed by `g`: `future_pos[g][future_head[g]..]` are still
    /// ahead; demand accesses consume by advancing the head. The position
    /// vectors are pooled — a rebuild clears them without freeing — so the
    /// per-step refresh allocates nothing in the steady state.
    future_pos: Vec<Vec<u64>>,
    future_head: Vec<usize>,
    /// Rebuild scratch: a region was written / load-seen in the current
    /// window iff its entry equals `epoch` (versioning beats clearing).
    written: Vec<u64>,
    first_load: Vec<u64>,
    epoch: u64,
    /// Prefetchable first loads in the window, in position order.
    candidates: Vec<PrefetchCandidate>,
    /// Step boundaries seen so far.
    steps: u64,
}

impl StepPlanner {
    /// Record one acquisition and consume its predicted position.
    pub fn note_access(&mut self, g: usize, needs_load: bool, dirties: bool) {
        if !self.enabled {
            return;
        }
        if self.cur.len() < MAX_RECORD {
            self.cur.push(StepAccess {
                g,
                needs_load,
                dirties,
            });
        }
        if let Some(h) = self.future_head.get_mut(g) {
            if *h < self.future_pos[g].len() {
                *h += 1;
            }
        }
    }

    /// Declare a step boundary: archive the finished step's recording,
    /// refresh the period estimate, and rebuild the future-use table and
    /// prefetch candidates for a window of the current step plus
    /// `lookahead` predicted steps.
    pub fn on_step(&mut self, lookahead: usize) {
        self.enabled = true;
        let done = std::mem::take(&mut self.cur);
        if self.started {
            self.history.push_back(done);
            if self.history.len() > MAX_HISTORY {
                self.history.pop_front();
            }
        } else {
            self.started = true;
        }
        self.steps += 1;
        self.period = self.detect_period();
        self.rebuild(lookahead);
    }

    /// Smallest period `p` such that the last `2p` completed steps repeat
    /// pairwise (one full period verified against the one before it).
    fn detect_period(&self) -> Option<usize> {
        let len = self.history.len();
        (1..=MAX_PERIOD).find(|&p| {
            len >= 2 * p
                && !self.history[len - p].is_empty()
                && (0..p).all(|i| self.history[len - 1 - i] == self.history[len - 1 - p - i])
        })
    }

    /// Rebuild `future` and `candidates` from the detected period. The
    /// window covers the step about to run (position of every predicted
    /// access is its submission order) plus `lookahead` further steps; a
    /// region qualifies for prefetch only if its first needs-load access
    /// falls in the window *before any predicted write to it* — staging a
    /// region the window first writes would upload data the in-window
    /// kernels are about to overwrite.
    fn rebuild(&mut self, lookahead: usize) {
        for q in &mut self.future_pos {
            q.clear();
        }
        for h in &mut self.future_head {
            *h = 0;
        }
        self.candidates.clear();
        self.epoch += 1;
        let Some(p) = self.period else { return };
        let len = self.history.len();
        // Keep distances meaningful for eviction even at small lookahead:
        // always project at least two full periods ahead.
        let horizon = (lookahead + 1).max(2 * p);
        let mut pos: u64 = 0;
        for j in 0..horizon {
            let step = len - p + (j % p);
            for i in 0..self.history[step].len() {
                let a = self.history[step][i];
                self.grow(a.g);
                self.future_pos[a.g].push(pos);
                if a.needs_load {
                    let first = self.first_load[a.g] != self.epoch;
                    self.first_load[a.g] = self.epoch;
                    if first && j <= lookahead && self.written[a.g] != self.epoch {
                        self.candidates.push(PrefetchCandidate { g: a.g, pos });
                    }
                }
                if a.dirties {
                    self.written[a.g] = self.epoch;
                }
                pos += 1;
            }
        }
    }

    /// Size every dense table to hold region `g`.
    fn grow(&mut self, g: usize) {
        if self.future_pos.len() <= g {
            self.future_pos.resize_with(g + 1, Vec::new);
            self.future_head.resize(g + 1, 0);
            self.written.resize(g + 1, 0);
            self.first_load.resize(g + 1, 0);
        }
    }

    /// Predicted position of `g`'s next use, `u64::MAX` when the plan has
    /// no further use for it (or no plan exists).
    pub fn next_use(&self, g: usize) -> u64 {
        self.future_pos
            .get(g)
            .and_then(|q| q.get(self.future_head[g]))
            .copied()
            .unwrap_or(u64::MAX)
    }

    /// Prefetchable first loads of the current window, in position order.
    pub fn candidates(&self) -> &[PrefetchCandidate] {
        &self.candidates
    }

    /// Whether a stable period has been detected (prediction is live).
    pub fn has_plan(&self) -> bool {
        self.period.is_some()
    }

    /// Detected repetition period, if any.
    pub fn period(&self) -> Option<usize> {
        self.period
    }

    /// Drop every prediction (recording history included). Used by
    /// `TileAcc::restore`: the replayed steps re-record from scratch, so a
    /// restored run never acts on a plan from its discarded timeline.
    pub fn reset_prediction(&mut self) {
        self.cur.clear();
        self.history.clear();
        for q in &mut self.future_pos {
            q.clear();
        }
        for h in &mut self.future_head {
            *h = 0;
        }
        self.candidates.clear();
        self.period = None;
        self.started = false;
    }
}

/// Pick the temporal-blocking depth `k` from a run's transfer/compute
/// critical-path split (the numbers the overlap bench emits as
/// `transfer_critical_ms` / `compute_critical_ms` in `BENCH_overlap.json`).
///
/// When the run is compute-bound (`transfer <= compute`) there is nothing
/// to amortize and fusing only adds redundant trapezoid work: `k = 1`.
/// When it is interconnect-starved, every staged byte should buy about
/// `transfer / compute` kernel applications before the link catches up, so
/// the depth is that ratio rounded **up** to the next power of two —
/// overshooting slightly trades cheap redundant compute for scarce link
/// bandwidth. `max_depth` caps the result at what the halo can support
/// (the thinnest region extent, [`tida::Decomposition::max_ghost_depth`])
/// and at the caller's step-count divisibility.
pub fn recommend_fusion_depth(
    transfer_critical_ms: f64,
    compute_critical_ms: f64,
    max_depth: usize,
) -> usize {
    let max_depth = max_depth.max(1);
    // NaN or non-positive transfer time also lands here: fuse only on
    // positive evidence of starvation.
    if transfer_critical_ms.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        || transfer_critical_ms <= compute_critical_ms
    {
        return 1;
    }
    // compute == 0 with transfer > 0: infinitely starved, take the cap.
    let ratio = if compute_critical_ms > 0.0 {
        transfer_critical_ms / compute_critical_ms
    } else {
        f64::INFINITY
    };
    let mut k = 1usize;
    while k * 2 <= max_depth && (k as f64) < ratio {
        k *= 2;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(g: usize) -> StepAccess {
        StepAccess {
            g,
            needs_load: true,
            dirties: false,
        }
    }

    fn claim(g: usize) -> StepAccess {
        StepAccess {
            g,
            needs_load: false,
            dirties: true,
        }
    }

    fn drive(p: &mut StepPlanner, steps: &[&[StepAccess]], lookahead: usize) {
        for step in steps {
            p.on_step(lookahead);
            for a in *step {
                p.note_access(a.g, a.needs_load, a.dirties);
            }
        }
        p.on_step(lookahead);
    }

    #[test]
    fn detects_period_one() {
        let mut p = StepPlanner::default();
        let s: &[StepAccess] = &[read(0), read(1)];
        drive(&mut p, &[s, s], 1);
        assert_eq!(p.period(), Some(1));
        assert!(p.has_plan());
    }

    #[test]
    fn detects_period_two_for_double_buffering() {
        let mut p = StepPlanner::default();
        let even: &[StepAccess] = &[read(0), claim(1)];
        let odd: &[StepAccess] = &[read(1), claim(0)];
        drive(&mut p, &[even, odd, even, odd], 1);
        assert_eq!(p.period(), Some(2));
    }

    #[test]
    fn no_plan_before_repetition() {
        let mut p = StepPlanner::default();
        let a: &[StepAccess] = &[read(0)];
        let b: &[StepAccess] = &[read(1)];
        drive(&mut p, &[a, b], 0);
        // a, b share no repetition at any period the two steps can verify.
        assert_eq!(p.period(), None);
        assert_eq!(p.next_use(0), u64::MAX);
        assert!(p.candidates().is_empty());
    }

    #[test]
    fn next_use_pops_as_accesses_arrive() {
        let mut p = StepPlanner::default();
        let s: &[StepAccess] = &[read(0), read(1), read(0)];
        drive(&mut p, &[s, s], 0);
        // Window starts at the step about to run: 0 used at pos 0 and 2.
        assert_eq!(p.next_use(0), 0);
        p.note_access(0, true, false);
        assert_eq!(p.next_use(0), 2);
        assert_eq!(p.next_use(1), 1);
    }

    #[test]
    fn writes_block_prefetch_candidates() {
        let mut p = StepPlanner::default();
        // Region 1 is write-claimed before it is read: its read must not be
        // prefetched (the upload would race the predicted claim's kernel).
        let s: &[StepAccess] = &[read(0), claim(1), read(1)];
        drive(&mut p, &[s, s], 1);
        let c: Vec<usize> = p.candidates().iter().map(|c| c.g).collect();
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn candidates_sorted_by_first_use() {
        let mut p = StepPlanner::default();
        let s: &[StepAccess] = &[read(2), read(0), read(1)];
        drive(&mut p, &[s, s], 0);
        let c: Vec<usize> = p.candidates().iter().map(|c| c.g).collect();
        assert_eq!(c, vec![2, 0, 1]);
    }

    #[test]
    fn irregular_warmup_prefix_does_not_block_detection() {
        // Real apps often have a setup step (initial loads, one-off ghost
        // fills) before settling into the periodic regime. The detector
        // verifies only the trailing 2p steps, so the prefix must neither
        // produce a bogus period nor prevent the real one from locking.
        let mut p = StepPlanner::default();
        let warm0: &[StepAccess] = &[read(0), read(1), read(2), read(3)];
        let warm1: &[StepAccess] = &[claim(3), read(2)];
        let even: &[StepAccess] = &[read(0), claim(1)];
        let odd: &[StepAccess] = &[read(1), claim(0)];
        // Not enough clean repetition yet: two trailing steps can't verify
        // period 2, and warm1 != even blocks period 1 and 2 at this point.
        drive(&mut p, &[warm0, warm1, even, odd], 1);
        assert_eq!(p.period(), None);
        // One more full period and the trailing window is pure: lock at 2.
        let mut p = StepPlanner::default();
        drive(&mut p, &[warm0, warm1, even, odd, even, odd], 1);
        assert_eq!(p.period(), Some(2));
        // The locked plan predicts the periodic regime, not the warm-up.
        assert_eq!(p.next_use(3), u64::MAX, "warm-up-only region has no future");
        assert_eq!(p.next_use(0), 0);
    }

    #[test]
    fn plan_invalidates_when_sequence_changes_mid_run() {
        // A locked plan must be dropped as soon as the access sequence
        // diverges (e.g. the app switches kernels or decomposition): stale
        // predictions would prefetch the wrong regions.
        let mut p = StepPlanner::default();
        let s: &[StepAccess] = &[read(0), read(1)];
        drive(&mut p, &[s, s, s], 1);
        assert_eq!(p.period(), Some(1));
        assert!(!p.candidates().is_empty());
        // The app changes shape: a different sequence for the next steps.
        let t: &[StepAccess] = &[read(5), claim(6)];
        for a in t {
            p.note_access(a.g, a.needs_load, a.dirties);
        }
        p.on_step(1);
        // History tail is now [s, s, t]... — no period verifies.
        assert_eq!(p.period(), None, "divergent step must invalidate the plan");
        assert!(p.candidates().is_empty());
        assert_eq!(p.next_use(0), u64::MAX);
        // And the NEW regime locks once it repeats.
        for a in t {
            p.note_access(a.g, a.needs_load, a.dirties);
        }
        p.on_step(1);
        for a in t {
            p.note_access(a.g, a.needs_load, a.dirties);
        }
        p.on_step(1);
        assert_eq!(p.period(), Some(1), "new regime re-locks after repeating");
        let c: Vec<usize> = p.candidates().iter().map(|c| c.g).collect();
        assert_eq!(c, vec![5], "claims never become prefetch candidates");
    }

    #[test]
    fn no_plan_degrades_reuse_distance_to_lru() {
        // Before a period locks, `next_use` is u64::MAX for every region —
        // which is exactly the contract SlotPolicy::ReuseDistance relies on
        // to degrade to LRU (all distances tie at infinity, the LRU
        // tiebreak decides). Pin the aperiodic case explicitly.
        let mut p = StepPlanner::default();
        let a: &[StepAccess] = &[read(0), read(1)];
        let b: &[StepAccess] = &[read(2), read(0)];
        let c: &[StepAccess] = &[read(1), read(3)];
        drive(&mut p, &[a, b, c], 2);
        assert!(!p.has_plan());
        for g in 0..4 {
            assert_eq!(p.next_use(g), u64::MAX, "region {g}: no plan, no distance");
        }
        assert!(p.candidates().is_empty(), "no plan must mean no prefetch");
        // Recording stays live the whole time: once the tail DOES repeat,
        // the degraded phase ends without any external reset.
        drive(&mut p, &[a, a], 2);
        assert_eq!(p.period(), Some(1));
        assert_ne!(p.next_use(0), u64::MAX);
    }

    #[test]
    fn reset_prediction_clears_plan() {
        let mut p = StepPlanner::default();
        let s: &[StepAccess] = &[read(0)];
        drive(&mut p, &[s, s], 1);
        assert!(p.has_plan());
        p.reset_prediction();
        assert!(!p.has_plan());
        assert_eq!(p.next_use(0), u64::MAX);
        // Re-detection works after the reset.
        drive(&mut p, &[s, s], 1);
        assert!(p.has_plan());
    }

    // ---- temporal blocking (fused steps) × the planner ----------------
    //
    // A fused run collapses k time steps into one planner step: per outer
    // step each region records [src read-write load, dst write claim]
    // instead of k alternating pairs. These tests pin that the period
    // detector sees the collapsed sequence correctly.

    /// One fused outer step over `regions` regions: array `src` is loaded
    /// read-write, array `dst` is write-claimed (skip-load).
    fn fused_step(regions: usize, src: usize, dst: usize) -> Vec<StepAccess> {
        let mut v = Vec::new();
        for r in 0..regions {
            v.push(StepAccess {
                g: r * 2 + src,
                needs_load: true,
                dirties: true,
            });
            v.push(StepAccess {
                g: r * 2 + dst,
                needs_load: false,
                dirties: true,
            });
        }
        v
    }

    #[test]
    fn fused_even_depth_collapses_to_period_one() {
        // Even k: the final level lands back in src, so every outer step
        // reads the same array — the collapsed sequence has period 1, not
        // the unfused double-buffer period 2.
        let mut p = StepPlanner::default();
        let s = fused_step(3, 0, 1);
        let steps: Vec<&[StepAccess]> = vec![&s, &s];
        drive(&mut p, &steps, 2);
        assert_eq!(p.period(), Some(1));
    }

    #[test]
    fn fused_odd_depth_keeps_the_double_buffer_period() {
        // Odd k swaps the handles per outer step: period 2 survives.
        let mut p = StepPlanner::default();
        let even = fused_step(3, 0, 1);
        let odd = fused_step(3, 1, 0);
        let steps: Vec<&[StepAccess]> = vec![&even, &odd, &even, &odd];
        drive(&mut p, &steps, 2);
        assert_eq!(p.period(), Some(2));
    }

    #[test]
    fn fused_rotation_at_max_period_boundary_detects() {
        // A 4-phase fused rotation sits exactly on MAX_PERIOD: with two
        // full repetitions recorded, detection must succeed.
        let mut p = StepPlanner::default();
        let phases: Vec<Vec<StepAccess>> = (0..MAX_PERIOD)
            .map(|i| fused_step(2, i % 2, (i + 1) % 2))
            .collect();
        // Make each phase distinguishable by touching a phase-tagged region.
        let phases: Vec<Vec<StepAccess>> = phases
            .into_iter()
            .enumerate()
            .map(|(i, mut v)| {
                v.push(read(100 + i));
                v
            })
            .collect();
        let mut steps: Vec<&[StepAccess]> = Vec::new();
        for _ in 0..2 {
            for ph in &phases {
                steps.push(ph);
            }
        }
        drive(&mut p, &steps, 2);
        assert_eq!(p.period(), Some(MAX_PERIOD));
    }

    #[test]
    fn fused_rotation_beyond_max_period_stays_unplanned() {
        // One phase more than MAX_PERIOD: the detector must refuse rather
        // than lock onto a wrong shorter period.
        let mut p = StepPlanner::default();
        let phases: Vec<Vec<StepAccess>> = (0..MAX_PERIOD + 1)
            .map(|i| {
                let mut v = fused_step(2, i % 2, (i + 1) % 2);
                v.push(read(100 + i));
                v
            })
            .collect();
        let mut steps: Vec<&[StepAccess]> = Vec::new();
        for _ in 0..3 {
            for ph in &phases {
                steps.push(ph);
            }
        }
        drive(&mut p, &steps, 2);
        assert_eq!(p.period(), None);
    }

    #[test]
    fn plan_invalidates_when_fusion_depth_changes_mid_run() {
        // Switching k mid-run (odd→even) changes the collapsed sequence;
        // the locked plan must dissolve instead of predicting stale swaps.
        let mut p = StepPlanner::default();
        let even = fused_step(3, 0, 1);
        let odd = fused_step(3, 1, 0);
        let steps: Vec<&[StepAccess]> = vec![&even, &odd, &even, &odd];
        drive(&mut p, &steps, 2);
        assert_eq!(p.period(), Some(2));
        // Now the run re-tiles to an even depth: the next outer step reads
        // array 0 again instead of swapping. The locked plan must dissolve.
        let steps: Vec<&[StepAccess]> = vec![&even];
        drive(&mut p, &steps, 2);
        assert_eq!(p.period(), None, "stale double-buffer plan survived");
        // And the new collapsed sequence locks in after its own repetition.
        let steps: Vec<&[StepAccess]> = vec![&even, &even];
        drive(&mut p, &steps, 2);
        assert_eq!(p.period(), Some(1));
    }

    #[test]
    fn fusion_depth_is_one_when_compute_bound() {
        assert_eq!(recommend_fusion_depth(10.0, 20.0, 8), 1);
        assert_eq!(recommend_fusion_depth(10.0, 10.0, 8), 1);
        assert_eq!(recommend_fusion_depth(0.0, 0.0, 8), 1);
        assert_eq!(recommend_fusion_depth(f64::NAN, 1.0, 8), 1);
    }

    #[test]
    fn fusion_depth_rounds_ratio_up_to_power_of_two() {
        // ratio 1.5 → 2; ratio 3 → 4; ratio 4 → exactly 4; ratio 6.1 → 8.
        assert_eq!(recommend_fusion_depth(15.0, 10.0, 8), 2);
        assert_eq!(recommend_fusion_depth(30.0, 10.0, 8), 4);
        assert_eq!(recommend_fusion_depth(40.0, 10.0, 8), 4);
        assert_eq!(recommend_fusion_depth(61.0, 10.0, 8), 8);
    }

    #[test]
    fn fusion_depth_respects_the_halo_cap() {
        // Starved run, but thin regions cap the halo: never exceed.
        assert_eq!(recommend_fusion_depth(100.0, 1.0, 4), 4);
        assert_eq!(recommend_fusion_depth(100.0, 1.0, 3), 2);
        assert_eq!(recommend_fusion_depth(100.0, 1.0, 1), 1);
        assert_eq!(recommend_fusion_depth(100.0, 1.0, 0), 1);
        // Infinitely starved (zero measured compute): take the cap.
        assert_eq!(recommend_fusion_depth(5.0, 0.0, 8), 8);
    }
}
