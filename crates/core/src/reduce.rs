//! Reductions over tile arrays.
//!
//! Solvers need global quantities (residual norms, total energy) that the
//! paper's compute API cannot express: a reduction produces one scalar from
//! every region, wherever each region currently lives. The device path
//! launches one reduction kernel per resident region in its slot's stream
//! (cost: one streaming read of the region) followed by a scalar-sized
//! device→host copy; host-resident regions reduce on the host clock. The
//! call is blocking, like `cublas`-style reductions.

use crate::error::AccError;
use crate::tileacc::{ArrayId, Residency, TileAcc};
use gpu_sim::{KernelCost, KernelLaunch};
use parking_lot::Mutex;
use std::sync::Arc;
use tida::with_view;

impl TileAcc {
    /// Reduce `map(cell)` over every valid cell of `array` with the
    /// associative `combine`, starting from `identity`.
    ///
    /// Returns `Ok(None)` when the array is virtual (timing-only run) — the
    /// schedule cost is still charged, so harnesses can time reductions.
    pub fn reduce<M, C>(
        &mut self,
        array: ArrayId,
        label: &'static str,
        identity: f64,
        map: M,
        combine: C,
    ) -> Result<Option<f64>, AccError>
    where
        M: Fn(f64) -> f64 + Clone + 'static,
        C: Fn(f64, f64) -> f64 + Clone + 'static,
    {
        let regions = self.array(array).num_regions();
        let partials: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(vec![identity; regions]));
        let virtual_run = self.array(array).is_virtual();

        for r in 0..regions {
            let reg = self.array(array).region(r).clone();
            let cells = reg.valid.num_cells();
            match self.residency(array, r) {
                Residency::Device(s) if self.gpu_enabled() => {
                    // This read bypasses the acquire path (the region is
                    // known resident); tell the plan recorder so eviction
                    // sees the true reuse distance.
                    self.note_plan_read(array, r);
                    // Device partial reduction in the slot's stream.
                    let slab = self.gpu().device_slab(self.slot_dev(s));
                    let (m, c, out) = (map.clone(), combine.clone(), partials.clone());
                    let eff = self.kernel_efficiency();
                    let stream = self.slot_stream(s);
                    let dev = self.slot_dev(s);
                    self.gpu_mut().launch_kernel(
                        stream,
                        KernelLaunch::new(label, KernelCost::Bytes(cells * 8))
                            .efficiency(eff)
                            .reads(dev.into())
                            .exec(move || {
                                with_view(&slab, reg.layout, |v| {
                                    let mut acc = identity;
                                    for iv in reg.valid.iter() {
                                        acc = c(acc, m(v.at(iv)));
                                    }
                                    out.lock()[reg.id] = acc;
                                });
                            }),
                    );
                    // The partial comes back as a scalar copy (modelled as a
                    // one-element transfer; latency dominated). Routed
                    // through the retrying path: on a dead D2H lane the
                    // salvage copy carries the timing and the device is
                    // declared failed, so later regions take the host arm.
                    let host_scratch = self.gpu_mut().malloc_host(1, gpu_sim::HostMemKind::Pinned);
                    let dev = self.slot_dev(s);
                    self.d2h_retrying(host_scratch, dev, 1, stream)?;
                }
                _ => {
                    // Host partial: the region's authoritative copy is on
                    // the host (or we are in CPU mode — acquire it first).
                    self.acquire_host(array, r)?;
                    let (m, c, out) = (map.clone(), combine.clone(), partials.clone());
                    with_view(&reg.slab, reg.layout, |v| {
                        let mut acc = identity;
                        for iv in reg.valid.iter() {
                            acc = c(acc, m(v.at(iv)));
                        }
                        out.lock()[reg.id] = acc;
                    });
                    let cost = KernelCost::Bytes(cells * 8);
                    let d = cost.duration_on_host(self.gpu().config());
                    self.gpu_mut().host_work(d, label);
                }
            }
        }
        // Blocking: wait for all partials, then combine on the host.
        self.gpu_mut().device_synchronize();
        if virtual_run {
            return Ok(None);
        }
        let partials = partials.lock();
        Ok(Some(partials.iter().copied().fold(identity, combine)))
    }

    /// Sum of all valid cells.
    pub fn reduce_sum(&mut self, array: ArrayId) -> Result<Option<f64>, AccError> {
        self.reduce(array, "reduce-sum", 0.0, |x| x, |a, b| a + b)
    }

    /// Maximum absolute value over all valid cells.
    pub fn reduce_max_abs(&mut self, array: ArrayId) -> Result<Option<f64>, AccError> {
        self.reduce(array, "reduce-max", 0.0, f64::abs, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use crate::{AccOptions, TileAcc};
    use gpu_sim::{GpuSystem, MachineConfig};
    use std::sync::Arc;
    use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};

    fn setup(backed: bool) -> (TileAcc, TileArray, crate::ArrayId, Arc<Decomposition>) {
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(8),
            RegionSpec::Count(4),
        ));
        let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, backed);
        u.fill_valid(|iv| (iv.x() - 3) as f64);
        let mut acc = TileAcc::new(GpuSystem::new(MachineConfig::k40m()), AccOptions::paper());
        let a = acc.register(&u);
        (acc, u, a, decomp)
    }

    #[test]
    fn sum_over_host_resident_regions() {
        let (mut acc, _u, a, _d) = setup(true);
        // x-3 over x in 0..8 sums to 4 per (y,z) line; 64 lines.
        assert_eq!(acc.reduce_sum(a).unwrap(), Some(4.0 * 64.0));
    }

    #[test]
    fn sum_after_gpu_compute_uses_device_path() {
        let (mut acc, _u, a, d) = setup(true);
        for t in tiles_of(&d, TileSpec::RegionSized) {
            acc.compute1(t, a, gpu_sim::KernelCost::Flops(1e3), "inc", |v, bx| {
                for iv in bx.iter() {
                    v.update(iv, |x| x + 1.0);
                }
            })
            .unwrap();
        }
        // Regions are device-resident now; the reduction must see the
        // incremented values without an explicit sync_to_host.
        assert_eq!(acc.reduce_sum(a).unwrap(), Some(4.0 * 64.0 + 512.0));
    }

    #[test]
    fn max_abs_reduction() {
        let (mut acc, _u, a, _d) = setup(true);
        assert_eq!(acc.reduce_max_abs(a).unwrap(), Some(4.0)); // |7-3| = 4
    }

    #[test]
    fn virtual_run_returns_none_but_costs_time() {
        let (mut acc, _u, a, _d) = setup(false);
        let before = acc.gpu().host_now();
        assert_eq!(acc.reduce_sum(a).unwrap(), None);
        assert!(acc.gpu().host_now() > before, "reduction must cost time");
    }

    #[test]
    fn reduction_in_cpu_mode() {
        let (mut acc, _u, a, _d) = setup(true);
        acc.set_gpu(false);
        assert_eq!(acc.reduce_sum(a).unwrap(), Some(4.0 * 64.0));
    }
}
