//! Crash-consistent checkpoints: snapshot, versioned binary format, store.
//!
//! A [`Checkpoint`] captures everything a [`crate::TileAcc`] needs to resume
//! a run bit-identically: the step cursor, the LRU clock, the accumulated
//! [`AccStats`], every registered region's host slab, and the cache-list /
//! dirty-bit state (which, because snapshots are taken *after* a full
//! `sync_to_host`, must be empty/clean — the crash-consistency invariant
//! validated on restore).
//!
//! # Binary format (version 4)
//!
//! ```text
//! magic   b"TACK"
//! version u16 LE
//! section*  { tag u8, payload_len u64 LE, payload, fnv1a64(payload) u64 LE }
//! ```
//!
//! Sections: `META` (1) — step, clock, shape, cache list, dirty bits;
//! `STATS` (2) — the [`AccStats`] fields as u64 LE; `DATA` (3) — all region
//! values as f64 LE, concatenated in registration order. Every section
//! carries its own FNV-1a checksum, so a torn write (truncation) surfaces as
//! [`CheckpointError::Torn`] and a bit flip as
//! [`CheckpointError::ChecksumMismatch`] — a reader never trusts a partial
//! or corrupt snapshot.
//!
//! [`CheckpointStore`] keeps the most recent `keep` encoded snapshots in an
//! in-memory ring and, when a directory is configured, mirrors each one to
//! disk via an atomic temp-file + rename so a crash mid-write can never
//! replace a good snapshot with a torn one.

use crate::stats::AccStats;
use std::collections::VecDeque;
use std::fmt;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"TACK";
// v2: the stats section grew from 22 to 26 words (prefetch/deferral
// counters). v3: 26 to 29 words (migration counters). Older blobs are
// rejected as UnsupportedVersion — nothing pins the on-disk format across
// releases yet.
const VERSION: u16 = 4;
const TAG_META: u8 = 1;
const TAG_STATS: u8 = 2;
const TAG_DATA: u8 = 3;

/// When and how many snapshots to retain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Take a checkpoint every `interval` steps (0 disables periodic
    /// checkpoints; an initial step-0 snapshot is still taken by the
    /// supervisor so recovery always has a floor).
    pub interval: u64,
    /// How many snapshots to retain (ring buffer; older ones are dropped).
    pub keep: usize,
    /// Mirror snapshots to this directory (atomic temp+rename writes).
    pub dir: Option<PathBuf>,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            interval: 8,
            keep: 2,
            dir: None,
        }
    }
}

impl CheckpointPolicy {
    pub fn every(interval: u64) -> Self {
        CheckpointPolicy {
            interval,
            ..CheckpointPolicy::default()
        }
    }

    pub fn keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    pub fn on_disk(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }
}

/// Why a snapshot could not be decoded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure while mirroring or loading a snapshot.
    Io(String),
    /// The blob does not start with the `TACK` magic.
    BadMagic,
    /// The format version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The blob ends mid-section: a torn (partial) write.
    Torn,
    /// A section's checksum does not match its payload: corruption.
    ChecksumMismatch,
    /// The snapshot decodes but does not fit this accelerator (different
    /// array/region shape) or violates the crash-consistency invariant.
    Incompatible,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Torn => write!(f, "torn checkpoint (truncated section)"),
            CheckpointError::ChecksumMismatch => {
                write!(f, "checkpoint section failed its checksum")
            }
            CheckpointError::Incompatible => {
                write!(f, "checkpoint does not match this accelerator")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A crash-consistent snapshot of a [`crate::TileAcc`] /
/// [`crate::MultiAcc`]. Produced by their `checkpoint` methods; applied with
/// `restore`.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Step cursor the snapshot was taken at; a restored run resumes here.
    pub step: u64,
    /// The runtime's LRU clock, so slot-victim choice replays identically.
    pub clock: u64,
    /// Runtime counters at snapshot time (rolled back on restore).
    pub stats: AccStats,
    /// `[array][region]` host-slab values; an empty region is virtual
    /// (never materialized). Public so out-of-crate runtimes (e.g. the
    /// cluster layer) can reuse the snapshot as a live-migration format.
    pub data: Vec<Vec<Vec<f64>>>,
    /// Cache list at snapshot time (`-1` = empty slot). Post-sync this is
    /// all `-1`; restore rejects anything else as inconsistent.
    pub cache: Vec<i64>,
    /// Dirty bits at snapshot time (must all be clear; see `cache`).
    pub dirty: Vec<bool>,
}

use memslab::fnv1a64;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Torn);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

fn stats_to_words(s: &AccStats) -> [u64; 31] {
    [
        s.hits,
        s.loads,
        s.write_allocs,
        s.evictions,
        s.writebacks_skipped,
        s.host_syncs,
        s.kernels_gpu,
        s.kernels_host,
        s.conflict_fallbacks,
        s.ghost_gpu,
        s.ghost_host,
        s.transfer_retries,
        s.fault_fallbacks,
        s.slot_shrinks,
        s.salvaged_regions,
        s.checkpoints_taken,
        s.checkpoints_restored,
        s.hang_detections,
        s.integrity_detected,
        s.integrity_repaired,
        s.slots_quarantined,
        s.hazards,
        s.prefetch_loads,
        s.prefetch_hits,
        s.prefetch_fallbacks,
        s.writebacks_deferred,
        s.regions_migrated,
        s.migration_restage_loads,
        s.migration_restage_bytes,
        s.kernels_fused,
        s.fused_substeps,
    ]
}

fn stats_from_words(w: &[u64; 31]) -> AccStats {
    AccStats {
        hits: w[0],
        loads: w[1],
        write_allocs: w[2],
        evictions: w[3],
        writebacks_skipped: w[4],
        host_syncs: w[5],
        kernels_gpu: w[6],
        kernels_host: w[7],
        conflict_fallbacks: w[8],
        ghost_gpu: w[9],
        ghost_host: w[10],
        transfer_retries: w[11],
        fault_fallbacks: w[12],
        slot_shrinks: w[13],
        salvaged_regions: w[14],
        checkpoints_taken: w[15],
        checkpoints_restored: w[16],
        hang_detections: w[17],
        integrity_detected: w[18],
        integrity_repaired: w[19],
        slots_quarantined: w[20],
        hazards: w[21],
        prefetch_loads: w[22],
        prefetch_hits: w[23],
        prefetch_fallbacks: w[24],
        writebacks_deferred: w[25],
        regions_migrated: w[26],
        migration_restage_loads: w[27],
        migration_restage_bytes: w[28],
        kernels_fused: w[29],
        fused_substeps: w[30],
    }
}

impl Checkpoint {
    /// Build a snapshot directly from drained region data — the entry point
    /// for runtimes layered above [`crate::TileAcc`] (the serving layer
    /// checkpoints a preempted job's regions through the same TACK codec and
    /// store machinery). `data` is `[array][region]` host values; the
    /// snapshot satisfies the post-sync invariant by construction (no
    /// resident slots, nothing dirty).
    pub fn from_region_data(step: u64, data: Vec<Vec<Vec<f64>>>) -> Checkpoint {
        Checkpoint {
            step,
            clock: 0,
            stats: AccStats::default(),
            data,
            cache: Vec::new(),
            dirty: Vec::new(),
        }
    }

    /// The `[array][region]` host values this snapshot carries.
    pub fn region_data(&self) -> &[Vec<Vec<f64>>] {
        &self.data
    }

    /// Serialize to the versioned, per-section-checksummed binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        put_u64(&mut meta, self.step);
        put_u64(&mut meta, self.clock);
        put_u64(&mut meta, self.data.len() as u64);
        for regions in &self.data {
            put_u64(&mut meta, regions.len() as u64);
            for r in regions {
                put_u64(&mut meta, r.len() as u64);
            }
        }
        put_u64(&mut meta, self.cache.len() as u64);
        for &c in &self.cache {
            put_u64(&mut meta, c as u64);
        }
        put_u64(&mut meta, self.dirty.len() as u64);
        for &d in &self.dirty {
            meta.push(d as u8);
        }

        let mut stats = Vec::new();
        for w in stats_to_words(&self.stats) {
            put_u64(&mut stats, w);
        }

        let mut data = Vec::new();
        for regions in &self.data {
            for r in regions {
                for &v in r {
                    data.extend_from_slice(&v.to_le_bytes());
                }
            }
        }

        let mut out = Vec::with_capacity(data.len() + meta.len() + 128);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        for (tag, payload) in [(TAG_META, &meta), (TAG_STATS, &stats), (TAG_DATA, &data)] {
            out.push(tag);
            put_u64(&mut out, payload.len() as u64);
            out.extend_from_slice(payload);
            put_u64(&mut out, fnv1a64(payload));
        }
        out
    }

    /// Decode a blob, rejecting torn or corrupt snapshots. Inverse of
    /// [`Checkpoint::encode`].
    pub fn decode(blob: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let mut r = Reader { buf: blob, pos: 0 };
        if r.take(4).map_err(|_| CheckpointError::Torn)? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let (mut meta, mut stats, mut data) = (None, None, None);
        while !r.done() {
            let tag = r.u8()?;
            let len = r.u64()? as usize;
            let payload = r.take(len)?.to_vec();
            let sum = r.u64()?;
            if fnv1a64(&payload) != sum {
                return Err(CheckpointError::ChecksumMismatch);
            }
            match tag {
                TAG_META => meta = Some(payload),
                TAG_STATS => stats = Some(payload),
                TAG_DATA => data = Some(payload),
                // Unknown sections from a future minor revision are skipped
                // (their checksum was still verified above).
                _ => {}
            }
        }
        let (meta, stats, data) = match (meta, stats, data) {
            (Some(m), Some(s), Some(d)) => (m, s, d),
            _ => return Err(CheckpointError::Torn),
        };

        let mut m = Reader { buf: &meta, pos: 0 };
        let step = m.u64()?;
        let clock = m.u64()?;
        let narrays = m.u64()? as usize;
        let mut shape: Vec<Vec<usize>> = Vec::with_capacity(narrays);
        for _ in 0..narrays {
            let nregions = m.u64()? as usize;
            let mut lens = Vec::with_capacity(nregions);
            for _ in 0..nregions {
                lens.push(m.u64()? as usize);
            }
            shape.push(lens);
        }
        let ncache = m.u64()? as usize;
        let mut cache = Vec::with_capacity(ncache);
        for _ in 0..ncache {
            cache.push(m.u64()? as i64);
        }
        let ndirty = m.u64()? as usize;
        let mut dirty = Vec::with_capacity(ndirty);
        for _ in 0..ndirty {
            dirty.push(m.u8()? != 0);
        }

        let mut s = Reader {
            buf: &stats,
            pos: 0,
        };
        let mut words = [0u64; 31];
        for w in &mut words {
            *w = s.u64()?;
        }

        let total: usize = shape.iter().flatten().sum();
        if data.len() != total * 8 {
            return Err(CheckpointError::Incompatible);
        }
        let mut d = Reader { buf: &data, pos: 0 };
        let mut values: Vec<Vec<Vec<f64>>> = Vec::with_capacity(narrays);
        for lens in &shape {
            let mut regions = Vec::with_capacity(lens.len());
            for &len in lens {
                let mut r = Vec::with_capacity(len);
                for _ in 0..len {
                    r.push(f64::from_le_bytes(d.take(8)?.try_into().unwrap()));
                }
                regions.push(r);
            }
            values.push(regions);
        }

        Ok(Checkpoint {
            step,
            clock,
            stats: stats_from_words(&words),
            data: values,
            cache,
            dirty,
        })
    }
}

/// A bounded ring of encoded snapshots, optionally mirrored to disk.
///
/// The store keeps snapshots *encoded* — [`CheckpointStore::latest_valid`]
/// decodes newest-first and skips (counting) anything torn or corrupt, so a
/// failed or tampered latest snapshot transparently falls back to the one
/// before it.
pub struct CheckpointStore {
    policy: CheckpointPolicy,
    /// `(sequence number, encoded blob)`, oldest first.
    ring: VecDeque<(u64, Vec<u8>)>,
    next_seq: u64,
    /// Directory entries the last [`CheckpointStore::scan_dir`] skipped:
    /// foreign files, zero-length snapshots, unreadable entries.
    scan_skipped: u64,
}

impl CheckpointStore {
    pub fn new(policy: CheckpointPolicy) -> Self {
        CheckpointStore {
            policy,
            ring: VecDeque::new(),
            next_seq: 0,
            scan_skipped: 0,
        }
    }

    /// Rebuild a store from the `ck_*.tack` files in a directory (for a
    /// cross-process restart). Blobs are loaded verbatim; validation happens
    /// in [`CheckpointStore::latest_valid`].
    ///
    /// A snapshot directory on a real deployment is never pristine — editor
    /// droppings, half-written temp files from a killed mirror, operator
    /// notes. Anything that is not a well-formed, non-empty `ck_<seq>.tack`
    /// file is skipped and counted ([`CheckpointStore::scan_skipped`])
    /// rather than aborting the rescan: a recovery that has a valid snapshot
    /// on disk must find it regardless of what else accumulated next to it.
    /// Only a missing/unreadable directory itself is an error.
    pub fn scan_dir(policy: CheckpointPolicy, dir: &Path) -> Result<Self, CheckpointError> {
        let mut found: Vec<(u64, PathBuf)> = Vec::new();
        let mut skipped = 0u64;
        let entries = std::fs::read_dir(dir).map_err(|e| CheckpointError::Io(e.to_string()))?;
        for entry in entries {
            let Ok(entry) = entry else {
                skipped += 1;
                continue;
            };
            let name = entry.file_name().to_string_lossy().into_owned();
            match name
                .strip_prefix("ck_")
                .and_then(|s| s.strip_suffix(".tack"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                Some(seq) => found.push((seq, entry.path())),
                // Foreign file (or a `.ck_*.tmp` torn mirror): not ours.
                None => skipped += 1,
            }
        }
        found.sort();
        let mut store = CheckpointStore::new(policy);
        for (seq, path) in found {
            let blob = match std::fs::read(&path) {
                Ok(b) => b,
                Err(_) => {
                    // Vanished or unreadable since the directory listing
                    // (permissions, concurrent pruning): skip it.
                    skipped += 1;
                    continue;
                }
            };
            if blob.is_empty() {
                // A zero-length snapshot carries nothing worth keeping in
                // the ring; it would only burn a `keep` slot and a rejection
                // in `latest_valid`.
                skipped += 1;
                continue;
            }
            store.ring.push_back((seq, blob));
            store.next_seq = store.next_seq.max(seq + 1);
        }
        while store.ring.len() > store.policy.keep.max(1) {
            store.ring.pop_front();
        }
        store.scan_skipped = skipped;
        Ok(store)
    }

    /// How many directory entries the last `scan_dir` skipped (foreign
    /// files, zero-length or unreadable snapshots). 0 for stores that were
    /// not built by a rescan.
    pub fn scan_skipped(&self) -> u64 {
        self.scan_skipped
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Encode and retain a snapshot (dropping the oldest beyond `keep`);
    /// mirror it to disk atomically when a directory is configured.
    pub fn push(&mut self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        let blob = ck.encode();
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(dir) = self.policy.dir.clone() {
            self.write_atomic(&dir, seq, &blob)?;
        }
        self.ring.push_back((seq, blob));
        while self.ring.len() > self.policy.keep.max(1) {
            if let Some((old, _)) = self.ring.pop_front() {
                if let Some(dir) = &self.policy.dir {
                    let _ = std::fs::remove_file(dir.join(format!("ck_{old:08}.tack")));
                }
            }
        }
        Ok(())
    }

    fn write_atomic(&self, dir: &Path, seq: u64, blob: &[u8]) -> Result<(), CheckpointError> {
        std::fs::create_dir_all(dir).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let tmp = dir.join(format!(".ck_{seq:08}.tmp"));
        let fin = dir.join(format!("ck_{seq:08}.tack"));
        std::fs::write(&tmp, blob).map_err(|e| CheckpointError::Io(e.to_string()))?;
        std::fs::rename(&tmp, &fin).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Ok(())
    }

    /// Decode the newest snapshot that passes validation, counting how many
    /// newer ones were rejected as torn/corrupt. `(None, n)` means no valid
    /// snapshot exists at all.
    pub fn latest_valid(&self) -> (Option<Checkpoint>, u64) {
        let mut rejected = 0;
        for (_, blob) in self.ring.iter().rev() {
            match Checkpoint::decode(blob) {
                Ok(ck) => return (Some(ck), rejected),
                Err(_) => rejected += 1,
            }
        }
        (None, rejected)
    }

    /// Flip one bit of the `idx_from_latest`-newest blob (0 = newest) —
    /// corruption injection for tests.
    pub fn tamper(&mut self, idx_from_latest: usize, byte: usize) {
        let n = self.ring.len();
        if let Some((_, blob)) = self.ring.get_mut(n - 1 - idx_from_latest) {
            let i = byte % blob.len();
            blob[i] ^= 0x40;
        }
    }

    /// Truncate the `idx_from_latest`-newest blob to `frac` of its length —
    /// torn-write injection for tests.
    pub fn truncate(&mut self, idx_from_latest: usize, frac: f64) {
        let n = self.ring.len();
        if let Some((_, blob)) = self.ring.get_mut(n - 1 - idx_from_latest) {
            let keep = ((blob.len() as f64) * frac) as usize;
            blob.truncate(keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            step: 42,
            clock: 7,
            stats: AccStats {
                hits: 3,
                loads: 5,
                checkpoints_taken: 1,
                ..AccStats::default()
            },
            data: vec![
                vec![vec![1.0, 2.5, -3.0], vec![]],
                vec![vec![0.125], vec![9.0, 10.0]],
            ],
            cache: vec![-1, -1],
            dirty: vec![false, false],
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let ck = sample();
        let blob = ck.encode();
        let back = Checkpoint::decode(&blob).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut blob = sample().encode();
        blob[0] = b'X';
        assert_eq!(Checkpoint::decode(&blob), Err(CheckpointError::BadMagic));
        let mut blob = sample().encode();
        blob[4] = 9;
        assert_eq!(
            Checkpoint::decode(&blob),
            Err(CheckpointError::UnsupportedVersion(9))
        );
    }

    #[test]
    fn truncation_is_torn() {
        let blob = sample().encode();
        for cut in [3, 10, blob.len() / 2, blob.len() - 1] {
            let e = Checkpoint::decode(&blob[..cut]).unwrap_err();
            assert!(
                matches!(e, CheckpointError::Torn | CheckpointError::BadMagic),
                "cut at {cut} gave {e:?}"
            );
        }
    }

    #[test]
    fn bitflip_is_checksum_mismatch() {
        let blob = sample().encode();
        // Flip a byte inside every section's payload.
        for at in [20, blob.len() / 2, blob.len() - 12] {
            let mut b = blob.clone();
            b[at] ^= 0x01;
            let e = Checkpoint::decode(&b).unwrap_err();
            assert!(
                matches!(e, CheckpointError::ChecksumMismatch | CheckpointError::Torn),
                "flip at {at} gave {e:?}"
            );
        }
    }

    #[test]
    fn store_keeps_ring_and_falls_back_past_corruption() {
        let mut store = CheckpointStore::new(CheckpointPolicy::every(4).keep(3));
        for step in [4, 8, 12, 16] {
            let mut ck = sample();
            ck.step = step;
            store.push(&ck).unwrap();
        }
        assert_eq!(store.len(), 3); // keep=3 dropped step 4
        let (ck, rejected) = store.latest_valid();
        assert_eq!(ck.unwrap().step, 16);
        assert_eq!(rejected, 0);

        store.tamper(0, 40); // corrupt newest
        store.truncate(1, 0.5); // tear the one before it
        let (ck, rejected) = store.latest_valid();
        assert_eq!(ck.unwrap().step, 8);
        assert_eq!(rejected, 2);
    }

    #[test]
    fn scan_dir_skips_and_counts_foreign_and_empty_files() {
        let dir = std::env::temp_dir().join(format!("tack-scan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = CheckpointPolicy::every(1).keep(4).on_disk(&dir);
        let mut store = CheckpointStore::new(policy.clone());
        let mut ck = sample();
        ck.step = 11;
        store.push(&ck).unwrap();

        // Junk a real snapshot directory accumulates: an operator note, a
        // torn temp file from a killed mirror, a zero-length snapshot, and
        // a file with an unparseable sequence number.
        std::fs::write(dir.join("README.txt"), b"ops notes").unwrap();
        std::fs::write(dir.join(".ck_00000009.tmp"), b"torn").unwrap();
        std::fs::write(dir.join("ck_00000099.tack"), b"").unwrap();
        std::fs::write(dir.join("ck_banana.tack"), b"not a seq").unwrap();

        let rescanned = CheckpointStore::scan_dir(policy, &dir).unwrap();
        assert_eq!(rescanned.scan_skipped(), 4, "every junk entry counted");
        assert_eq!(rescanned.len(), 1, "only the real snapshot loaded");
        let (got, rejected) = rescanned.latest_valid();
        assert_eq!(got.unwrap().step, 11);
        assert_eq!(rejected, 0, "junk never reaches the decode path");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_region_data_roundtrips_through_the_codec() {
        let ck = Checkpoint::from_region_data(5, vec![vec![vec![1.5, -2.0], vec![0.0]]]);
        assert_eq!(ck.step, 5);
        assert_eq!(ck.region_data()[0][0], vec![1.5, -2.0]);
        let back = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn disk_mirror_roundtrips_and_prunes() {
        let dir = std::env::temp_dir().join(format!("tack-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = CheckpointPolicy::every(1).keep(2).on_disk(&dir);
        let mut store = CheckpointStore::new(policy.clone());
        for step in [1, 2, 3] {
            let mut ck = sample();
            ck.step = step;
            store.push(&ck).unwrap();
        }
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(files.len(), 2, "pruned to keep=2: {files:?}");

        let store2 = CheckpointStore::scan_dir(policy, &dir).unwrap();
        let (ck, rejected) = store2.latest_valid();
        assert_eq!(ck.unwrap().step, 3);
        assert_eq!(rejected, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
