//! Typed runtime errors.
//!
//! The accelerator runtime distinguishes failures the caller can *degrade*
//! around (a static slot conflict, a dead transfer lane — both handled
//! internally by falling back to the host path) from failures that end the
//! run: a crashed platform, device memory too small for a single region, or
//! a working set that cannot be distributed. The latter surface as
//! [`AccError`] so a supervisor (see [`crate::Supervisor`]) can decide
//! whether to restore a checkpoint or give up.

use std::fmt;

/// A non-degradable runtime failure of [`crate::TileAcc`] / [`crate::MultiAcc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccError {
    /// The simulated platform died (seeded crash fault): in-flight work was
    /// lost and every later submission is refused. Recovery means discarding
    /// this instance and restoring a checkpoint.
    Crashed,
    /// Free device memory cannot hold even one region, so the slot pool
    /// cannot be sized.
    Capacity { free_bytes: u64, region_bytes: u64 },
    /// A device allocation the runtime cannot run without was refused
    /// (distributed working set or cross-device staging on [`crate::MultiAcc`]).
    DeviceAlloc { bytes: u64 },
    /// A transfer failed persistently past the retry budget on a runtime
    /// with no host-fallback path ([`crate::MultiAcc`] keeps every region
    /// device-resident).
    TransferExhausted { region: usize },
    /// Silent data corruption the integrity layer could not repair in place:
    /// the authoritative copy of a field region is gone (dirty device slot
    /// struck, or the host mirror itself poisoned by a bad write-back).
    /// Recovery means restoring a checkpoint taken before the strike.
    Integrity { region: usize, kind: IntegrityKind },
    /// The serving layer's global admission queue is at its depth bound;
    /// the job was shed (overload protection, not a runtime failure).
    QueueFull { tenant: u32 },
    /// The submitting tenant is at its queued-job quota; the job was shed
    /// so one tenant's backlog cannot crowd out the others.
    QuotaExceeded { tenant: u32 },
    /// The job's deadline passed — either before it could be dispatched
    /// (queueing delay under load) or before it finished.
    DeadlineExceeded { tenant: u32, job: u64 },
    /// One device of a multi-device system died (or was quarantined by the
    /// health monitor) and the operation touched it. Unlike [`Crashed`]
    /// the platform survives: recovery means migrating the dead device's
    /// regions onto the survivors and resuming from a checkpoint.
    ///
    /// [`Crashed`]: AccError::Crashed
    DeviceLost { device: usize },
}

/// Where an unrepairable corruption was pinned down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityKind {
    /// A device-resident slot failed digest verification and no valid host
    /// origin existed to retransmit from (the slot was dirty).
    DirtySlot,
    /// The host mirror of a region is poisoned: a corrupted write-back (or
    /// exhausted D2H retransmits) landed bad bytes in the authoritative copy.
    HostMirror,
}

impl fmt::Display for IntegrityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityKind::DirtySlot => write!(f, "dirty device slot"),
            IntegrityKind::HostMirror => write!(f, "host mirror"),
        }
    }
}

impl fmt::Display for AccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccError::Crashed => write!(f, "simulated platform crashed; restore a checkpoint"),
            AccError::Capacity {
                free_bytes,
                region_bytes,
            } => write!(
                f,
                "device memory ({free_bytes} bytes free) cannot hold a single region ({region_bytes} bytes)"
            ),
            AccError::DeviceAlloc { bytes } => {
                write!(f, "required device allocation of {bytes} bytes was refused")
            }
            AccError::TransferExhausted { region } => write!(
                f,
                "persistent transfer fault on region {region} exhausted the retry budget"
            ),
            AccError::Integrity { region, kind } => write!(
                f,
                "unrepairable corruption on region {region} ({kind}); restore a checkpoint"
            ),
            AccError::QueueFull { tenant } => write!(
                f,
                "admission queue full; job from tenant {tenant} was shed"
            ),
            AccError::QuotaExceeded { tenant } => {
                write!(f, "tenant {tenant} is at its queued-job quota")
            }
            AccError::DeadlineExceeded { tenant, job } => {
                write!(f, "job {job} of tenant {tenant} missed its deadline")
            }
            AccError::DeviceLost { device } => write!(
                f,
                "device {device} was lost; migrate its regions to the survivors"
            ),
        }
    }
}

impl std::error::Error for AccError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(AccError::Crashed.to_string().contains("crashed"));
        let e = AccError::Capacity {
            free_bytes: 1024,
            region_bytes: 4096,
        };
        assert!(e.to_string().contains("1024"));
        assert!(e.to_string().contains("4096"));
        assert!(AccError::TransferExhausted { region: 3 }
            .to_string()
            .contains("region 3"));
        let e = AccError::Integrity {
            region: 5,
            kind: IntegrityKind::DirtySlot,
        };
        assert!(e.to_string().contains("region 5"));
        assert!(e.to_string().contains("dirty device slot"));
        assert!(AccError::Integrity {
            region: 0,
            kind: IntegrityKind::HostMirror,
        }
        .to_string()
        .contains("host mirror"));
        assert!(AccError::QueueFull { tenant: 2 }
            .to_string()
            .contains("shed"));
        assert!(AccError::QuotaExceeded { tenant: 1 }
            .to_string()
            .contains("quota"));
        assert!(AccError::DeadlineExceeded { tenant: 0, job: 7 }
            .to_string()
            .contains("deadline"));
        assert!(AccError::DeviceLost { device: 1 }
            .to_string()
            .contains("device 1"));
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(AccError::Crashed);
        assert!(e.source().is_none());
    }
}
