//! The model checker's acceptance criteria: exhaustive enumeration counts,
//! DPOR pruning, bug detection with minimal counterexamples, and
//! schedule-invariance of the full TileAcc heat step program.

use schedcheck::programs::{self, FusedConfig, HeatConfig};
use schedcheck::{CheckSpec, Checker, Fallback, Strategy};

/// Two independent 3-op chains sharing the h2d/compute/d2h engines have
/// exactly C(6,3) = 20 linearizations; exhaustive DFS must visit each one
/// exactly once and declare the walk complete.
#[test]
fn exhaustive_enumerates_ghost_exchange_schedules() {
    let checker = Checker::new(programs::ghost_exchange(), CheckSpec::default());
    let report = checker.explore(Strategy::Exhaustive {
        max_schedules: 1000,
    });
    assert!(report.complete, "budget must not be the reason we stopped");
    assert!(
        report.failure.is_none(),
        "all schedules agree on this program"
    );
    assert_eq!(
        report.schedules, 20,
        "C(6,3) linearizations of two independent 3-chains"
    );
    assert!(report.max_decision_points >= 3);
}

/// Sleep-set DPOR prunes commuting pairs: it must visit strictly fewer
/// schedules than exhaustive DFS on the same program while reaching the
/// same verdict. The floor of 8 is the per-engine admission orders that
/// genuinely matter (2 orders on each of the three shared engines).
#[test]
fn dpor_prunes_but_agrees_with_exhaustive() {
    let dfs = Checker::new(programs::ghost_exchange(), CheckSpec::default()).explore(
        Strategy::Exhaustive {
            max_schedules: 1000,
        },
    );
    let dpor =
        Checker::new(programs::ghost_exchange(), CheckSpec::default()).explore(Strategy::Dpor {
            max_schedules: 1000,
        });
    assert!(dpor.complete);
    assert!(dpor.failure.is_none());
    assert!(
        dpor.schedules < dfs.schedules,
        "DPOR {} must beat DFS {}",
        dpor.schedules,
        dfs.schedules
    );
    assert!(
        dpor.schedules >= 8,
        "cannot prune below the dependent-pair orders: {}",
        dpor.schedules
    );
}

/// The correct (event-synchronised) producer/consumer program passes under
/// every schedule.
#[test]
fn synchronised_ghost_passes_everywhere() {
    let checker = Checker::new(programs::racy_ghost(false), CheckSpec::default());
    let report = checker.explore(Strategy::Dpor {
        max_schedules: 2000,
    });
    assert!(report.complete);
    assert!(
        report.failure.is_none(),
        "{:?}",
        report.failure.map(|f| f.render())
    );
}

/// Dropping the event dependency leaves a latent race: FIFO still orders
/// the upload before the consumer kernel (so the bug ships green), but the
/// explorer finds a schedule that reads stale device memory, and shrinks
/// it to a minimal replayable counterexample.
#[test]
fn seeded_ordering_bug_is_caught_and_shrunk() {
    // The hazard tracker flags the missing dependency statically at enqueue
    // on *every* schedule (defense in depth) — disable that layer so this
    // test proves the dynamic result-divergence path catches it too.
    let spec = CheckSpec {
        check_hazards: false,
        ..CheckSpec::default()
    };
    let checker = Checker::new(programs::racy_ghost(true), spec);

    // Static layer sanity: even the passing FIFO schedule is flagged.
    let fifo = checker.run(&[], Fallback::Fifo);
    assert!(
        fifo.hazards > 0,
        "hazard tracker must flag the dropped dependency"
    );

    let report = checker.explore(Strategy::Exhaustive {
        max_schedules: 2000,
    });
    let failure = report.failure.expect("the race must be found");
    assert!(
        failure.reason.contains("digest"),
        "caught by result divergence: {}",
        failure.reason
    );

    // Minimality: the shrunk counterexample is a short forced vector over a
    // small program — at most 10 executed ops in the replayed trace.
    assert!(
        failure.trace.spans.len() <= 10,
        "counterexample must stay minimal: {} spans",
        failure.trace.spans.len()
    );
    assert!(!failure.forced.is_empty());

    // Replayability: the forced vector alone reproduces the violation.
    let replay = checker.run(&failure.forced, Fallback::Fifo);
    assert_ne!(replay.digest, fifo.digest, "replay must still diverge");

    // And the render carries the pieces a human needs.
    let rendered = failure.render();
    assert!(rendered.contains("replay forced vector"));
    assert!(rendered.contains("interleaving:"));

    // DPOR soundness: the racing pair conflicts on the shared buffer, so
    // pruning must not hide the bug.
    let spec = CheckSpec {
        check_hazards: false,
        ..CheckSpec::default()
    };
    let dpor = Checker::new(programs::racy_ghost(true), spec).explore(Strategy::Dpor {
        max_schedules: 2000,
    });
    assert!(
        dpor.failure.is_some(),
        "DPOR must still reach the racy schedule"
    );
}

/// The tentpole invariant: the full out-of-core heat step program (double
/// buffering, ReuseDistance eviction, lookahead-2 prefetch, ghost
/// exchange) is schedule-invariant — every DPOR-explored interleaving
/// produces the analytic golden field bit-identically with zero real
/// hazards, zero integrity findings, and conserved accelerator counters.
#[test]
fn heat_prefetch_schedules_are_invariant_under_dpor() {
    let cfg = HeatConfig::default();
    let checker = Checker::new(programs::heat_overlap(cfg), CheckSpec::default());

    // The FIFO golden run itself must match the analytic solution.
    let fifo = checker.run(&[], Fallback::Fifo);
    assert_eq!(
        fifo.result,
        programs::heat_golden(&cfg),
        "golden run vs analytic field"
    );
    assert_eq!(fifo.hazards, 0);
    let stats = fifo.stats.as_ref().unwrap();
    assert!(
        stats.prefetch_loads > 0,
        "lookahead-2 must actually prefetch"
    );

    let report = checker.explore(Strategy::Dpor { max_schedules: 40 });
    assert!(
        report.failure.is_none(),
        "schedule-dependent behaviour in heat step:\n{}",
        report.failure.map(|f| f.render()).unwrap_or_default()
    );
    assert!(
        report.schedules >= 10,
        "the walk must actually explore: {}",
        report.schedules
    );
    assert!(
        report.max_decision_points > 0,
        "the program must expose choice points"
    );
}

/// Random-walk tier: transient transfer faults add retry timing as extra
/// choice points; results must stay golden on every sampled schedule.
#[test]
fn heat_with_transient_faults_survives_random_walks() {
    let cfg = HeatConfig {
        transient_rate: 0.25,
        ..HeatConfig::default()
    };
    let checker = Checker::new(programs::heat_overlap(cfg), CheckSpec::default());
    let report = checker.explore(Strategy::RandomWalk {
        seed: 0xC0FFEE,
        budget: 10,
    });
    assert!(
        report.failure.is_none(),
        "faulty-machine schedule divergence:\n{}",
        report.failure.map(|f| f.render()).unwrap_or_default()
    );
    let fifo = checker.run(&[], Fallback::Fifo);
    assert_eq!(fifo.result, programs::heat_golden(&cfg));
}

/// Checkpoint/restore *between* a step's prefetch issue and its kernels,
/// replayed under random schedules: still bit-identical, and prefetch
/// accounting does not double-count across the restore.
#[test]
fn mid_step_restore_is_schedule_invariant() {
    let cfg = HeatConfig {
        restore_mid_step: Some(3),
        ..HeatConfig::default()
    };
    let checker = Checker::new(programs::heat_overlap(cfg), CheckSpec::default());

    let fifo = checker.run(&[], Fallback::Fifo);
    assert_eq!(
        fifo.result,
        programs::heat_golden(&cfg),
        "restore must not change results"
    );
    let stats = fifo.stats.as_ref().unwrap();
    assert_eq!(stats.checkpoints_restored, 1);
    assert!(stats.prefetch_hits <= stats.prefetch_loads);

    // No double counting: the restored run must not issue more prefetch
    // loads than the same program without the mid-step restore plus one
    // step's worth (the replayed step re-learns its plan from scratch).
    let straight = Checker::new(
        programs::heat_overlap(HeatConfig::default()),
        CheckSpec::default(),
    )
    .run(&[], Fallback::Fifo);
    let sstats = straight.stats.as_ref().unwrap();
    assert!(
        stats.prefetch_loads <= sstats.prefetch_loads,
        "restore resets the planner; it must not inflate prefetch_loads ({} vs {})",
        stats.prefetch_loads,
        sstats.prefetch_loads
    );

    let report = checker.explore(Strategy::RandomWalk {
        seed: 0xBADD_CAFE,
        budget: 8,
    });
    assert!(
        report.failure.is_none(),
        "mid-flight restore schedule divergence:\n{}",
        report.failure.map(|f| f.render()).unwrap_or_default()
    );
}

/// The fused (temporal-blocking) step program at every supported depth:
/// FIFO must reproduce the analytic golden field bit-for-bit, with the
/// fused-launch counters conserved, and DPOR must find every sampled
/// interleaving schedule-invariant.
#[test]
fn fused_steps_are_schedule_invariant_at_every_depth() {
    for depth in [1usize, 2, 4, 8] {
        let cfg = FusedConfig {
            depth,
            steps: 8,
            ..FusedConfig::default()
        };
        let checker = Checker::new(programs::heat_fused(cfg), CheckSpec::default());

        let fifo = checker.run(&[], Fallback::Fifo);
        assert_eq!(
            fifo.result,
            programs::fused_golden(&cfg),
            "fused golden run vs analytic field at depth {depth}"
        );
        assert_eq!(fifo.hazards, 0, "depth {depth}");
        let stats = fifo.stats.as_ref().unwrap();
        if depth >= 2 {
            assert_eq!(
                stats.fused_substeps,
                stats.kernels_fused * depth as u64,
                "fused launch accounting at depth {depth}"
            );
        }

        let report = checker.explore(Strategy::Dpor { max_schedules: 10 });
        assert!(
            report.failure.is_none(),
            "schedule-dependent behaviour in fused step at depth {depth}:\n{}",
            report.failure.map(|f| f.render()).unwrap_or_default()
        );
    }
}

/// Cluster tentpole, part 1 — the network is just another engine: on the
/// two-node ghost-exchange skeleton (3 regions, owners [0,0,1], empty
/// interiors) the op partial order collapses to one chain per node — 9
/// ops on node 0, 8 on node 1, coupled only through message send/arrival
/// edges that FIFO admission cannot reorder — so exhaustive DFS must
/// enumerate exactly C(17,8) = 24310 global linearizations and declare
/// the walk complete, with every one of them agreeing with the FIFO
/// golden (zero hazards, zero integrity findings, identical digest).
#[test]
fn exhaustive_enumerates_cluster_ghost_schedules() {
    let checker = Checker::new(programs::cluster_ghost(), CheckSpec::default());
    let fifo = checker.run(&[], Fallback::Fifo);
    assert_eq!(fifo.hazards, 0, "exchange protocol must be HB-clean");
    assert_eq!(fifo.integrity_detected, 0);

    let report = checker.explore(Strategy::Exhaustive {
        max_schedules: 30_000,
    });
    assert!(report.complete, "budget must not be the reason we stopped");
    assert!(
        report.failure.is_none(),
        "network interleaving divergence:\n{}",
        report.failure.map(|f| f.render()).unwrap_or_default()
    );
    assert_eq!(
        report.schedules, 24_310,
        "C(17,8) interleavings of the two per-node op chains"
    );
    assert!(report.max_decision_points >= 8);
}

/// Cluster tentpole, part 2 — DPOR sees that almost all of those 24310
/// interleavings commute (ops on different nodes touch disjoint memory
/// unless a message edge orders them) and prunes to a tiny fraction,
/// while reaching the same all-green verdict.
#[test]
fn cluster_dpor_prunes_message_orders_but_agrees() {
    let report = Checker::new(programs::cluster_ghost(), CheckSpec::default()).explore(
        Strategy::Dpor {
            max_schedules: 30_000,
        },
    );
    assert!(report.complete);
    assert!(
        report.failure.is_none(),
        "{:?}",
        report.failure.map(|f| f.render())
    );
    assert!(
        report.schedules < 24_310,
        "DPOR must beat the exhaustive count: {}",
        report.schedules
    );
    assert!(
        report.schedules >= 2,
        "message send/arrival pairs are dependent; some orders must remain: {}",
        report.schedules
    );
}

/// The full multi-step cluster heat program (periodic 8³, 4 regions over
/// 2 nodes, five-phase exchange each step) is schedule-invariant: every
/// DPOR-explored interleaving of stream ops *and* network deliveries
/// reproduces the analytic golden field bit-identically with zero
/// hazards.
#[test]
fn cluster_heat_schedules_are_invariant_under_dpor() {
    let cfg = programs::ClusterHeatConfig::default();
    let checker = Checker::new(programs::cluster_heat(cfg), CheckSpec::default());

    let fifo = checker.run(&[], Fallback::Fifo);
    assert_eq!(
        fifo.result,
        programs::cluster_heat_golden(&cfg),
        "golden run vs analytic field"
    );
    assert_eq!(fifo.hazards, 0);
    assert_eq!(fifo.integrity_detected, 0);

    let report = checker.explore(Strategy::Dpor { max_schedules: 25 });
    assert!(
        report.failure.is_none(),
        "schedule-dependent behaviour in cluster heat:\n{}",
        report.failure.map(|f| f.render()).unwrap_or_default()
    );
    assert!(
        report.schedules >= 5,
        "the walk must actually explore: {}",
        report.schedules
    );
    assert!(report.max_decision_points > 0);
}

/// Random-walk tier over a lossy fabric: link drops shift deliveries by
/// retransmit timeouts, adding timing-only choice points; the results
/// must stay bit-identical to the clean-fabric golden on every sampled
/// schedule.
#[test]
fn cluster_heat_with_link_drops_survives_random_walks() {
    let cfg = programs::ClusterHeatConfig {
        drop_rate: 0.3,
        ..programs::ClusterHeatConfig::default()
    };
    let checker = Checker::new(programs::cluster_heat(cfg), CheckSpec::default());
    let fifo = checker.run(&[], Fallback::Fifo);
    assert_eq!(
        fifo.result,
        programs::cluster_heat_golden(&cfg),
        "drops may delay ghosts but never change them"
    );
    let report = checker.explore(Strategy::RandomWalk {
        seed: 0xD0_5EED,
        budget: 8,
    });
    assert!(
        report.failure.is_none(),
        "lossy-fabric schedule divergence:\n{}",
        report.failure.map(|f| f.render()).unwrap_or_default()
    );
}
