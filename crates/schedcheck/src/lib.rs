//! `schedcheck` — schedule-space model checking for the TiDA-acc stack.
//!
//! The desim list scheduler normally admits runnable ops in FIFO
//! (ready-time, submission-order) order. That is *one* legal schedule out
//! of many: any linearization of the dependency DAG that respects engine
//! FIFO semantics is a behaviour real hardware could exhibit. This crate
//! explores that space:
//!
//! - [`ControlOracle`] plugs into [`desim::ScheduleOracle`] and lets the
//!   explorer dictate (and log) every admission decision where more than
//!   one op is runnable;
//! - [`Checker::explore`] walks the choice tree — exhaustively
//!   ([`Strategy::Exhaustive`]), with sleep-set partial-order reduction
//!   ([`Strategy::Dpor`], pruning commuting candidate pairs using engine
//!   identity and declared resource footprints), or by seeded random walk
//!   ([`Strategy::RandomWalk`]) when the space is too large;
//! - every explored schedule is checked against the FIFO golden run:
//!   bit-identical results, zero hazard/integrity findings, and
//!   [`stats_violation`] conservation invariants over accelerator
//!   counters;
//! - a failing schedule is delta-debugged down to a minimal forced-choice
//!   vector and rendered as a replayable counterexample
//!   ([`Failure::render`]).
//!
//! [`programs`] packages the standard subjects: raw ghost-exchange stream
//! programs, a deliberately racy variant for validating the checker
//! itself, and the full out-of-core heat step program (prefetch +
//! eviction + optional faults and mid-flight checkpoint/restore).

mod control;
mod explore;
pub mod programs;

pub use control::{ControlOracle, Decision, Fallback, OpSig, XorShift};
pub use explore::{
    fnv_digest, stats_violation, CheckSpec, Checker, Failure, Program, Report, RunOutcome, Strategy,
};
