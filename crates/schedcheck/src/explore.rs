//! The explorer: stateless model checking over oracle choice sequences.
//!
//! A *program* is a closure that builds a fresh simulated system, installs
//! the supplied [`ControlOracle`], runs to completion, and reports a
//! [`RunOutcome`]. The explorer replays the program many times; each replay
//! is identified entirely by the forced choice prefix handed to the oracle
//! (plus its fallback policy), so any run — including a failing one — is
//! replayable from its decision vector alone.

use std::cell::RefCell;
use std::rc::Rc;

use desim::{SimTime, Trace};
use tida_acc::AccStats;

use crate::control::{ControlOracle, Decision, Fallback, OpSig, XorShift};

/// Everything the checker needs from one completed run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Final host-visible payload (dense field contents, concatenated).
    pub result: Vec<f64>,
    /// FNV-1a digest of `result`; bit-identity is compared on this.
    pub digest: u64,
    /// Total findings from the vector-clock hazard tracker.
    pub hazards: u64,
    /// Detected-corruption count from the transfer integrity book.
    pub integrity_detected: u64,
    /// Accelerator counters, when the program runs through TileAcc/MultiAcc.
    pub stats: Option<AccStats>,
    /// Recorded span trace (programs must enable tracing).
    pub trace: Trace,
    /// The oracle decision log: full candidate sets + chosen indices.
    pub decisions: Vec<Decision>,
    pub makespan: SimTime,
}

/// FNV-1a over the raw f64 bits: cheap, deterministic, order-sensitive.
pub fn fnv_digest(data: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in data {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// A schedule-controllable program under test.
pub type Program = Box<dyn Fn(Rc<RefCell<ControlOracle>>) -> RunOutcome>;

/// Which observables must be schedule-invariant.
#[derive(Debug, Clone)]
pub struct CheckSpec {
    /// Final payload must be bit-identical to the golden (FIFO) run.
    pub check_digest: bool,
    /// Vector-clock hazard findings must be zero on every schedule.
    pub check_hazards: bool,
    /// Integrity book must detect zero corruptions on every schedule.
    pub check_integrity: bool,
    /// AccStats conservation invariants must hold (see [`stats_violation`]).
    pub check_stats: bool,
}

impl Default for CheckSpec {
    fn default() -> Self {
        CheckSpec {
            check_digest: true,
            check_hazards: true,
            check_integrity: true,
            check_stats: true,
        }
    }
}

/// Exploration strategy.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Depth-first enumeration of every choice sequence. Only viable for
    /// small programs; `max_schedules` bounds the walk (`complete` reports
    /// whether the bound was hit).
    Exhaustive { max_schedules: u64 },
    /// Same DFS skeleton, pruned with sleep sets: a candidate already tried
    /// at an ancestor decision point is skipped here when it is independent
    /// of every op chosen since (persistent/sleep-set DPOR).
    Dpor { max_schedules: u64 },
    /// Seeded random walks — the fallback tier for programs whose schedule
    /// space is too large to enumerate.
    RandomWalk { seed: u64, budget: u64 },
}

/// A schedule that violated the spec, shrunk and replayable.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Forced choice vector that reproduces the violation.
    pub forced: Vec<usize>,
    pub reason: String,
    /// Decision log of the failing run.
    pub decisions: Vec<Decision>,
    /// Span trace of the failing run.
    pub trace: Trace,
}

impl Failure {
    /// Human-readable counterexample: reason, the replay vector, the
    /// consulted decision points and the resulting engine timeline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("schedule violation: {}\n", self.reason));
        out.push_str(&format!("replay forced vector: {:?}\n", self.forced));
        for (i, d) in self.decisions.iter().enumerate() {
            let cands: Vec<String> = d
                .candidates
                .iter()
                .map(|c| {
                    format!(
                        "{}(op{})",
                        if c.label.is_empty() {
                            &c.category
                        } else {
                            &c.label
                        },
                        c.op
                    )
                })
                .collect();
            out.push_str(&format!(
                "  decision {i}: chose {} of [{}]\n",
                d.chosen,
                cands.join(", ")
            ));
        }
        out.push_str("interleaving:\n");
        out.push_str(&self.trace.render_gantt(80));
        out.push('\n');
        for s in &self.trace.spans {
            out.push_str(&format!(
                "  {:>8}..{:<8} {} [{}]\n",
                s.start.as_ns(),
                s.end.as_ns(),
                s.label,
                self.trace
                    .engine_names
                    .get(s.engine)
                    .map(String::as_str)
                    .unwrap_or("?")
            ));
        }
        out
    }
}

/// Result of one exploration.
#[derive(Debug)]
pub struct Report {
    /// Schedules actually executed (including the golden run).
    pub schedules: u64,
    /// True when the strategy finished without hitting its budget
    /// (random walk never claims completeness).
    pub complete: bool,
    /// Most decision points consulted in any single run.
    pub max_decision_points: usize,
    pub failure: Option<Failure>,
}

/// A program plus the invariants its schedules must satisfy.
pub struct Checker {
    program: Program,
    spec: CheckSpec,
}

impl Checker {
    pub fn new(program: Program, spec: CheckSpec) -> Self {
        Checker { program, spec }
    }

    /// Run the program once under the given oracle configuration.
    pub fn run(&self, forced: &[usize], fallback: Fallback) -> RunOutcome {
        self.run_with_sleep(forced, fallback, Vec::new())
    }

    fn run_with_sleep(
        &self,
        forced: &[usize],
        fallback: Fallback,
        sleep: Vec<OpSig>,
    ) -> RunOutcome {
        let oracle = Rc::new(RefCell::new(ControlOracle::with_sleep(
            forced.to_vec(),
            fallback,
            sleep,
        )));
        let mut out = (self.program)(Rc::clone(&oracle));
        out.decisions = oracle.borrow().log.clone();
        out
    }

    /// Compare a run against the golden outcome; `Some(reason)` on violation.
    fn violation(&self, golden: &RunOutcome, out: &RunOutcome) -> Option<String> {
        if self.spec.check_digest && out.digest != golden.digest {
            return Some(format!(
                "result diverged: digest {:#018x} != golden {:#018x}",
                out.digest, golden.digest
            ));
        }
        if self.spec.check_hazards && out.hazards != 0 {
            return Some(format!(
                "hazard tracker reported {} finding(s)",
                out.hazards
            ));
        }
        if self.spec.check_integrity && out.integrity_detected != 0 {
            return Some(format!(
                "integrity book detected {} corrupted transfer(s)",
                out.integrity_detected
            ));
        }
        if self.spec.check_stats {
            if let (Some(g), Some(s)) = (&golden.stats, &out.stats) {
                if let Some(r) = stats_violation(g, s) {
                    return Some(r);
                }
            }
        }
        None
    }

    /// Explore the schedule space with the given strategy.
    pub fn explore(&self, strategy: Strategy) -> Report {
        match strategy {
            Strategy::Exhaustive { max_schedules } => self.dfs(max_schedules, false),
            Strategy::Dpor { max_schedules } => self.dfs(max_schedules, true),
            Strategy::RandomWalk { seed, budget } => self.random_walk(seed, budget),
        }
    }

    fn fail(&self, golden: &RunOutcome, forced: Vec<usize>, reason: String) -> Failure {
        self.shrink(golden, forced, reason)
    }

    /// DFS over choice sequences. Each tree node is one consulted decision
    /// point on the current path; `forced = currents` replays the path and
    /// the FIFO fallback extends it deterministically to a leaf.
    fn dfs(&self, max_schedules: u64, dpor: bool) -> Report {
        struct Node {
            cands: Vec<OpSig>,
            current: usize,
            tried: Vec<bool>,
            /// Sleep set on entry: ops proven covered by sibling subtrees.
            sleep_entry: Vec<OpSig>,
        }

        let mut path: Vec<Node> = Vec::new();
        let mut schedules: u64 = 0;
        let mut max_decision_points = 0;
        let mut golden: Option<RunOutcome> = None;
        let mut complete = true;

        // Sleep set a child node inherits from `p`: every op proven covered
        // by an already-explored sibling subtree of `p`'s current choice.
        fn child_sleep(p: &Node) -> Vec<OpSig> {
            let pivot = &p.cands[p.current];
            p.sleep_entry
                .iter()
                .chain(
                    p.cands
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| p.tried[*i] && *i != p.current)
                        .map(|(_, c)| c),
                )
                .filter(|s| s.op != pivot.op && s.independent(pivot))
                .cloned()
                .collect()
        }

        loop {
            if schedules >= max_schedules {
                complete = false;
                break;
            }
            let forced: Vec<usize> = path.iter().map(|n| n.current).collect();
            // Sleep set at the first fallback decision; the oracle carries
            // it along the FIFO tail so redundant subtrees are never entered.
            let tail_sleep: Vec<OpSig> = if dpor {
                path.last().map(child_sleep).unwrap_or_default()
            } else {
                Vec::new()
            };
            let out = self.run_with_sleep(&forced, Fallback::Fifo, tail_sleep.clone());
            schedules += 1;
            max_decision_points = max_decision_points.max(out.decisions.len());

            match &golden {
                None => golden = Some(out.clone()),
                Some(g) => {
                    if let Some(reason) = self.violation(g, &out) {
                        let forced_full: Vec<usize> =
                            out.decisions.iter().map(|d| d.chosen).collect();
                        return Report {
                            schedules,
                            complete: false,
                            max_decision_points,
                            failure: Some(self.fail(g, forced_full, reason)),
                        };
                    }
                }
            }

            // Materialise the decision points this run exposed beyond the
            // already-known path, propagating the tail sleep set exactly as
            // the oracle did.
            let mut sleep_cur = tail_sleep;
            for d in out.decisions.iter().skip(path.len()) {
                let sleep_entry = sleep_cur.clone();
                if dpor {
                    let sig = &d.candidates[d.chosen];
                    sleep_cur.retain(|s| s.op != sig.op && s.independent(sig));
                }
                let n = d.candidates.len();
                let mut tried = vec![false; n];
                tried[d.chosen] = true;
                path.push(Node {
                    cands: d.candidates.clone(),
                    current: d.chosen,
                    tried,
                    sleep_entry,
                });
            }

            // Backtrack: advance the deepest node with an untried,
            // non-sleeping alternative.
            let advanced = loop {
                let Some(node) = path.last_mut() else {
                    break false;
                };
                let next = node.tried.iter().enumerate().position(|(i, &t)| {
                    let asleep = dpor && node.sleep_entry.iter().any(|s| s.op == node.cands[i].op);
                    !t && !asleep
                });
                match next {
                    Some(i) => {
                        node.tried[i] = true;
                        node.current = i;
                        break true;
                    }
                    None => {
                        path.pop();
                    }
                }
            };
            if !advanced {
                break;
            }
        }

        Report {
            schedules,
            complete,
            max_decision_points,
            failure: None,
        }
    }

    fn random_walk(&self, seed: u64, budget: u64) -> Report {
        let golden = self.run(&[], Fallback::Fifo);
        let mut schedules = 1;
        let mut max_decision_points = golden.decisions.len();
        for k in 0..budget {
            let walk_seed = seed
                .wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .max(1);
            let out = self.run(&[], Fallback::Random(XorShift::new(walk_seed)));
            schedules += 1;
            max_decision_points = max_decision_points.max(out.decisions.len());
            if let Some(reason) = self.violation(&golden, &out) {
                let forced: Vec<usize> = out.decisions.iter().map(|d| d.chosen).collect();
                return Report {
                    schedules,
                    complete: false,
                    max_decision_points,
                    failure: Some(self.fail(&golden, forced, reason)),
                };
            }
        }
        Report {
            schedules,
            complete: false,
            max_decision_points,
            failure: None,
        }
    }

    /// Greedy delta-debugging of a failing forced vector: zero out choices
    /// from the tail forward while the violation persists, then drop the
    /// all-FIFO tail. The shrunk vector is re-run to produce the final
    /// (still-failing) counterexample.
    fn shrink(&self, golden: &RunOutcome, mut forced: Vec<usize>, reason: String) -> Failure {
        loop {
            let mut changed = false;
            for i in (0..forced.len()).rev() {
                if forced[i] == 0 {
                    continue;
                }
                let saved = forced[i];
                forced[i] = 0;
                let out = self.run(&forced, Fallback::Fifo);
                if self.violation(golden, &out).is_some() {
                    changed = true;
                } else {
                    forced[i] = saved;
                }
            }
            if !changed {
                break;
            }
        }
        while forced.last() == Some(&0) {
            forced.pop();
        }
        let out = self.run(&forced, Fallback::Fifo);
        let reason = self.violation(golden, &out).unwrap_or(reason);
        Failure {
            forced,
            reason,
            decisions: out.decisions.clone(),
            trace: out.trace.clone(),
        }
    }
}

/// Conservation invariants over accelerator counters that no legal schedule
/// may break, given a fixed host-side access sequence:
///
/// - total tile acquisitions (`hits + prefetch_hits + loads + write_allocs`)
///   is schedule-invariant;
/// - a prefetch hit requires a prior prefetch load (`prefetch_hits <=
///   prefetch_loads`);
/// - every kernel runs exactly once somewhere (`kernels_gpu + kernels_host`
///   conserved).
pub fn stats_violation(golden: &AccStats, s: &AccStats) -> Option<String> {
    let acq = |st: &AccStats| st.hits + st.prefetch_hits + st.loads + st.write_allocs;
    if acq(s) != acq(golden) {
        return Some(format!(
            "acquisition conservation broken: hits {} + prefetch_hits {} + loads {} + write_allocs {} != golden total {}",
            s.hits, s.prefetch_hits, s.loads, s.write_allocs, acq(golden)
        ));
    }
    if s.prefetch_hits > s.prefetch_loads {
        return Some(format!(
            "prefetch_hits {} exceeds prefetch_loads {}",
            s.prefetch_hits, s.prefetch_loads
        ));
    }
    let kernels = |st: &AccStats| st.kernels_gpu + st.kernels_host;
    if kernels(s) != kernels(golden) {
        return Some(format!(
            "kernel conservation broken: gpu {} + host {} != golden total {}",
            s.kernels_gpu,
            s.kernels_host,
            kernels(golden)
        ));
    }
    None
}
