//! The controllable [`ScheduleOracle`]: forced decision prefixes, FIFO or
//! seeded-random fallback, and a full decision log for replay/shrinking.

use desim::{Candidate, ScheduleOracle};

/// xorshift64* — tiny deterministic PRNG so the random-walk tier needs no
/// external crate.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    pub fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish draw in `0..n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// What the oracle does once the forced prefix is exhausted.
#[derive(Debug, Clone)]
pub enum Fallback {
    /// Pick index 0: candidates are sorted (ready, submission), so this is
    /// exactly the deterministic FIFO schedule.
    Fifo,
    /// Seeded random walk over the remaining decision points.
    Random(XorShift),
}

/// Schedule-relevant identity of one runnable op, captured at a decision
/// point. `op` is the scheduler's submission index, which is stable across
/// replays of the same program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSig {
    pub op: usize,
    pub engine: Option<usize>,
    pub label: String,
    pub category: String,
    pub footprint: Vec<(u64, bool)>,
}

impl OpSig {
    fn from_candidate(c: &Candidate<'_>) -> Self {
        OpSig {
            op: c.op.0,
            engine: c.engine.map(|e| e.0),
            label: c.label.to_string(),
            category: c.category.to_string(),
            footprint: c.footprint.to_vec(),
        }
    }

    /// Conservative independence test for DPOR: two ops commute iff swapping
    /// their admission order cannot change any observable outcome.
    ///
    /// - Same engine: dependent. Admission order is service order on a
    ///   capacity-k FIFO engine, so start/end times shift — observable via
    ///   `stream_query` in an adaptive host program.
    /// - Overlapping footprint with a write on either side: dependent (the
    ///   data effects need not commute).
    /// - Otherwise independent: ops on different engines get identical
    ///   start/end times in either admission order, and disjoint (or
    ///   read-only shared) footprints make the effects commute.
    pub fn independent(&self, other: &OpSig) -> bool {
        if let (Some(a), Some(b)) = (self.engine, other.engine) {
            if a == b {
                return false;
            }
        }
        for &(ra, wa) in &self.footprint {
            for &(rb, wb) in &other.footprint {
                if ra == rb && (wa || wb) {
                    return false;
                }
            }
        }
        true
    }
}

/// One consulted decision point: the sorted candidate set and which index
/// was chosen.
#[derive(Debug, Clone)]
pub struct Decision {
    pub chosen: usize,
    pub candidates: Vec<OpSig>,
}

/// A [`ScheduleOracle`] driven by the explorer: decision `i` follows
/// `forced[i]` when present (clamped to the candidate count, so stale forced
/// prefixes from a shrinking pass stay in range), then the fallback policy.
/// Every consulted decision is logged for replay.
#[derive(Debug)]
pub struct ControlOracle {
    forced: Vec<usize>,
    fallback: Fallback,
    /// DPOR sleep set, seeded by the explorer for the first fallback
    /// decision and propagated along the tail: a sleeping op is covered by
    /// an already-explored sibling subtree, so the fallback avoids it.
    sleep: Vec<OpSig>,
    pub log: Vec<Decision>,
}

impl ControlOracle {
    pub fn new(forced: Vec<usize>, fallback: Fallback) -> Self {
        Self::with_sleep(forced, fallback, Vec::new())
    }

    pub fn with_sleep(forced: Vec<usize>, fallback: Fallback, sleep: Vec<OpSig>) -> Self {
        ControlOracle {
            forced,
            fallback,
            sleep,
            log: Vec::new(),
        }
    }
}

impl ScheduleOracle for ControlOracle {
    fn choose(&mut self, candidates: &[Candidate<'_>]) -> usize {
        let i = self.log.len();
        let in_tail = self.forced.get(i).is_none();
        let chosen = match self.forced.get(i) {
            Some(&c) => c.min(candidates.len() - 1),
            None => match &mut self.fallback {
                Fallback::Fifo => {
                    // Prefer the lowest-index (FIFO) candidate that is not
                    // asleep; if all sleep, FIFO is sound (just redundant).
                    candidates
                        .iter()
                        .position(|c| !self.sleep.iter().any(|s| s.op == c.op.0))
                        .unwrap_or(0)
                }
                Fallback::Random(rng) => rng.below(candidates.len()),
            },
        };
        if in_tail && !self.sleep.is_empty() {
            // Propagate: drop the executed op and everything dependent on it.
            let sig = OpSig::from_candidate(&candidates[chosen]);
            self.sleep.retain(|s| s.op != sig.op && s.independent(&sig));
        }
        self.log.push(Decision {
            chosen,
            candidates: candidates.iter().map(OpSig::from_candidate).collect(),
        });
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(op: usize, engine: Option<usize>, fp: &[(u64, bool)]) -> OpSig {
        OpSig {
            op,
            engine,
            label: String::new(),
            category: String::new(),
            footprint: fp.to_vec(),
        }
    }

    #[test]
    fn same_engine_is_dependent() {
        let a = sig(0, Some(2), &[]);
        let b = sig(1, Some(2), &[]);
        assert!(!a.independent(&b));
    }

    #[test]
    fn different_engines_disjoint_footprints_commute() {
        let a = sig(0, Some(0), &[(1, true)]);
        let b = sig(1, Some(1), &[(2, true)]);
        assert!(a.independent(&b));
        assert!(b.independent(&a));
    }

    #[test]
    fn write_read_conflict_is_dependent() {
        let a = sig(0, Some(0), &[(7, true)]);
        let b = sig(1, Some(1), &[(7, false)]);
        assert!(!a.independent(&b));
        assert!(!b.independent(&a));
    }

    #[test]
    fn shared_reads_commute() {
        let a = sig(0, Some(0), &[(7, false)]);
        let b = sig(1, Some(1), &[(7, false)]);
        assert!(a.independent(&b));
    }

    #[test]
    fn markers_without_conflicts_commute() {
        let a = sig(0, None, &[]);
        let b = sig(1, None, &[]);
        assert!(a.independent(&b));
    }

    #[test]
    fn xorshift_below_is_in_range_and_deterministic() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            let x = a.below(7);
            assert_eq!(x, b.below(7));
            assert!(x < 7);
        }
    }
}
