//! Schedule-controllable programs under test: raw stream programs at the
//! `gpu-sim` level and full TileAcc step programs, each packaged as a
//! [`Program`] closure the explorer can replay under any oracle.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use cluster::{Cluster, ClusterConfig};
use desim::ScheduleOracle;
use gpu_sim::{FaultPlan, GpuSystem, HostMemKind, KernelLaunch, MachineConfig};
use kernels::{heat, init};
use tida::{tiles_of, Box3, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, SlotPolicy, TileAcc};

use crate::control::ControlOracle;
use crate::explore::{fnv_digest, Program, RunOutcome};

fn install(gpu: &mut GpuSystem, oracle: Rc<RefCell<ControlOracle>>) {
    gpu.set_schedule_oracle(Some(oracle as Rc<RefCell<dyn ScheduleOracle>>));
}

/// Two independent ghost-exchange pipelines: per stream, H2D a halo slab,
/// run a kernel over it, D2H the result. Six ops, two three-op chains with
/// disjoint buffers — the canonical small program for exhaustive
/// enumeration (C(6,3) = 20 linearizations).
pub fn ghost_exchange() -> Program {
    Box::new(|oracle| {
        const LEN: usize = 64;
        let mut gpu = GpuSystem::new(MachineConfig::k40m());
        gpu.set_tracing(true);
        gpu.set_hazard_checking(true);
        install(&mut gpu, oracle);

        let mut hosts = Vec::new();
        for s in 0..2u64 {
            let h = gpu.malloc_host(LEN, HostMemKind::Pinned);
            gpu.host_slab(h).with_mut(|d| {
                if let Some(d) = d {
                    for (i, v) in d.iter_mut().enumerate() {
                        *v = (s * 1000 + i as u64) as f64;
                    }
                }
            });
            let d_in = gpu.malloc_device(LEN).expect("device alloc");
            let d_out = gpu.malloc_device(LEN).expect("device alloc");
            let stream = gpu.create_stream();
            gpu.memcpy_h2d_async(d_in, 0, h, 0, LEN, stream);
            let (src, dst) = (gpu.device_slab(d_in), gpu.device_slab(d_out));
            gpu.launch_kernel(
                stream,
                KernelLaunch::new("ghost", gpu_sim::KernelCost::Bytes(16 * LEN as u64))
                    .reads(d_in.into())
                    .writes(d_out.into())
                    .exec(move || {
                        src.with(|s| {
                            dst.with_mut(|d| {
                                if let (Some(s), Some(d)) = (s, d) {
                                    for (o, i) in d.iter_mut().zip(s) {
                                        *o = i.mul_add(2.0, 1.0);
                                    }
                                }
                            })
                        })
                    }),
            );
            gpu.memcpy_d2h_async(h, 0, d_out, 0, LEN, stream);
            hosts.push(h);
        }
        let makespan = gpu.finish();
        let mut result: Vec<f64> = Vec::with_capacity(2 * LEN);
        for &h in &hosts {
            result.extend(gpu.host_slab(h).snapshot().expect("backed run"));
        }
        let digest = fnv_digest(&result);
        RunOutcome {
            digest,
            result,
            hazards: gpu.hazard_counters().total(),
            integrity_detected: gpu.integrity_stats().detected,
            stats: None,
            trace: gpu.trace(),
            decisions: Vec::new(),
            makespan,
        }
    })
}

/// A cross-stream producer/consumer: stream 0 uploads `devX`, stream 1 runs
/// a kernel reading `devX`. With `bug = true` the event dependency tying
/// the kernel to the upload is dropped — under FIFO admission the upload
/// still happens to land first (latent bug), but some legal schedule admits
/// the kernel before the copy and reads stale data. A second independent
/// pipeline rides along to give the shrinker noise to strip.
pub fn racy_ghost(bug: bool) -> Program {
    Box::new(move |oracle| {
        const LEN: usize = 32;
        let mut gpu = GpuSystem::new(MachineConfig::k40m());
        gpu.set_tracing(true);
        gpu.set_hazard_checking(true);
        install(&mut gpu, oracle);

        let h_x = gpu.malloc_host(LEN, HostMemKind::Pinned);
        gpu.host_slab(h_x).with_mut(|d| {
            if let Some(d) = d {
                for (i, v) in d.iter_mut().enumerate() {
                    *v = 1.0 + i as f64;
                }
            }
        });
        let h_y = gpu.malloc_host(LEN, HostMemKind::Pinned);
        let dev_x = gpu.malloc_device(LEN).expect("device alloc");
        let dev_y = gpu.malloc_device(LEN).expect("device alloc");

        let s0 = gpu.create_stream();
        let s1 = gpu.create_stream();
        gpu.memcpy_h2d_async(dev_x, 0, h_x, 0, LEN, s0);
        if !bug {
            let ev = gpu.record_event(s0);
            gpu.stream_wait_event(s1, ev);
        }
        let (src, dst) = (gpu.device_slab(dev_x), gpu.device_slab(dev_y));
        gpu.launch_kernel(
            s1,
            KernelLaunch::new("consume", gpu_sim::KernelCost::Bytes(16 * LEN as u64))
                .reads(dev_x.into())
                .writes(dev_y.into())
                .exec(move || {
                    src.with(|s| {
                        dst.with_mut(|d| {
                            if let (Some(s), Some(d)) = (s, d) {
                                for (o, i) in d.iter_mut().zip(s) {
                                    *o = *i + 0.5;
                                }
                            }
                        })
                    })
                }),
        );
        gpu.memcpy_d2h_async(h_y, 0, dev_y, 0, LEN, s1);

        // Independent bystander pipeline on its own stream and buffers.
        let h_z = gpu.malloc_host(LEN, HostMemKind::Pinned);
        gpu.host_slab(h_z).with_mut(|d| {
            if let Some(d) = d {
                d.fill(3.0);
            }
        });
        let dev_z = gpu.malloc_device(LEN).expect("device alloc");
        let s2 = gpu.create_stream();
        gpu.memcpy_h2d_async(dev_z, 0, h_z, 0, LEN, s2);
        let z = gpu.device_slab(dev_z);
        gpu.launch_kernel(
            s2,
            KernelLaunch::new("bystander", gpu_sim::KernelCost::Bytes(16 * LEN as u64))
                .reads(dev_z.into())
                .writes(dev_z.into())
                .exec(move || {
                    z.with_mut(|d| {
                        if let Some(d) = d {
                            for v in d.iter_mut() {
                                *v *= 2.0;
                            }
                        }
                    })
                }),
        );
        gpu.memcpy_d2h_async(h_z, 0, dev_z, 0, LEN, s2);

        let makespan = gpu.finish();
        let mut result = gpu.host_slab(h_y).snapshot().expect("backed run");
        result.extend(gpu.host_slab(h_z).snapshot().expect("backed run"));
        let digest = fnv_digest(&result);
        RunOutcome {
            digest,
            result,
            hazards: gpu.hazard_counters().total(),
            integrity_detected: gpu.integrity_stats().detected,
            stats: None,
            trace: gpu.trace(),
            decisions: Vec::new(),
            makespan,
        }
    })
}

/// Knobs for the TileAcc heat step program.
#[derive(Debug, Clone, Copy)]
pub struct HeatConfig {
    pub seed: u64,
    pub steps: usize,
    /// Transient-fault rate for the fault plan (0.0 = clean machine).
    pub transient_rate: f64,
    /// Checkpoint *between `begin_step`'s prefetch issue and the step's
    /// kernels*, then restore immediately and replay the step — exercising
    /// mid-flight crash consistency as extra schedule choice points.
    pub restore_mid_step: Option<usize>,
}

impl Default for HeatConfig {
    fn default() -> Self {
        HeatConfig {
            seed: 7,
            steps: 6,
            transient_rate: 0.0,
            restore_mid_step: None,
        }
    }
}

/// Out-of-core double-buffered heat (n=8, 4 regions, 3 slots) under the
/// automatic scheduler: ReuseDistance eviction, lookahead-2 prefetch —
/// the PR 4 configuration, now schedule-controlled. Ghost exchange,
/// prefetch + evict, and (optionally) fault timings and mid-flight
/// checkpoint/restore all contribute choice points.
pub fn heat_overlap(cfg: HeatConfig) -> Program {
    Box::new(move |oracle| {
        let n = 8i64;
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(4),
        ));
        let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        ua.fill_valid(init::hash_field(cfg.seed));

        let mut plan = FaultPlan::none().with_seed(cfg.seed ^ 0xA5A5);
        if cfg.transient_rate > 0.0 {
            plan = plan.with_transient(cfg.transient_rate);
        }
        let mut gpu = GpuSystem::new(MachineConfig::k40m().with_faults(plan));
        gpu.set_tracing(true);
        gpu.set_hazard_checking(true);
        install(&mut gpu, oracle);

        let opts = AccOptions::paper()
            .with_max_slots(3)
            .with_policy(SlotPolicy::ReuseDistance)
            .with_lookahead(2)
            .with_transfer_retries(10);
        let mut acc = TileAcc::new(gpu, opts);
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let tiles = tiles_of(&decomp, TileSpec::RegionSized);
        let (mut src, mut dst) = (a, b);
        for step in 0..cfg.steps {
            acc.begin_step().unwrap();
            if cfg.restore_mid_step == Some(step) {
                // Prefetches for this step are in flight; checkpoint (which
                // drains and evicts), restore, and replay the step's work.
                let ck = acc.checkpoint(step as u64).unwrap();
                acc.restore(&ck).unwrap();
            }
            acc.fill_boundary(src).unwrap();
            for &t in &tiles {
                acc.compute2(
                    t,
                    dst,
                    src,
                    heat::cost(t.num_cells()),
                    "heat",
                    |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
                )
                .unwrap();
            }
            std::mem::swap(&mut src, &mut dst);
        }
        acc.sync_to_host(src).unwrap();
        let makespan = acc.finish();
        let stats = acc.stats();

        // Buffer-granularity findings between disjoint-cell ghost gathers
        // are known false positives; a real race involves a transfer
        // overlapping a kernel on one buffer (same filter as the tier-1
        // overlap properties).
        let is_transfer = |l: &str| l == "h2d" || l == "d2h";
        let hazards = acc
            .gpu_mut()
            .check_hazards()
            .iter()
            .filter(|h| is_transfer(&h.first_label) || is_transfer(&h.second_label))
            .count() as u64;

        let result = if src == a { &ua } else { &ub }
            .to_dense()
            .expect("backed run");
        let digest = fnv_digest(&result);
        RunOutcome {
            digest,
            result,
            hazards,
            integrity_detected: stats.integrity_detected,
            stats: Some(stats),
            trace: acc.gpu().trace(),
            decisions: Vec::new(),
            makespan,
        }
    })
}

/// The analytic golden field for [`heat_overlap`] — what every explored
/// schedule's result must be bit-identical to.
pub fn heat_golden(cfg: &HeatConfig) -> Vec<f64> {
    heat::golden_run(init::hash_field(cfg.seed), 8, cfg.steps, heat::DEFAULT_FAC)
}

/// Knobs for the fused (temporal-blocking) TileAcc step program.
#[derive(Debug, Clone, Copy)]
pub struct FusedConfig {
    pub seed: u64,
    /// Fusion depth: time steps per residency. The 16³/2-region
    /// decomposition supports up to 8.
    pub depth: usize,
    /// Total time steps; must be a multiple of `depth`.
    pub steps: usize,
}

impl Default for FusedConfig {
    fn default() -> Self {
        FusedConfig {
            seed: 7,
            depth: 2,
            steps: 4,
        }
    }
}

/// Out-of-core fused heat (n=16, 2 regions, 3 slots) under the automatic
/// scheduler: each residency runs `depth` kernel applications as one fused
/// launch between full-shell ghost exchanges, with depth-`depth` halos.
/// The exchange/prefetch/fused-launch interleavings are all schedule
/// choice points; every schedule must reproduce the analytic golden field
/// bit-for-bit ([`fused_golden`]).
pub fn heat_fused(cfg: FusedConfig) -> Program {
    Box::new(move |oracle| {
        assert!(
            cfg.steps.is_multiple_of(cfg.depth),
            "steps ({}) must be a multiple of the depth ({})",
            cfg.steps,
            cfg.depth
        );
        let n = 16i64;
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(2),
        ));
        let mode = if cfg.depth == 1 {
            ExchangeMode::Faces
        } else {
            ExchangeMode::Full
        };
        let ua = TileArray::new(decomp.clone(), cfg.depth as i64, mode, true);
        let ub = TileArray::new(decomp.clone(), cfg.depth as i64, mode, true);
        ua.fill_valid(init::hash_field(cfg.seed));

        let mut gpu = GpuSystem::new(MachineConfig::k40m());
        gpu.set_tracing(true);
        gpu.set_hazard_checking(true);
        install(&mut gpu, oracle);

        let opts = AccOptions::paper()
            .with_max_slots(3)
            .with_policy(SlotPolicy::ReuseDistance)
            .with_lookahead(2);
        let mut acc = TileAcc::new(gpu, opts);
        let a = acc.register(&ua);
        let b = acc.register(&ub);
        let (mut src, mut dst) = (a, b);
        for _ in 0..cfg.steps / cfg.depth {
            acc.begin_step().unwrap();
            acc.fill_boundary(src).unwrap();
            for r in 0..decomp.num_regions() {
                let valid = decomp.region_box(r);
                acc.compute_fused(
                    r,
                    dst,
                    src,
                    cfg.depth,
                    heat::fused_cost(cfg.depth, &valid),
                    "heat-fused",
                    |d, s, bx| heat::step_tile(d, s, &bx, heat::DEFAULT_FAC),
                )
                .unwrap();
            }
            if cfg.depth % 2 == 1 {
                std::mem::swap(&mut src, &mut dst);
            }
        }
        acc.sync_to_host(src).unwrap();
        let makespan = acc.finish();
        let stats = acc.stats();

        // Same transfer-hazard filter as `heat_overlap`: only a transfer
        // overlapping other work on a buffer is a real finding.
        let is_transfer = |l: &str| l == "h2d" || l == "d2h";
        let hazards = acc
            .gpu_mut()
            .check_hazards()
            .iter()
            .filter(|h| is_transfer(&h.first_label) || is_transfer(&h.second_label))
            .count() as u64;

        let result = if src == a { &ua } else { &ub }
            .to_dense()
            .expect("backed run");
        let digest = fnv_digest(&result);
        RunOutcome {
            digest,
            result,
            hazards,
            integrity_detected: stats.integrity_detected,
            stats: Some(stats),
            trace: acc.gpu().trace(),
            decisions: Vec::new(),
            makespan,
        }
    })
}

/// The analytic golden field for [`heat_fused`].
pub fn fused_golden(cfg: &FusedConfig) -> Vec<f64> {
    heat::golden_run(init::hash_field(cfg.seed), 16, cfg.steps, heat::DEFAULT_FAC)
}

/// One heat step on a two-node cluster over a closed 6³ domain split into
/// three z-slabs (owner slots `[0, 0, 1]`): the smallest program whose
/// halo exchange both genuinely crosses the wire (the region-1↔2
/// interface) and shares per-node engines between regions (node 0 owns
/// two). The 6×6×2 regions have no interior at ghost 1, so the step
/// reduces to its exchange skeleton — per region a staging upload, ghost
/// deliveries on the NIC engines, the grown re-upload, and one boundary
/// kernel. Message arrivals are decision points like any other op, so the
/// explorer enumerates network delivery orders alongside the stream
/// interleavings.
pub fn cluster_ghost() -> Program {
    cluster_ghost_sized(6, 3)
}

/// [`cluster_ghost`] with the domain edge and region count exposed, for
/// sizing the exhaustive-DFS space: `Count(k)` z-slabs of a closed `n`³
/// domain, owners assigned contiguously over two nodes.
pub fn cluster_ghost_sized(n: i64, regions: usize) -> Program {
    Box::new(move |oracle| {
        let decomp = Arc::new(Decomposition::new(
            Domain::closed(Box3::cube(n)),
            RegionSpec::Count(regions),
        ));
        let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        ua.fill_valid(init::hash_field(11));

        let mut cl = Cluster::new(ClusterConfig::new(2));
        cl.set_tracing(true);
        cl.set_hazard_checking(true);
        cl.install_oracle(oracle as Rc<RefCell<dyn ScheduleOracle>>);

        let a = cl.register(&ua);
        let b = cl.register(&ub);
        cl.step(b, a, None, heat::cost, "heat", |d, s, _aux, bx| {
            heat::step_tile(d, s, &bx, heat::DEFAULT_FAC)
        })
        .unwrap();
        cl.sync_to_host(b).unwrap();
        let makespan = cl.finish();

        let result = ub.to_dense().expect("backed run");
        let digest = fnv_digest(&result);
        RunOutcome {
            digest,
            result,
            hazards: cl.hazard_total(),
            integrity_detected: cl.integrity_detected(),
            stats: None,
            trace: cl.trace(),
            decisions: Vec::new(),
            makespan,
        }
    })
}

/// Knobs for the multi-step cluster heat program.
#[derive(Debug, Clone, Copy)]
pub struct ClusterHeatConfig {
    pub seed: u64,
    pub steps: usize,
    pub nodes: usize,
    /// Link-fault knob: message drop probability on every inter-node link
    /// (0.0 = clean fabric). Retransmits shift delivery times — extra
    /// schedule choice points the results must be invariant to.
    pub drop_rate: f64,
}

impl Default for ClusterHeatConfig {
    fn default() -> Self {
        ClusterHeatConfig {
            seed: 7,
            steps: 3,
            nodes: 2,
            drop_rate: 0.0,
        }
    }
}

/// Multi-step periodic heat (n=8, 4 regions) on a simulated cluster: the
/// full five-phase exchange protocol — stage-out, interior kernels,
/// network deliveries, grown re-upload, boundary kernels — with every
/// message arrival a schedule decision point. Every explored interleaving
/// must reproduce [`cluster_heat_golden`] bit-for-bit.
pub fn cluster_heat(cfg: ClusterHeatConfig) -> Program {
    Box::new(move |oracle| {
        let n = 8i64;
        let decomp = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(4),
        ));
        let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, true);
        ua.fill_valid(init::hash_field(cfg.seed));

        let mut plan = FaultPlan::none().with_seed(cfg.seed ^ 0x5A5A);
        if cfg.drop_rate > 0.0 {
            plan = plan.with_link_fault(cluster::LinkFault::on("*").drops(cfg.drop_rate));
        }
        let mut cl = Cluster::new(ClusterConfig::new(cfg.nodes).fault(plan));
        cl.set_tracing(true);
        cl.set_hazard_checking(true);
        cl.install_oracle(oracle as Rc<RefCell<dyn ScheduleOracle>>);

        let a = cl.register(&ua);
        let b = cl.register(&ub);
        let (mut src, mut dst) = (a, b);
        for _ in 0..cfg.steps {
            cl.step(dst, src, None, heat::cost, "heat", |d, s, _aux, bx| {
                heat::step_tile(d, s, &bx, heat::DEFAULT_FAC)
            })
            .unwrap();
            std::mem::swap(&mut src, &mut dst);
        }
        cl.sync_to_host(src).unwrap();
        let makespan = cl.finish();

        let result = if src == a { &ua } else { &ub }
            .to_dense()
            .expect("backed run");
        let digest = fnv_digest(&result);
        RunOutcome {
            digest,
            result,
            hazards: cl.hazard_total(),
            integrity_detected: cl.integrity_detected(),
            stats: None,
            trace: cl.trace(),
            decisions: Vec::new(),
            makespan,
        }
    })
}

/// The analytic golden field for [`cluster_heat`].
pub fn cluster_heat_golden(cfg: &ClusterHeatConfig) -> Vec<f64> {
    heat::golden_run(init::hash_field(cfg.seed), 8, cfg.steps, heat::DEFAULT_FAC)
}
