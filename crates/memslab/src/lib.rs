//! Shared, optionally-backed `f64` buffers.
//!
//! Every memory object in the simulation stack — host arrays (pageable,
//! pinned, managed) and device allocations — is a [`Slab`]: a reference-counted
//! buffer of `f64` elements that is either *real* (backed by a `Vec<f64>`) or
//! *virtual* (it has a length but no storage).
//!
//! Virtual slabs exist so that the benchmark harness can run the paper's
//! full-scale workloads (512³ doubles ≈ 1 GiB per array) through the
//! discrete-event scheduler without allocating the data: the cost model only
//! needs byte counts. Correctness tests run the very same code paths with
//! real slabs at small sizes, where kernels and copies actually move data.
//!
//! All data-moving helpers are no-ops when either side is virtual, so a
//! program is oblivious to which mode it runs in.

use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;

/// FNV-1a 64-bit hash — the workspace's one checksum.
///
/// Used by the checkpoint codec (per-section checksums in the `TACK`
/// format) and by the transfer-integrity layer (per-region content
/// digests). Keeping the single implementation here, in the leaf crate
/// both sides already depend on, guarantees a digest recorded by one
/// layer verifies under the other.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`fnv1a64`] over the little-endian byte image of an `f64` slice —
/// the digest of a region's contents as the integrity layer sees them.
pub fn fnv1a64_f64s(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// A shared, optionally-backed buffer of `f64`.
///
/// Cloning a `Slab` is cheap and yields another handle to the same storage.
#[derive(Clone)]
pub struct Slab {
    len: usize,
    inner: Arc<RwLock<Option<Vec<f64>>>>,
}

impl fmt::Debug for Slab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.len)
            .field("virtual", &self.is_virtual())
            .finish()
    }
}

impl Slab {
    /// A real slab of `len` elements, zero-initialized.
    pub fn real(len: usize) -> Self {
        Slab {
            len,
            inner: Arc::new(RwLock::new(Some(vec![0.0; len]))),
        }
    }

    /// A real slab taking ownership of `data`.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Slab {
            len: data.len(),
            inner: Arc::new(RwLock::new(Some(data))),
        }
    }

    /// A virtual slab: it has a length (and therefore a byte size for the
    /// cost model) but no backing storage.
    pub fn virtual_(len: usize) -> Self {
        Slab {
            len,
            inner: Arc::new(RwLock::new(None)),
        }
    }

    /// Real if `backed`, virtual otherwise. Convenience for harnesses that
    /// switch between validated and timing-only runs with a flag.
    pub fn new(len: usize, backed: bool) -> Self {
        if backed {
            Self::real(len)
        } else {
            Self::virtual_(len)
        }
    }

    /// Number of `f64` elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes (valid for both real and virtual slabs).
    pub fn bytes(&self) -> u64 {
        (self.len * std::mem::size_of::<f64>()) as u64
    }

    /// True when the slab has no backing storage.
    pub fn is_virtual(&self) -> bool {
        self.inner.read().is_none()
    }

    /// Two handles are aliases when they share storage.
    pub fn same_storage(&self, other: &Slab) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Run `f` with a shared view of the data (`None` when virtual).
    pub fn with<R>(&self, f: impl FnOnce(Option<&[f64]>) -> R) -> R {
        let guard = self.inner.read();
        f(guard.as_deref())
    }

    /// Run `f` with an exclusive view of the data (`None` when virtual).
    pub fn with_mut<R>(&self, f: impl FnOnce(Option<&mut [f64]>) -> R) -> R {
        let mut guard = self.inner.write();
        f(guard.as_deref_mut())
    }

    /// Read one element. `None` when virtual. Panics when out of bounds.
    pub fn get(&self, idx: usize) -> Option<f64> {
        assert!(
            idx < self.len,
            "Slab::get: index {idx} out of bounds {}",
            self.len
        );
        self.inner.read().as_ref().map(|v| v[idx])
    }

    /// Write one element. No-op when virtual. Panics when out of bounds.
    pub fn set(&self, idx: usize, value: f64) {
        assert!(
            idx < self.len,
            "Slab::set: index {idx} out of bounds {}",
            self.len
        );
        if let Some(v) = self.inner.write().as_mut() {
            v[idx] = value;
        }
    }

    /// Fill every element with `value`. No-op when virtual.
    pub fn fill(&self, value: f64) {
        if let Some(v) = self.inner.write().as_mut() {
            v.fill(value);
        }
    }

    /// Initialize each element from `f(index)`. No-op when virtual.
    pub fn fill_with(&self, mut f: impl FnMut(usize) -> f64) {
        if let Some(v) = self.inner.write().as_mut() {
            for (i, x) in v.iter_mut().enumerate() {
                *x = f(i);
            }
        }
    }

    /// Copy the whole contents out (for assertions). `None` when virtual.
    pub fn snapshot(&self) -> Option<Vec<f64>> {
        self.inner.read().clone()
    }

    /// Give a virtual slab zeroed real storage; no-op when already real.
    pub fn materialize(&self) {
        let mut guard = self.inner.write();
        if guard.is_none() {
            *guard = Some(vec![0.0; self.len]);
        }
    }

    /// Drop the backing storage, making the slab virtual again.
    pub fn dematerialize(&self) {
        *self.inner.write() = None;
    }

    /// Content digest of the whole slab ([`fnv1a64_f64s`]); `None` when
    /// virtual — timing-only runs carry no data to checksum.
    pub fn digest(&self) -> Option<u64> {
        self.digest_range(0, self.len)
    }

    /// Content digest of `len` elements starting at `off`. `None` when
    /// virtual. Panics when the range is out of bounds.
    pub fn digest_range(&self, off: usize, len: usize) -> Option<u64> {
        assert!(
            off + len <= self.len,
            "Slab::digest_range: range {off}+{len} exceeds {}",
            self.len
        );
        self.inner
            .read()
            .as_ref()
            .map(|v| fnv1a64_f64s(&v[off..off + len]))
    }

    /// Flip one bit of one element — the silent-corruption injection
    /// primitive (a non-ECC DRAM upset or a bus bit-flip). The strike
    /// site is derived from `strike` so a seeded fault plan lands on a
    /// deterministic bit. No-op when virtual (returns `false`).
    pub fn flip_bit(&self, strike: u64, off: usize, len: usize) -> bool {
        assert!(
            off + len <= self.len,
            "Slab::flip_bit: range {off}+{len} exceeds {}",
            self.len
        );
        if len == 0 {
            return false;
        }
        if let Some(v) = self.inner.write().as_mut() {
            let idx = off + (strike as usize) % len;
            // Flip within the mantissa so the value stays finite but wrong.
            let bit = (strike >> 32) % 52;
            v[idx] = f64::from_bits(v[idx].to_bits() ^ (1u64 << bit));
            true
        } else {
            false
        }
    }

    /// Acquire a shared guard (for building multi-slab views; see
    /// `tida::with_many`). Prefer [`Slab::with`] for single-slab access.
    pub fn read_guard(&self) -> ReadGuard<'_> {
        ReadGuard(self.inner.read())
    }

    /// Acquire an exclusive guard. Deadlocks if the same storage is already
    /// guarded — callers must check [`Slab::same_storage`] first.
    pub fn write_guard(&self) -> WriteGuard<'_> {
        WriteGuard(self.inner.write())
    }
}

/// Shared access guard over a slab's storage.
pub struct ReadGuard<'a>(parking_lot::RwLockReadGuard<'a, Option<Vec<f64>>>);

impl ReadGuard<'_> {
    /// The data (`None` when the slab is virtual).
    pub fn data(&self) -> Option<&[f64]> {
        self.0.as_deref()
    }
}

/// Exclusive access guard over a slab's storage.
pub struct WriteGuard<'a>(parking_lot::RwLockWriteGuard<'a, Option<Vec<f64>>>);

impl WriteGuard<'_> {
    /// The data (`None` when the slab is virtual).
    pub fn data_mut(&mut self) -> Option<&mut [f64]> {
        self.0.as_deref_mut()
    }
}

/// Copy `len` elements from `src[src_off..]` into `dst[dst_off..]`.
///
/// This is the simulator's "DMA": it is a no-op when either slab is virtual,
/// so timing-only runs skip the data movement while validated runs perform it.
/// Copying a slab onto itself with overlapping ranges uses `copy_within`.
///
/// Panics when a range is out of bounds.
pub fn copy(dst: &Slab, dst_off: usize, src: &Slab, src_off: usize, len: usize) {
    assert!(
        src_off + len <= src.len,
        "memslab::copy: source range {src_off}+{len} exceeds {}",
        src.len
    );
    assert!(
        dst_off + len <= dst.len,
        "memslab::copy: destination range {dst_off}+{len} exceeds {}",
        dst.len
    );
    if len == 0 {
        return;
    }
    if dst.same_storage(src) {
        if let Some(v) = dst.inner.write().as_mut() {
            v.copy_within(src_off..src_off + len, dst_off);
        }
        return;
    }
    let src_guard = src.inner.read();
    let Some(s) = src_guard.as_ref() else { return };
    if let Some(d) = dst.inner.write().as_mut() {
        d[dst_off..dst_off + len].copy_from_slice(&s[src_off..src_off + len]);
    }
}

/// Gather `src[src_idx[i]]` into `dst[dst_idx[i]]` for every `i`.
///
/// Models the index-list ghost-cell update kernel of the paper (§IV-B-6):
/// the host computes `(dst_idx, src_idx)` pairs and the device kernel applies
/// them. No-op when either slab is virtual.
pub fn gather(dst: &Slab, dst_idx: &[usize], src: &Slab, src_idx: &[usize]) {
    assert_eq!(
        dst_idx.len(),
        src_idx.len(),
        "memslab::gather: index lists differ in length"
    );
    if dst.same_storage(src) {
        if let Some(v) = dst.inner.write().as_mut() {
            for (&d, &s) in dst_idx.iter().zip(src_idx) {
                v[d] = v[s];
            }
        }
        return;
    }
    let src_guard = src.inner.read();
    let Some(s) = src_guard.as_ref() else { return };
    if let Some(d) = dst.inner.write().as_mut() {
        for (&di, &si) in dst_idx.iter().zip(src_idx) {
            d[di] = s[si];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn real_slab_roundtrip() {
        let s = Slab::real(8);
        assert_eq!(s.len(), 8);
        assert!(!s.is_virtual());
        s.set(3, 42.0);
        assert_eq!(s.get(3), Some(42.0));
        assert_eq!(s.get(0), Some(0.0));
    }

    #[test]
    fn virtual_slab_ignores_writes() {
        let s = Slab::virtual_(8);
        assert!(s.is_virtual());
        s.set(3, 42.0);
        assert_eq!(s.get(3), None);
        assert_eq!(s.snapshot(), None);
        assert_eq!(s.bytes(), 64);
    }

    #[test]
    fn from_vec_preserves_contents() {
        let s = Slab::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.snapshot().unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn clone_aliases_storage() {
        let a = Slab::real(4);
        let b = a.clone();
        b.set(0, 7.0);
        assert_eq!(a.get(0), Some(7.0));
        assert!(a.same_storage(&b));
        assert!(!a.same_storage(&Slab::real(4)));
    }

    #[test]
    fn copy_moves_data_between_real_slabs() {
        let src = Slab::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let dst = Slab::real(4);
        copy(&dst, 1, &src, 2, 2);
        assert_eq!(dst.snapshot().unwrap(), vec![0.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn copy_with_virtual_side_is_noop() {
        let src = Slab::virtual_(4);
        let dst = Slab::from_vec(vec![9.0; 4]);
        copy(&dst, 0, &src, 0, 4);
        assert_eq!(dst.snapshot().unwrap(), vec![9.0; 4]);

        let vdst = Slab::virtual_(4);
        copy(&vdst, 0, &dst, 0, 4); // must not panic
        assert!(vdst.is_virtual());
    }

    #[test]
    fn copy_same_storage_overlapping() {
        let s = Slab::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let alias = s.clone();
        copy(&s, 1, &alias, 0, 3);
        assert_eq!(s.snapshot().unwrap(), vec![1.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Slab::real(2).get(2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn copy_out_of_bounds_panics() {
        let a = Slab::real(2);
        let b = Slab::real(2);
        copy(&a, 1, &b, 0, 2);
    }

    #[test]
    fn gather_applies_index_lists() {
        let src = Slab::from_vec(vec![10.0, 11.0, 12.0]);
        let dst = Slab::real(3);
        gather(&dst, &[0, 2], &src, &[2, 0]);
        assert_eq!(dst.snapshot().unwrap(), vec![12.0, 0.0, 10.0]);
    }

    #[test]
    fn gather_same_storage() {
        let s = Slab::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let alias = s.clone();
        gather(&s, &[0], &alias, &[3]);
        assert_eq!(s.snapshot().unwrap(), vec![4.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn materialize_and_dematerialize() {
        let s = Slab::virtual_(3);
        s.materialize();
        assert!(!s.is_virtual());
        s.set(1, 5.0);
        assert_eq!(s.get(1), Some(5.0));
        s.dematerialize();
        assert!(s.is_virtual());
    }

    #[test]
    fn fill_and_fill_with() {
        let s = Slab::real(4);
        s.fill(2.5);
        assert_eq!(s.snapshot().unwrap(), vec![2.5; 4]);
        s.fill_with(|i| i as f64);
        assert_eq!(s.snapshot().unwrap(), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn with_and_with_mut_views() {
        let s = Slab::real(3);
        s.with_mut(|d| d.unwrap()[1] = 9.0);
        let sum: f64 = s.with(|d| d.unwrap().iter().sum());
        assert_eq!(sum, 9.0);
        let v = Slab::virtual_(3);
        assert!(v.with(|d| d.is_none()));
    }

    #[test]
    fn fnv1a64_matches_known_vectors() {
        // Reference vectors from the FNV specification (draft-eastlake).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn digest_is_none_for_virtual_and_stable_for_real() {
        assert_eq!(Slab::virtual_(4).digest(), None);
        let s = Slab::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let d0 = s.digest().unwrap();
        assert_eq!(s.digest().unwrap(), d0, "digest is deterministic");
        s.set(2, 3.5);
        assert_ne!(s.digest().unwrap(), d0, "digest sees the change");
        assert_eq!(
            s.digest_range(0, 2),
            Slab::from_vec(vec![1.0, 2.0]).digest()
        );
    }

    #[test]
    fn flip_bit_changes_exactly_one_element() {
        let s = Slab::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let before = s.snapshot().unwrap();
        assert!(s.flip_bit(0xdead_beef_cafe_f00d, 0, 4));
        let after = s.snapshot().unwrap();
        let diffs: Vec<usize> = (0..4).filter(|&i| before[i] != after[i]).collect();
        assert_eq!(diffs.len(), 1, "exactly one element struck");
        assert!(after[diffs[0]].is_finite(), "mantissa flip stays finite");
        assert!(!Slab::virtual_(4).flip_bit(1, 0, 4), "virtual is exempt");
    }

    proptest! {
        /// The byte hash and the f64-slice hash agree on the same image,
        /// pinning fnv1a64_f64s to the canonical byte-stream definition.
        #[test]
        fn prop_f64_digest_matches_byte_digest(
            values in proptest::collection::vec(-1e9f64..1e9, 0..64),
        ) {
            let mut bytes = Vec::with_capacity(values.len() * 8);
            for v in &values {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            prop_assert_eq!(fnv1a64_f64s(&values), fnv1a64(&bytes));
        }

        /// A flipped bit is always visible to the digest, and flipping it
        /// back restores the original digest (the repair path's invariant).
        #[test]
        fn prop_flip_is_detected_and_reversible(
            values in proptest::collection::vec(-1e6f64..1e6, 1..32),
            strike in any::<u64>(),
        ) {
            let s = Slab::from_vec(values);
            let clean = s.digest().unwrap();
            prop_assert!(s.flip_bit(strike, 0, s.len()));
            prop_assert_ne!(s.digest().unwrap(), clean);
            prop_assert!(s.flip_bit(strike, 0, s.len()));
            prop_assert_eq!(s.digest().unwrap(), clean);
        }

        /// copy() behaves exactly like slice copy_from_slice on real slabs.
        #[test]
        fn prop_copy_matches_reference(
            src in proptest::collection::vec(-1e6f64..1e6, 1..64),
            dst_len in 1usize..64,
            seed in any::<u64>(),
        ) {
            use rand_pcg_like::*;
            let mut rng = Lcg(seed | 1);
            let dst_init: Vec<f64> = (0..dst_len).map(|_| rng.next_f64()).collect();
            let len = (rng.next() as usize) % (src.len().min(dst_len)) ;
            let src_off = if src.len() - len > 0 { (rng.next() as usize) % (src.len() - len + 1) } else { 0 };
            let dst_off = if dst_len - len > 0 { (rng.next() as usize) % (dst_len - len + 1) } else { 0 };

            let s = Slab::from_vec(src.clone());
            let d = Slab::from_vec(dst_init.clone());
            copy(&d, dst_off, &s, src_off, len);

            let mut expect = dst_init;
            expect[dst_off..dst_off + len].copy_from_slice(&src[src_off..src_off + len]);
            prop_assert_eq!(d.snapshot().unwrap(), expect);
        }

        /// A virtual destination never materializes through any operation.
        #[test]
        fn prop_virtual_stays_virtual(len in 1usize..32, writes in proptest::collection::vec((0usize..32, any::<f64>()), 0..16)) {
            let v = Slab::virtual_(32);
            let r = Slab::real(32);
            for (i, x) in writes {
                v.set(i % len.max(1), x);
            }
            copy(&v, 0, &r, 0, len);
            gather(&v, &[0], &r, &[0]);
            prop_assert!(v.is_virtual());
        }
    }

    /// Minimal deterministic generator for the proptest above (avoids pulling
    /// `rand` into this leaf crate).
    mod rand_pcg_like {
        pub struct Lcg(pub u64);
        impl Lcg {
            pub fn next(&mut self) -> u64 {
                self.0 = self
                    .0
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                self.0 >> 16
            }
            pub fn next_f64(&mut self) -> f64 {
                (self.next() % 1000) as f64
            }
        }
    }
}
