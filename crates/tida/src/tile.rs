//! Tiles and tile iteration.
//!
//! A [`Tile`] is a *logical* partition of a region's iteration space: unlike
//! regions, tiles share the region's storage (§IV-A). The [`TileIter`]
//! traverses all tiles of a decomposition; on the CPU small tiles enable
//! cache reuse, while on the GPU the paper recommends one tile per region so
//! each region launches a single kernel.

use crate::box3::Box3;
use crate::domain::Decomposition;
use crate::ivec::IntVect;

/// A logical tile: a sub-box of one region's valid box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Region that owns the tile's storage.
    pub region: usize,
    /// The tile's iteration space (subset of the region's valid box).
    pub bx: Box3,
}

impl Tile {
    pub fn num_cells(&self) -> u64 {
        self.bx.num_cells()
    }

    /// A tile over an explicit sub-range of a region — the paper's §V
    /// "iterate over a specific range in a tile" form, where `compute`
    /// takes lower and upper bounds.
    pub fn sub_range(region: usize, lo: crate::IntVect, hi: crate::IntVect) -> Tile {
        Tile {
            region,
            bx: Box3::new(lo, hi),
        }
    }
}

/// Tiling granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileSpec {
    /// One tile per region (the recommended GPU setting).
    RegionSized,
    /// Tiles of (at most) this size per dimension.
    Size(IntVect),
}

/// Compute the tile list of a decomposition.
pub fn tiles_of(decomp: &Decomposition, spec: TileSpec) -> Vec<Tile> {
    let mut out = Vec::new();
    for (rid, &valid) in decomp.region_boxes().iter().enumerate() {
        match spec {
            TileSpec::RegionSized => out.push(Tile {
                region: rid,
                bx: valid,
            }),
            TileSpec::Size(sz) => {
                for bx in valid.split(sz) {
                    out.push(Tile { region: rid, bx });
                }
            }
        }
    }
    out
}

/// Iterator over the tiles of a decomposition, in region order.
///
/// Mirrors the paper's `tileItr` usage:
/// `for (it.reset(); it.is_valid(); it.next()) { let tile = it.tile(); ... }`
/// — the GPU flag lives in `tida-acc`'s wrapper, which decides where each
/// tile executes.
pub struct TileIter {
    tiles: Vec<Tile>,
    pos: usize,
}

impl TileIter {
    pub fn new(decomp: &Decomposition, spec: TileSpec) -> TileIter {
        TileIter {
            tiles: tiles_of(decomp, spec),
            pos: 0,
        }
    }

    /// An iterator that visits the same tiles in a deterministic
    /// out-of-order permutation (the paper's iterator traverses tiles "in
    /// an out-of-order fashion", §IV-A).
    pub fn new_out_of_order(decomp: &Decomposition, spec: TileSpec, seed: u64) -> TileIter {
        let tiles = tiles_of(decomp, spec);
        let perm = crate::out_of_order_permutation(tiles.len(), seed);
        TileIter {
            tiles: perm.into_iter().map(|i| tiles[i]).collect(),
            pos: 0,
        }
    }

    /// Restart the traversal.
    pub fn reset(&mut self) {
        self.pos = 0;
    }

    /// True while there is a current tile.
    pub fn is_valid(&self) -> bool {
        self.pos < self.tiles.len()
    }

    /// The current tile.
    pub fn tile(&self) -> Tile {
        assert!(self.is_valid(), "tile iterator exhausted");
        self.tiles[self.pos]
    }

    /// Advance to the next tile.
    pub fn next_tile(&mut self) {
        self.pos += 1;
    }

    /// Total number of tiles.
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// All tiles (for harnesses that want a plain list).
    pub fn as_slice(&self) -> &[Tile] {
        &self.tiles
    }
}

impl Iterator for TileIter {
    type Item = Tile;

    fn next(&mut self) -> Option<Tile> {
        if self.is_valid() {
            let t = self.tiles[self.pos];
            self.pos += 1;
            Some(t)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Domain, RegionSpec};

    fn decomp() -> Decomposition {
        Decomposition::new(Domain::periodic_cube(8), RegionSpec::Count(2))
    }

    #[test]
    fn region_sized_tiles_one_per_region() {
        let d = decomp();
        let tiles = tiles_of(&d, TileSpec::RegionSized);
        assert_eq!(tiles.len(), 2);
        assert_eq!(tiles[0].bx, d.region_box(0));
        assert_eq!(tiles[1].region, 1);
    }

    #[test]
    fn sized_tiles_partition_each_region() {
        let d = decomp();
        let tiles = tiles_of(&d, TileSpec::Size(IntVect::new(4, 4, 4)));
        // Each 8x8x4 region splits into 2x2x1 tiles.
        assert_eq!(tiles.len(), 8);
        for rid in 0..2 {
            let sum: u64 = tiles
                .iter()
                .filter(|t| t.region == rid)
                .map(Tile::num_cells)
                .sum();
            assert_eq!(sum, d.region_box(rid).num_cells());
        }
    }

    #[test]
    fn iterator_protocol_matches_paper_style() {
        let d = decomp();
        let mut it = TileIter::new(&d, TileSpec::RegionSized);
        let mut seen = 0;
        it.reset();
        while it.is_valid() {
            let _t = it.tile();
            it.next_tile();
            seen += 1;
        }
        assert_eq!(seen, 2);
        assert!(!it.is_valid());
        it.reset();
        assert!(it.is_valid());
    }

    #[test]
    fn rust_iterator_adapter() {
        let d = decomp();
        let tiles: Vec<Tile> = TileIter::new(&d, TileSpec::RegionSized).collect();
        assert_eq!(tiles.len(), 2);
    }

    #[test]
    fn out_of_order_iterator_visits_all_tiles() {
        let d = Decomposition::new(Domain::periodic_cube(8), RegionSpec::Count(4));
        let ordered: Vec<Tile> = TileIter::new(&d, TileSpec::RegionSized).collect();
        let shuffled: Vec<Tile> =
            TileIter::new_out_of_order(&d, TileSpec::RegionSized, 7).collect();
        assert_eq!(shuffled.len(), ordered.len());
        for t in &ordered {
            assert!(shuffled.contains(t));
        }
        assert_ne!(shuffled, ordered, "seed 7 must reorder 4 tiles");
    }

    #[test]
    fn sub_range_tile() {
        use crate::IntVect;
        let t = Tile::sub_range(2, IntVect::new(1, 1, 1), IntVect::new(3, 3, 3));
        assert_eq!(t.region, 2);
        assert_eq!(t.num_cells(), 27);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn tile_after_end_panics() {
        let d = decomp();
        let mut it = TileIter::new(&d, TileSpec::RegionSized);
        it.next_tile();
        it.next_tile();
        let _ = it.tile();
    }
}
