//! Inclusive 3-D index boxes.
//!
//! [`Box3`] is a rectangular set of cells `[lo, hi]` (both corners
//! inclusive, BoxLib-style). Regions, tiles, ghost patches and iteration
//! spaces are all `Box3`s.

use crate::ivec::IntVect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An inclusive rectangular index box `[lo, hi]`.
///
/// A box with any `lo[d] > hi[d]` is *empty*; empty boxes are normalized so
/// that all empty boxes compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Box3 {
    lo: IntVect,
    hi: IntVect,
}

impl Box3 {
    /// The canonical empty box.
    pub const EMPTY: Box3 = Box3 {
        lo: IntVect([0, 0, 0]),
        hi: IntVect([-1, -1, -1]),
    };

    /// Box from inclusive corners; normalizes to [`Box3::EMPTY`] when
    /// `lo > hi` in any dimension.
    pub fn new(lo: IntVect, hi: IntVect) -> Box3 {
        if lo.all_le(hi) {
            Box3 { lo, hi }
        } else {
            Box3::EMPTY
        }
    }

    /// Box of the given size with its low corner at the origin.
    pub fn from_size(size: IntVect) -> Box3 {
        assert!(
            size.all_ge(IntVect::UNIT),
            "box size must be positive, got {size}"
        );
        Box3::new(IntVect::ZERO, size - IntVect::UNIT)
    }

    /// Cube of side `n` at the origin — the paper's `384³` / `512³` domains.
    pub fn cube(n: i64) -> Box3 {
        Box3::from_size(IntVect::splat(n))
    }

    pub fn lo(&self) -> IntVect {
        self.lo
    }

    pub fn hi(&self) -> IntVect {
        self.hi
    }

    pub fn is_empty(&self) -> bool {
        !self.lo.all_le(self.hi)
    }

    /// Extent in each dimension (0 for empty boxes).
    pub fn size(&self) -> IntVect {
        if self.is_empty() {
            IntVect::ZERO
        } else {
            self.hi - self.lo + IntVect::UNIT
        }
    }

    /// Number of cells.
    pub fn num_cells(&self) -> u64 {
        self.size().product() as u64
    }

    /// Grow by `n` cells on every face (shrink when negative).
    pub fn grow(&self, n: i64) -> Box3 {
        if self.is_empty() {
            return Box3::EMPTY;
        }
        Box3::new(self.lo - IntVect::splat(n), self.hi + IntVect::splat(n))
    }

    /// Translate by `s`.
    pub fn shift(&self, s: IntVect) -> Box3 {
        if self.is_empty() {
            return Box3::EMPTY;
        }
        Box3 {
            lo: self.lo + s,
            hi: self.hi + s,
        }
    }

    /// Intersection (empty when disjoint).
    pub fn intersect(&self, o: &Box3) -> Box3 {
        if self.is_empty() || o.is_empty() {
            return Box3::EMPTY;
        }
        Box3::new(self.lo.max(o.lo), self.hi.min(o.hi))
    }

    /// True when `iv` lies inside the box.
    pub fn contains(&self, iv: IntVect) -> bool {
        self.lo.all_le(iv) && iv.all_le(self.hi)
    }

    /// True when `o` lies entirely inside the box.
    pub fn contains_box(&self, o: &Box3) -> bool {
        o.is_empty() || (self.contains(o.lo) && self.contains(o.hi))
    }

    /// Iterate over cells in layout order (x fastest, then y, then z).
    pub fn iter(&self) -> CellIter {
        CellIter {
            bx: *self,
            next: if self.is_empty() { None } else { Some(self.lo) },
        }
    }

    /// The low-side or high-side ghost face of width `g` in dimension `d`:
    /// the slab of cells just *outside* the box on that side, with the
    /// orthogonal extents of the grown box (so face patches of a 1-wide
    /// stencil cover everything a face-neighbour must supply).
    pub fn face_halo(&self, d: usize, high: bool, g: i64) -> Box3 {
        assert!(g > 0, "halo width must be positive");
        if self.is_empty() {
            return Box3::EMPTY;
        }
        let mut lo = self.lo;
        let mut hi = self.hi;
        if high {
            lo[d] = self.hi[d] + 1;
            hi[d] = self.hi[d] + g;
        } else {
            hi[d] = self.lo[d] - 1;
            lo[d] = self.lo[d] - g;
        }
        Box3::new(lo, hi)
    }

    /// Subtract `other`, returning up to 6 disjoint boxes that exactly
    /// cover `self \ other` (the classic BoxLib box-calculus operation
    /// behind AMR region arithmetic).
    pub fn subtract(&self, other: &Box3) -> Vec<Box3> {
        let inter = self.intersect(other);
        if inter.is_empty() {
            return vec![*self];
        }
        if inter == *self {
            return Vec::new();
        }
        // Peel one dimension at a time: below-slab, above-slab, then recurse
        // into the middle along the next dimension.
        let mut out = Vec::new();
        let mut core = *self;
        for d in 0..3 {
            if inter.lo()[d] > core.lo()[d] {
                out.push(Box3::new(core.lo(), core.hi().with(d, inter.lo()[d] - 1)));
            }
            if inter.hi()[d] < core.hi()[d] {
                out.push(Box3::new(core.lo().with(d, inter.hi()[d] + 1), core.hi()));
            }
            core = Box3::new(
                core.lo().with(d, inter.lo()[d]),
                core.hi().with(d, inter.hi()[d]),
            );
        }
        out
    }

    /// The smallest box containing both operands.
    pub fn bounding_union(&self, other: &Box3) -> Box3 {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Box3::new(self.lo().min(other.lo()), self.hi().max(other.hi()))
    }

    /// Refine by `ratio`: every cell becomes a `ratio³` block of fine cells.
    pub fn refine(&self, ratio: i64) -> Box3 {
        assert!(ratio >= 1, "refinement ratio must be positive");
        if self.is_empty() {
            return Box3::EMPTY;
        }
        Box3::new(
            self.lo * ratio,
            IntVect::new(
                (self.hi.x() + 1) * ratio - 1,
                (self.hi.y() + 1) * ratio - 1,
                (self.hi.z() + 1) * ratio - 1,
            ),
        )
    }

    /// Coarsen by `ratio` (floor division; the coarse box covers every fine
    /// cell's parent).
    pub fn coarsen(&self, ratio: i64) -> Box3 {
        assert!(ratio >= 1, "coarsening ratio must be positive");
        if self.is_empty() {
            return Box3::EMPTY;
        }
        let div = |v: i64| v.div_euclid(ratio);
        Box3::new(
            IntVect::new(div(self.lo.x()), div(self.lo.y()), div(self.lo.z())),
            IntVect::new(div(self.hi.x()), div(self.hi.y()), div(self.hi.z())),
        )
    }

    /// Split into chunks of at most `chunk` cells per dimension, low corner
    /// aligned to `self.lo`. Chunks tile the box exactly (partition).
    pub fn split(&self, chunk: IntVect) -> Vec<Box3> {
        assert!(
            chunk.all_ge(IntVect::UNIT),
            "chunk size must be positive, got {chunk}"
        );
        if self.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut z = self.lo.z();
        while z <= self.hi.z() {
            let mut y = self.lo.y();
            while y <= self.hi.y() {
                let mut x = self.lo.x();
                while x <= self.hi.x() {
                    let lo = IntVect::new(x, y, z);
                    let hi = IntVect::new(
                        (x + chunk.x() - 1).min(self.hi.x()),
                        (y + chunk.y() - 1).min(self.hi.y()),
                        (z + chunk.z() - 1).min(self.hi.z()),
                    );
                    out.push(Box3::new(lo, hi));
                    x += chunk.x();
                }
                y += chunk.y();
            }
            z += chunk.z();
        }
        out
    }
}

impl fmt::Display for Box3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[empty]")
        } else {
            write!(f, "[{}..{}]", self.lo, self.hi)
        }
    }
}

/// Cell iterator in layout order (x fastest).
pub struct CellIter {
    bx: Box3,
    next: Option<IntVect>,
}

impl Iterator for CellIter {
    type Item = IntVect;

    fn next(&mut self) -> Option<IntVect> {
        let cur = self.next?;
        let mut n = cur;
        n[0] += 1;
        if n[0] > self.bx.hi()[0] {
            n[0] = self.bx.lo()[0];
            n[1] += 1;
            if n[1] > self.bx.hi()[1] {
                n[1] = self.bx.lo()[1];
                n[2] += 1;
            }
        }
        self.next = if n[2] > self.bx.hi()[2] {
            None
        } else {
            Some(n)
        };
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: (i64, i64, i64), hi: (i64, i64, i64)) -> Box3 {
        Box3::new(
            IntVect::new(lo.0, lo.1, lo.2),
            IntVect::new(hi.0, hi.1, hi.2),
        )
    }

    #[test]
    fn size_and_cells() {
        let bx = b((0, 0, 0), (3, 1, 0));
        assert_eq!(bx.size(), IntVect::new(4, 2, 1));
        assert_eq!(bx.num_cells(), 8);
        assert_eq!(Box3::cube(4).num_cells(), 64);
    }

    #[test]
    fn empty_box_normalization() {
        let e = b((1, 0, 0), (0, 5, 5));
        assert!(e.is_empty());
        assert_eq!(e, Box3::EMPTY);
        assert_eq!(e.num_cells(), 0);
        assert_eq!(e.size(), IntVect::ZERO);
    }

    #[test]
    fn grow_and_shrink() {
        let bx = b((0, 0, 0), (3, 3, 3));
        assert_eq!(bx.grow(1), b((-1, -1, -1), (4, 4, 4)));
        assert_eq!(bx.grow(1).grow(-1), bx);
        assert!(b((0, 0, 0), (0, 0, 0)).grow(-1).is_empty());
    }

    #[test]
    fn shift_roundtrip() {
        let bx = b((0, 0, 0), (2, 2, 2));
        let s = IntVect::new(5, -3, 1);
        assert_eq!(bx.shift(s).shift(-s), bx);
    }

    #[test]
    fn intersection() {
        let a = b((0, 0, 0), (4, 4, 4));
        let c = b((3, 3, 3), (8, 8, 8));
        assert_eq!(a.intersect(&c), b((3, 3, 3), (4, 4, 4)));
        let d = b((10, 10, 10), (12, 12, 12));
        assert!(a.intersect(&d).is_empty());
        assert!(a.intersect(&Box3::EMPTY).is_empty());
    }

    #[test]
    fn contains() {
        let a = b((0, 0, 0), (4, 4, 4));
        assert!(a.contains(IntVect::new(0, 4, 2)));
        assert!(!a.contains(IntVect::new(5, 0, 0)));
        assert!(a.contains_box(&b((1, 1, 1), (2, 2, 2))));
        assert!(!a.contains_box(&b((1, 1, 1), (5, 2, 2))));
        assert!(a.contains_box(&Box3::EMPTY));
    }

    #[test]
    fn cell_iter_order_and_count() {
        let bx = b((0, 0, 0), (1, 1, 1));
        let cells: Vec<IntVect> = bx.iter().collect();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0], IntVect::new(0, 0, 0));
        assert_eq!(cells[1], IntVect::new(1, 0, 0)); // x fastest
        assert_eq!(cells[2], IntVect::new(0, 1, 0));
        assert_eq!(cells[7], IntVect::new(1, 1, 1));
        assert_eq!(Box3::EMPTY.iter().count(), 0);
    }

    #[test]
    fn face_halo_low_and_high() {
        let bx = b((0, 0, 0), (3, 3, 3));
        let low_x = bx.face_halo(0, false, 1);
        assert_eq!(low_x, b((-1, 0, 0), (-1, 3, 3)));
        let high_z = bx.face_halo(2, true, 2);
        assert_eq!(high_z, b((0, 0, 4), (3, 3, 5)));
    }

    #[test]
    fn split_partitions_box() {
        let bx = b((0, 0, 0), (4, 3, 1));
        let chunks = bx.split(IntVect::new(2, 2, 2));
        // 3 x 2 x 1 chunks.
        assert_eq!(chunks.len(), 6);
        let total: u64 = chunks.iter().map(|c| c.num_cells()).sum();
        assert_eq!(total, bx.num_cells());
        // Chunks are disjoint.
        for (i, a) in chunks.iter().enumerate() {
            for b in &chunks[i + 1..] {
                assert!(a.intersect(b).is_empty());
            }
        }
    }

    #[test]
    fn split_chunk_larger_than_box() {
        let bx = b((0, 0, 0), (2, 2, 2));
        let chunks = bx.split(IntVect::splat(100));
        assert_eq!(chunks, vec![bx]);
    }

    #[test]
    fn display() {
        assert_eq!(b((0, 0, 0), (1, 1, 1)).to_string(), "[(0,0,0)..(1,1,1)]");
        assert_eq!(Box3::EMPTY.to_string(), "[empty]");
    }

    #[test]
    fn subtract_disjoint_and_containing() {
        let a = b((0, 0, 0), (3, 3, 3));
        let far = b((10, 10, 10), (12, 12, 12));
        assert_eq!(a.subtract(&far), vec![a]);
        assert!(a.subtract(&b((-1, -1, -1), (4, 4, 4))).is_empty());
    }

    #[test]
    fn subtract_center_hole_covers_exactly() {
        let a = b((0, 0, 0), (4, 4, 4));
        let hole = b((1, 1, 1), (3, 3, 3));
        let parts = a.subtract(&hole);
        let total: u64 = parts.iter().map(|p| p.num_cells()).sum();
        assert_eq!(total, a.num_cells() - hole.num_cells());
        for (i, p) in parts.iter().enumerate() {
            assert!(a.contains_box(p));
            assert!(p.intersect(&hole).is_empty());
            for q in &parts[i + 1..] {
                assert!(p.intersect(q).is_empty());
            }
        }
    }

    #[test]
    fn bounding_union_basics() {
        let a = b((0, 0, 0), (1, 1, 1));
        let c = b((3, 3, 3), (4, 4, 4));
        assert_eq!(a.bounding_union(&c), b((0, 0, 0), (4, 4, 4)));
        assert_eq!(a.bounding_union(&Box3::EMPTY), a);
        assert_eq!(Box3::EMPTY.bounding_union(&c), c);
    }

    #[test]
    fn refine_coarsen_roundtrip() {
        let a = b((-2, 0, 1), (3, 5, 2));
        let fine = a.refine(2);
        assert_eq!(fine.num_cells(), a.num_cells() * 8);
        assert_eq!(fine.coarsen(2), a);
        assert_eq!(a.refine(1), a);
        assert_eq!(a.coarsen(1), a);
    }

    #[test]
    fn coarsen_floors_toward_negative() {
        let a = b((-3, -3, -3), (-1, -1, -1));
        assert_eq!(a.coarsen(2), b((-2, -2, -2), (-1, -1, -1)));
    }
}
