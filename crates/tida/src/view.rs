//! Borrowed views over region data.
//!
//! Kernels (on either the host path or the simulated device path) access a
//! region's cells through [`View`] / [`ViewMut`]: a slice plus the region's
//! grown-box [`Layout`]. Construction goes through the `with_*` helpers so
//! that virtual (timing-only) slabs are skipped transparently.

use crate::layout::Layout;
use memslab::Slab;

use crate::ivec::IntVect;

/// Read-only view of a region's data.
pub struct View<'a> {
    pub data: &'a [f64],
    pub layout: Layout,
}

impl View<'_> {
    /// Value at cell `iv` (must lie in the layout box).
    #[inline]
    pub fn at(&self, iv: IntVect) -> f64 {
        self.data[self.layout.offset(iv)]
    }
}

/// Mutable view of a region's data.
pub struct ViewMut<'a> {
    pub data: &'a mut [f64],
    pub layout: Layout,
}

impl ViewMut<'_> {
    #[inline]
    pub fn at(&self, iv: IntVect) -> f64 {
        self.data[self.layout.offset(iv)]
    }

    #[inline]
    pub fn set(&mut self, iv: IntVect, v: f64) {
        let o = self.layout.offset(iv);
        self.data[o] = v;
    }

    /// Read-modify-write one cell.
    #[inline]
    pub fn update(&mut self, iv: IntVect, f: impl FnOnce(f64) -> f64) {
        let o = self.layout.offset(iv);
        self.data[o] = f(self.data[o]);
    }
}

/// Run `f` with a read view of `slab` laid out by `layout`.
/// Returns `None` (without calling `f`) when the slab is virtual.
pub fn with_view<R>(slab: &Slab, layout: Layout, f: impl FnOnce(View) -> R) -> Option<R> {
    slab.with(|data| data.map(|data| f(View { data, layout })))
}

/// Run `f` with a mutable view of `slab` laid out by `layout`.
pub fn with_view_mut<R>(slab: &Slab, layout: Layout, f: impl FnOnce(ViewMut) -> R) -> Option<R> {
    slab.with_mut(|data| data.map(|data| f(ViewMut { data, layout })))
}

/// Run `f` with a mutable destination view and a read source view.
///
/// Panics if the two slabs share storage (a kernel writing its own input
/// needs [`with_view_mut`] and explicit care).
pub fn with_dst_src<R>(
    dst: (&Slab, Layout),
    src: (&Slab, Layout),
    f: impl FnOnce(ViewMut, View) -> R,
) -> Option<R> {
    assert!(
        !dst.0.same_storage(src.0),
        "with_dst_src: destination and source alias"
    );
    dst.0.with_mut(|d| {
        src.0.with(|s| match (d, s) {
            (Some(d), Some(s)) => Some(f(
                ViewMut {
                    data: d,
                    layout: dst.1,
                },
                View {
                    data: s,
                    layout: src.1,
                },
            )),
            _ => None,
        })
    })
}

/// Run `f` with any number of mutable and shared views at once — the
/// general form behind the paper's multi-tile `compute` (§V: "If
/// computation involves multiple tiles as inputs, then the compute method
/// takes these tiles and a lambda function").
///
/// Returns `None` (without calling `f`) when any slab is virtual. Panics if
/// two write slabs alias, or a write slab aliases a read slab.
pub fn with_many<R>(
    writes: &[(&Slab, Layout)],
    reads: &[(&Slab, Layout)],
    f: impl FnOnce(&mut [ViewMut], &[View]) -> R,
) -> Option<R> {
    for (i, (w, _)) in writes.iter().enumerate() {
        for (w2, _) in &writes[i + 1..] {
            assert!(!w.same_storage(w2), "with_many: two write slabs alias");
        }
        for (r, _) in reads {
            assert!(
                !w.same_storage(r),
                "with_many: a write slab aliases a read slab"
            );
        }
    }
    let mut wguards: Vec<memslab::WriteGuard<'_>> =
        writes.iter().map(|(s, _)| s.write_guard()).collect();
    let rguards: Vec<memslab::ReadGuard<'_>> = reads.iter().map(|(s, _)| s.read_guard()).collect();

    let mut wviews: Vec<ViewMut<'_>> = Vec::with_capacity(writes.len());
    for (g, (_, layout)) in wguards.iter_mut().zip(writes) {
        wviews.push(ViewMut {
            data: g.data_mut()?,
            layout: *layout,
        });
    }
    let mut rviews: Vec<View<'_>> = Vec::with_capacity(reads.len());
    for (g, (_, layout)) in rguards.iter().zip(reads) {
        rviews.push(View {
            data: g.data()?,
            layout: *layout,
        });
    }
    Some(f(&mut wviews, &rviews))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::box3::Box3;

    fn layout4() -> Layout {
        Layout::new(Box3::from_size(IntVect::new(4, 1, 1)))
    }

    #[test]
    fn view_reads_through_layout() {
        let s = Slab::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let got = with_view(&s, layout4(), |v| v.at(IntVect::new(2, 0, 0))).unwrap();
        assert_eq!(got, 3.0);
    }

    #[test]
    fn view_mut_writes_through_layout() {
        let s = Slab::real(4);
        with_view_mut(&s, layout4(), |mut v| {
            v.set(IntVect::new(1, 0, 0), 5.0);
            v.update(IntVect::new(1, 0, 0), |x| x + 1.0);
        })
        .unwrap();
        assert_eq!(s.get(1), Some(6.0));
    }

    #[test]
    fn virtual_slab_skips_closure() {
        let s = Slab::virtual_(4);
        let ran = with_view(&s, layout4(), |_| true);
        assert_eq!(ran, None);
        assert_eq!(with_view_mut(&s, layout4(), |_| true), None);
    }

    #[test]
    fn dst_src_pair() {
        let d = Slab::real(4);
        let s = Slab::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        with_dst_src((&d, layout4()), (&s, layout4()), |mut dv, sv| {
            for i in 0..4 {
                let iv = IntVect::new(i, 0, 0);
                dv.set(iv, sv.at(iv) * 10.0);
            }
        })
        .unwrap();
        assert_eq!(d.snapshot().unwrap(), vec![10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn dst_src_with_one_virtual_side_is_none() {
        let d = Slab::real(4);
        let s = Slab::virtual_(4);
        assert!(with_dst_src((&d, layout4()), (&s, layout4()), |_, _| ()).is_none());
    }

    #[test]
    #[should_panic(expected = "alias")]
    fn dst_src_aliasing_panics() {
        let d = Slab::real(4);
        let alias = d.clone();
        with_dst_src((&d, layout4()), (&alias, layout4()), |_, _| ());
    }

    #[test]
    fn with_many_two_writes_two_reads() {
        let w0 = Slab::real(4);
        let w1 = Slab::real(4);
        let r0 = Slab::from_vec(vec![1.0; 4]);
        let r1 = Slab::from_vec(vec![2.0; 4]);
        let l = layout4();
        with_many(&[(&w0, l), (&w1, l)], &[(&r0, l), (&r1, l)], |ws, rs| {
            for i in 0..4 {
                let iv = IntVect::new(i, 0, 0);
                let sum = rs[0].at(iv) + rs[1].at(iv);
                ws[0].set(iv, sum);
                ws[1].set(iv, sum * 10.0);
            }
        })
        .unwrap();
        assert_eq!(w0.snapshot().unwrap(), vec![3.0; 4]);
        assert_eq!(w1.snapshot().unwrap(), vec![30.0; 4]);
    }

    #[test]
    fn with_many_shared_read_slab_is_allowed() {
        let w = Slab::real(4);
        let r = Slab::from_vec(vec![5.0; 4]);
        let l = layout4();
        // The same read slab twice: read-read aliasing is fine.
        with_many(&[(&w, l)], &[(&r, l), (&r, l)], |ws, rs| {
            ws[0].set(
                IntVect::ZERO,
                rs[0].at(IntVect::ZERO) + rs[1].at(IntVect::ZERO),
            );
        })
        .unwrap();
        assert_eq!(w.get(0), Some(10.0));
    }

    #[test]
    fn with_many_virtual_any_side_skips() {
        let w = Slab::real(4);
        let v = Slab::virtual_(4);
        let l = layout4();
        assert!(with_many(&[(&w, l)], &[(&v, l)], |_, _| ()).is_none());
        assert!(with_many(&[(&v, l)], &[(&w, l)], |_, _| ()).is_none());
        assert!(with_many(&[(&w, l)], &[], |_, _| ()).is_some());
    }

    #[test]
    #[should_panic(expected = "write slabs alias")]
    fn with_many_write_aliasing_panics() {
        let w = Slab::real(4);
        let alias = w.clone();
        let l = layout4();
        with_many(&[(&w, l), (&alias, l)], &[], |_, _| ());
    }
}
