//! `tida` — the tiling substrate the paper's library extends.
//!
//! TiDA (Unat et al.) decomposes an array into *regions* (physically
//! separate, ghost-padded buffers) and *tiles* (logical partitions of a
//! region's iteration space), traversed by a tile iterator. This crate is a
//! from-scratch Rust implementation of those abstractions:
//!
//! * [`IntVect`], [`Box3`], [`Layout`] — 3-D index algebra and memory
//!   layout;
//! * [`Domain`], [`Decomposition`], [`GhostPatch`] — regular region grids
//!   with periodic neighbour geometry;
//! * [`TileArray`], [`Region`] — the decomposed container with host-side
//!   ghost exchange;
//! * [`Tile`], [`TileIter`] — logical tiling and traversal;
//! * [`View`]/[`ViewMut`] — borrowed cell access for kernels.
//!
//! The accelerator extension (device slots, caching, streams, overlap) lives
//! in the `tida-acc` crate, mirroring how the paper layers TiDA-acc on TiDA.

mod array;
mod box3;
mod domain;
mod exec;
mod ivec;
mod layout;
mod tile;
mod view;

pub use array::{Region, TileArray};
pub use box3::{Box3, CellIter};
pub use domain::{Decomposition, Domain, ExchangeMode, GhostPatch, RegionSpec};
pub use exec::{out_of_order_permutation, par_for_each_tile};
pub use ivec::IntVect;
pub use layout::Layout;
pub use tile::{tiles_of, Tile, TileIter, TileSpec};
pub use view::{with_dst_src, with_many, with_view, with_view_mut, View, ViewMut};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn arb_domain() -> impl Strategy<Value = (Domain, RegionSpec)> {
        (
            4i64..12,
            proptest::array::uniform3(any::<bool>()),
            proptest::array::uniform3(1usize..3),
        )
            .prop_map(|(n, periodic, grid)| {
                (
                    Domain {
                        bx: Box3::cube(n),
                        periodic,
                    },
                    RegionSpec::Grid(grid),
                )
            })
    }

    proptest! {
        /// Regions always partition the domain exactly.
        #[test]
        fn prop_decomposition_partitions((dom, spec) in arb_domain()) {
            let d = Decomposition::new(dom, spec);
            let total: u64 = d.region_boxes().iter().map(|b| b.num_cells()).sum();
            prop_assert_eq!(total, dom.bx.num_cells());
            for (i, a) in d.region_boxes().iter().enumerate() {
                prop_assert!(dom.bx.contains_box(a));
                for b in &d.region_boxes()[i + 1..] {
                    prop_assert!(a.intersect(b).is_empty());
                }
            }
        }

        /// After fill_boundary in Full mode, every ghost cell whose periodic
        /// image exists holds the image's value; face ghosts likewise in
        /// Faces mode.
        #[test]
        fn prop_ghost_exchange_correct((dom, spec) in arb_domain(), full in any::<bool>()) {
            let mode = if full { ExchangeMode::Full } else { ExchangeMode::Faces };
            let d = Arc::new(Decomposition::new(dom, spec));
            let a = TileArray::new(d.clone(), 1, mode, true);
            let n = dom.bx.size();
            let f = |iv: IntVect| (1 + iv.x() + 37 * iv.y() + 1009 * iv.z()) as f64;
            a.fill_grown(|_| f64::NAN);
            a.fill_valid(f);
            a.fill_boundary();

            for p in a.patches() {
                let r = a.region(p.dst_region);
                with_view(&r.slab, r.layout, |v| {
                    for iv in p.dst_box.iter() {
                        // The ghost must now hold the periodic image value.
                        let w = IntVect::new(
                            iv.x().rem_euclid(n.x()),
                            iv.y().rem_euclid(n.y()),
                            iv.z().rem_euclid(n.z()),
                        );
                        assert_eq!(v.at(iv), f(w), "patch dst {} cell {iv}", p.dst_region);
                    }
                }).unwrap();
            }
        }

        /// Tiling with any size partitions every region's valid box.
        #[test]
        fn prop_tiles_partition((dom, spec) in arb_domain(), ts in proptest::array::uniform3(1i64..6)) {
            let d = Decomposition::new(dom, spec);
            let tiles = tiles_of(&d, TileSpec::Size(IntVect(ts)));
            for rid in 0..d.num_regions() {
                let mine: Vec<&Tile> = tiles.iter().filter(|t| t.region == rid).collect();
                let total: u64 = mine.iter().map(|t| t.num_cells()).sum();
                prop_assert_eq!(total, d.region_box(rid).num_cells());
                for (i, a) in mine.iter().enumerate() {
                    prop_assert!(d.region_box(rid).contains_box(&a.bx));
                    for b in &mine[i + 1..] {
                        prop_assert!(a.bx.intersect(&b.bx).is_empty());
                    }
                }
            }
        }

        /// subtract() exactly partitions the difference for random boxes.
        #[test]
        fn prop_box_subtract_partitions(
            alo in proptest::array::uniform3(-6i64..6),
            asz in proptest::array::uniform3(1i64..6),
            blo in proptest::array::uniform3(-8i64..8),
            bsz in proptest::array::uniform3(1i64..8),
        ) {
            let a = Box3::new(IntVect(alo), IntVect(alo) + IntVect(asz) - IntVect::UNIT);
            let b = Box3::new(IntVect(blo), IntVect(blo) + IntVect(bsz) - IntVect::UNIT);
            let parts = a.subtract(&b);
            // Cell-exact check.
            for iv in a.iter() {
                let in_b = b.contains(iv);
                let covered = parts.iter().filter(|p| p.contains(iv)).count();
                prop_assert_eq!(covered, usize::from(!in_b), "cell {} of {} minus {}", iv, a, b);
            }
            for p in &parts {
                prop_assert!(a.contains_box(p));
            }
        }

        /// Dense scatter/gather is the identity on valid data.
        #[test]
        fn prop_dense_roundtrip((dom, spec) in arb_domain()) {
            let d = Arc::new(Decomposition::new(dom, spec));
            let a = TileArray::new(d, 2, ExchangeMode::Full, true);
            let data: Vec<f64> = (0..dom.bx.num_cells()).map(|i| i as f64 * 0.5).collect();
            a.from_dense(&data);
            prop_assert_eq!(a.to_dense().unwrap(), data);
        }
    }
}
