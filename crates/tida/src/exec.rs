//! Host-side parallel tile execution.
//!
//! TiDA's original target is multicore CPUs: the tile iterator hands tiles
//! to threads "in an out-of-order fashion and manages parallelism" (§IV-A).
//! This module provides that CPU execution engine: a scoped thread pool
//! that drains a tile list with work stealing (an atomic cursor), plus a
//! deterministic out-of-order permutation for locality experiments.
//!
//! Safety: tiles of *different* regions touch different slabs and run fully
//! concurrently; tiles of the same region serialize on the region slab's
//! lock inside `with_view_mut`, which keeps any interleaving race-free
//! (kernels over disjoint tile boxes commute).

use crate::tile::Tile;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f` over every tile on `threads` worker threads.
///
/// Tiles are claimed from a shared cursor, so threads that finish early
/// steal remaining work. `threads == 1` degenerates to a serial loop with
/// no thread spawn.
pub fn par_for_each_tile<F>(tiles: &[Tile], threads: usize, f: F)
where
    F: Fn(Tile) + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    if threads == 1 || tiles.len() <= 1 {
        for &t in tiles {
            f(t);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(tiles.len()) {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= tiles.len() {
                    break;
                }
                f(tiles[i]);
            });
        }
    })
    .expect("tile worker panicked");
}

/// A deterministic "out-of-order" permutation of tile indices (the paper's
/// iterator traverses tiles out of order). Uses a multiplicative step that
/// is coprime with the length, so every tile appears exactly once.
pub fn out_of_order_permutation(len: usize, seed: u64) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    // Pick an odd step near a golden-ratio fraction of len, then bump it
    // until it is coprime with len.
    let gcd = |mut a: usize, mut b: usize| {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    };
    let mut step =
        ((len as u64).wrapping_mul(seed.wrapping_mul(2654435761) | 1) % len as u64).max(1) as usize;
    while gcd(step, len) != 1 {
        step += 1;
        if step >= len {
            step = 1;
        }
    }
    let start = (seed as usize).wrapping_mul(31) % len;
    (0..len).map(|i| (start + i * step) % len).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Decomposition, Domain, ExchangeMode, RegionSpec};
    use crate::tile::{tiles_of, TileSpec};
    use crate::{IntVect, TileArray};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn visits_every_tile_exactly_once() {
        let d = Decomposition::new(Domain::periodic_cube(8), RegionSpec::Grid([2, 2, 2]));
        let tiles = tiles_of(&d, TileSpec::Size(IntVect::splat(2)));
        let count = AtomicU64::new(0);
        par_for_each_tile(&tiles, 4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), tiles.len() as u64);
    }

    #[test]
    fn parallel_kernel_equals_serial() {
        let d = Arc::new(Decomposition::new(
            Domain::periodic_cube(8),
            RegionSpec::Grid([2, 2, 1]),
        ));
        let run = |threads: usize| {
            let arr = TileArray::new(d.clone(), 0, ExchangeMode::Faces, true);
            arr.fill_valid(|iv| (iv.x() * 7 + iv.y() * 3 + iv.z()) as f64);
            let tiles = tiles_of(&d, TileSpec::Size(IntVect::splat(4)));
            par_for_each_tile(&tiles, threads, |t| {
                let r = arr.region(t.region);
                crate::with_view_mut(&r.slab, r.layout, |mut v| {
                    for iv in t.bx.iter() {
                        v.update(iv, |x| x * 2.0 + 1.0);
                    }
                });
            });
            arr.to_dense().unwrap()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn single_thread_runs_inline() {
        let d = Decomposition::new(Domain::periodic_cube(4), RegionSpec::Count(2));
        let tiles = tiles_of(&d, TileSpec::RegionSized);
        let seen = AtomicU64::new(0);
        par_for_each_tile(&tiles, 1, |_| {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.into_inner(), 2);
    }

    #[test]
    fn permutation_is_a_bijection() {
        for len in [1usize, 2, 7, 16, 60] {
            for seed in [0u64, 1, 42, 1337] {
                let p = out_of_order_permutation(len, seed);
                let mut seen = vec![false; len];
                for &i in &p {
                    assert!(!seen[i], "index {i} repeated (len {len} seed {seed})");
                    seen[i] = true;
                }
                assert!(seen.into_iter().all(|b| b));
            }
        }
        assert!(out_of_order_permutation(0, 5).is_empty());
    }

    #[test]
    fn permutation_actually_reorders() {
        let p = out_of_order_permutation(16, 3);
        assert_ne!(p, (0..16).collect::<Vec<_>>());
    }
}
