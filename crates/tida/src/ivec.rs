//! 3-D integer vectors.
//!
//! [`IntVect`] is the index type of the tiling substrate: cell coordinates,
//! box corners, shifts and sizes are all `IntVect`s, following the TiDA /
//! BoxLib convention the paper builds on. 2-D problems use a z-extent of 1.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A 3-component integer vector (cell index, box size, or shift).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IntVect(pub [i64; 3]);

impl IntVect {
    pub const ZERO: IntVect = IntVect([0, 0, 0]);
    pub const UNIT: IntVect = IntVect([1, 1, 1]);

    pub const fn new(x: i64, y: i64, z: i64) -> Self {
        IntVect([x, y, z])
    }

    /// The same value in every component.
    pub const fn splat(v: i64) -> Self {
        IntVect([v, v, v])
    }

    pub const fn x(self) -> i64 {
        self.0[0]
    }

    pub const fn y(self) -> i64 {
        self.0[1]
    }

    pub const fn z(self) -> i64 {
        self.0[2]
    }

    /// Component-wise minimum.
    pub fn min(self, o: IntVect) -> IntVect {
        IntVect([
            self.0[0].min(o.0[0]),
            self.0[1].min(o.0[1]),
            self.0[2].min(o.0[2]),
        ])
    }

    /// Component-wise maximum.
    pub fn max(self, o: IntVect) -> IntVect {
        IntVect([
            self.0[0].max(o.0[0]),
            self.0[1].max(o.0[1]),
            self.0[2].max(o.0[2]),
        ])
    }

    /// Product of the components (cell count of a size vector).
    pub fn product(self) -> i64 {
        self.0[0] * self.0[1] * self.0[2]
    }

    /// True when every component of `self` is `<=` the matching one of `o`.
    pub fn all_le(self, o: IntVect) -> bool {
        (0..3).all(|d| self.0[d] <= o.0[d])
    }

    /// True when every component of `self` is `>=` the matching one of `o`.
    pub fn all_ge(self, o: IntVect) -> bool {
        (0..3).all(|d| self.0[d] >= o.0[d])
    }

    /// Replace component `d` with `v`.
    pub fn with(self, d: usize, v: i64) -> IntVect {
        let mut out = self;
        out.0[d] = v;
        out
    }
}

impl Add for IntVect {
    type Output = IntVect;
    fn add(self, o: IntVect) -> IntVect {
        IntVect([self.0[0] + o.0[0], self.0[1] + o.0[1], self.0[2] + o.0[2]])
    }
}

impl Sub for IntVect {
    type Output = IntVect;
    fn sub(self, o: IntVect) -> IntVect {
        IntVect([self.0[0] - o.0[0], self.0[1] - o.0[1], self.0[2] - o.0[2]])
    }
}

impl Neg for IntVect {
    type Output = IntVect;
    fn neg(self) -> IntVect {
        IntVect([-self.0[0], -self.0[1], -self.0[2]])
    }
}

impl Mul<i64> for IntVect {
    type Output = IntVect;
    fn mul(self, s: i64) -> IntVect {
        IntVect([self.0[0] * s, self.0[1] * s, self.0[2] * s])
    }
}

impl Index<usize> for IntVect {
    type Output = i64;
    fn index(&self, d: usize) -> &i64 {
        &self.0[d]
    }
}

impl IndexMut<usize> for IntVect {
    fn index_mut(&mut self, d: usize) -> &mut i64 {
        &mut self.0[d]
    }
}

impl fmt::Display for IntVect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.0[0], self.0[1], self.0[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let v = IntVect::new(1, 2, 3);
        assert_eq!((v.x(), v.y(), v.z()), (1, 2, 3));
        assert_eq!(IntVect::splat(4), IntVect::new(4, 4, 4));
        assert_eq!(v[2], 3);
        let mut w = v;
        w[0] = 9;
        assert_eq!(w, IntVect::new(9, 2, 3));
        assert_eq!(v.with(1, 7), IntVect::new(1, 7, 3));
    }

    #[test]
    fn arithmetic() {
        let a = IntVect::new(1, 2, 3);
        let b = IntVect::new(10, 20, 30);
        assert_eq!(a + b, IntVect::new(11, 22, 33));
        assert_eq!(b - a, IntVect::new(9, 18, 27));
        assert_eq!(-a, IntVect::new(-1, -2, -3));
        assert_eq!(a * 3, IntVect::new(3, 6, 9));
    }

    #[test]
    fn min_max_product() {
        let a = IntVect::new(1, 20, 3);
        let b = IntVect::new(10, 2, 30);
        assert_eq!(a.min(b), IntVect::new(1, 2, 3));
        assert_eq!(a.max(b), IntVect::new(10, 20, 30));
        assert_eq!(IntVect::new(2, 3, 4).product(), 24);
    }

    #[test]
    fn comparisons() {
        assert!(IntVect::new(1, 1, 1).all_le(IntVect::new(1, 2, 3)));
        assert!(!IntVect::new(2, 1, 1).all_le(IntVect::new(1, 2, 3)));
        assert!(IntVect::new(3, 3, 3).all_ge(IntVect::new(1, 2, 3)));
    }

    #[test]
    fn display() {
        assert_eq!(IntVect::new(1, -2, 3).to_string(), "(1,-2,3)");
    }
}
