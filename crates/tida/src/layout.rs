//! Linear memory layout of a box.
//!
//! [`Layout`] maps cells of a [`Box3`] to offsets in a region's slab,
//! x-fastest (the BoxLib/TiDA convention). A region's layout covers its
//! *grown* box, so ghost cells are addressable with the same mapping.

use crate::box3::Box3;
use crate::ivec::IntVect;
use serde::{Deserialize, Serialize};

/// Row-major (x fastest) layout over a box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    bx: Box3,
    stride_y: i64,
    stride_z: i64,
}

impl Layout {
    pub fn new(bx: Box3) -> Layout {
        assert!(!bx.is_empty(), "cannot lay out an empty box");
        let size = bx.size();
        Layout {
            bx,
            stride_y: size.x(),
            stride_z: size.x() * size.y(),
        }
    }

    /// The box this layout covers.
    pub fn domain(&self) -> Box3 {
        self.bx
    }

    /// Number of elements in the layout.
    pub fn len(&self) -> usize {
        self.bx.num_cells() as usize
    }

    pub fn is_empty(&self) -> bool {
        false // layouts always cover a non-empty box
    }

    /// Linear offset of cell `iv`. Panics (debug) when out of the box.
    #[inline]
    pub fn offset(&self, iv: IntVect) -> usize {
        debug_assert!(
            self.bx.contains(iv),
            "cell {iv} outside layout box {}",
            self.bx
        );
        let rel = iv - self.bx.lo();
        (rel.x() + rel.y() * self.stride_y + rel.z() * self.stride_z) as usize
    }

    /// Inverse of [`Layout::offset`].
    pub fn cell_at(&self, offset: usize) -> IntVect {
        assert!(offset < self.len(), "offset {offset} out of layout");
        let o = offset as i64;
        let z = o / self.stride_z;
        let y = (o % self.stride_z) / self.stride_y;
        let x = o % self.stride_y;
        self.bx.lo() + IntVect::new(x, y, z)
    }

    /// Offsets of every cell of `sub` (which must lie inside the layout
    /// box), in layout order — the index lists of the paper's device-side
    /// ghost update (§IV-B-6).
    pub fn offsets_of(&self, sub: &Box3) -> Vec<usize> {
        assert!(
            self.bx.contains_box(sub),
            "sub-box {sub} escapes layout box {}",
            self.bx
        );
        sub.iter().map(|iv| self.offset(iv)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn offset_x_fastest() {
        let l = Layout::new(Box3::from_size(IntVect::new(4, 3, 2)));
        assert_eq!(l.offset(IntVect::new(0, 0, 0)), 0);
        assert_eq!(l.offset(IntVect::new(1, 0, 0)), 1);
        assert_eq!(l.offset(IntVect::new(0, 1, 0)), 4);
        assert_eq!(l.offset(IntVect::new(0, 0, 1)), 12);
        assert_eq!(l.offset(IntVect::new(3, 2, 1)), 23);
        assert_eq!(l.len(), 24);
    }

    #[test]
    fn offset_respects_nonzero_lo() {
        let bx = Box3::new(IntVect::new(-1, -1, -1), IntVect::new(2, 2, 2));
        let l = Layout::new(bx);
        assert_eq!(l.offset(IntVect::new(-1, -1, -1)), 0);
        assert_eq!(l.offset(IntVect::new(2, 2, 2)), l.len() - 1);
    }

    #[test]
    fn cell_at_inverts_offset() {
        let bx = Box3::new(IntVect::new(-2, 3, 1), IntVect::new(4, 7, 3));
        let l = Layout::new(bx);
        for iv in bx.iter() {
            assert_eq!(l.cell_at(l.offset(iv)), iv);
        }
    }

    #[test]
    fn offsets_of_subbox_in_layout_order() {
        let l = Layout::new(Box3::from_size(IntVect::new(4, 4, 1)));
        let sub = Box3::new(IntVect::new(1, 1, 0), IntVect::new(2, 2, 0));
        assert_eq!(l.offsets_of(&sub), vec![5, 6, 9, 10]);
    }

    #[test]
    #[should_panic(expected = "escapes")]
    fn offsets_of_escaping_subbox_panics() {
        let l = Layout::new(Box3::from_size(IntVect::splat(2)));
        l.offsets_of(&Box3::from_size(IntVect::splat(3)));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_box_layout_panics() {
        Layout::new(Box3::EMPTY);
    }

    proptest! {
        /// offset() is a bijection from cells to 0..len().
        #[test]
        fn prop_offset_bijective(
            lo in proptest::array::uniform3(-8i64..8),
            size in proptest::array::uniform3(1i64..6),
        ) {
            let lo = IntVect(lo);
            let bx = Box3::new(lo, lo + IntVect(size) - IntVect::UNIT);
            let l = Layout::new(bx);
            let mut seen = vec![false; l.len()];
            for iv in bx.iter() {
                let o = l.offset(iv);
                prop_assert!(o < l.len());
                prop_assert!(!seen[o], "offset {o} hit twice");
                seen[o] = true;
                prop_assert_eq!(l.cell_at(o), iv);
            }
            prop_assert!(seen.into_iter().all(|b| b));
        }
    }
}
