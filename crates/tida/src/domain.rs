//! Problem domains and their decomposition into regions.
//!
//! A [`Domain`] is a box of cells plus per-dimension periodicity. A
//! [`Decomposition`] partitions it into a regular grid of *regions* — the
//! paper's physically-separated data partitions and its unit of host<->device
//! transfer. [`Decomposition::ghost_patches`] computes, once, the geometry of
//! every ghost-cell update: which cells of which region are filled from
//! which neighbour (possibly across a periodic boundary), which is exactly
//! the index information the paper's `TileAcc` computes on the host while
//! the device updates other ghost sets (§IV-B-6).

use crate::box3::Box3;
use crate::ivec::IntVect;
use serde::{Deserialize, Serialize};

/// A problem domain: the index box plus periodicity flags per dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Domain {
    pub bx: Box3,
    pub periodic: [bool; 3],
}

impl Domain {
    /// Fully periodic domain over `bx` (the evaluation kernels' setting).
    pub fn periodic(bx: Box3) -> Domain {
        Domain {
            bx,
            periodic: [true; 3],
        }
    }

    /// Non-periodic domain over `bx`.
    pub fn closed(bx: Box3) -> Domain {
        Domain {
            bx,
            periodic: [false; 3],
        }
    }

    /// Periodic cube of side `n` — the paper's `384³` / `512³` setups.
    pub fn periodic_cube(n: i64) -> Domain {
        Domain::periodic(Box3::cube(n))
    }
}

/// How to partition a domain into regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionSpec {
    /// Regions of (at most) this size per dimension.
    Size(IntVect),
    /// This many regions, as contiguous slabs along z — the natural shape
    /// for transfer pipelining (the paper's "16 regions").
    Count(usize),
    /// An explicit regions-per-dimension grid.
    Grid([usize; 3]),
    /// As many z-slabs as needed so that no region's *grown* buffer (with
    /// the given ghost width) exceeds this many bytes — the out-of-core
    /// sizing helper: pick a budget of, say, a third of device memory and
    /// the decomposition fits the staging pipeline automatically.
    MaxBytes { bytes: u64, ghost: i64 },
}

/// Which ghost cells an exchange fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExchangeMode {
    /// Face neighbours only — sufficient for the paper's 7-point heat
    /// stencil (each cell reads its 6 nearest neighbours).
    Faces,
    /// Faces, edges and corners (26 neighbours) — for wider stencils.
    Full,
}

/// One ghost-cell update: fill `dst_box` (cells in `dst_region`'s grown box)
/// from `src_region`, where the source cell of `c` is `c - shift`
/// (`shift` is the periodic image translation; zero inside the domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GhostPatch {
    pub dst_region: usize,
    pub src_region: usize,
    pub dst_box: Box3,
    pub shift: IntVect,
}

impl GhostPatch {
    /// Number of ghost cells this patch fills.
    pub fn num_cells(&self) -> u64 {
        self.dst_box.num_cells()
    }
}

/// A regular decomposition of a domain into regions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decomposition {
    domain: Domain,
    /// Regions per dimension.
    grid: [i64; 3],
    /// Region valid boxes; id = cx + gx*(cy + gy*cz).
    boxes: Vec<Box3>,
}

impl Decomposition {
    pub fn new(domain: Domain, spec: RegionSpec) -> Decomposition {
        let extent = domain.bx.size();
        let grid: [i64; 3] = match spec {
            RegionSpec::Size(size) => {
                assert!(
                    size.all_ge(IntVect::UNIT),
                    "region size must be positive, got {size}"
                );
                [
                    (extent.x() + size.x() - 1) / size.x(),
                    (extent.y() + size.y() - 1) / size.y(),
                    (extent.z() + size.z() - 1) / size.z(),
                ]
            }
            RegionSpec::Count(n) => {
                assert!(n >= 1, "region count must be at least 1");
                assert!(
                    n as i64 <= extent.z(),
                    "cannot cut {} z-slabs out of a z-extent of {}",
                    n,
                    extent.z()
                );
                [1, 1, n as i64]
            }
            RegionSpec::MaxBytes { bytes, ghost } => {
                assert!(bytes > 0, "byte budget must be positive");
                assert!(ghost >= 0, "ghost width cannot be negative");
                // Find the smallest z-slab count whose grown buffers fit.
                let ez = extent.z();
                let mut count = 1i64;
                loop {
                    // The largest slab has ceil(ez / count) z-cells.
                    let zc = (ez + count - 1) / count;
                    let grown =
                        (extent.x() + 2 * ghost) * (extent.y() + 2 * ghost) * (zc + 2 * ghost);
                    if (grown as u64) * 8 <= bytes {
                        break;
                    }
                    assert!(
                        count < ez,
                        "even single-z-plane regions exceed the {bytes}-byte budget"
                    );
                    count += 1;
                }
                [1, 1, count]
            }
            RegionSpec::Grid(g) => {
                let g = [g[0] as i64, g[1] as i64, g[2] as i64];
                for d in 0..3 {
                    assert!(g[d] >= 1, "grid must be positive in dim {d}");
                    assert!(
                        g[d] <= extent[d],
                        "grid of {} exceeds extent {} in dim {d}",
                        g[d],
                        extent[d]
                    );
                }
                g
            }
        };

        // Balanced per-dimension boundaries: the first (extent % grid)
        // regions get one extra cell.
        let bounds: Vec<Vec<(i64, i64)>> = (0..3)
            .map(|d| {
                let e = extent[d];
                let p = grid[d];
                let base = e / p;
                let rem = e % p;
                let mut lo = domain.bx.lo()[d];
                (0..p)
                    .map(|i| {
                        let len = base + if i < rem { 1 } else { 0 };
                        let pair = (lo, lo + len - 1);
                        lo += len;
                        pair
                    })
                    .collect()
            })
            .collect();

        let mut boxes = Vec::with_capacity((grid[0] * grid[1] * grid[2]) as usize);
        for cz in 0..grid[2] {
            for cy in 0..grid[1] {
                for cx in 0..grid[0] {
                    let (x0, x1) = bounds[0][cx as usize];
                    let (y0, y1) = bounds[1][cy as usize];
                    let (z0, z1) = bounds[2][cz as usize];
                    boxes.push(Box3::new(
                        IntVect::new(x0, y0, z0),
                        IntVect::new(x1, y1, z1),
                    ));
                }
            }
        }
        Decomposition {
            domain,
            grid,
            boxes,
        }
    }

    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Regions per dimension.
    pub fn grid(&self) -> [i64; 3] {
        self.grid
    }

    pub fn num_regions(&self) -> usize {
        self.boxes.len()
    }

    /// Valid box of region `id`.
    pub fn region_box(&self, id: usize) -> Box3 {
        self.boxes[id]
    }

    /// All region valid boxes, in id order.
    pub fn region_boxes(&self) -> &[Box3] {
        &self.boxes
    }

    /// Deepest ghost shell a single exchange can fill: the thinnest region
    /// extent over every region and dimension. Patches come from the 26
    /// immediate neighbours, so a halo wider than this would need cells
    /// that live in a neighbour's neighbour. Temporal blocking uses this to
    /// cap the fusion depth `k` (a depth-`k` fused step needs a depth-`k`
    /// halo).
    pub fn max_ghost_depth(&self) -> i64 {
        self.boxes
            .iter()
            .flat_map(|b| (0..3).map(|d| b.size()[d]))
            .min()
            .expect("decomposition has regions")
    }

    /// Grid coordinate of region `id`.
    pub fn grid_coord(&self, id: usize) -> IntVect {
        let id = id as i64;
        assert!(id < self.grid[0] * self.grid[1] * self.grid[2]);
        IntVect::new(
            id % self.grid[0],
            (id / self.grid[0]) % self.grid[1],
            id / (self.grid[0] * self.grid[1]),
        )
    }

    /// Region id at a grid coordinate.
    pub fn region_at(&self, coord: IntVect) -> usize {
        for d in 0..3 {
            assert!(
                coord[d] >= 0 && coord[d] < self.grid[d],
                "grid coordinate {coord} out of grid {:?}",
                self.grid
            );
        }
        (coord.x() + self.grid[0] * (coord.y() + self.grid[1] * coord.z())) as usize
    }

    /// Region whose valid box contains `iv`.
    pub fn region_containing(&self, iv: IntVect) -> Option<usize> {
        if !self.domain.bx.contains(iv) {
            return None;
        }
        self.boxes.iter().position(|b| b.contains(iv))
    }

    /// Compute every ghost patch for ghost width `g`.
    ///
    /// For each region and each neighbour offset (6 in `Faces` mode, 26 in
    /// `Full`), the patch is the intersection of the region's grown box with
    /// the (possibly periodically shifted) image of the neighbour's valid
    /// box. Non-periodic out-of-domain offsets produce no patch (physical
    /// boundary cells are the application's responsibility).
    pub fn ghost_patches(&self, g: i64, mode: ExchangeMode) -> Vec<GhostPatch> {
        assert!(g > 0, "ghost width must be positive");
        // Patches come from the 26 immediate neighbours, so a ghost shell
        // deeper than the thinnest region cannot be filled (its far cells
        // live in a neighbour's neighbour).
        let min_extent = self.max_ghost_depth();
        assert!(
            g <= min_extent,
            "ghost width {g} exceeds the thinnest region extent {min_extent}; \
             use fewer regions or a narrower halo"
        );
        let extent = self.domain.bx.size();
        let mut patches = Vec::new();
        for dst in 0..self.num_regions() {
            let coord = self.grid_coord(dst);
            let grown = self.boxes[dst].grow(g);
            for dz in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let nonzero = (dx != 0) as u32 + (dy != 0) as u32 + (dz != 0) as u32;
                        let take = match mode {
                            ExchangeMode::Faces => nonzero == 1,
                            ExchangeMode::Full => nonzero >= 1,
                        };
                        if !take {
                            continue;
                        }
                        let off = IntVect::new(dx, dy, dz);
                        let mut wrapped = IntVect::ZERO;
                        let mut shift = IntVect::ZERO;
                        let mut ok = true;
                        for d in 0..3 {
                            let nc = coord[d] + off[d];
                            if nc >= 0 && nc < self.grid[d] {
                                wrapped[d] = nc;
                            } else if self.domain.periodic[d] {
                                let w = nc.rem_euclid(self.grid[d]);
                                wrapped[d] = w;
                                shift[d] = (nc - w) / self.grid[d] * extent[d];
                            } else {
                                ok = false;
                                break;
                            }
                        }
                        if !ok {
                            continue;
                        }
                        let src = self.region_at(wrapped);
                        let image = self.boxes[src].shift(shift);
                        let patch = grown.intersect(&image);
                        if !patch.is_empty() {
                            patches.push(GhostPatch {
                                dst_region: dst,
                                src_region: src,
                                dst_box: patch,
                                shift,
                            });
                        }
                    }
                }
            }
        }
        patches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_spec_cuts_z_slabs() {
        let d = Decomposition::new(Domain::periodic_cube(16), RegionSpec::Count(4));
        assert_eq!(d.grid(), [1, 1, 4]);
        assert_eq!(d.num_regions(), 4);
        for (i, b) in d.region_boxes().iter().enumerate() {
            assert_eq!(b.size(), IntVect::new(16, 16, 4), "region {i}");
        }
        assert_eq!(d.region_box(1).lo().z(), 4);
    }

    #[test]
    fn size_spec_covers_with_remainder() {
        let d = Decomposition::new(
            Domain::periodic_cube(10),
            RegionSpec::Size(IntVect::new(4, 10, 10)),
        );
        assert_eq!(d.grid(), [3, 1, 1]);
        // Balanced split: 4+3+3.
        assert_eq!(d.region_box(0).size().x(), 4);
        assert_eq!(d.region_box(1).size().x(), 3);
        assert_eq!(d.region_box(2).size().x(), 3);
    }

    #[test]
    fn grid_spec_and_coord_roundtrip() {
        let d = Decomposition::new(Domain::periodic_cube(8), RegionSpec::Grid([2, 2, 2]));
        assert_eq!(d.num_regions(), 8);
        for id in 0..8 {
            assert_eq!(d.region_at(d.grid_coord(id)), id);
        }
    }

    #[test]
    fn regions_partition_domain() {
        let dom = Domain::periodic_cube(12);
        let d = Decomposition::new(dom, RegionSpec::Grid([3, 2, 2]));
        let total: u64 = d.region_boxes().iter().map(|b| b.num_cells()).sum();
        assert_eq!(total, dom.bx.num_cells());
        for (i, a) in d.region_boxes().iter().enumerate() {
            assert!(dom.bx.contains_box(a));
            for b in &d.region_boxes()[i + 1..] {
                assert!(a.intersect(b).is_empty());
            }
        }
    }

    #[test]
    fn region_containing_finds_owner() {
        let d = Decomposition::new(Domain::periodic_cube(8), RegionSpec::Grid([2, 2, 2]));
        assert_eq!(d.region_containing(IntVect::new(0, 0, 0)), Some(0));
        assert_eq!(d.region_containing(IntVect::new(7, 7, 7)), Some(7));
        assert_eq!(d.region_containing(IntVect::new(8, 0, 0)), None);
    }

    #[test]
    fn faces_mode_covers_face_ghosts_exactly() {
        let d = Decomposition::new(Domain::periodic_cube(8), RegionSpec::Count(4));
        let patches = d.ghost_patches(1, ExchangeMode::Faces);
        // z-slabs in a z-periodic domain: every region has a low-z and a
        // high-z neighbour; x/y faces are self-periodic images.
        for r in 0..4 {
            let mine: Vec<&GhostPatch> = patches.iter().filter(|p| p.dst_region == r).collect();
            assert_eq!(mine.len(), 6, "region {r} should have 6 face patches");
            // Each face patch has the valid box's extent in the orthogonal dims.
            let covered: u64 = mine.iter().map(|p| p.num_cells()).sum();
            // 8x8 faces in z (2 of them) + 8x2x... compute expected:
            // valid box is 8x8x2, ghost 1: face ghosts = 2*(8*8) + 2*(8*2) + 2*(8*2)
            assert_eq!(covered, 2 * 64 + 4 * 16);
        }
    }

    #[test]
    fn full_mode_covers_entire_ghost_shell() {
        let d = Decomposition::new(Domain::periodic_cube(8), RegionSpec::Grid([2, 2, 2]));
        let g = 1;
        let patches = d.ghost_patches(g, ExchangeMode::Full);
        for r in 0..d.num_regions() {
            let valid = d.region_box(r);
            let grown = valid.grow(g);
            let shell = grown.num_cells() - valid.num_cells();
            let covered: u64 = patches
                .iter()
                .filter(|p| p.dst_region == r)
                .map(|p| p.num_cells())
                .sum();
            assert_eq!(covered, shell, "region {r} ghost shell fully covered");
            // Patches must be pairwise disjoint and inside the shell.
            let mine: Vec<&GhostPatch> = patches.iter().filter(|p| p.dst_region == r).collect();
            for (i, a) in mine.iter().enumerate() {
                assert!(grown.contains_box(&a.dst_box));
                assert!(a.dst_box.intersect(&valid).is_empty());
                for b in &mine[i + 1..] {
                    assert!(a.dst_box.intersect(&b.dst_box).is_empty());
                }
            }
        }
    }

    #[test]
    fn max_ghost_depth_is_thinnest_extent() {
        let d = Decomposition::new(Domain::periodic_cube(16), RegionSpec::Count(4));
        assert_eq!(d.max_ghost_depth(), 4);
        let d = Decomposition::new(Domain::periodic_cube(8), RegionSpec::Grid([2, 2, 2]));
        assert_eq!(d.max_ghost_depth(), 4);
        // Uneven split: 10 over 3 x-cuts gives a thinnest extent of 3.
        let d = Decomposition::new(
            Domain::periodic_cube(10),
            RegionSpec::Size(IntVect::new(4, 10, 10)),
        );
        assert_eq!(d.max_ghost_depth(), 3);
    }

    #[test]
    fn full_mode_covers_ghost_shell_at_every_legal_depth() {
        // Depth-k halos for temporal blocking: at every depth up to the
        // thinnest region extent, the Full exchange must tile the whole
        // shell exactly once (deeper shells pull corner/edge wedges from
        // diagonal neighbours, so Faces mode is not enough).
        let d = Decomposition::new(Domain::periodic_cube(16), RegionSpec::Count(4));
        for g in 1..=d.max_ghost_depth() {
            let patches = d.ghost_patches(g, ExchangeMode::Full);
            for r in 0..d.num_regions() {
                let valid = d.region_box(r);
                let grown = valid.grow(g);
                let shell = grown.num_cells() - valid.num_cells();
                let mine: Vec<&GhostPatch> = patches.iter().filter(|p| p.dst_region == r).collect();
                let covered: u64 = mine.iter().map(|p| p.num_cells()).sum();
                assert_eq!(covered, shell, "depth {g}, region {r}: shell covered");
                for (i, a) in mine.iter().enumerate() {
                    assert!(grown.contains_box(&a.dst_box));
                    assert!(a.dst_box.intersect(&valid).is_empty());
                    for b in &mine[i + 1..] {
                        assert!(a.dst_box.intersect(&b.dst_box).is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn depth_k_patch_sources_stay_in_source_valid_boxes() {
        // The per-cell source index `c - shift` must resolve inside the
        // source region's valid box even for the widest legal halo.
        let d = Decomposition::new(Domain::periodic_cube(16), RegionSpec::Grid([2, 1, 2]));
        for g in [2, 4, 8] {
            for p in d.ghost_patches(g, ExchangeMode::Full) {
                let src_box = d.region_box(p.src_region);
                for c in p.dst_box.iter() {
                    assert!(src_box.contains(c - p.shift), "depth {g}: ghost {c}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "ghost width")]
    fn ghost_deeper_than_thinnest_region_panics() {
        let d = Decomposition::new(Domain::periodic_cube(16), RegionSpec::Count(4));
        let _ = d.ghost_patches(5, ExchangeMode::Full);
    }

    #[test]
    fn patch_sources_map_into_source_valid_boxes() {
        let d = Decomposition::new(Domain::periodic_cube(8), RegionSpec::Grid([2, 1, 2]));
        for p in d.ghost_patches(1, ExchangeMode::Full) {
            let src_box = d.region_box(p.src_region);
            for c in p.dst_box.iter() {
                assert!(
                    src_box.contains(c - p.shift),
                    "ghost {c} of region {} maps outside source {}",
                    p.dst_region,
                    p.src_region
                );
            }
        }
    }

    #[test]
    fn non_periodic_boundaries_have_no_patches() {
        let d = Decomposition::new(Domain::closed(Box3::cube(8)), RegionSpec::Count(2));
        let patches = d.ghost_patches(1, ExchangeMode::Faces);
        // Only the interior z face between the two slabs, in each direction.
        assert_eq!(patches.len(), 2);
        assert!(patches.iter().all(|p| p.shift == IntVect::ZERO));
    }

    #[test]
    fn single_region_periodic_self_exchange() {
        let d = Decomposition::new(Domain::periodic_cube(4), RegionSpec::Count(1));
        let patches = d.ghost_patches(1, ExchangeMode::Faces);
        assert_eq!(patches.len(), 6);
        assert!(patches
            .iter()
            .all(|p| p.src_region == 0 && p.dst_region == 0));
        assert!(patches.iter().all(|p| p.shift != IntVect::ZERO));
    }

    #[test]
    #[should_panic(expected = "z-slabs")]
    fn count_beyond_extent_panics() {
        Decomposition::new(Domain::periodic_cube(4), RegionSpec::Count(5));
    }

    #[test]
    fn max_bytes_spec_respects_budget() {
        let ghost = 1;
        let budget = 100 * 1024u64; // 100 KiB
        let d = Decomposition::new(
            Domain::periodic_cube(32),
            RegionSpec::MaxBytes {
                bytes: budget,
                ghost,
            },
        );
        assert_eq!(d.grid()[0], 1);
        assert_eq!(d.grid()[1], 1);
        for b in d.region_boxes() {
            let grown_cells = b.grow(ghost).num_cells();
            assert!(grown_cells * 8 <= budget, "region over budget");
        }
        // And it is the *smallest* such count: one fewer slab must overflow.
        let count = d.grid()[2];
        if count > 1 {
            let fewer = Decomposition::new(
                Domain::periodic_cube(32),
                RegionSpec::Count((count - 1) as usize),
            );
            let max_grown = fewer
                .region_boxes()
                .iter()
                .map(|b| b.grow(ghost).num_cells())
                .max()
                .unwrap();
            assert!(max_grown * 8 > budget);
        }
    }

    #[test]
    fn max_bytes_huge_budget_gives_one_region() {
        let d = Decomposition::new(
            Domain::periodic_cube(8),
            RegionSpec::MaxBytes {
                bytes: u64::MAX,
                ghost: 1,
            },
        );
        assert_eq!(d.num_regions(), 1);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn max_bytes_impossible_budget_panics() {
        Decomposition::new(
            Domain::periodic_cube(8),
            RegionSpec::MaxBytes {
                bytes: 64,
                ghost: 1,
            },
        );
    }
}
