//! `TileArray`: the decomposed, ghost-padded data container.
//!
//! The TiDA `tileArray` allocates one physically separate buffer per region
//! (each grown by the ghost width), partitions the data, keeps the region
//! list, and performs ghost-cell updates (§IV-A). This is the host-side
//! container; `tida-acc` adds the device mirror on top.

use crate::box3::Box3;
use crate::domain::{Decomposition, ExchangeMode, GhostPatch};
use crate::ivec::IntVect;
use crate::layout::Layout;
use crate::view::{with_view, with_view_mut};
use memslab::Slab;
use std::sync::Arc;

/// One region: a valid box, its ghost-grown box, the layout of the grown
/// box, and the backing slab.
#[derive(Debug, Clone)]
pub struct Region {
    pub id: usize,
    pub valid: Box3,
    pub grown: Box3,
    pub layout: Layout,
    pub slab: Slab,
}

impl Region {
    /// Size of this region's buffer in bytes.
    pub fn bytes(&self) -> u64 {
        self.slab.bytes()
    }
}

/// A decomposed array: one ghost-padded buffer per region.
#[derive(Clone)]
pub struct TileArray {
    decomp: Arc<Decomposition>,
    ghost: i64,
    mode: ExchangeMode,
    regions: Vec<Region>,
    patches: Arc<Vec<GhostPatch>>,
}

impl TileArray {
    /// Allocate a tile array over `decomp` with the given ghost width.
    ///
    /// `backed = false` creates virtual slabs (timing-only runs).
    pub fn new(decomp: Arc<Decomposition>, ghost: i64, mode: ExchangeMode, backed: bool) -> Self {
        assert!(ghost >= 0, "ghost width cannot be negative");
        let regions: Vec<Region> = decomp
            .region_boxes()
            .iter()
            .enumerate()
            .map(|(id, &valid)| {
                let grown = valid.grow(ghost);
                let layout = Layout::new(grown);
                Region {
                    id,
                    valid,
                    grown,
                    layout,
                    slab: Slab::new(layout.len(), backed),
                }
            })
            .collect();
        let patches = if ghost > 0 {
            Arc::new(decomp.ghost_patches(ghost, mode))
        } else {
            Arc::new(Vec::new())
        };
        TileArray {
            decomp,
            ghost,
            mode,
            regions,
            patches,
        }
    }

    pub fn decomp(&self) -> &Arc<Decomposition> {
        &self.decomp
    }

    pub fn ghost(&self) -> i64 {
        self.ghost
    }

    pub fn exchange_mode(&self) -> ExchangeMode {
        self.mode
    }

    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    pub fn region(&self, id: usize) -> &Region {
        &self.regions[id]
    }

    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The precomputed ghost-patch geometry.
    pub fn patches(&self) -> &[GhostPatch] {
        &self.patches
    }

    /// Shared handle to the precomputed ghost-patch geometry. The patch
    /// list is immutable after construction, so exchange loops that need an
    /// owned handle (to sidestep borrowing the array while applying
    /// patches) clone this `Arc` instead of copying the `Vec` — the ghost
    /// hot path must not allocate per exchange.
    pub fn patches_arc(&self) -> Arc<Vec<GhostPatch>> {
        Arc::clone(&self.patches)
    }

    /// Largest region buffer size in bytes — the device slot size TiDA-acc
    /// allocates so any region can occupy any slot.
    pub fn max_region_bytes(&self) -> u64 {
        self.regions.iter().map(Region::bytes).max().unwrap_or(0)
    }

    /// Total bytes across all region buffers (including ghosts).
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(Region::bytes).sum()
    }

    /// True when the backing slabs are virtual.
    pub fn is_virtual(&self) -> bool {
        self.regions.iter().any(|r| r.slab.is_virtual())
    }

    /// Fill every *valid* cell with `f(cell)`. Ghosts are left untouched;
    /// call [`TileArray::fill_boundary`] (or let the accelerator path do it)
    /// to make them coherent.
    pub fn fill_valid(&self, f: impl Fn(IntVect) -> f64) {
        for r in &self.regions {
            with_view_mut(&r.slab, r.layout, |mut v| {
                for iv in r.valid.iter() {
                    v.set(iv, f(iv));
                }
            });
        }
    }

    /// Fill every cell of every grown box with `f(cell)` — including ghost
    /// cells, evaluated at their (possibly out-of-domain) coordinates.
    pub fn fill_grown(&self, f: impl Fn(IntVect) -> f64) {
        for r in &self.regions {
            with_view_mut(&r.slab, r.layout, |mut v| {
                for iv in r.grown.iter() {
                    v.set(iv, f(iv));
                }
            });
        }
    }

    /// Host-side ghost exchange: apply every patch (data effect only; the
    /// simulated cost of exchanges is charged by the layer that drives
    /// them).
    pub fn fill_boundary(&self) {
        for p in self.patches.iter() {
            self.apply_patch(p);
        }
    }

    /// Apply one ghost patch on the host.
    pub fn apply_patch(&self, p: &GhostPatch) {
        let dst = &self.regions[p.dst_region];
        let src = &self.regions[p.src_region];
        if dst.slab.is_virtual() || src.slab.is_virtual() {
            // Timing-only arrays move no data: skip the index-list build,
            // which is O(cells) and dominates unbacked exchange cost.
            return;
        }
        let dst_idx = dst.layout.offsets_of(&p.dst_box);
        let src_idx: Vec<usize> = p
            .dst_box
            .iter()
            .map(|c| src.layout.offset(c - p.shift))
            .collect();
        memslab::gather(&dst.slab, &dst_idx, &src.slab, &src_idx);
    }

    /// Value at a valid cell (`None` when virtual or out of domain).
    pub fn value(&self, iv: IntVect) -> Option<f64> {
        let rid = self.decomp.region_containing(iv)?;
        let r = &self.regions[rid];
        r.slab.get(r.layout.offset(iv))
    }

    /// Set a valid cell (no-op when virtual; panics out of domain).
    pub fn set_value(&self, iv: IntVect, v: f64) {
        let rid = self
            .decomp
            .region_containing(iv)
            .unwrap_or_else(|| panic!("cell {iv} outside domain"));
        let r = &self.regions[rid];
        r.slab.set(r.layout.offset(iv), v);
    }

    /// Assemble the valid data into one dense domain-ordered vector
    /// (`None` when virtual). For validation against golden references.
    pub fn to_dense(&self) -> Option<Vec<f64>> {
        if self.is_virtual() {
            return None;
        }
        let dl = Layout::new(self.decomp.domain().bx);
        let mut out = vec![0.0; dl.len()];
        for r in &self.regions {
            with_view(&r.slab, r.layout, |v| {
                for iv in r.valid.iter() {
                    out[dl.offset(iv)] = v.at(iv);
                }
            });
        }
        Some(out)
    }

    /// Scatter a dense domain-ordered vector into the valid cells.
    pub fn from_dense(&self, data: &[f64]) {
        let dl = Layout::new(self.decomp.domain().bx);
        assert_eq!(data.len(), dl.len(), "dense data size mismatch");
        for r in &self.regions {
            with_view_mut(&r.slab, r.layout, |mut v| {
                for iv in r.valid.iter() {
                    v.set(iv, data[dl.offset(iv)]);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Domain, RegionSpec};

    fn decomp(n: i64, spec: RegionSpec) -> Arc<Decomposition> {
        Arc::new(Decomposition::new(Domain::periodic_cube(n), spec))
    }

    #[test]
    fn regions_are_ghost_grown() {
        let a = TileArray::new(
            decomp(8, RegionSpec::Count(2)),
            1,
            ExchangeMode::Faces,
            true,
        );
        assert_eq!(a.num_regions(), 2);
        let r = a.region(0);
        assert_eq!(r.valid.size(), IntVect::new(8, 8, 4));
        assert_eq!(r.grown.size(), IntVect::new(10, 10, 6));
        assert_eq!(r.slab.len(), 600);
        assert_eq!(r.bytes(), 4800);
    }

    #[test]
    fn patches_arc_shares_the_precomputed_list() {
        let a = TileArray::new(
            decomp(8, RegionSpec::Count(2)),
            1,
            ExchangeMode::Faces,
            true,
        );
        let h1 = a.patches_arc();
        let h2 = a.patches_arc();
        // Same allocation every time: the exchange hot path clones a
        // refcount, never the patch list itself.
        assert!(Arc::ptr_eq(&h1, &h2));
        assert_eq!(h1.len(), a.patches().len());
        let clone = a.clone();
        assert!(Arc::ptr_eq(&h1, &clone.patches_arc()));
    }

    #[test]
    fn fill_and_read_back() {
        let a = TileArray::new(
            decomp(4, RegionSpec::Grid([2, 1, 1])),
            1,
            ExchangeMode::Faces,
            true,
        );
        a.fill_valid(|iv| (iv.x() * 100 + iv.y() * 10 + iv.z()) as f64);
        assert_eq!(a.value(IntVect::new(3, 2, 1)), Some(321.0));
        a.set_value(IntVect::new(3, 2, 1), -1.0);
        assert_eq!(a.value(IntVect::new(3, 2, 1)), Some(-1.0));
        assert_eq!(a.value(IntVect::new(9, 0, 0)), None);
    }

    #[test]
    fn dense_roundtrip() {
        let a = TileArray::new(
            decomp(6, RegionSpec::Grid([2, 3, 1])),
            1,
            ExchangeMode::Full,
            true,
        );
        let data: Vec<f64> = (0..216).map(|i| i as f64).collect();
        a.from_dense(&data);
        assert_eq!(a.to_dense().unwrap(), data);
    }

    #[test]
    fn fill_boundary_matches_periodic_neighbors() {
        let a = TileArray::new(
            decomp(4, RegionSpec::Grid([2, 2, 1])),
            1,
            ExchangeMode::Full,
            true,
        );
        a.fill_valid(|iv| (iv.x() + 10 * iv.y() + 100 * iv.z()) as f64);
        a.fill_boundary();
        let n = 4i64;
        for r in a.regions() {
            with_view(&r.slab, r.layout, |v| {
                for iv in r.grown.iter() {
                    // Periodic wrap of the coordinate gives the expected value.
                    let w = IntVect::new(
                        iv.x().rem_euclid(n),
                        iv.y().rem_euclid(n),
                        iv.z().rem_euclid(n),
                    );
                    let expect = (w.x() + 10 * w.y() + 100 * w.z()) as f64;
                    assert_eq!(v.at(iv), expect, "region {} cell {iv}", r.id);
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn faces_mode_fills_face_ghosts_only() {
        let a = TileArray::new(
            decomp(4, RegionSpec::Count(2)),
            1,
            ExchangeMode::Faces,
            true,
        );
        a.fill_grown(|_| f64::NAN); // poison
        a.fill_valid(|_| 1.0);
        a.fill_boundary();
        let r = a.region(0);
        with_view(&r.slab, r.layout, |v| {
            // Face ghost: filled.
            assert_eq!(v.at(IntVect::new(0, 0, -1)), 1.0);
            assert_eq!(v.at(IntVect::new(-1, 0, 0)), 1.0);
            // Corner ghost: untouched in Faces mode.
            assert!(v.at(IntVect::new(-1, -1, -1)).is_nan());
        })
        .unwrap();
    }

    #[test]
    fn virtual_array_reports_and_skips() {
        let a = TileArray::new(
            decomp(4, RegionSpec::Count(2)),
            1,
            ExchangeMode::Faces,
            false,
        );
        assert!(a.is_virtual());
        a.fill_valid(|_| 1.0);
        a.fill_boundary();
        assert_eq!(a.to_dense(), None);
        assert_eq!(a.value(IntVect::ZERO), None);
    }

    #[test]
    fn max_region_bytes_uniform_slabs() {
        let a = TileArray::new(
            decomp(8, RegionSpec::Count(4)),
            1,
            ExchangeMode::Faces,
            false,
        );
        assert_eq!(a.max_region_bytes(), a.region(0).bytes());
        assert_eq!(a.total_bytes(), 4 * a.region(0).bytes());
    }

    #[test]
    fn zero_ghost_array_has_no_patches() {
        let a = TileArray::new(
            decomp(4, RegionSpec::Count(2)),
            0,
            ExchangeMode::Faces,
            true,
        );
        assert!(a.patches().is_empty());
        assert_eq!(a.region(0).grown, a.region(0).valid);
    }
}
