//! Geometric multigrid for the periodic Poisson problem.
//!
//! The paper's lineage (TiDA → BoxLib) is adaptive/multilevel structured
//! grids; this module provides the level-transfer operators and a dense
//! reference V-cycle so the tiled GPU pipeline can run the finest level's
//! smoothing (the bulk of the work) while coarse grids are solved on the
//! host — the standard split for GPU multigrid of this era.
//!
//! All grids are periodic cubes with unit spacing at every level (the
//! coarse-grid operator is the rediscretized 7-point Laplacian with spacing
//! `2h`, folded into the right-hand side scaling).

use tida::{Box3, IntVect, Layout};

/// Full-weighting restriction: each coarse cell is the average of its 2³
/// fine children. Requires `nf == 2 * nc`.
pub fn restrict_full(coarse: &mut [f64], fine: &[f64], nc: i64) {
    let nf = 2 * nc;
    let lc = Layout::new(Box3::cube(nc));
    let lf = Layout::new(Box3::cube(nf));
    assert_eq!(coarse.len(), lc.len());
    assert_eq!(fine.len(), lf.len());
    for civ in Box3::cube(nc).iter() {
        let base = IntVect::new(2 * civ.x(), 2 * civ.y(), 2 * civ.z());
        let mut acc = 0.0;
        for dz in 0..2 {
            for dy in 0..2 {
                for dx in 0..2 {
                    acc += fine[lf.offset(base + IntVect::new(dx, dy, dz))];
                }
            }
        }
        coarse[lc.offset(civ)] = acc / 8.0;
    }
}

/// Piecewise-constant prolongation, added as a correction: every fine child
/// receives its coarse parent's value.
pub fn prolongate_add(fine: &mut [f64], coarse: &[f64], nc: i64) {
    let nf = 2 * nc;
    let lc = Layout::new(Box3::cube(nc));
    let lf = Layout::new(Box3::cube(nf));
    assert_eq!(coarse.len(), lc.len());
    assert_eq!(fine.len(), lf.len());
    for fiv in Box3::cube(nf).iter() {
        let parent = IntVect::new(fiv.x() / 2, fiv.y() / 2, fiv.z() / 2);
        fine[lf.offset(fiv)] += coarse[lc.offset(parent)];
    }
}

/// `sweeps` in-place Jacobi sweeps on a dense periodic cube with grid
/// spacing `h` (`u <- (Σ nbr u − h² f) / 6`).
pub fn jacobi_sweeps(u: &mut Vec<f64>, f: &[f64], n: i64, h2: f64, sweeps: usize) {
    let l = Layout::new(Box3::cube(n));
    let wrap = |iv: IntVect| {
        IntVect::new(
            iv.x().rem_euclid(n),
            iv.y().rem_euclid(n),
            iv.z().rem_euclid(n),
        )
    };
    let mut next = vec![0.0; u.len()];
    for _ in 0..sweeps {
        for iv in Box3::cube(n).iter() {
            let sum = u[l.offset(wrap(iv + IntVect::new(1, 0, 0)))]
                + u[l.offset(wrap(iv - IntVect::new(1, 0, 0)))]
                + u[l.offset(wrap(iv + IntVect::new(0, 1, 0)))]
                + u[l.offset(wrap(iv - IntVect::new(0, 1, 0)))]
                + u[l.offset(wrap(iv + IntVect::new(0, 0, 1)))]
                + u[l.offset(wrap(iv - IntVect::new(0, 0, 1)))];
            next[l.offset(iv)] = (sum - h2 * f[l.offset(iv)]) / 6.0;
        }
        std::mem::swap(u, &mut next);
    }
}

/// Residual `r = f − ∇²u / h²`... here with the Laplacian scaled by `1/h²`:
/// `r = f − (Σ nbr u − 6u) / h²`.
pub fn residual_dense(r: &mut [f64], u: &[f64], f: &[f64], n: i64, h2: f64) {
    let l = Layout::new(Box3::cube(n));
    let wrap = |iv: IntVect| {
        IntVect::new(
            iv.x().rem_euclid(n),
            iv.y().rem_euclid(n),
            iv.z().rem_euclid(n),
        )
    };
    for iv in Box3::cube(n).iter() {
        let o = l.offset(iv);
        let lap = u[l.offset(wrap(iv + IntVect::new(1, 0, 0)))]
            + u[l.offset(wrap(iv - IntVect::new(1, 0, 0)))]
            + u[l.offset(wrap(iv + IntVect::new(0, 1, 0)))]
            + u[l.offset(wrap(iv - IntVect::new(0, 1, 0)))]
            + u[l.offset(wrap(iv + IntVect::new(0, 0, 1)))]
            + u[l.offset(wrap(iv - IntVect::new(0, 0, 1)))]
            - 6.0 * u[o];
        r[o] = f[o] - lap / h2;
    }
}

/// Remove the mean (periodic Poisson is defined up to a constant and only
/// solvable for mean-free right-hand sides).
pub fn project_mean_free(v: &mut [f64]) {
    let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
    for x in v.iter_mut() {
        *x -= mean;
    }
}

/// One dense V(pre, post)-cycle on level `n` with spacing `h`; coarsens by
/// 2 until `min_n`, where it smooths hard instead of recursing.
pub fn v_cycle_dense(
    u: &mut Vec<f64>,
    f: &[f64],
    n: i64,
    h2: f64,
    pre: usize,
    post: usize,
    min_n: i64,
) {
    if n <= min_n || n % 2 != 0 {
        jacobi_sweeps(u, f, n, h2, 40);
        return;
    }
    jacobi_sweeps(u, f, n, h2, pre);

    // Coarse-grid correction.
    let mut r = vec![0.0; u.len()];
    residual_dense(&mut r, u, f, n, h2);
    let nc = n / 2;
    let mut rc = vec![0.0; (nc * nc * nc) as usize];
    restrict_full(&mut rc, &r, nc);
    project_mean_free(&mut rc);
    let mut ec = vec![0.0; rc.len()];
    // Error equation on the coarse grid: A_{2h} e = r (A u = ∇²u / h², so
    // the Jacobi form below takes f = r with spacing² = 4h²).
    v_cycle_dense(&mut ec, &rc, nc, 4.0 * h2, pre, post, min_n);
    let mut e_fine = vec![0.0; u.len()];
    prolongate_add(&mut e_fine, &ec, nc);
    for (x, e) in u.iter_mut().zip(&e_fine) {
        *x += e;
    }

    jacobi_sweeps(u, f, n, h2, post);
}

/// Max-norm of the residual of `u` (convenience).
pub fn residual_norm(u: &[f64], f: &[f64], n: i64, h2: f64) -> f64 {
    let mut r = vec![0.0; u.len()];
    residual_dense(&mut r, u, f, n, h2);
    r.iter().fold(0f64, |m, &x| m.max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::manufactured_rhs;

    #[test]
    fn restriction_preserves_constants_and_mean() {
        let nc = 4;
        let nf = 8;
        let fine = vec![3.5; (nf * nf * nf) as usize];
        let mut coarse = vec![0.0; (nc * nc * nc) as usize];
        restrict_full(&mut coarse, &fine, nc);
        assert!(coarse.iter().all(|&x| (x - 3.5).abs() < 1e-14));

        // Mean preservation for arbitrary data.
        let l = Layout::new(Box3::cube(nf));
        let fine: Vec<f64> = (0..l.len()).map(|o| (o % 17) as f64).collect();
        restrict_full(&mut coarse, &fine, nc);
        let mf: f64 = fine.iter().sum::<f64>() / fine.len() as f64;
        let mc: f64 = coarse.iter().sum::<f64>() / coarse.len() as f64;
        assert!((mf - mc).abs() < 1e-12);
    }

    #[test]
    fn prolongation_of_constant_adds_constant() {
        let nc = 3;
        let nf = 6;
        let coarse = vec![2.0; (nc * nc * nc) as usize];
        let mut fine = vec![1.0; (nf * nf * nf) as usize];
        prolongate_add(&mut fine, &coarse, nc);
        assert!(fine.iter().all(|&x| (x - 3.0).abs() < 1e-14));
    }

    #[test]
    fn restrict_after_prolongate_is_identity() {
        let nc = 4;
        let lc = Layout::new(Box3::cube(nc));
        let coarse: Vec<f64> = (0..lc.len()).map(|o| (o % 7) as f64 - 3.0).collect();
        let mut fine = vec![0.0; (8 * nc * nc * nc) as usize];
        prolongate_add(&mut fine, &coarse, nc);
        let mut back = vec![0.0; coarse.len()];
        restrict_full(&mut back, &fine, nc);
        for (a, b) in coarse.iter().zip(&back) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn v_cycle_beats_plain_jacobi_per_sweep() {
        let n = 16i64;
        let f = manufactured_rhs(n);
        let cells = (n * n * n) as usize;

        // One V(3,3)-cycle ~ 6 fine sweeps + cheap coarse work.
        let mut u_mg = vec![0.0; cells];
        v_cycle_dense(&mut u_mg, &f, n, 1.0, 3, 3, 4);
        v_cycle_dense(&mut u_mg, &f, n, 1.0, 3, 3, 4);
        let r_mg = residual_norm(&u_mg, &f, n, 1.0);

        // Give plain Jacobi 3x the fine-level sweeps.
        let mut u_j = vec![0.0; cells];
        jacobi_sweeps(&mut u_j, &f, n, 1.0, 36);
        let r_j = residual_norm(&u_j, &f, n, 1.0);

        assert!(
            r_mg < 0.5 * r_j,
            "two V-cycles ({r_mg:.3e}) must beat 36 Jacobi sweeps ({r_j:.3e})"
        );
    }

    #[test]
    fn v_cycles_converge_monotonically() {
        let n = 16i64;
        let f = manufactured_rhs(n);
        let mut u = vec![0.0; (n * n * n) as usize];
        let mut last = residual_norm(&u, &f, n, 1.0);
        for _ in 0..4 {
            v_cycle_dense(&mut u, &f, n, 1.0, 2, 2, 4);
            let r = residual_norm(&u, &f, n, 1.0);
            assert!(r < last, "residual must fall each cycle: {r} !< {last}");
            last = r;
        }
    }

    #[test]
    fn jacobi_sweeps_match_module_reference() {
        // jacobi_sweeps with h2 = 1 equals jacobi::golden_run from zero.
        let n = 8i64;
        let f = manufactured_rhs(n);
        let mut u = vec![0.0; (n * n * n) as usize];
        jacobi_sweeps(&mut u, &f, n, 1.0, 7);
        assert_eq!(u, crate::jacobi::golden_run(&f, n, 7));
    }
}
