//! `kernels` — the paper's evaluation kernels and their oracles.
//!
//! * [`heat`] — the transfer-intensive 3-D heat solver (7-point stencil);
//! * [`busy`] — the compute-intensive sin/cos/sqrt benchmark;
//! * [`blur2d`] — 2-D image blur (the intro's image-processing motivation);
//! * [`gray_scott`] — two-field reaction-diffusion (multi-operand compute);
//! * [`stencil27`] — a 27-point smoother (needs full edge/corner exchange);
//! * [`jacobi`] — Poisson solver with residual reductions;
//! * [`multigrid`] — level-transfer operators + dense reference V-cycle;
//! * [`wave`] — second-order acoustic wave equation (three time levels);
//! * [`init`] — analytic initial conditions;
//! * [`norms`] — error norms for validating decomposed runs against the
//!   golden dense references.

pub mod blur2d;
pub mod busy;
pub mod gray_scott;
pub mod heat;
pub mod jacobi;
pub mod multigrid;
pub mod stencil27;
pub mod wave;

/// Analytic initial conditions used across tests, examples and benches.
pub mod init {
    use tida::IntVect;

    /// A smooth bump centred in a cube of side `n`.
    pub fn gaussian(n: i64) -> impl Fn(IntVect) -> f64 {
        let c = (n - 1) as f64 / 2.0;
        let w = (n as f64 / 4.0).max(1.0);
        move |iv: IntVect| {
            let dx = (iv.x() as f64 - c) / w;
            let dy = (iv.y() as f64 - c) / w;
            let dz = (iv.z() as f64 - c) / w;
            (-(dx * dx + dy * dy + dz * dz)).exp()
        }
    }

    /// A deterministic pseudo-random field (no `rand` dependency; stable
    /// across runs and platforms).
    pub fn hash_field(seed: u64) -> impl Fn(IntVect) -> f64 {
        move |iv: IntVect| {
            let mut h = seed
                ^ (iv.x() as u64).wrapping_mul(0x9E3779B97F4A7C15)
                ^ (iv.y() as u64).wrapping_mul(0xC2B2AE3D27D4EB4F)
                ^ (iv.z() as u64).wrapping_mul(0x165667B19E3779F9);
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51AFD7ED558CCD);
            h ^= h >> 33;
            (h % 1000) as f64 / 1000.0
        }
    }

    /// A simple ramp, handy for eyeballing layouts.
    pub fn ramp() -> impl Fn(IntVect) -> f64 {
        |iv: IntVect| iv.x() as f64 + 1e3 * iv.y() as f64 + 1e6 * iv.z() as f64
    }
}

/// Error norms between a candidate and a reference field.
pub mod norms {
    /// Maximum absolute difference.
    pub fn linf(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "norm over different-sized fields");
        a.iter()
            .zip(b)
            .fold(0f64, |m, (&x, &y)| m.max((x - y).abs()))
    }

    /// Root-mean-square difference.
    pub fn l2(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "norm over different-sized fields");
        let ss: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum();
        (ss / a.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tida::IntVect;

    #[test]
    fn gaussian_peaks_at_centre() {
        let f = init::gaussian(9);
        let centre = f(IntVect::splat(4));
        let corner = f(IntVect::ZERO);
        assert!(centre > corner);
        assert!((centre - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hash_field_deterministic_and_bounded() {
        let f = init::hash_field(42);
        let g = init::hash_field(42);
        let h = init::hash_field(43);
        let iv = IntVect::new(3, 1, 4);
        assert_eq!(f(iv), g(iv));
        assert_ne!(f(iv), h(iv));
        for x in [f(IntVect::ZERO), f(iv), f(IntVect::splat(100))] {
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn norms_basics() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.5, 2.0];
        assert_eq!(norms::linf(&a, &a), 0.0);
        assert_eq!(norms::linf(&a, &b), 1.0);
        assert!((norms::l2(&a, &b) - ((0.25f64 + 1.0) / 3.0).sqrt()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "different-sized")]
    fn norm_size_mismatch_panics() {
        norms::linf(&[1.0], &[1.0, 2.0]);
    }
}
