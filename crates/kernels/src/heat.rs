//! The data-transfer-intensive kernel: a 3-D heat solver (§VI-A).
//!
//! Each time step updates every cell from its 6 nearest neighbours:
//!
//! ```text
//! u_new(i,j,k) = u(i,j,k) + fac * (u(i±1,j,k) + u(i,j±1,k) + u(i,j,k±1) - 6 u(i,j,k))
//! ```
//!
//! The same cell formula backs three executors that must agree bit-for-bit:
//! the golden dense reference, the per-tile host executor, and the simulated
//! device kernel (which runs the host executor against device slabs).

use gpu_sim::KernelCost;
use tida::{Box3, IntVect, Layout, View, ViewMut};

/// Effective device-memory traffic per cell for the tuned CUDA stencil:
/// one 8-byte write, one streaming read, plus ~1/3 re-read of neighbour
/// planes that fall out of cache.
pub const BYTES_PER_CELL: u64 = 24;

/// Floating-point work per cell (7 adds + 1 multiply, counted generously).
pub const FLOPS_PER_CELL: f64 = 9.0;

/// Default diffusion factor; stable for the explicit 7-point scheme
/// (`fac <= 1/6`).
pub const DEFAULT_FAC: f64 = 0.1;

/// Device cost of a heat step over `cells` cells (roofline; the stencil is
/// memory-bound on the modelled K40m).
pub fn cost(cells: u64) -> KernelCost {
    KernelCost::Roofline {
        bytes: cells * BYTES_PER_CELL,
        flops: cells as f64 * FLOPS_PER_CELL,
    }
}

/// Device cost of ONE fused launch covering `k` temporally blocked heat
/// steps over a region with valid box `valid` (see
/// `gpu_sim::KernelCost::Fused`).
///
/// The fused kernel double-buffers the intermediate trapezoid levels on
/// chip (the shared-memory ping-pong pattern), so its DRAM traffic is one
/// clean streaming pass over the depth-`k` halo'd input block — 8 bytes
/// per cell, with no neighbour re-read slop because the halo planes stay
/// in the on-chip buffers — plus one 8-byte write of the final level. The
/// floating-point work is the full trapezoid: sub-step `i` computes
/// `valid.grow(k-1-i)`, so fusion trades redundant halo compute for
/// interconnect and launch amortization. `k = 1` has no fused structure
/// and carries exactly the unfused [`cost`] totals (24 B/cell, re-reads
/// included), so a depth-1 fused launch is bit-identical in time to the
/// ordinary path.
pub fn fused_cost(k: usize, valid: &Box3) -> KernelCost {
    assert!(k >= 1, "fused depth must be at least 1");
    if k == 1 {
        let cells = valid.num_cells();
        return KernelCost::Fused {
            k: 1,
            bytes: cells * BYTES_PER_CELL,
            flops: cells as f64 * FLOPS_PER_CELL,
        };
    }
    let flops: f64 = (0..k)
        .map(|i| valid.grow((k - 1 - i) as i64).num_cells() as f64)
        .sum::<f64>()
        * FLOPS_PER_CELL;
    let bytes = valid.grow(k as i64).num_cells() * 8 + valid.num_cells() * 8;
    KernelCost::Fused {
        k: k as u32,
        bytes,
        flops,
    }
}

/// The cell update. Shared by every executor so results agree exactly.
#[inline]
pub fn stencil(src: &View<'_>, iv: IntVect, fac: f64) -> f64 {
    let c = src.at(iv);
    let sum = src.at(iv + IntVect::new(1, 0, 0))
        + src.at(iv - IntVect::new(1, 0, 0))
        + src.at(iv + IntVect::new(0, 1, 0))
        + src.at(iv - IntVect::new(0, 1, 0))
        + src.at(iv + IntVect::new(0, 0, 1))
        + src.at(iv - IntVect::new(0, 0, 1))
        - 6.0 * c;
    c + fac * sum
}

/// One heat step over the cells of `bx`: `dst <- step(src)`.
///
/// `src`'s layout must cover `bx.grow(1)` (the ghost cells), `dst`'s must
/// cover `bx`.
pub fn step_tile(dst: &mut ViewMut<'_>, src: &View<'_>, bx: &Box3, fac: f64) {
    debug_assert!(src.layout.domain().contains_box(&bx.grow(1)));
    debug_assert!(dst.layout.domain().contains_box(bx));
    for iv in bx.iter() {
        dst.set(iv, stencil(src, iv, fac));
    }
}

/// Golden reference: one step on a dense periodic cube of side `n`.
pub fn golden_step(dst: &mut [f64], src: &[f64], n: i64, fac: f64) {
    let l = Layout::new(Box3::cube(n));
    assert_eq!(src.len(), l.len());
    assert_eq!(dst.len(), l.len());
    let wrap = |iv: IntVect| {
        IntVect::new(
            iv.x().rem_euclid(n),
            iv.y().rem_euclid(n),
            iv.z().rem_euclid(n),
        )
    };
    for iv in Box3::cube(n).iter() {
        let c = src[l.offset(iv)];
        let sum = src[l.offset(wrap(iv + IntVect::new(1, 0, 0)))]
            + src[l.offset(wrap(iv - IntVect::new(1, 0, 0)))]
            + src[l.offset(wrap(iv + IntVect::new(0, 1, 0)))]
            + src[l.offset(wrap(iv - IntVect::new(0, 1, 0)))]
            + src[l.offset(wrap(iv + IntVect::new(0, 0, 1)))]
            + src[l.offset(wrap(iv - IntVect::new(0, 0, 1)))]
            - 6.0 * c;
        dst[l.offset(iv)] = c + fac * sum;
    }
}

/// Golden reference: run `steps` steps on a dense periodic cube, starting
/// from `init(cell)`.
pub fn golden_run(init: impl Fn(IntVect) -> f64, n: i64, steps: usize, fac: f64) -> Vec<f64> {
    let l = Layout::new(Box3::cube(n));
    let mut a: Vec<f64> = (0..l.len()).map(|o| init(l.cell_at(o))).collect();
    let mut b = vec![0.0; l.len()];
    for _ in 0..steps {
        golden_step(&mut b, &a, n, fac);
        std::mem::swap(&mut a, &mut b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tida::{with_dst_src, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray};

    fn init(iv: IntVect) -> f64 {
        ((iv.x() * 3 + iv.y() * 5 + iv.z() * 7) % 11) as f64
    }

    #[test]
    fn fused_cost_depth_one_equals_unfused_totals() {
        let valid = Box3::cube(8);
        let cells = valid.num_cells();
        match fused_cost(1, &valid) {
            gpu_sim::KernelCost::Fused { k, bytes, flops } => {
                assert_eq!(k, 1);
                assert_eq!(bytes, cells * BYTES_PER_CELL);
                assert_eq!(flops, cells as f64 * FLOPS_PER_CELL);
            }
            other => panic!("expected Fused, got {other:?}"),
        }
    }

    #[test]
    fn fused_cost_amortizes_dram_traffic_but_not_flops() {
        // The temporal-blocking trade: k separate launches stream
        // k * cells * BYTES_PER_CELL through DRAM; the fused launch keeps
        // the intermediate levels on chip, so its bytes are well below the
        // unfused total while its flops EXCEED k applications of the valid
        // box (the redundant trapezoid halo work is charged honestly).
        let valid = Box3::cube(32);
        let cells = valid.num_cells();
        for k in [2usize, 4] {
            match fused_cost(k, &valid) {
                gpu_sim::KernelCost::Fused { bytes, flops, .. } => {
                    let unfused_bytes = (k as u64 * cells * BYTES_PER_CELL) as f64;
                    let unfused_flops = k as f64 * cells as f64 * FLOPS_PER_CELL;
                    assert!(
                        (bytes as f64) < 0.5 * unfused_bytes,
                        "k={k}: fused bytes {bytes} not well below unfused {unfused_bytes}"
                    );
                    assert!(
                        flops > unfused_flops,
                        "k={k}: trapezoid flops {flops} must exceed unfused {unfused_flops}"
                    );
                }
                other => panic!("expected Fused, got {other:?}"),
            }
        }
    }

    #[test]
    fn uniform_field_is_fixed_point() {
        let n = 4;
        let src = vec![2.5; (n * n * n) as usize];
        let mut dst = vec![0.0; src.len()];
        golden_step(&mut dst, &src, n, DEFAULT_FAC);
        assert_eq!(dst, src);
    }

    #[test]
    fn golden_step_conserves_total_heat() {
        let n = 6;
        let l = Layout::new(Box3::cube(n));
        let src: Vec<f64> = (0..l.len()).map(|o| init(l.cell_at(o))).collect();
        let mut dst = vec![0.0; src.len()];
        golden_step(&mut dst, &src, n, DEFAULT_FAC);
        let s0: f64 = src.iter().sum();
        let s1: f64 = dst.iter().sum();
        assert!((s0 - s1).abs() < 1e-9 * s0.abs().max(1.0));
    }

    #[test]
    fn golden_run_smooths_towards_mean() {
        let n = 8;
        let out = golden_run(init, n, 200, DEFAULT_FAC);
        let mean: f64 = out.iter().sum::<f64>() / out.len() as f64;
        let spread = out.iter().fold(0f64, |m, &x| m.max((x - mean).abs()));
        assert!(
            spread < 0.3,
            "diffusion should flatten the field, spread={spread}"
        );
    }

    #[test]
    fn tile_executor_matches_golden_exactly() {
        let n = 6;
        let dom = Domain::periodic_cube(n);
        let d = Arc::new(Decomposition::new(dom, RegionSpec::Grid([2, 1, 2])));
        let src_arr = TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
        let dst_arr = TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
        src_arr.fill_valid(init);
        src_arr.fill_boundary();

        for rid in 0..d.num_regions() {
            let dst_r = dst_arr.region(rid);
            let src_r = src_arr.region(rid);
            with_dst_src(
                (&dst_r.slab, dst_r.layout),
                (&src_r.slab, src_r.layout),
                |mut dv, sv| step_tile(&mut dv, &sv, &dst_r.valid, DEFAULT_FAC),
            )
            .unwrap();
        }

        let golden = golden_run(init, n, 1, DEFAULT_FAC);
        assert_eq!(dst_arr.to_dense().unwrap(), golden, "bitwise agreement");
    }

    #[test]
    fn multi_step_tiled_matches_golden() {
        let n = 8;
        let steps = 5;
        let dom = Domain::periodic_cube(n);
        let d = Arc::new(Decomposition::new(dom, RegionSpec::Count(4)));
        let mut a = TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
        let mut b = TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
        a.fill_valid(init);
        for _ in 0..steps {
            a.fill_boundary();
            for rid in 0..d.num_regions() {
                let dst_r = b.region(rid);
                let src_r = a.region(rid);
                with_dst_src(
                    (&dst_r.slab, dst_r.layout),
                    (&src_r.slab, src_r.layout),
                    |mut dv, sv| step_tile(&mut dv, &sv, &dst_r.valid, DEFAULT_FAC),
                )
                .unwrap();
            }
            std::mem::swap(&mut a, &mut b);
        }
        assert_eq!(
            a.to_dense().unwrap(),
            golden_run(init, n, steps, DEFAULT_FAC)
        );
    }

    #[test]
    fn cost_is_memory_bound_on_k40m() {
        let cfg = gpu_sim::MachineConfig::k40m();
        let cells = 1u64 << 24;
        let t = cost(cells).duration(&cfg, 1.0);
        let mem_only = KernelCost::Bytes(cells * BYTES_PER_CELL).duration(&cfg, 1.0);
        assert_eq!(t, mem_only, "heat stencil should hit the memory roof");
    }
}
