//! Gray–Scott reaction-diffusion: a two-field coupled PDE system.
//!
//! The paper's introduction motivates the programming model with structured
//! grid PDE solvers; Gray–Scott is the canonical multi-field one. Each step
//! reads both fields `u, v` (with face ghosts) and writes both `u', v'`:
//!
//! ```text
//! u' = u + dt (Du ∇²u − u v² + F (1 − u))
//! v' = v + dt (Dv ∇²v + u v² − (F + k) v)
//! ```
//!
//! This exercises the library's general multi-operand `compute` (two writes,
//! two reads per tile) — the "multiple tiles as inputs" case of §V.

use gpu_sim::KernelCost;
use tida::{Box3, IntVect, Layout, View, ViewMut};

/// Model parameters. The defaults sit in the "solitons" regime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayScott {
    pub du: f64,
    pub dv: f64,
    pub feed: f64,
    pub kill: f64,
    pub dt: f64,
}

impl Default for GrayScott {
    fn default() -> Self {
        GrayScott {
            du: 0.16,
            dv: 0.08,
            feed: 0.035,
            kill: 0.065,
            dt: 1.0,
        }
    }
}

/// Per-cell FLOP count (two Laplacians + reaction terms).
pub const FLOPS_PER_CELL: f64 = 30.0;

/// Device-memory traffic per cell: read u, v (+ stencil reuse), write u', v'.
pub const BYTES_PER_CELL: u64 = 48;

/// Device cost for one step over `cells` cells.
pub fn cost(cells: u64) -> KernelCost {
    KernelCost::Roofline {
        bytes: cells * BYTES_PER_CELL,
        flops: cells as f64 * FLOPS_PER_CELL,
    }
}

#[inline]
fn laplacian(f: &View<'_>, iv: IntVect) -> f64 {
    f.at(iv + IntVect::new(1, 0, 0))
        + f.at(iv - IntVect::new(1, 0, 0))
        + f.at(iv + IntVect::new(0, 1, 0))
        + f.at(iv - IntVect::new(0, 1, 0))
        + f.at(iv + IntVect::new(0, 0, 1))
        + f.at(iv - IntVect::new(0, 0, 1))
        - 6.0 * f.at(iv)
}

/// One step over the cells of `bx`: `(u', v') <- step(u, v)`.
///
/// Argument order matches the multi-operand compute convention:
/// `writes = [u_new, v_new]`, `reads = [u, v]`.
pub fn step_tile(writes: &mut [ViewMut<'_>], reads: &[View<'_>], bx: &Box3, p: GrayScott) {
    assert_eq!(writes.len(), 2, "Gray-Scott writes u' and v'");
    assert_eq!(reads.len(), 2, "Gray-Scott reads u and v");
    let (u, v) = (&reads[0], &reads[1]);
    // Split so we can write both fields in one pass.
    let (un, rest) = writes.split_first_mut().expect("two writes");
    let vn = &mut rest[0];
    for iv in bx.iter() {
        let uc = u.at(iv);
        let vc = v.at(iv);
        let uvv = uc * vc * vc;
        un.set(
            iv,
            uc + p.dt * (p.du * laplacian(u, iv) - uvv + p.feed * (1.0 - uc)),
        );
        vn.set(
            iv,
            vc + p.dt * (p.dv * laplacian(v, iv) + uvv - (p.feed + p.kill) * vc),
        );
    }
}

/// Golden reference: one step on dense periodic cubes of side `n`.
pub fn golden_step(un: &mut [f64], vn: &mut [f64], u: &[f64], v: &[f64], n: i64, p: GrayScott) {
    let l = Layout::new(Box3::cube(n));
    let wrap = |iv: IntVect| {
        IntVect::new(
            iv.x().rem_euclid(n),
            iv.y().rem_euclid(n),
            iv.z().rem_euclid(n),
        )
    };
    let lap = |f: &[f64], iv: IntVect| {
        f[l.offset(wrap(iv + IntVect::new(1, 0, 0)))]
            + f[l.offset(wrap(iv - IntVect::new(1, 0, 0)))]
            + f[l.offset(wrap(iv + IntVect::new(0, 1, 0)))]
            + f[l.offset(wrap(iv - IntVect::new(0, 1, 0)))]
            + f[l.offset(wrap(iv + IntVect::new(0, 0, 1)))]
            + f[l.offset(wrap(iv - IntVect::new(0, 0, 1)))]
            - 6.0 * f[l.offset(iv)]
    };
    for iv in Box3::cube(n).iter() {
        let o = l.offset(iv);
        let (uc, vc) = (u[o], v[o]);
        let uvv = uc * vc * vc;
        un[o] = uc + p.dt * (p.du * lap(u, iv) - uvv + p.feed * (1.0 - uc));
        vn[o] = vc + p.dt * (p.dv * lap(v, iv) + uvv - (p.feed + p.kill) * vc);
    }
}

/// Standard initial condition: `u = 1, v = 0` with a small seeded square of
/// `u = 0.5, v = 0.25` in the centre.
pub fn seed(n: i64) -> (impl Fn(IntVect) -> f64, impl Fn(IntVect) -> f64) {
    let c = n / 2;
    let r = (n / 8).max(1);
    let inside = move |iv: IntVect| {
        (iv.x() - c).abs() <= r && (iv.y() - c).abs() <= r && (iv.z() - c).abs() <= r
    };
    (
        move |iv| if inside(iv) { 0.5 } else { 1.0 },
        move |iv| if inside(iv) { 0.25 } else { 0.0 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tida::with_many;
    use tida::{Decomposition, Domain, ExchangeMode, RegionSpec, TileArray};

    fn dense_from(n: i64, f: impl Fn(IntVect) -> f64) -> Vec<f64> {
        let l = Layout::new(Box3::cube(n));
        (0..l.len()).map(|o| f(l.cell_at(o))).collect()
    }

    #[test]
    fn homogeneous_steady_state_u1_v0() {
        // u=1, v=0 is a fixed point of the reaction and of diffusion.
        let n = 4;
        let u = vec![1.0; 64];
        let v = vec![0.0; 64];
        let mut un = vec![0.0; 64];
        let mut vn = vec![0.0; 64];
        golden_step(&mut un, &mut vn, &u, &v, n, GrayScott::default());
        assert_eq!(un, u);
        assert_eq!(vn, v);
    }

    #[test]
    fn tile_executor_matches_golden_exactly() {
        let n = 6;
        let p = GrayScott::default();
        let d = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(2),
        ));
        let mk = || TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
        let (u, v, un, vn) = (mk(), mk(), mk(), mk());
        let (fu, fv) = seed(n);
        u.fill_valid(&fu);
        v.fill_valid(&fv);
        u.fill_boundary();
        v.fill_boundary();

        for rid in 0..d.num_regions() {
            let (ur, vr, unr, vnr) = (u.region(rid), v.region(rid), un.region(rid), vn.region(rid));
            with_many(
                &[(&unr.slab, unr.layout), (&vnr.slab, vnr.layout)],
                &[(&ur.slab, ur.layout), (&vr.slab, vr.layout)],
                |ws, rs| step_tile(ws, rs, &unr.valid, p),
            )
            .unwrap();
        }

        let gu = dense_from(n, &fu);
        let gv = dense_from(n, &fv);
        let mut gun = vec![0.0; gu.len()];
        let mut gvn = vec![0.0; gv.len()];
        golden_step(&mut gun, &mut gvn, &gu, &gv, n, p);
        assert_eq!(un.to_dense().unwrap(), gun);
        assert_eq!(vn.to_dense().unwrap(), gvn);
    }

    #[test]
    fn seed_shape() {
        let (fu, fv) = seed(16);
        assert_eq!(fu(IntVect::splat(8)), 0.5);
        assert_eq!(fv(IntVect::splat(8)), 0.25);
        assert_eq!(fu(IntVect::ZERO), 1.0);
        assert_eq!(fv(IntVect::ZERO), 0.0);
    }

    #[test]
    fn mass_stays_bounded() {
        // A few steps keep u within [0, 1.2] and v within [0, 1] —
        // stability of the explicit scheme at dt=1 for these parameters.
        let n = 8;
        let p = GrayScott::default();
        let (fu, fv) = seed(n);
        let mut u = dense_from(n, fu);
        let mut v = dense_from(n, fv);
        let mut un = vec![0.0; u.len()];
        let mut vn = vec![0.0; v.len()];
        for _ in 0..10 {
            golden_step(&mut un, &mut vn, &u, &v, n, p);
            std::mem::swap(&mut u, &mut un);
            std::mem::swap(&mut v, &mut vn);
        }
        for (&x, &y) in u.iter().zip(&v) {
            assert!((0.0..=1.2).contains(&x), "u out of range: {x}");
            assert!((0.0..=1.0).contains(&y), "v out of range: {y}");
        }
    }
}
