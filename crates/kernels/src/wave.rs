//! Second-order acoustic wave equation (leapfrog scheme).
//!
//! `u'' = c² ∇²u`, discretized as
//!
//! ```text
//! u_next = 2 u_cur − u_prev + (c dt)² ∇²u_cur
//! ```
//!
//! A three-time-level kernel: each step reads *two* arrays (current and
//! previous) and writes a third — a dependency pattern neither evaluation
//! kernel of the paper has, exercising the multi-operand compute with mixed
//! operand roles.

use gpu_sim::KernelCost;
use tida::{Box3, IntVect, Layout, View, ViewMut};

/// Courant number squared, `(c·dt/h)²`. Stable for the 3-D 7-point scheme
/// when `<= 1/3`.
pub const DEFAULT_C2: f64 = 0.25;

/// FLOPs per cell per step.
pub const FLOPS_PER_CELL: f64 = 11.0;

/// Device traffic per cell per step (read cur + prev, write next).
pub const BYTES_PER_CELL: u64 = 32;

/// Device cost of one step over `cells` cells.
pub fn cost(cells: u64) -> KernelCost {
    KernelCost::Roofline {
        bytes: cells * BYTES_PER_CELL,
        flops: cells as f64 * FLOPS_PER_CELL,
    }
}

#[inline]
fn laplacian(u: &View<'_>, iv: IntVect) -> f64 {
    u.at(iv + IntVect::new(1, 0, 0))
        + u.at(iv - IntVect::new(1, 0, 0))
        + u.at(iv + IntVect::new(0, 1, 0))
        + u.at(iv - IntVect::new(0, 1, 0))
        + u.at(iv + IntVect::new(0, 0, 1))
        + u.at(iv - IntVect::new(0, 0, 1))
        - 6.0 * u.at(iv)
}

/// One leapfrog step over `bx`: `next <- 2 cur − prev + c² ∇²cur`.
///
/// Multi-operand convention: `writes = [next]`, `reads = [cur, prev]`.
pub fn step_tile(next: &mut ViewMut<'_>, cur: &View<'_>, prev: &View<'_>, bx: &Box3, c2: f64) {
    for iv in bx.iter() {
        next.set(iv, 2.0 * cur.at(iv) - prev.at(iv) + c2 * laplacian(cur, iv));
    }
}

/// Golden reference on dense periodic cubes.
pub fn golden_step(next: &mut [f64], cur: &[f64], prev: &[f64], n: i64, c2: f64) {
    let l = Layout::new(Box3::cube(n));
    let wrap = |iv: IntVect| {
        IntVect::new(
            iv.x().rem_euclid(n),
            iv.y().rem_euclid(n),
            iv.z().rem_euclid(n),
        )
    };
    for iv in Box3::cube(n).iter() {
        let o = l.offset(iv);
        let lap = cur[l.offset(wrap(iv + IntVect::new(1, 0, 0)))]
            + cur[l.offset(wrap(iv - IntVect::new(1, 0, 0)))]
            + cur[l.offset(wrap(iv + IntVect::new(0, 1, 0)))]
            + cur[l.offset(wrap(iv - IntVect::new(0, 1, 0)))]
            + cur[l.offset(wrap(iv + IntVect::new(0, 0, 1)))]
            + cur[l.offset(wrap(iv - IntVect::new(0, 0, 1)))]
            - 6.0 * cur[o];
        next[o] = 2.0 * cur[o] - prev[o] + c2 * lap;
    }
}

/// Run `steps` golden steps from rest (`u_prev = u_cur = init`).
pub fn golden_run(init: impl Fn(IntVect) -> f64, n: i64, steps: usize, c2: f64) -> Vec<f64> {
    let l = Layout::new(Box3::cube(n));
    let mut prev: Vec<f64> = (0..l.len()).map(|o| init(l.cell_at(o))).collect();
    let mut cur = prev.clone();
    let mut next = vec![0.0; prev.len()];
    for _ in 0..steps {
        golden_step(&mut next, &cur, &prev, n, c2);
        std::mem::swap(&mut prev, &mut cur);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// The exactly-conserved discrete energy of the leapfrog scheme at the
/// half step: `E = ½‖u_cur − u_prev‖² + (c²/2) Σ_d ⟨D_d u_cur, D_d u_prev⟩`
/// (the mixed-product potential makes it a true invariant of the linear
/// scheme, up to floating-point rounding).
pub fn energy(cur: &[f64], prev: &[f64], n: i64, c2: f64) -> f64 {
    let l = Layout::new(Box3::cube(n));
    let wrap = |iv: IntVect| {
        IntVect::new(
            iv.x().rem_euclid(n),
            iv.y().rem_euclid(n),
            iv.z().rem_euclid(n),
        )
    };
    let mut kinetic = 0.0;
    let mut potential = 0.0;
    for iv in Box3::cube(n).iter() {
        let o = l.offset(iv);
        let v = cur[o] - prev[o];
        kinetic += v * v;
        for d in 0..3 {
            let mut e = IntVect::ZERO;
            e[d] = 1;
            let oe = l.offset(wrap(iv + e));
            let g_cur = cur[oe] - cur[o];
            let g_prev = prev[oe] - prev[o];
            potential += c2 * g_cur * g_prev;
        }
    }
    0.5 * (kinetic + potential)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn constant_field_stays_constant() {
        let n = 4;
        let u = golden_run(|_| 2.0, n, 10, DEFAULT_C2);
        assert!(u.iter().all(|&x| (x - 2.0).abs() < 1e-12));
    }

    #[test]
    fn wave_energy_approximately_conserved() {
        let n = 8;
        let c2 = DEFAULT_C2;
        let l = Layout::new(Box3::cube(n));
        let f = init::gaussian(n);
        let mut prev: Vec<f64> = (0..l.len()).map(|o| f(l.cell_at(o))).collect();
        let mut cur = prev.clone();
        let mut next = vec![0.0; prev.len()];
        // Skip the cold start; measure energy after the scheme settles.
        for _ in 0..2 {
            golden_step(&mut next, &cur, &prev, n, c2);
            std::mem::swap(&mut prev, &mut cur);
            std::mem::swap(&mut cur, &mut next);
        }
        // The half-step energy is an exact invariant of the linear scheme.
        let e0 = energy(&cur, &prev, n, c2);
        for step in 0..200 {
            golden_step(&mut next, &cur, &prev, n, c2);
            std::mem::swap(&mut prev, &mut cur);
            std::mem::swap(&mut cur, &mut next);
            let e = energy(&cur, &prev, n, c2);
            assert!(
                (e - e0).abs() < 1e-9 * e0.abs().max(1e-12),
                "energy not conserved at step {step}: {e0} -> {e}"
            );
        }
    }

    #[test]
    fn rest_start_first_step_is_pure_diffusion_term() {
        // With u_prev == u_cur, next = cur + c^2 lap(cur).
        let n = 4;
        let l = Layout::new(Box3::cube(n));
        let f = init::hash_field(2);
        let cur: Vec<f64> = (0..l.len()).map(|o| f(l.cell_at(o))).collect();
        let mut next = vec![0.0; cur.len()];
        golden_step(&mut next, &cur, &cur, n, 0.1);
        let one = golden_run(f, n, 1, 0.1);
        assert_eq!(next, one);
    }

    #[test]
    fn cost_positive_and_memory_boundish() {
        let cfg = gpu_sim::MachineConfig::k40m();
        let t = cost(1 << 20).duration(&cfg, 1.0);
        assert!(t > cfg.kernel_launch_overhead);
    }
}
