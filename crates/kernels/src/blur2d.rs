//! 2-D image processing: 3×3 Gaussian blur.
//!
//! The paper's introduction motivates the model with "structured grid
//! problems ... as well as image processing applications". This kernel
//! treats an `n × n` image as an `n × n × 1` domain: a separable
//! (1 2 1)/4 ⊗ (1 2 1)/4 blur whose 3×3 support needs *corner* ghost cells —
//! `ExchangeMode::Full` in two dimensions.

use gpu_sim::KernelCost;
use tida::{Box3, Domain, IntVect, View, ViewMut};

/// Weight of offset `(dx, dy)`, each in {-1,0,1}: the normalized 3×3
/// binomial kernel (sums to 1).
#[inline]
pub fn weight(dx: i64, dy: i64) -> f64 {
    let w1 = |d: i64| if d == 0 { 0.5 } else { 0.25 };
    w1(dx) * w1(dy)
}

/// Device traffic per pixel (read 3 rows once each in cache, write 1).
pub const BYTES_PER_PIXEL: u64 = 24;

/// FLOPs per pixel (9 multiply-adds).
pub const FLOPS_PER_PIXEL: f64 = 18.0;

/// Device cost of one blur pass over `pixels`.
pub fn cost(pixels: u64) -> KernelCost {
    KernelCost::Roofline {
        bytes: pixels * BYTES_PER_PIXEL,
        flops: pixels as f64 * FLOPS_PER_PIXEL,
    }
}

/// A 2-D image domain: `n × n × 1`, periodic in x/y only (z is a dummy).
pub fn image_domain(n: i64) -> Domain {
    Domain {
        bx: Box3::new(IntVect::ZERO, IntVect::new(n - 1, n - 1, 0)),
        periodic: [true, true, false],
    }
}

/// One blur pass over the pixels of `bx`: `dst <- blur(src)`.
pub fn blur_tile(dst: &mut ViewMut<'_>, src: &View<'_>, bx: &Box3) {
    for iv in bx.iter() {
        let mut acc = 0.0;
        for dy in -1..=1 {
            for dx in -1..=1 {
                acc += weight(dx, dy) * src.at(iv + IntVect::new(dx, dy, 0));
            }
        }
        dst.set(iv, acc);
    }
}

/// Golden reference: one pass on a dense periodic `n × n` image
/// (row-major, `y * n + x`).
pub fn golden_pass(dst: &mut [f64], src: &[f64], n: i64) {
    assert_eq!(src.len(), (n * n) as usize);
    assert_eq!(dst.len(), src.len());
    for y in 0..n {
        for x in 0..n {
            let mut acc = 0.0;
            for dy in -1..=1 {
                for dx in -1..=1 {
                    let sx = (x + dx).rem_euclid(n);
                    let sy = (y + dy).rem_euclid(n);
                    acc += weight(dx, dy) * src[(sy * n + sx) as usize];
                }
            }
            dst[(y * n + x) as usize] = acc;
        }
    }
}

/// A synthetic test card: bright diagonal stripes plus a few point lights —
/// enough structure that blurring visibly changes it.
pub fn test_image(_n: i64) -> impl Fn(IntVect) -> f64 {
    move |iv: IntVect| {
        let stripes = if ((iv.x() + iv.y()) / 4) % 2 == 0 {
            1.0
        } else {
            0.0
        };
        let light = if iv.x() % 11 == 5 && iv.y() % 13 == 7 {
            4.0
        } else {
            0.0
        };
        stripes + light
    }
}

/// Flatten a `TileArray` over [`image_domain`] into row-major pixels.
pub fn to_pixels(dense_domain_order: &[f64], _n: i64) -> Vec<f64> {
    // The domain layout for n x n x 1 is already row-major (x fastest).
    dense_domain_order.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tida::{with_dst_src, Decomposition, ExchangeMode, Layout, RegionSpec, TileArray};

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = (-1..=1)
            .flat_map(|dy| (-1..=1).map(move |dx| weight(dx, dy)))
            .sum();
        assert!((total - 1.0).abs() < 1e-15);
    }

    #[test]
    fn constant_image_unchanged() {
        let n = 8;
        let src = vec![0.5; 64];
        let mut dst = vec![0.0; 64];
        golden_pass(&mut dst, &src, n);
        for &p in &dst {
            assert!((p - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn blur_reduces_total_variation() {
        let n = 16;
        let l = Layout::new(image_domain(n).bx);
        let f = test_image(n);
        let src: Vec<f64> = (0..l.len()).map(|o| f(l.cell_at(o))).collect();
        let mut dst = vec![0.0; src.len()];
        golden_pass(&mut dst, &src, n);
        let tv = |img: &[f64]| {
            let mut t = 0.0;
            for y in 0..n {
                for x in 0..n - 1 {
                    t += (img[(y * n + x + 1) as usize] - img[(y * n + x) as usize]).abs();
                }
            }
            t
        };
        assert!(tv(&dst) < tv(&src));
    }

    #[test]
    fn tiled_blur_matches_golden_with_strip_regions() {
        let n = 12i64;
        let dom = image_domain(n);
        // Horizontal strips: regions split along y.
        let d = Arc::new(Decomposition::new(dom, RegionSpec::Grid([1, 4, 1])));
        let src = TileArray::new(d.clone(), 1, ExchangeMode::Full, true);
        let dst = TileArray::new(d.clone(), 1, ExchangeMode::Full, true);
        let f = test_image(n);
        src.fill_grown(|_| f64::NAN);
        src.fill_valid(&f);
        src.fill_boundary();

        for rid in 0..d.num_regions() {
            let (dr, sr) = (dst.region(rid), src.region(rid));
            with_dst_src(
                (&dr.slab, dr.layout),
                (&sr.slab, sr.layout),
                |mut dv, sv| blur_tile(&mut dv, &sv, &dr.valid),
            )
            .unwrap();
        }

        let l = Layout::new(dom.bx);
        let dense: Vec<f64> = (0..l.len()).map(|o| f(l.cell_at(o))).collect();
        let mut golden = vec![0.0; dense.len()];
        golden_pass(&mut golden, &dense, n);
        assert_eq!(dst.to_dense().unwrap(), golden);
    }

    #[test]
    fn mass_preserved_by_periodic_blur() {
        let n = 10;
        let l = Layout::new(image_domain(n).bx);
        let f = test_image(n);
        let src: Vec<f64> = (0..l.len()).map(|o| f(l.cell_at(o))).collect();
        let mut dst = vec![0.0; src.len()];
        golden_pass(&mut dst, &src, n);
        let s0: f64 = src.iter().sum();
        let s1: f64 = dst.iter().sum();
        assert!((s0 - s1).abs() < 1e-9 * s0.abs());
    }
}
