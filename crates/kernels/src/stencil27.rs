//! A 27-point weighted box smoother.
//!
//! Unlike the 7-point heat stencil, this kernel reads the full 3×3×3
//! neighbourhood of each cell, so its ghost exchange needs edge and corner
//! patches — `ExchangeMode::Full` — exercising the 26-neighbour patch
//! geometry on both the host and the device ghost paths.
//!
//! Weights are the separable (1/4, 1/2, 1/4)³ kernel: a proper smoother
//! whose weights sum to 1 (constant fields are fixed points).

use gpu_sim::KernelCost;
use tida::{Box3, IntVect, Layout, View, ViewMut};

/// Weight of the offset `(dx,dy,dz)`, each component in {-1,0,1}.
#[inline]
pub fn weight(dx: i64, dy: i64, dz: i64) -> f64 {
    let w1 = |d: i64| if d == 0 { 0.5 } else { 0.25 };
    w1(dx) * w1(dy) * w1(dz)
}

/// Bytes of device traffic per cell (read-heavy stencil).
pub const BYTES_PER_CELL: u64 = 32;

/// FLOPs per cell (27 multiply-adds).
pub const FLOPS_PER_CELL: f64 = 54.0;

/// Device cost over `cells` cells.
pub fn cost(cells: u64) -> KernelCost {
    KernelCost::Roofline {
        bytes: cells * BYTES_PER_CELL,
        flops: cells as f64 * FLOPS_PER_CELL,
    }
}

/// The cell update shared by all executors.
#[inline]
pub fn smooth(src: &View<'_>, iv: IntVect) -> f64 {
    let mut acc = 0.0;
    for dz in -1..=1 {
        for dy in -1..=1 {
            for dx in -1..=1 {
                acc += weight(dx, dy, dz) * src.at(iv + IntVect::new(dx, dy, dz));
            }
        }
    }
    acc
}

/// One smoothing pass over the cells of `bx`: `dst <- smooth(src)`.
pub fn step_tile(dst: &mut ViewMut<'_>, src: &View<'_>, bx: &Box3) {
    debug_assert!(src.layout.domain().contains_box(&bx.grow(1)));
    for iv in bx.iter() {
        dst.set(iv, smooth(src, iv));
    }
}

/// Golden reference on a dense periodic cube.
pub fn golden_step(dst: &mut [f64], src: &[f64], n: i64) {
    let l = Layout::new(Box3::cube(n));
    let wrap = |iv: IntVect| {
        IntVect::new(
            iv.x().rem_euclid(n),
            iv.y().rem_euclid(n),
            iv.z().rem_euclid(n),
        )
    };
    for iv in Box3::cube(n).iter() {
        let mut acc = 0.0;
        for dz in -1..=1 {
            for dy in -1..=1 {
                for dx in -1..=1 {
                    acc += weight(dx, dy, dz) * src[l.offset(wrap(iv + IntVect::new(dx, dy, dz)))];
                }
            }
        }
        dst[l.offset(iv)] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use std::sync::Arc;
    use tida::{with_dst_src, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray};

    #[test]
    fn weights_sum_to_one() {
        let mut total = 0.0;
        for dz in -1..=1 {
            for dy in -1..=1 {
                for dx in -1..=1 {
                    total += weight(dx, dy, dz);
                }
            }
        }
        assert!((total - 1.0).abs() < 1e-15);
    }

    #[test]
    fn constant_field_is_fixed_point() {
        let n = 4;
        let src = vec![3.25; 64];
        let mut dst = vec![0.0; 64];
        golden_step(&mut dst, &src, n);
        for &x in &dst {
            assert!((x - 3.25).abs() < 1e-12);
        }
    }

    #[test]
    fn tiled_full_exchange_matches_golden() {
        // Requires edge/corner ghosts: Faces mode would read poison.
        let n = 6;
        let d = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Grid([2, 1, 2]),
        ));
        let src = TileArray::new(d.clone(), 1, ExchangeMode::Full, true);
        let dst = TileArray::new(d.clone(), 1, ExchangeMode::Full, true);
        let f = init::hash_field(13);
        src.fill_grown(|_| f64::NAN); // poison ghosts to catch missing patches
        src.fill_valid(&f);
        src.fill_boundary();

        for rid in 0..d.num_regions() {
            let (dr, sr) = (dst.region(rid), src.region(rid));
            with_dst_src(
                (&dr.slab, dr.layout),
                (&sr.slab, sr.layout),
                |mut dv, sv| step_tile(&mut dv, &sv, &dr.valid),
            )
            .unwrap();
        }

        let l = Layout::new(Box3::cube(n));
        let dense: Vec<f64> = (0..l.len()).map(|o| f(l.cell_at(o))).collect();
        let mut golden = vec![0.0; dense.len()];
        golden_step(&mut golden, &dense, n);
        assert_eq!(dst.to_dense().unwrap(), golden);
    }

    #[test]
    fn smoothing_reduces_variance() {
        let n = 8;
        let l = Layout::new(Box3::cube(n));
        let f = init::hash_field(3);
        let src: Vec<f64> = (0..l.len()).map(|o| f(l.cell_at(o))).collect();
        let mut dst = vec![0.0; src.len()];
        golden_step(&mut dst, &src, n);
        let var = |d: &[f64]| {
            let m: f64 = d.iter().sum::<f64>() / d.len() as f64;
            d.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / d.len() as f64
        };
        assert!(var(&dst) < var(&src));
    }
}
