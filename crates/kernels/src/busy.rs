//! The compute-intensive kernel (§VI-B).
//!
//! Adapted by the paper from an NVIDIA overlap benchmark: each cell
//! repeatedly adds `sqrt(sin(x)² + cos(x)²)` to itself, with an inner
//! `kernel_iteration` loop to scale the arithmetic intensity to the target
//! device:
//!
//! ```text
//! for i in 0..kernel_iteration {
//!     s = sin(data[idx]); c = cos(data[idx]);
//!     data[idx] += sqrt(s*s + c*c);   // == 1.0 up to rounding
//! }
//! ```
//!
//! Because the increment is 1.0 up to a few ulps, the expected result is
//! `init + kernel_iteration` — a built-in correctness oracle.
//!
//! The cost model charges per-iteration FLOP counts that differ by math
//! implementation, reproducing the paper's Fig. 6 observation that
//! PGI-generated math outperformed CUDA's `math.h` and that `-use_fast_math`
//! closes the gap.

use gpu_sim::KernelCost;
use tida::{Box3, ViewMut};

/// Which math library the kernel was "compiled" against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathImpl {
    /// CUDA `math.h` double-precision sin/cos/sqrt (slowest; §VI-B).
    CudaLibm,
    /// PGI-generated math used by the OpenACC and TiDA-acc builds.
    PgiLibm,
    /// `nvcc -use_fast_math`.
    FastMath,
}

impl MathImpl {
    /// Modelled FLOPs per inner iteration per cell (sin + cos + sqrt + add,
    /// software-expanded on the K40 generation).
    pub fn flops_per_iteration(self) -> f64 {
        match self {
            MathImpl::CudaLibm => 230.0,
            MathImpl::PgiLibm => 125.0,
            MathImpl::FastMath => 115.0,
        }
    }
}

/// Default inner-loop count: tuned (as the paper did for its device) so one
/// kernel pass over a region takes roughly twice the region's transfer
/// time — firmly compute-intensive.
pub const DEFAULT_KERNEL_ITERATION: u32 = 40;

/// Device cost of the kernel over `cells` cells with the inner loop run
/// `iters` times.
pub fn cost(cells: u64, iters: u32, math: MathImpl) -> KernelCost {
    KernelCost::Roofline {
        bytes: cells * 16, // one read + one write of each cell
        flops: cells as f64 * iters as f64 * math.flops_per_iteration(),
    }
}

/// Host/simulated-device executor: apply the kernel to the cells of `bx`.
pub fn apply_tile(v: &mut ViewMut<'_>, bx: &Box3, iters: u32) {
    debug_assert!(v.layout.domain().contains_box(bx));
    for iv in bx.iter() {
        let o = v.layout.offset(iv);
        let mut x = v.data[o];
        for _ in 0..iters {
            let s = x.sin();
            let c = x.cos();
            x += (s * s + c * c).sqrt();
        }
        v.data[o] = x;
    }
}

/// Golden reference on a dense array.
pub fn golden(data: &mut [f64], iters: u32) {
    for x in data.iter_mut() {
        let mut v = *x;
        for _ in 0..iters {
            let s = v.sin();
            let c = v.cos();
            v += (s * s + c * c).sqrt();
        }
        *x = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tida::{
        with_view_mut, Decomposition, Domain, ExchangeMode, IntVect, RegionSpec, TileArray,
    };

    #[test]
    fn increment_is_one_per_iteration() {
        let mut data = vec![0.25, -3.5, 7.0];
        golden(&mut data, 10);
        for (i, &x) in data.iter().enumerate() {
            let expect = [0.25, -3.5, 7.0][i] + 10.0;
            assert!((x - expect).abs() < 1e-9, "{x} vs {expect}");
        }
    }

    #[test]
    fn tile_executor_matches_golden_exactly() {
        let n = 6;
        let d = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(3),
        ));
        let a = TileArray::new(d.clone(), 0, ExchangeMode::Faces, true);
        let init = |iv: IntVect| (iv.x() + 2 * iv.y() - iv.z()) as f64 * 0.125;
        a.fill_valid(init);

        for r in a.regions() {
            with_view_mut(&r.slab, r.layout, |mut v| {
                apply_tile(&mut v, &r.valid, 7);
            })
            .unwrap();
        }

        let mut golden_data: Vec<f64> = {
            let l = tida::Layout::new(tida::Box3::cube(n));
            (0..l.len()).map(|o| init(l.cell_at(o))).collect()
        };
        golden(&mut golden_data, 7);
        assert_eq!(a.to_dense().unwrap(), golden_data);
    }

    #[test]
    fn math_impl_ordering_matches_paper() {
        // CUDA libm is the slowest; PGI math and fast-math are faster.
        assert!(MathImpl::CudaLibm.flops_per_iteration() > MathImpl::PgiLibm.flops_per_iteration());
        assert!(MathImpl::PgiLibm.flops_per_iteration() > MathImpl::FastMath.flops_per_iteration());
    }

    #[test]
    fn cost_is_compute_bound_at_default_iteration() {
        let cfg = gpu_sim::MachineConfig::k40m();
        let cells = 1u64 << 24;
        let t = cost(cells, DEFAULT_KERNEL_ITERATION, MathImpl::PgiLibm).duration(&cfg, 1.0);
        let mem_only = KernelCost::Bytes(cells * 16).duration(&cfg, 1.0);
        assert!(t > mem_only, "busy kernel must be compute-bound");
        // And compute time exceeds the region's PCIe transfer time, so
        // TiDA-acc can hide transfers behind it.
        let transfer = cfg.h2d_time(cells * 8);
        assert!(t > transfer);
    }

    #[test]
    fn zero_iterations_is_identity() {
        let mut data = vec![1.0, 2.0];
        golden(&mut data, 0);
        assert_eq!(data, vec![1.0, 2.0]);
    }
}
