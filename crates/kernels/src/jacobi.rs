//! Jacobi iteration for the Poisson equation `∇²u = f` on the periodic
//! cube, with a residual norm for convergence checks.
//!
//! This is the solver pattern the paper's motivating applications (PDE
//! solvers on structured grids) actually run: a stencil sweep per iteration
//! plus a *global reduction* to decide when to stop — exercising
//! `TileAcc::reduce` together with the compute/ghost pipeline.
//!
//! On a fully periodic domain the Poisson problem is only solvable when the
//! right-hand side has zero mean, and the solution is unique up to a
//! constant; tests use mean-free manufactured right-hand sides.

use gpu_sim::KernelCost;
use tida::{Box3, IntVect, Layout, View, ViewMut};

/// FLOPs per cell per sweep.
pub const FLOPS_PER_CELL: f64 = 10.0;

/// Device traffic per cell per sweep (read u + f, write u').
pub const BYTES_PER_CELL: u64 = 32;

/// Device cost of one sweep over `cells` cells.
pub fn cost(cells: u64) -> KernelCost {
    KernelCost::Roofline {
        bytes: cells * BYTES_PER_CELL,
        flops: cells as f64 * FLOPS_PER_CELL,
    }
}

/// One Jacobi sweep over `bx` with unit grid spacing:
/// `u'(c) = (Σ u(nbr) − f(c)) / 6`.
pub fn sweep_tile(unew: &mut ViewMut<'_>, u: &View<'_>, f: &View<'_>, bx: &Box3) {
    for iv in bx.iter() {
        let sum = u.at(iv + IntVect::new(1, 0, 0))
            + u.at(iv - IntVect::new(1, 0, 0))
            + u.at(iv + IntVect::new(0, 1, 0))
            + u.at(iv - IntVect::new(0, 1, 0))
            + u.at(iv + IntVect::new(0, 0, 1))
            + u.at(iv - IntVect::new(0, 0, 1));
        unew.set(iv, (sum - f.at(iv)) / 6.0);
    }
}

/// Residual `r = ∇²u − f` at one cell (for max-norm convergence checks).
pub fn residual_tile(r: &mut ViewMut<'_>, u: &View<'_>, f: &View<'_>, bx: &Box3) {
    for iv in bx.iter() {
        let lap = u.at(iv + IntVect::new(1, 0, 0))
            + u.at(iv - IntVect::new(1, 0, 0))
            + u.at(iv + IntVect::new(0, 1, 0))
            + u.at(iv - IntVect::new(0, 1, 0))
            + u.at(iv + IntVect::new(0, 0, 1))
            + u.at(iv - IntVect::new(0, 0, 1))
            - 6.0 * u.at(iv);
        r.set(iv, lap - f.at(iv));
    }
}

/// Golden reference: Jacobi sweeps on dense periodic arrays; returns the
/// final iterate.
pub fn golden_run(f: &[f64], n: i64, sweeps: usize) -> Vec<f64> {
    let l = Layout::new(Box3::cube(n));
    assert_eq!(f.len(), l.len());
    let wrap = |iv: IntVect| {
        IntVect::new(
            iv.x().rem_euclid(n),
            iv.y().rem_euclid(n),
            iv.z().rem_euclid(n),
        )
    };
    let mut u = vec![0.0; f.len()];
    let mut unew = vec![0.0; f.len()];
    for _ in 0..sweeps {
        for iv in Box3::cube(n).iter() {
            let sum = u[l.offset(wrap(iv + IntVect::new(1, 0, 0)))]
                + u[l.offset(wrap(iv - IntVect::new(1, 0, 0)))]
                + u[l.offset(wrap(iv + IntVect::new(0, 1, 0)))]
                + u[l.offset(wrap(iv - IntVect::new(0, 1, 0)))]
                + u[l.offset(wrap(iv + IntVect::new(0, 0, 1)))]
                + u[l.offset(wrap(iv - IntVect::new(0, 0, 1)))];
            unew[l.offset(iv)] = (sum - f[l.offset(iv)]) / 6.0;
        }
        std::mem::swap(&mut u, &mut unew);
    }
    u
}

/// Max-norm of the dense residual `∇²u − f`.
pub fn golden_residual(u: &[f64], f: &[f64], n: i64) -> f64 {
    let l = Layout::new(Box3::cube(n));
    let wrap = |iv: IntVect| {
        IntVect::new(
            iv.x().rem_euclid(n),
            iv.y().rem_euclid(n),
            iv.z().rem_euclid(n),
        )
    };
    let mut worst = 0f64;
    for iv in Box3::cube(n).iter() {
        let lap = u[l.offset(wrap(iv + IntVect::new(1, 0, 0)))]
            + u[l.offset(wrap(iv - IntVect::new(1, 0, 0)))]
            + u[l.offset(wrap(iv + IntVect::new(0, 1, 0)))]
            + u[l.offset(wrap(iv - IntVect::new(0, 1, 0)))]
            + u[l.offset(wrap(iv + IntVect::new(0, 0, 1)))]
            + u[l.offset(wrap(iv - IntVect::new(0, 0, 1)))]
            - 6.0 * u[l.offset(iv)];
        worst = worst.max((lap - f[l.offset(iv)]).abs());
    }
    worst
}

/// A mean-free manufactured right-hand side: `f = ∇²g` for a smooth `g`,
/// so the discrete problem is exactly solvable (by `g`, up to a constant).
pub fn manufactured_rhs(n: i64) -> Vec<f64> {
    let l = Layout::new(Box3::cube(n));
    let g = |iv: IntVect| {
        let t = 2.0 * std::f64::consts::PI / n as f64;
        (t * iv.x() as f64).sin() + (t * iv.y() as f64).cos()
    };
    let wrap = |iv: IntVect| {
        IntVect::new(
            iv.x().rem_euclid(n),
            iv.y().rem_euclid(n),
            iv.z().rem_euclid(n),
        )
    };
    (0..l.len())
        .map(|o| {
            let iv = l.cell_at(o);
            let mut lap = -6.0 * g(iv);
            for (dx, dy, dz) in [
                (1, 0, 0),
                (-1, 0, 0),
                (0, 1, 0),
                (0, -1, 0),
                (0, 0, 1),
                (0, 0, -1),
            ] {
                lap += g(wrap(iv + IntVect::new(dx, dy, dz)));
            }
            lap
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manufactured_rhs_is_mean_free() {
        let f = manufactured_rhs(8);
        let mean: f64 = f.iter().sum::<f64>() / f.len() as f64;
        assert!(mean.abs() < 1e-12, "mean {mean}");
    }

    #[test]
    fn jacobi_reduces_residual_monotonically_in_tail() {
        let n = 8;
        let f = manufactured_rhs(n);
        let r0 = golden_residual(&golden_run(&f, n, 5), &f, n);
        let r1 = golden_residual(&golden_run(&f, n, 25), &f, n);
        let r2 = golden_residual(&golden_run(&f, n, 100), &f, n);
        assert!(r1 < r0, "{r1} !< {r0}");
        assert!(r2 < r1, "{r2} !< {r1}");
    }

    #[test]
    fn zero_rhs_keeps_zero_solution() {
        let n = 6;
        let f = vec![0.0; (n * n * n) as usize];
        let u = golden_run(&f, n, 10);
        assert!(u.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn sweep_tile_matches_golden_on_single_region() {
        use std::sync::Arc;
        use tida::{with_many, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray};
        let n = 6;
        let d = Arc::new(Decomposition::new(
            Domain::periodic_cube(n),
            RegionSpec::Count(2),
        ));
        let u = TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
        let rhs = TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
        let un = TileArray::new(d.clone(), 1, ExchangeMode::Faces, true);
        let f = manufactured_rhs(n);
        rhs.from_dense(&f);
        u.fill_valid(|_| 0.0);
        u.fill_boundary();

        for rid in 0..d.num_regions() {
            let (ur, fr, unr) = (u.region(rid), rhs.region(rid), un.region(rid));
            with_many(
                &[(&unr.slab, unr.layout)],
                &[(&ur.slab, ur.layout), (&fr.slab, fr.layout)],
                |ws, rs| sweep_tile(&mut ws[0], &rs[0], &rs[1], &unr.valid),
            )
            .unwrap();
        }
        assert_eq!(un.to_dense().unwrap(), golden_run(&f, n, 1));
    }
}
