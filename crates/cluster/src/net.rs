//! The deterministic network cost model joining cluster nodes.
//!
//! Every ghost message travels over exactly one *link*, named by the
//! endpoints it joins:
//!
//! * `ib:a-b` — the inter-node fabric between nodes `a` and `b` (`a < b`;
//!   IB/ethernet class: high latency, modest bandwidth);
//! * `nvl:n` — node `n`'s intra-node interconnect (NVLink class: low
//!   latency, high bandwidth), used when source and destination regions
//!   live on different devices of one node;
//! * `loc:n` — the degenerate same-device path on node `n` (a host-memory
//!   copy; no contention queue).
//!
//! Each directed link keeps a busy-until horizon, so concurrent messages
//! serialize on the wire (per-link contention), and each node's NIC keeps a
//! transmit horizon shared by all of its outgoing inter-node traffic. The
//! model is pure bookkeeping over `SimTime` — no desim engine is involved
//! on the send side; the *receive* side lands as a stream-ordered op on the
//! destination node's capacity-1 NIC engine (see
//! [`gpu_sim::GpuSystem::net_deliver`]), which is what makes racing
//! arrivals schedule-oracle decision points.
//!
//! Link-scoped faults ([`gpu_sim::LinkFault`]) are evaluated here as pure
//! functions of `(plan seed, link name, per-link message ordinal)`: drops
//! cost one serialization plus a retransmit timeout each, reorders hold a
//! delivery back, and flap windows push the departure past the window. The
//! counters land in [`NetStats`] — the simulator's own `FaultStats` never
//! sees network faults.

use desim::SimTime;
use gpu_sim::LinkFault;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which class of link a message travels (decides latency/bandwidth and
/// which contention queues apply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkClass {
    /// Same device: a host-memory staging copy, no wire.
    Local,
    /// Same node, different device: the intra-node interconnect.
    Intra,
    /// Different nodes: the inter-node fabric.
    Inter,
}

/// Latency/bandwidth parameters per link class, plus the retransmit
/// discipline for dropped messages. Defaults model an EDR-IB-ish fabric
/// with NVLink inside the node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Inter-node one-way latency.
    pub inter_latency: SimTime,
    /// Inter-node bandwidth in bytes per microsecond (12_500 = 12.5 GB/s).
    pub inter_bytes_per_us: u64,
    /// Intra-node one-way latency.
    pub intra_latency: SimTime,
    /// Intra-node bandwidth in bytes per microsecond.
    pub intra_bytes_per_us: u64,
    /// Same-device staging latency.
    pub local_latency: SimTime,
    /// Same-device staging bandwidth in bytes per microsecond.
    pub local_bytes_per_us: u64,
    /// Floor on the receive-side NIC occupancy per message.
    pub rx_overhead: SimTime,
    /// Wait before retransmitting a dropped message.
    pub retransmit_timeout: SimTime,
    /// Drop budget per message; past it the message goes through anyway
    /// (the model's stand-in for a reliable transport escalating).
    pub max_retransmits: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            inter_latency: SimTime::from_us(2),
            inter_bytes_per_us: 12_500,
            intra_latency: SimTime::from_ns(500),
            intra_bytes_per_us: 50_000,
            local_latency: SimTime::from_ns(200),
            local_bytes_per_us: 200_000,
            rx_overhead: SimTime::from_ns(300),
            retransmit_timeout: SimTime::from_us(10),
            max_retransmits: 16,
        }
    }
}

impl NetConfig {
    /// A deliberately thin inter-node fabric (for scaling studies where the
    /// halo traffic must eventually dominate).
    pub fn constrained(mut self, bytes_per_us: u64) -> Self {
        self.inter_bytes_per_us = bytes_per_us;
        self
    }
}

/// Counters accumulated by the network model over a run. Network faults
/// live here, not in the simulator's `FaultStats`: the wire is the
/// cluster's resource, not any node's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    pub msgs_local: u64,
    pub msgs_intra: u64,
    pub msgs_inter: u64,
    pub bytes_local: u64,
    pub bytes_intra: u64,
    pub bytes_inter: u64,
    /// Transmission attempts dropped by link faults (each costs one
    /// serialization plus the retransmit timeout).
    pub drops: u64,
    /// Messages delivered out of order (held back by a reorder fault).
    pub reorders: u64,
    /// Departures pushed past a link-flap down window.
    pub flap_stalls: u64,
    /// Wire time spent on retransmissions of dropped attempts.
    pub retransmit_time: SimTime,
}

impl NetStats {
    pub fn msgs(&self) -> u64 {
        self.msgs_local + self.msgs_intra + self.msgs_inter
    }

    pub fn bytes(&self) -> u64 {
        self.bytes_local + self.bytes_intra + self.bytes_inter
    }
}

/// The wire-time answer for one message: when it lands and how long the
/// receiving NIC is busy with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    pub arrival: SimTime,
    pub rx_time: SimTime,
    pub class: LinkClass,
}

/// Deterministic per-link state: contention horizons and message ordinals.
pub struct NetworkModel {
    cfg: NetConfig,
    /// Fault-plan seed; link-fault draws fold it with the link name and the
    /// per-link message ordinal.
    seed: u64,
    faults: Vec<LinkFault>,
    /// Per-node NIC transmit horizon (inter-node traffic only).
    tx_free: Vec<SimTime>,
    /// Per-directed-link busy horizon, keyed by (src node, dst node).
    /// Intra-node links use (n, n); local paths keep no queue.
    link_free: HashMap<(usize, usize), SimTime>,
    /// Per-link-name message ordinal (advanced once per message, never per
    /// retransmit, so drops do not shift later draws).
    ordinals: HashMap<String, u64>,
    stats: NetStats,
}

impl NetworkModel {
    pub fn new(nodes: usize, cfg: NetConfig, seed: u64, faults: Vec<LinkFault>) -> Self {
        NetworkModel {
            cfg,
            seed,
            faults,
            tx_free: vec![SimTime::ZERO; nodes],
            link_free: HashMap::new(),
            ordinals: HashMap::new(),
            stats: NetStats::default(),
        }
    }

    pub fn stats(&self) -> NetStats {
        self.stats
    }

    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Canonical name of the link carrying a message.
    pub fn link_name(src_node: usize, dst_node: usize, same_device: bool) -> String {
        if src_node != dst_node {
            let (a, b) = (src_node.min(dst_node), src_node.max(dst_node));
            format!("ib:{a}-{b}")
        } else if same_device {
            format!("loc:{src_node}")
        } else {
            format!("nvl:{src_node}")
        }
    }

    fn class_params(&self, class: LinkClass) -> (SimTime, u64) {
        match class {
            LinkClass::Local => (self.cfg.local_latency, self.cfg.local_bytes_per_us),
            LinkClass::Intra => (self.cfg.intra_latency, self.cfg.intra_bytes_per_us),
            LinkClass::Inter => (self.cfg.inter_latency, self.cfg.inter_bytes_per_us),
        }
    }

    /// Send `bytes` from `src_node` to `dst_node` with the payload ready at
    /// `ready`. Advances the link/NIC horizons and the per-link ordinal;
    /// returns when the message lands and how long the destination NIC is
    /// occupied receiving it.
    pub fn transfer(
        &mut self,
        src_node: usize,
        dst_node: usize,
        same_device: bool,
        bytes: u64,
        ready: SimTime,
    ) -> Delivery {
        let class = if src_node != dst_node {
            LinkClass::Inter
        } else if same_device {
            LinkClass::Local
        } else {
            LinkClass::Intra
        };
        let link = Self::link_name(src_node, dst_node, same_device);
        let (latency, bytes_per_us) = self.class_params(class);
        // Serialization time: bytes / bandwidth, floored at 1 ns.
        let ser_ns = ((bytes.max(1)).saturating_mul(1_000) / bytes_per_us.max(1)).max(1);
        let ser = SimTime::from_ns(ser_ns);

        match class {
            LinkClass::Local => {
                self.stats.msgs_local += 1;
                self.stats.bytes_local += bytes;
            }
            LinkClass::Intra => {
                self.stats.msgs_intra += 1;
                self.stats.bytes_intra += bytes;
            }
            LinkClass::Inter => {
                self.stats.msgs_inter += 1;
                self.stats.bytes_inter += bytes;
            }
        }

        // The local path is a host staging copy: no queue, no faults.
        if class == LinkClass::Local {
            return Delivery {
                arrival: ready + latency + ser,
                rx_time: ser.max(self.cfg.rx_overhead),
                class,
            };
        }

        // Departure waits for the wire (and, inter-node, the sending NIC).
        let mut depart = ready;
        let key = (src_node, dst_node);
        if let Some(&busy) = self.link_free.get(&key) {
            depart = depart.max(busy);
        }
        if class == LinkClass::Inter {
            depart = depart.max(self.tx_free[src_node]);
        }

        // Flap windows: the sender waits the window out (repeatedly, if the
        // departure keeps landing inside the next window).
        loop {
            let pushed = self
                .faults
                .iter()
                .filter(|f| f.applies_to(&link))
                .filter_map(|f| f.down_until(depart))
                .max();
            match pushed {
                Some(t) if t > depart => {
                    self.stats.flap_stalls += 1;
                    depart = t;
                }
                _ => break,
            }
        }

        // Drops: the worst applicable fault decides how many leading
        // attempts die; each costs one serialization plus the retransmit
        // timeout before the clean attempt goes out.
        let ordinal = {
            let o = self.ordinals.entry(link.clone()).or_insert(0);
            let v = *o;
            *o += 1;
            v
        };
        let drops = self
            .faults
            .iter()
            .filter(|f| f.applies_to(&link))
            .map(|f| f.drop_count(self.seed, &link, ordinal, self.cfg.max_retransmits))
            .max()
            .unwrap_or(0);
        let retry_ns = (ser_ns + self.cfg.retransmit_timeout.as_ns()) * drops as u64;
        if drops > 0 {
            self.stats.drops += drops as u64;
            self.stats.retransmit_time += SimTime::from_ns(ser_ns * drops as u64);
        }

        let wire_done = depart + SimTime::from_ns(retry_ns) + ser;
        self.link_free.insert(key, wire_done);
        if class == LinkClass::Inter {
            self.tx_free[src_node] = wire_done;
        }

        // Reorder: hold this delivery back past later traffic.
        let extra = self
            .faults
            .iter()
            .filter(|f| f.applies_to(&link))
            .filter_map(|f| f.reorder_for(self.seed, &link, ordinal))
            .max()
            .unwrap_or(SimTime::ZERO);
        if extra > SimTime::ZERO {
            self.stats.reorders += 1;
        }

        Delivery {
            arrival: wire_done + latency + extra,
            rx_time: ser.max(self.cfg.rx_overhead),
            class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(nodes: usize, faults: Vec<LinkFault>) -> NetworkModel {
        NetworkModel::new(nodes, NetConfig::default(), 7, faults)
    }

    #[test]
    fn link_names_are_canonical() {
        assert_eq!(NetworkModel::link_name(0, 1, false), "ib:0-1");
        assert_eq!(NetworkModel::link_name(1, 0, false), "ib:0-1");
        assert_eq!(NetworkModel::link_name(2, 2, false), "nvl:2");
        assert_eq!(NetworkModel::link_name(2, 2, true), "loc:2");
    }

    #[test]
    fn contention_serializes_a_shared_link() {
        let mut net = m(2, Vec::new());
        let a = net.transfer(0, 1, false, 1_000_000, SimTime::ZERO);
        let b = net.transfer(0, 1, false, 1_000_000, SimTime::ZERO);
        // The second message departs after the first clears the wire.
        assert!(b.arrival >= a.arrival);
        assert_eq!(
            (b.arrival - a.arrival).as_ns(),
            (a.arrival - net.cfg.inter_latency).as_ns(),
            "back-to-back equal messages are spaced one serialization apart"
        );
        assert_eq!(net.stats().msgs_inter, 2);
    }

    #[test]
    fn distinct_links_do_not_contend() {
        let mut net = m(3, Vec::new());
        let a = net.transfer(0, 1, false, 1_000_000, SimTime::ZERO);
        let b = net.transfer(0, 2, false, 1_000_000, SimTime::ZERO);
        // Same NIC: the second departs one serialization later, but the
        // wires themselves are independent.
        assert!(b.arrival > a.arrival);
        let c = net.transfer(2, 1, false, 1_000_000, SimTime::ZERO);
        assert_eq!(c.arrival, a.arrival, "different NIC, different wire");
    }

    #[test]
    fn drops_are_deterministic_and_counted() {
        let fault = LinkFault::on("ib:0-1").drops(0.5);
        let mut a = m(2, vec![fault.clone()]);
        let mut b = m(2, vec![fault]);
        for i in 0..32 {
            let ready = SimTime::from_us(i * 100);
            assert_eq!(
                a.transfer(0, 1, false, 4096, ready),
                b.transfer(0, 1, false, 4096, ready)
            );
        }
        assert!(a.stats().drops > 0, "a 0.5 drop rate fires within 32 msgs");
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn unnamed_links_are_untouched_by_scoped_faults() {
        let fault = LinkFault::on("ib:0-1").drops(1.0);
        let mut net = m(3, vec![fault]);
        let _ = net.transfer(0, 2, false, 4096, SimTime::ZERO);
        assert_eq!(net.stats().drops, 0);
    }

    #[test]
    fn flap_window_pushes_departure() {
        let fault =
            LinkFault::on("ib:0-1").flaps(SimTime::ZERO, SimTime::from_us(100), SimTime::from_us(40), 1);
        let mut net = m(2, vec![fault]);
        let d = net.transfer(0, 1, false, 4096, SimTime::ZERO);
        assert!(d.arrival >= SimTime::from_us(40), "waits out the window");
        assert_eq!(net.stats().flap_stalls, 1);
        // Past the last cycle the link is clean.
        let d2 = net.transfer(0, 1, false, 4096, SimTime::from_us(200));
        assert!(d2.arrival < SimTime::from_us(250));
    }

    #[test]
    fn reorder_holds_delivery_back() {
        let fault = LinkFault::on("ib:0-1").reorders(1.0, SimTime::from_us(50));
        let mut net = m(2, vec![fault]);
        let early = net.transfer(0, 1, false, 4096, SimTime::ZERO);
        let late = net.transfer(0, 1, false, 4096, SimTime::ZERO);
        // Both held back by the same delay; still deterministic.
        assert!(early.arrival > SimTime::from_us(50));
        assert!(late.arrival > early.arrival);
        assert_eq!(net.stats().reorders, 2);
    }
}
