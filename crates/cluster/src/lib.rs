//! Cluster-scale TiDA: per-node GPU systems joined by a deterministic
//! network cost model.
//!
//! The paper's runtime overlaps PCIe transfers with tiled kernels inside
//! one node. This crate scales the same design principle out: a
//! [`Cluster`] owns one simulated [`GpuSystem`] per node, a domain
//! decomposition assigns regions to nodes, and inter-node ghost traffic
//! travels over a [`NetworkModel`] — latency + bandwidth + per-link
//! contention queues, all seeded and deterministic — while interior
//! kernels keep the devices busy.
//!
//! # The exchange protocol
//!
//! Each step runs five strictly ordered phases across all regions (phase
//! k finishes submission for every region before phase k+1 starts for
//! any), the classic nonblocking halo-exchange shape:
//!
//! 1. **Stage out** — per region, the source array's grown slab is copied
//!    device→host on the region's *exchange stream*, ordered after the
//!    previous step's kernels by an event from the *compute stream*. A
//!    region whose source is not yet resident (step 0, post-restore) is
//!    uploaded instead; the host copy is already authoritative.
//! 2. **Interior compute** — the stencil over `valid.grow(-ghost)` runs
//!    on the compute stream. It reads only valid cells, so it needs no
//!    ghost data and overlaps the wire traffic of phase 3.
//! 3. **Send** — per ghost patch, in deterministic patch-list order: the
//!    send timestamp is the staging copy's completion time (probed with
//!    [`GpuSystem::op_completion`], which never blocks the simulated
//!    host), the payload is gathered from the source host slab, the
//!    [`NetworkModel`] prices the message (contention, drops, reorders,
//!    flaps), and the destination node receives it as a NIC op
//!    ([`GpuSystem::net_deliver`]) on the destination region's exchange
//!    stream, whose data effect scatters the payload into the
//!    destination host slab.
//! 4. **Stage in** — per region, the full grown slab (now holding fresh
//!    ghosts) is uploaded on the exchange stream, ordered after the
//!    interior kernel by an event (the upload writes cells the interior
//!    kernel reads).
//! 5. **Boundary compute** — the shell of the valid box (the onion peel
//!    `valid ∖ interior`, at most six boxes) runs on the compute stream,
//!    ordered after the upload by an event.
//!
//! Only same-stream ordering and events order work, so every node's
//! schedule stays maximally concurrent; the cross-node dependencies are
//! resolved driver-side as arrival timestamps, never as cross-scheduler
//! edges. The protocol is happens-before clean: a run with hazard
//! checking enabled reports zero findings.
//!
//! # Elasticity and faults
//!
//! Node health is tracked per node with the same [`HealthMonitor`] the
//! multi-GPU runtime uses per device. When a node dies (a
//! [`gpu_sim::DeviceDeath`] aimed at one of its devices, addressed by
//! *global* device index `node * devices_per_node + local`), the step
//! surfaces [`ClusterError::NodeLost`]; [`Cluster::failover`] restores a
//! [`Checkpoint`] (the TACK snapshot format, reused as the live-migration
//! payload) and [`Cluster::migrate_off`] re-owns the dead node's regions
//! onto healthy survivors — fresh streams, fresh device buffers, and the
//! host slabs re-adopted on the new owner (slab storage is shared, so the
//! adoption *is* the migration). Replaying from the snapshot's step is
//! bit-identical to a failure-free run.
//!
//! Link-scoped faults ([`gpu_sim::LinkFault`]: drop / reorder / flap on a
//! named link) are carried by the cluster-wide [`FaultPlan`] and
//! evaluated purely by the network model; they perturb timing, never
//! data — the protocol waits for every delivery before consuming ghosts,
//! so results stay bit-identical under any link-fault schedule.

pub mod net;

pub use gpu_sim::LinkFault;
pub use net::{Delivery, LinkClass, NetConfig, NetStats, NetworkModel};

use gpu_sim::{
    DeviceBuffer, FaultPlan, GpuSystem, HostBuffer, HostMemKind, KernelCost, KernelLaunch,
    MachineConfig, OpId, SimTime, StreamId,
};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use tida::{Box3, Decomposition, GhostPatch, IntVect, TileArray};
use tida_acc::{
    AccStats, ArrayId, Checkpoint, CheckpointError, HealthMonitor, HealthState, RetryPolicy,
};

/// How to build a [`Cluster`]: node count, per-node platform, network
/// parameters, and one cluster-wide fault plan.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Devices per node (regions are assigned to global device slots).
    pub devices_per_node: usize,
    /// Per-node platform (every node is homogeneous).
    pub machine: MachineConfig,
    /// Network cost-model parameters.
    pub net: NetConfig,
    /// Cluster-wide fault plan. Device-scoped faults address devices by
    /// global index `node * devices_per_node + local`; link faults are
    /// evaluated by the network model only. Each node's derived plan gets
    /// a decorrelated seed (node 0 keeps the original, so a 1-node
    /// cluster reproduces single-system fault schedules exactly).
    pub fault: FaultPlan,
    /// Whether slabs carry data (`false` = timing-only virtual run).
    pub backed: bool,
}

impl ClusterConfig {
    /// `nodes` single-GPU K40m nodes over the default fabric, no faults.
    pub fn new(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            devices_per_node: 1,
            machine: MachineConfig::k40m(),
            net: NetConfig::default(),
            fault: FaultPlan::none(),
            backed: true,
        }
    }

    pub fn devices_per_node(mut self, dpn: usize) -> Self {
        assert!(dpn >= 1, "a node needs at least one device");
        self.devices_per_node = dpn;
        self
    }

    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    pub fn fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    pub fn backed(mut self, backed: bool) -> Self {
        self.backed = backed;
        self
    }
}

/// Derive node `node`'s local fault plan from the cluster-wide plan:
/// device-scoped faults are kept only if they hit this node's global
/// device range (and remapped to local indices), link faults are cleared
/// (the network model owns them), and the seed is decorrelated for nodes
/// past the first so transient-rate draws don't repeat across nodes.
fn node_plan(plan: &FaultPlan, node: usize, dpn: usize) -> FaultPlan {
    let mut p = plan.clone();
    if node > 0 {
        p.seed ^= (node as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17);
    }
    let lo = node * dpn;
    let hi = lo + dpn;
    let in_range = |d: usize| d >= lo && d < hi;
    p.device_deaths.retain(|f| in_range(f.device));
    for f in &mut p.device_deaths {
        f.device -= lo;
    }
    p.link_flaps.retain(|f| in_range(f.device));
    for f in &mut p.link_flaps {
        f.device -= lo;
    }
    p.ecc.retain(|f| in_range(f.device));
    for f in &mut p.ecc {
        f.device -= lo;
    }
    p.link_faults.clear();
    p
}

/// What can go wrong driving a cluster step.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A node's whole platform crashed; everything it owned is gone.
    Crashed { node: usize },
    /// A node lost a device (or the node itself); its regions can be
    /// migrated onto survivors via [`Cluster::failover`].
    NodeLost { node: usize },
    /// Device allocation failed on a node.
    Alloc { node: usize, bytes: u64 },
    /// A transfer kept faulting past the retry budget.
    TransferExhausted { region: usize },
    /// An unrepairable corruption reached a region's host mirror.
    Integrity { region: usize },
    /// A snapshot could not be applied.
    Snapshot(CheckpointError),
    /// No healthy node is left to migrate onto.
    NoSurvivors,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Crashed { node } => write!(f, "node {node} crashed"),
            ClusterError::NodeLost { node } => write!(f, "node {node} lost"),
            ClusterError::Alloc { node, bytes } => {
                write!(f, "allocation of {bytes} bytes failed on node {node}")
            }
            ClusterError::TransferExhausted { region } => {
                write!(f, "transfer retry budget exhausted for region {region}")
            }
            ClusterError::Integrity { region } => {
                write!(f, "unrepairable corruption in region {region}'s host mirror")
            }
            ClusterError::Snapshot(e) => write!(f, "snapshot rejected: {e:?}"),
            ClusterError::NoSurvivors => write!(f, "no healthy node left to migrate onto"),
        }
    }
}

impl std::error::Error for ClusterError {}

struct CArray {
    array: TileArray,
    /// Per-region host buffer handle *on the region's current owner node*
    /// (re-adopted on migration; the slab storage itself is shared).
    host: Vec<HostBuffer>,
    /// Per-region device buffer on the owner node.
    dev: Vec<DeviceBuffer>,
    resident: Vec<bool>,
    dirty: Vec<bool>,
}

/// The cluster runtime. See the module docs for the protocol.
pub struct Cluster {
    nodes: Vec<GpuSystem>,
    dpn: usize,
    net: NetworkModel,
    decomp: Option<Arc<Decomposition>>,
    arrays: Vec<CArray>,
    /// Owner *global device slot* per region (`node * dpn + local`).
    owner: Vec<usize>,
    /// Per-region compute stream on the owner device.
    cstream: Vec<StreamId>,
    /// Per-region exchange stream on the owner device.
    xstream: Vec<StreamId>,
    kernel_efficiency: f64,
    initialized: bool,
    retry: RetryPolicy,
    /// Per-*node* health scores fed by the transfer retry loops.
    health: HealthMonitor,
    stats: AccStats,
}

impl Cluster {
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.nodes >= 1, "a cluster needs at least one node");
        let nodes: Vec<GpuSystem> = (0..cfg.nodes)
            .map(|n| {
                let machine = cfg
                    .machine
                    .clone()
                    .with_faults(node_plan(&cfg.fault, n, cfg.devices_per_node));
                GpuSystem::multi(machine, cfg.devices_per_node, cfg.backed)
            })
            .collect();
        let net = NetworkModel::new(
            cfg.nodes,
            cfg.net,
            cfg.fault.seed,
            cfg.fault.link_faults.clone(),
        );
        let health = HealthMonitor::with_defaults(cfg.nodes);
        Cluster {
            nodes,
            dpn: cfg.devices_per_node,
            net,
            decomp: None,
            arrays: Vec::new(),
            owner: Vec::new(),
            cstream: Vec::new(),
            xstream: Vec::new(),
            kernel_efficiency: 0.95,
            initialized: false,
            retry: RetryPolicy::new(8, SimTime::from_us(20)),
            health,
            stats: AccStats::default(),
        }
    }

    /// Override the transfer retry budget (see [`RetryPolicy`]).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Register an array (all arrays must share one decomposition).
    pub fn register(&mut self, array: &TileArray) -> ArrayId {
        assert!(!self.initialized, "register arrays before first use");
        match &self.decomp {
            None => self.decomp = Some(array.decomp().clone()),
            Some(d) => assert!(
                Arc::ptr_eq(d, array.decomp()),
                "all registered arrays must share one decomposition"
            ),
        }
        self.arrays.push(CArray {
            array: array.clone(),
            host: Vec::new(),
            dev: Vec::new(),
            resident: Vec::new(),
            dirty: Vec::new(),
        });
        ArrayId(self.arrays.len() - 1)
    }

    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn node(&self, n: usize) -> &GpuSystem {
        &self.nodes[n]
    }

    pub fn node_mut(&mut self, n: usize) -> &mut GpuSystem {
        &mut self.nodes[n]
    }

    /// Node currently owning a region.
    pub fn owner_node(&self, region: usize) -> usize {
        self.owner[region] / self.dpn
    }

    /// Runtime counters (shared [`AccStats`] shape with the single-node
    /// runtimes; cache-protocol counters stay zero here).
    pub fn stats(&self) -> AccStats {
        self.stats
    }

    /// Network counters (messages, bytes, drops, reorders, flap stalls).
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// The per-node health monitor feeding migration decisions.
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    fn num_regions(&self) -> usize {
        self.decomp.as_ref().expect("no arrays").num_regions()
    }

    fn node_of(&self, r: usize) -> usize {
        self.owner[r] / self.dpn
    }

    fn dev_of(&self, r: usize) -> usize {
        self.owner[r] % self.dpn
    }

    /// Enable/disable span tracing on every node.
    pub fn set_tracing(&mut self, on: bool) {
        for n in &mut self.nodes {
            n.set_tracing(on);
        }
    }

    /// Enable/disable happens-before hazard recording on every node.
    pub fn set_hazard_checking(&mut self, on: bool) {
        for n in &mut self.nodes {
            n.set_hazard_checking(on);
        }
    }

    /// Install one shared schedule oracle on every node's scheduler, so a
    /// model checker controls the whole cluster's nondeterminism through
    /// a single decision log (the driver is sequential, so the per-node
    /// decision points interleave deterministically).
    pub fn install_oracle(&mut self, oracle: Rc<RefCell<dyn desim::ScheduleOracle>>) {
        for n in &mut self.nodes {
            n.set_schedule_oracle(Some(oracle.clone()));
        }
    }

    /// Drain every node and return the cluster makespan (the slowest
    /// node's finish time).
    pub fn finish(&mut self) -> SimTime {
        let mut t = SimTime::ZERO;
        for n in &mut self.nodes {
            t = t.max(n.finish());
        }
        t
    }

    /// Total stream-ordering hazards recorded across all nodes.
    pub fn hazard_total(&self) -> u64 {
        self.nodes.iter().map(|n| n.hazard_counters().total()).sum()
    }

    /// Total transfer-integrity detections across all nodes.
    pub fn integrity_detected(&self) -> u64 {
        self.nodes.iter().map(|n| n.integrity_stats().detected).sum()
    }

    /// Summed H2D bytes across all nodes.
    pub fn bytes_h2d(&self) -> u64 {
        self.nodes.iter().map(|n| n.stats_bytes_h2d()).sum()
    }

    /// Summed D2H bytes across all nodes.
    pub fn bytes_d2h(&self) -> u64 {
        self.nodes.iter().map(|n| n.stats_bytes_d2h()).sum()
    }

    /// Summed NIC-received bytes across all nodes (the node-side view of
    /// [`NetStats::bytes`]).
    pub fn bytes_net(&self) -> u64 {
        self.nodes.iter().map(|n| n.stats_bytes_net()).sum()
    }

    /// Summed kernel launches across all nodes.
    pub fn kernels_launched(&self) -> u64 {
        self.nodes.iter().map(|n| n.stats_kernels()).sum()
    }

    /// One trace over the whole cluster: per-node engine tables
    /// concatenated (engine names prefixed `n<i>.` when there is more
    /// than one node), span engine indices rebased.
    pub fn trace(&self) -> desim::Trace {
        if self.nodes.len() == 1 {
            return self.nodes[0].trace();
        }
        let mut engine_names = Vec::new();
        let mut spans = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let t = n.trace();
            let off = engine_names.len();
            engine_names.extend(t.engine_names.iter().map(|e| format!("n{i}.{e}")));
            spans.extend(t.spans.into_iter().map(|mut s| {
                s.engine += off;
                s
            }));
        }
        let mut merged = desim::Trace::new(engine_names);
        merged.spans = spans;
        merged
    }

    // ------------------------------------------------------------------
    // Region plumbing.
    // ------------------------------------------------------------------

    /// Fail fast when region `r`'s owner node crashed or lost a device.
    fn check_region(&self, r: usize) -> Result<(), ClusterError> {
        let node = self.node_of(r);
        if self.nodes[node].crashed() {
            return Err(ClusterError::Crashed { node });
        }
        if self.nodes[node].device_lost(self.dev_of(r)) {
            return Err(ClusterError::NodeLost { node });
        }
        Ok(())
    }

    /// Assign owners and allocate streams, device buffers and host-buffer
    /// handles: region `r` goes to global device slot
    /// `r * (nodes * dpn) / regions` (contiguous blocks minimize
    /// inter-node faces for slab decompositions).
    fn ensure_init(&mut self) -> Result<(), ClusterError> {
        if self.initialized {
            return Ok(());
        }
        let regions = self.num_regions();
        let slots = self.nodes.len() * self.dpn;
        self.owner = (0..regions).map(|r| r * slots / regions).collect();
        self.cstream = Vec::with_capacity(regions);
        self.xstream = Vec::with_capacity(regions);
        for r in 0..regions {
            let (node, dev) = (self.node_of(r), self.dev_of(r));
            self.cstream.push(self.nodes[node].create_stream_on(dev));
            self.xstream.push(self.nodes[node].create_stream_on(dev));
        }
        for ai in 0..self.arrays.len() {
            for r in 0..regions {
                let (node, dev) = (self.node_of(r), self.dev_of(r));
                let slab = self.arrays[ai].array.region(r).slab.clone();
                let len = slab.len();
                let host = self.nodes[node].adopt_host_slab(slab, HostMemKind::Pinned);
                let buf = self.nodes[node].malloc_device_on(dev, len).map_err(|_| {
                    ClusterError::Alloc {
                        node,
                        bytes: (len * std::mem::size_of::<f64>()) as u64,
                    }
                })?;
                self.arrays[ai].host.push(host);
                self.arrays[ai].dev.push(buf);
            }
            self.arrays[ai].resident = vec![false; regions];
            self.arrays[ai].dirty = vec![false; regions];
        }
        self.initialized = true;
        Ok(())
    }

    /// Upload region `r` of array `a` (full grown slab) on the given
    /// stream, with the standard retry loop.
    fn h2d_grown(&mut self, a: usize, r: usize, stream: StreamId) -> Result<OpId, ClusterError> {
        let node = self.node_of(r);
        let len = self.arrays[a].array.region(r).slab.len();
        let (dev, host) = (self.arrays[a].dev[r], self.arrays[a].host[r]);
        let mut op = self.nodes[node].memcpy_h2d_async(dev, 0, host, 0, len, stream);
        let mut attempt: u32 = 0;
        while self.nodes[node].op_faulted(op) {
            if self.nodes[node].crashed() {
                return Err(ClusterError::Crashed { node });
            }
            if self.nodes[node].device_lost(self.dev_of(r)) {
                return Err(ClusterError::NodeLost { node });
            }
            self.health.observe_fault(node);
            if self.retry.exhausted(attempt) {
                return Err(ClusterError::TransferExhausted { region: r });
            }
            self.stats.transfer_retries += 1;
            self.nodes[node].backoff_work(self.retry.backoff(attempt), "h2d-retry-backoff");
            op = self.nodes[node].memcpy_h2d_async(dev, 0, host, 0, len, stream);
            attempt += 1;
        }
        self.health.observe_success(node);
        Ok(op)
    }

    /// Stage region `r` of array `a` home (full grown slab) on the
    /// exchange stream. Retries like the upload path; past the budget the
    /// fault-exempt salvage copy still gets the data home.
    fn d2h_grown(&mut self, a: usize, r: usize) -> Result<OpId, ClusterError> {
        let node = self.node_of(r);
        let stream = self.xstream[r];
        let len = self.arrays[a].array.region(r).slab.len();
        let (dev, host) = (self.arrays[a].dev[r], self.arrays[a].host[r]);
        let mut op = self.nodes[node].memcpy_d2h_async(host, 0, dev, 0, len, stream);
        let mut attempt: u32 = 0;
        while self.nodes[node].op_faulted(op) {
            if self.nodes[node].crashed() {
                return Err(ClusterError::Crashed { node });
            }
            if self.nodes[node].device_lost(self.dev_of(r)) {
                return Err(ClusterError::NodeLost { node });
            }
            self.health.observe_fault(node);
            if self.retry.exhausted(attempt) {
                self.stats.salvaged_regions += 1;
                op = self.nodes[node].memcpy_d2h_salvage(host, 0, dev, 0, len, stream);
                break;
            }
            self.stats.transfer_retries += 1;
            self.nodes[node].backoff_work(self.retry.backoff(attempt), "d2h-retry-backoff");
            op = self.nodes[node].memcpy_d2h_async(host, 0, dev, 0, len, stream);
            attempt += 1;
        }
        if !self.nodes[node].op_faulted(op) {
            self.health.observe_success(node);
        }
        Ok(op)
    }

    /// Upload a read-only operand (e.g. a Jacobi right-hand side) once;
    /// it is never dirtied and never exchanged.
    fn ensure_aux_resident(&mut self, a: ArrayId, r: usize) -> Result<(), ClusterError> {
        if self.arrays[a.0].resident[r] {
            return Ok(());
        }
        self.stats.loads += 1;
        self.h2d_grown(a.0, r, self.cstream[r])?;
        self.arrays[a.0].resident[r] = true;
        self.arrays[a.0].dirty[r] = false;
        Ok(())
    }

    /// Launch the step kernel over `bx` on region `r`'s compute stream.
    #[allow(clippy::too_many_arguments)]
    fn launch_stencil<F>(
        &mut self,
        dst: ArrayId,
        src: ArrayId,
        aux: Option<ArrayId>,
        r: usize,
        bx: Box3,
        cost: KernelCost,
        label: &'static str,
        f: F,
    ) where
        F: Fn(&mut tida::ViewMut<'_>, &tida::View<'_>, Option<&tida::View<'_>>, Box3) + 'static,
    {
        let node = self.node_of(r);
        let (ddev, sdev) = (self.arrays[dst.0].dev[r], self.arrays[src.0].dev[r]);
        let dslab = self.nodes[node].device_slab(ddev);
        let sslab = self.nodes[node].device_slab(sdev);
        let dl = self.arrays[dst.0].array.region(r).layout;
        let sl = self.arrays[src.0].array.region(r).layout;
        let aux_pair = aux.map(|a| {
            (
                self.nodes[node].device_slab(self.arrays[a.0].dev[r]),
                self.arrays[a.0].array.region(r).layout,
            )
        });
        let mut launch = KernelLaunch::new(label, cost)
            .efficiency(self.kernel_efficiency)
            .reads(sdev.into())
            .writes(ddev.into())
            .exec(move || {
                let wrefs = [(&dslab, dl)];
                let mut rrefs = vec![(&sslab, sl)];
                if let Some((aslab, al)) = &aux_pair {
                    rrefs.push((aslab, *al));
                }
                tida::with_many(&wrefs, &rrefs, |ws, rs| {
                    let (first, _) = ws.split_first_mut().expect("one write view");
                    f(first, &rs[0], rs.get(1), bx);
                });
            });
        if let Some(a) = aux {
            launch = launch.reads(self.arrays[a.0].dev[r].into());
        }
        self.nodes[node].launch_kernel(self.cstream[r], launch);
        self.stats.kernels_gpu += 1;
    }

    // ------------------------------------------------------------------
    // The step.
    // ------------------------------------------------------------------

    /// One stencil step `dst <- f(src)` over every region, with the
    /// nonblocking halo exchange of `src` overlapped against the interior
    /// kernels (see the module docs for the five phases). `aux`, when
    /// given, is a read-only operand uploaded once and never exchanged.
    /// `cost` prices a kernel launch from its cell count.
    pub fn step<F>(
        &mut self,
        dst: ArrayId,
        src: ArrayId,
        aux: Option<ArrayId>,
        cost: impl Fn(u64) -> KernelCost,
        label: &'static str,
        f: F,
    ) -> Result<(), ClusterError>
    where
        F: Fn(&mut tida::ViewMut<'_>, &tida::View<'_>, Option<&tida::View<'_>>, Box3)
            + Clone
            + 'static,
    {
        assert_ne!(dst, src, "step operands must be distinct arrays");
        self.ensure_init()?;
        let regions = self.num_regions();
        let ghost = self.arrays[src.0].array.ghost();

        // Phase 1: stage the source out (or up). `staged[r]` is the
        // transfer whose completion timestamps the region's sends; `None`
        // means the host copy was authoritative before any simulated
        // work, so sends are ready at time zero.
        let mut staged: Vec<Option<OpId>> = Vec::with_capacity(regions);
        for r in 0..regions {
            self.check_region(r)?;
            let node = self.node_of(r);
            // Order the exchange after the previous step's kernels.
            let ev_k = self.nodes[node].record_event(self.cstream[r]);
            self.nodes[node].stream_wait_event(self.xstream[r], ev_k);
            if self.arrays[src.0].resident[r] {
                let op = self.d2h_grown(src.0, r)?;
                // Host now mirrors the device copy exactly.
                self.arrays[src.0].dirty[r] = false;
                staged.push(Some(op));
            } else {
                // Step 0 / post-restore: the host copy is authoritative —
                // upload it for the kernels and send straight from it.
                self.stats.loads += 1;
                let op = self.h2d_grown(src.0, r, self.xstream[r])?;
                let _ = op;
                let ev_up = self.nodes[node].record_event(self.xstream[r]);
                self.nodes[node].stream_wait_event(self.cstream[r], ev_up);
                self.arrays[src.0].resident[r] = true;
                self.arrays[src.0].dirty[r] = false;
                staged.push(None);
            }
            if let Some(a) = aux {
                self.ensure_aux_resident(a, r)?;
            }
            if !self.arrays[dst.0].resident[r] {
                // The step writes every valid cell of dst; no upload.
                self.stats.write_allocs += 1;
                self.arrays[dst.0].resident[r] = true;
            }
        }

        // Phase 2: interior kernels — they need no ghost data, so they
        // overlap the wire traffic submitted in phase 3.
        let mut interiors: Vec<Box3> = Vec::with_capacity(regions);
        for r in 0..regions {
            let valid = self.arrays[dst.0].array.region(r).valid;
            let interior = valid.grow(-ghost);
            if !interior.is_empty() {
                self.launch_stencil(
                    dst,
                    src,
                    aux,
                    r,
                    interior,
                    cost(interior.num_cells()),
                    label,
                    f.clone(),
                );
                self.check_region(r)?;
            }
            interiors.push(interior);
        }

        // Phase 3: price and deliver every ghost patch, in deterministic
        // patch-list order. The send timestamp is the staging copy's
        // completion time, probed without blocking the simulated host;
        // probing also forces the copy's data effect, so the driver-side
        // gather below reads fresh host data.
        let patches: Vec<GhostPatch> = self.arrays[src.0].array.patches().to_vec();
        let mut send_at: Vec<Option<SimTime>> = vec![None; regions];
        for p in &patches {
            let (sr, dr) = (p.src_region, p.dst_region);
            let src_node = self.node_of(sr);
            let dst_node = self.node_of(dr);
            let ready = match staged[sr] {
                Some(op) => *send_at[sr]
                    .get_or_insert_with(|| self.nodes[src_node].op_completion(op)),
                None => SimTime::ZERO,
            };
            let bytes = p.num_cells() * std::mem::size_of::<f64>() as u64;
            let same_device = self.owner[sr] == self.owner[dr];
            let delivery = self.net.transfer(src_node, dst_node, same_device, bytes, ready);

            let sreg = self.arrays[src.0].array.region(sr);
            let dreg = self.arrays[src.0].array.region(dr);
            // Snapshot the payload driver-side: the receiving scheduler
            // replays effects in its own order, so the scatter must not
            // read the source slab lazily.
            let payload: Option<Vec<f64>> = sreg.slab.with(|s| {
                s.map(|s| {
                    let sl = sreg.layout;
                    let shift = p.shift;
                    p.dst_box
                        .iter()
                        .map(|c| s[sl.offset(c - shift)])
                        .collect::<Vec<f64>>()
                })
            });
            let dst_idx: Vec<usize> = if payload.is_some() {
                dreg.layout.offsets_of(&p.dst_box)
            } else {
                Vec::new()
            };
            let dst_slab = dreg.slab.clone();
            let host = self.arrays[src.0].host[dr];
            let effect = move || {
                if let Some(vals) = &payload {
                    dst_slab.with_mut(|d| {
                        if let Some(d) = d {
                            for (&ix, &v) in dst_idx.iter().zip(vals) {
                                d[ix] = v;
                            }
                        }
                    });
                }
            };
            self.nodes[dst_node].net_deliver(
                self.xstream[dr],
                host,
                bytes,
                delivery.arrival,
                delivery.rx_time,
                effect,
            );
        }

        // Phases 4 + 5: once a region's deliveries are in (stream order
        // on its exchange stream), upload the refreshed grown slab —
        // after the interior kernel releases its read of the source
        // device cells — and run the boundary shell behind it.
        for r in 0..regions {
            let node = self.node_of(r);
            let interior = interiors[r];
            if !interior.is_empty() {
                let ev_int = self.nodes[node].record_event(self.cstream[r]);
                self.nodes[node].stream_wait_event(self.xstream[r], ev_int);
            }
            self.h2d_grown(src.0, r, self.xstream[r])?;
            let ev_ghosts = self.nodes[node].record_event(self.xstream[r]);
            self.nodes[node].stream_wait_event(self.cstream[r], ev_ghosts);
            let valid = self.arrays[dst.0].array.region(r).valid;
            for bx in shell_boxes(valid, interior) {
                self.launch_stencil(dst, src, aux, r, bx, cost(bx.num_cells()), label, f.clone());
            }
            self.arrays[dst.0].dirty[r] = true;
            self.check_region(r)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Host access.
    // ------------------------------------------------------------------

    /// Bring one region home (blocking), releasing residency.
    fn acquire_host(&mut self, a: ArrayId, r: usize) -> Result<(), ClusterError> {
        if !self.initialized || !self.arrays[a.0].resident[r] {
            return Ok(());
        }
        let node = self.node_of(r);
        if self.arrays[a.0].dirty[r] {
            self.stats.host_syncs += 1;
            let ev_k = self.nodes[node].record_event(self.cstream[r]);
            self.nodes[node].stream_wait_event(self.xstream[r], ev_k);
            self.d2h_grown(a.0, r)?;
        }
        let stream = self.xstream[r];
        self.nodes[node].stream_synchronize(stream);
        let dev_struck = self.nodes[node].device_poisoned(self.arrays[a.0].dev[r]);
        let _ = dev_struck;
        self.arrays[a.0].resident[r] = false;
        self.arrays[a.0].dirty[r] = false;
        if self.nodes[node].host_poisoned(self.arrays[a.0].host[r]) {
            self.stats.integrity_detected += 1;
            self.health.observe_integrity(node);
            return Err(ClusterError::Integrity { region: r });
        }
        Ok(())
    }

    /// Bring every region of `array` home (pipelined per-stream drain).
    pub fn sync_to_host(&mut self, array: ArrayId) -> Result<(), ClusterError> {
        for r in 0..self.num_regions() {
            self.acquire_host(array, r)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Checkpoint / restore / live migration.
    // ------------------------------------------------------------------

    /// Nodes that crashed or lost a device.
    pub fn lost_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&n| self.nodes[n].crashed() || !self.nodes[n].lost_devices().is_empty())
            .collect()
    }

    /// Capture a crash-consistent snapshot (the shared TACK [`Checkpoint`]
    /// format): all regions drained home first, so host slabs are
    /// authoritative.
    pub fn checkpoint(&mut self, step: u64) -> Result<Checkpoint, ClusterError> {
        for a in 0..self.arrays.len() {
            self.sync_to_host(ArrayId(a))?;
        }
        self.stats.checkpoints_taken += 1;
        let data: Vec<Vec<Vec<f64>>> = self
            .arrays
            .iter()
            .map(|e| {
                e.array
                    .regions()
                    .iter()
                    .map(|r| r.slab.snapshot().unwrap_or_default())
                    .collect()
            })
            .collect();
        Ok(Checkpoint {
            step,
            clock: 0,
            stats: self.stats,
            data,
            cache: Vec::new(),
            dirty: Vec::new(),
        })
    }

    /// Rebuild host state from a snapshot; all residency is dropped (the
    /// host copies are authoritative afterwards).
    pub fn restore(&mut self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        if ck.data.len() != self.arrays.len() {
            return Err(CheckpointError::Incompatible);
        }
        for (e, regions) in self.arrays.iter().zip(&ck.data) {
            if e.array.regions().len() != regions.len() {
                return Err(CheckpointError::Incompatible);
            }
            for (r, saved) in e.array.regions().iter().zip(regions) {
                if !saved.is_empty() && saved.len() != r.slab.len() {
                    return Err(CheckpointError::Incompatible);
                }
            }
        }
        if ck.cache.iter().any(|&c| c != -1) || ck.dirty.iter().any(|&d| d) {
            return Err(CheckpointError::Incompatible);
        }
        for (e, regions) in self.arrays.iter().zip(&ck.data) {
            for (r, saved) in e.array.regions().iter().zip(regions) {
                if !saved.is_empty() {
                    r.slab.materialize();
                    r.slab.with_mut(|dst| {
                        if let Some(dst) = dst {
                            dst.copy_from_slice(saved);
                        }
                    });
                }
            }
        }
        for a in self.arrays.iter_mut() {
            for f in a.resident.iter_mut() {
                *f = false;
            }
            for f in a.dirty.iter_mut() {
                *f = false;
            }
        }
        if self.initialized {
            for ai in 0..self.arrays.len() {
                for r in 0..self.num_regions() {
                    let node = self.node_of(r);
                    let host = self.arrays[ai].host[r];
                    self.nodes[node].clear_host_poison(host);
                }
            }
        }
        self.stats = ck.stats;
        Ok(())
    }

    /// Re-own every region of `from_node` onto surviving nodes: fresh
    /// streams and device buffers on the new owner, the region host slabs
    /// re-adopted there (shared storage — the adoption is the live
    /// migration), residency dropped. Healthy survivors are preferred;
    /// quarantined ones are a last resort.
    pub fn migrate_off(&mut self, from_node: usize) -> Result<(), ClusterError> {
        let from_lost =
            self.nodes[from_node].crashed() || !self.nodes[from_node].lost_devices().is_empty();
        if from_lost {
            self.health.note_dead(from_node);
        }
        if !self.initialized {
            return Ok(());
        }
        let all: Vec<usize> = (0..self.nodes.len())
            .filter(|&n| {
                n != from_node
                    && !self.nodes[n].crashed()
                    && self.nodes[n].lost_devices().is_empty()
            })
            .collect();
        let healthy: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&n| self.health.state(n) == HealthState::Healthy)
            .collect();
        let survivors = if healthy.is_empty() { all } else { healthy };
        if survivors.is_empty() {
            return Err(ClusterError::NoSurvivors);
        }
        let regions = self.num_regions();
        let mut next = 0usize;
        for r in 0..regions {
            if self.node_of(r) != from_node {
                continue;
            }
            let new_node = survivors[next % survivors.len()];
            let new_dev = next % self.dpn;
            next += 1;
            self.owner[r] = new_node * self.dpn + new_dev;
            self.cstream[r] = self.nodes[new_node].create_stream_on(new_dev);
            self.xstream[r] = self.nodes[new_node].create_stream_on(new_dev);
            self.stats.regions_migrated += 1;
            for ai in 0..self.arrays.len() {
                let slab = self.arrays[ai].array.region(r).slab.clone();
                let len = slab.len();
                let bytes = (len * std::mem::size_of::<f64>()) as u64;
                // The old buffers are stranded on `from_node`; the node
                // (or its trustworthiness) is gone.
                let host = self.nodes[new_node].adopt_host_slab(slab, HostMemKind::Pinned);
                let dev = self.nodes[new_node]
                    .malloc_device_on(new_dev, len)
                    .map_err(|_| ClusterError::Alloc {
                        node: new_node,
                        bytes,
                    })?;
                self.arrays[ai].host[r] = host;
                self.arrays[ai].dev[r] = dev;
                self.arrays[ai].resident[r] = false;
                self.arrays[ai].dirty[r] = false;
                self.stats.migration_restage_loads += 1;
                self.stats.migration_restage_bytes += bytes;
            }
        }
        Ok(())
    }

    /// The full node-loss recovery protocol: restore the snapshot, then
    /// migrate every lost node's regions onto the survivors. Returns the
    /// step to resume from; replaying from there is bit-identical to a
    /// failure-free run because reconstruction happens purely from the
    /// snapshot's host data.
    pub fn failover(&mut self, ck: &Checkpoint) -> Result<u64, ClusterError> {
        self.restore(ck).map_err(ClusterError::Snapshot)?;
        for n in self.lost_nodes() {
            self.migrate_off(n)?;
        }
        self.stats.checkpoints_restored += 1;
        Ok(ck.step)
    }
}

/// The onion peel: the (at most six) face slabs making up
/// `valid ∖ interior`, disjoint and covering. When the interior is empty
/// the whole valid box is one "shell".
pub fn shell_boxes(valid: Box3, interior: Box3) -> Vec<Box3> {
    if interior.is_empty() {
        return vec![valid];
    }
    let mut out = Vec::new();
    let (vlo, vhi) = (valid.lo(), valid.hi());
    let (ilo, ihi) = (interior.lo(), interior.hi());
    if ilo.z() > vlo.z() {
        out.push(Box3::new(vlo, IntVect::new(vhi.x(), vhi.y(), ilo.z() - 1)));
    }
    if ihi.z() < vhi.z() {
        out.push(Box3::new(IntVect::new(vlo.x(), vlo.y(), ihi.z() + 1), vhi));
    }
    if ilo.y() > vlo.y() {
        out.push(Box3::new(
            IntVect::new(vlo.x(), vlo.y(), ilo.z()),
            IntVect::new(vhi.x(), ilo.y() - 1, ihi.z()),
        ));
    }
    if ihi.y() < vhi.y() {
        out.push(Box3::new(
            IntVect::new(vlo.x(), ihi.y() + 1, ilo.z()),
            IntVect::new(vhi.x(), vhi.y(), ihi.z()),
        ));
    }
    if ilo.x() > vlo.x() {
        out.push(Box3::new(
            IntVect::new(vlo.x(), ilo.y(), ilo.z()),
            IntVect::new(ilo.x() - 1, ihi.y(), ihi.z()),
        ));
    }
    if ihi.x() < vhi.x() {
        out.push(Box3::new(
            IntVect::new(ihi.x() + 1, ilo.y(), ilo.z()),
            IntVect::new(vhi.x(), ihi.y(), ihi.z()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceDeath, LinkFault};
    use kernels::heat;
    use tida::{Domain, ExchangeMode, RegionSpec};

    fn init(iv: IntVect) -> f64 {
        ((iv.x() * 3 + iv.y() * 5 + iv.z() * 7) % 11) as f64
    }

    fn heat_arrays(n: i64, regions: usize, backed: bool) -> (Arc<Decomposition>, TileArray, TileArray) {
        let dom = Domain::periodic_cube(n);
        let d = Arc::new(Decomposition::new(dom, RegionSpec::Count(regions)));
        let a = TileArray::new(d.clone(), 1, ExchangeMode::Faces, backed);
        let b = TileArray::new(d.clone(), 1, ExchangeMode::Faces, backed);
        a.fill_valid(init);
        (d, a, b)
    }

    fn drive_heat(
        cl: &mut Cluster,
        mut src: ArrayId,
        mut dst: ArrayId,
        steps: usize,
    ) -> ArrayId {
        for _ in 0..steps {
            cl.step(dst, src, None, heat::cost, "heat", |d, s, _aux, bx| {
                heat::step_tile(d, s, &bx, heat::DEFAULT_FAC)
            })
            .unwrap();
            std::mem::swap(&mut src, &mut dst);
        }
        cl.sync_to_host(src).unwrap();
        src
    }

    #[test]
    fn shell_boxes_partition_the_valid_box() {
        let valid = Box3::cube(8);
        let interior = valid.grow(-1);
        let shells = shell_boxes(valid, interior);
        assert_eq!(shells.len(), 6);
        let total: u64 = shells.iter().map(|b| b.num_cells()).sum();
        assert_eq!(total + interior.num_cells(), valid.num_cells());
        for (i, a) in shells.iter().enumerate() {
            assert!(valid.contains_box(a));
            assert!(a.intersect(&interior).is_empty());
            for b in &shells[i + 1..] {
                assert!(a.intersect(b).is_empty(), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn shell_boxes_empty_interior_is_the_whole_box() {
        let valid = Box3::new(IntVect::ZERO, IntVect::new(7, 7, 1));
        let interior = valid.grow(-1);
        assert!(interior.is_empty());
        assert_eq!(shell_boxes(valid, interior), vec![valid]);
    }

    #[test]
    fn one_node_heat_matches_golden() {
        let (_, a, b) = heat_arrays(8, 4, true);
        let mut cl = Cluster::new(ClusterConfig::new(1));
        cl.set_hazard_checking(true);
        let (src, dst) = (cl.register(&a), cl.register(&b));
        let last = drive_heat(&mut cl, src, dst, 3);
        let out = if last.0 == 0 { &a } else { &b };
        assert_eq!(
            out.to_dense().unwrap(),
            heat::golden_run(init, 8, 3, heat::DEFAULT_FAC),
            "bitwise agreement with the dense golden"
        );
        assert!(cl.finish() > SimTime::ZERO);
        assert_eq!(cl.hazard_total(), 0, "protocol must be HB-clean");
        // One node, one device: all ghost traffic is local staging.
        let ns = cl.net_stats();
        assert!(ns.msgs_local > 0);
        assert_eq!(ns.msgs_inter, 0);
    }

    #[test]
    fn two_node_heat_matches_golden_and_uses_the_wire() {
        let (_, a, b) = heat_arrays(8, 4, true);
        let mut cl = Cluster::new(ClusterConfig::new(2));
        cl.set_hazard_checking(true);
        let (src, dst) = (cl.register(&a), cl.register(&b));
        let last = drive_heat(&mut cl, src, dst, 3);
        let out = if last.0 == 0 { &a } else { &b };
        assert_eq!(
            out.to_dense().unwrap(),
            heat::golden_run(init, 8, 3, heat::DEFAULT_FAC),
            "bitwise agreement with the dense golden"
        );
        assert_eq!(cl.hazard_total(), 0, "protocol must be HB-clean");
        assert_eq!(cl.integrity_detected(), 0);
        let ns = cl.net_stats();
        assert!(ns.msgs_inter > 0, "cross-node faces must cross the wire");
        assert!(cl.bytes_net() > 0);
        assert_eq!(cl.bytes_net(), ns.bytes(), "node NICs see what the wire sent");
    }

    #[test]
    fn link_faults_perturb_timing_but_never_results() {
        let golden = heat::golden_run(init, 8, 3, heat::DEFAULT_FAC);

        let (_, a, b) = heat_arrays(8, 4, true);
        let mut clean = Cluster::new(ClusterConfig::new(2));
        let (s0, d0) = (clean.register(&a), clean.register(&b));
        let last = drive_heat(&mut clean, s0, d0, 3);
        let clean_out = if last.0 == 0 { &a } else { &b };
        assert_eq!(clean_out.to_dense().unwrap(), golden);
        let clean_makespan = clean.finish();

        let plan = FaultPlan::none().with_seed(7).with_link_fault(
            LinkFault::on("*")
                .drops(0.3)
                .reorders(0.2, SimTime::from_us(5)),
        );
        let (_, a2, b2) = heat_arrays(8, 4, true);
        let mut faulty = Cluster::new(ClusterConfig::new(2).fault(plan));
        let (s1, d1) = (faulty.register(&a2), faulty.register(&b2));
        let last = drive_heat(&mut faulty, s1, d1, 3);
        let faulty_out = if last.0 == 0 { &a2 } else { &b2 };
        assert_eq!(
            faulty_out.to_dense().unwrap(),
            golden,
            "drops and reorders delay messages; they never change data"
        );
        let ns = faulty.net_stats();
        assert!(ns.drops > 0, "the seeded drop schedule must fire");
        assert!(faulty.finish() >= clean_makespan);
    }

    #[test]
    fn node_death_failover_replays_bit_identically() {
        let steps = 3usize;
        let golden = heat::golden_run(init, 8, steps, heat::DEFAULT_FAC);

        // Global device 1 = node 1, local device 0: dies on its 3rd
        // transfer, mid-exchange.
        let plan = FaultPlan::none().with_device_death(DeviceDeath::at_transfer(1, 3));
        let (_, a, b) = heat_arrays(8, 4, true);
        let mut cl = Cluster::new(ClusterConfig::new(2).fault(plan));
        let ids = [cl.register(&a), cl.register(&b)];
        let ck = cl.checkpoint(0).unwrap();

        let mut s = 0u64;
        let mut recoveries = 0u32;
        while (s as usize) < steps {
            let (src, dst) = (ids[(s % 2) as usize], ids[((s + 1) % 2) as usize]);
            match cl.step(dst, src, None, heat::cost, "heat", |d, sv, _aux, bx| {
                heat::step_tile(d, sv, &bx, heat::DEFAULT_FAC)
            }) {
                Ok(()) => s += 1,
                Err(ClusterError::NodeLost { node }) => {
                    assert_eq!(node, 1);
                    s = cl.failover(&ck).unwrap();
                    recoveries += 1;
                    assert!(recoveries <= 2, "failover must converge");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        let last = ids[(s % 2) as usize];
        cl.sync_to_host(last).unwrap();
        let out = if last.0 == 0 { &a } else { &b };
        assert_eq!(
            out.to_dense().unwrap(),
            golden,
            "replay from the snapshot must be bit-identical"
        );
        assert_eq!(recoveries, 1);
        let st = cl.stats();
        assert!(st.regions_migrated > 0, "node 1's regions must move");
        assert_eq!(st.checkpoints_restored, 1);
        assert!(
            st.migration_restage_bytes
                >= st.regions_migrated * 2 * 8, // at least something per region per array
        );
        // Everything now lives on node 0.
        for r in 0..4 {
            assert_eq!(cl.owner_node(r), 0);
        }
    }

    #[test]
    fn unbacked_run_completes_with_timing_only() {
        let (_, a, b) = heat_arrays(8, 4, false);
        let mut cl = Cluster::new(ClusterConfig::new(2).backed(false));
        let (src, dst) = (cl.register(&a), cl.register(&b));
        let last = drive_heat(&mut cl, src, dst, 2);
        let out = if last.0 == 0 { &a } else { &b };
        assert!(out.to_dense().is_none(), "virtual arrays carry no data");
        assert!(cl.finish() > SimTime::ZERO);
        assert!(cl.net_stats().msgs() > 0, "timing-only messages still priced");
    }
}
