//! TiDA-acc drivers for the two evaluation kernels.
//!
//! These are the "applications" of §V/§VI written against the library's
//! public API: decompose into regions, traverse tiles with the iterator,
//! `fill_boundary` + `compute` per step, and drain results region by region
//! (which pipelines the final transfers).

use crate::common::RunResult;
use gpu_sim::{GpuSystem, MachineConfig};
use kernels::{busy, heat};
use std::sync::Arc;
use tida::{tiles_of, Decomposition, Domain, ExchangeMode, RegionSpec, TileArray, TileSpec};
use tida_acc::{AccOptions, SlotPolicy, TileAcc};

/// TiDA-acc specific knobs on top of [`crate::RunOpts`].
#[derive(Debug, Clone)]
pub struct TidaOpts {
    /// Number of regions (the paper's best heat configuration used 16).
    pub regions: usize,
    /// Library options (slot policy, write-back, slot cap, efficiency).
    pub acc: AccOptions,
    pub backed: bool,
    pub tracing: bool,
    /// Call [`TileAcc::begin_step`] at the top of every solver step so the
    /// automatic overlap scheduler can record the plan and prefetch. Off by
    /// default: the begin-step marker changes nothing when the lookahead is
    /// 0, but drivers that assert exact byte counts want it fully inert.
    pub auto_step: bool,
}

impl TidaOpts {
    pub fn timing(regions: usize) -> Self {
        TidaOpts {
            regions,
            acc: AccOptions::paper(),
            backed: false,
            tracing: false,
            auto_step: false,
        }
    }

    pub fn validated(regions: usize) -> Self {
        TidaOpts {
            regions,
            acc: AccOptions::paper(),
            backed: true,
            tracing: false,
            auto_step: false,
        }
    }

    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    pub fn with_max_slots(mut self, n: usize) -> Self {
        self.acc.max_slots = Some(n);
        self
    }

    /// Turn on the automatic lookahead-prefetch overlap scheduler: per-step
    /// plan recording, `lookahead`-step prefetching and the given eviction
    /// policy (normally [`SlotPolicy::ReuseDistance`]).
    pub fn with_overlap(mut self, lookahead: usize, policy: SlotPolicy) -> Self {
        self.acc.lookahead = lookahead;
        self.acc.policy = policy;
        self.auto_step = true;
        self
    }
}

fn result_of(acc: &mut TileAcc, array: &TileArray, label: String, tracing: bool) -> RunResult {
    let elapsed = acc.finish();
    RunResult {
        label,
        elapsed,
        bytes_h2d: acc.gpu().stats_bytes_h2d(),
        bytes_d2h: acc.gpu().stats_bytes_d2h(),
        kernels: acc.gpu().stats_kernels(),
        result: array.to_dense(),
        trace: if tracing {
            Some(acc.gpu().trace())
        } else {
            None
        },
    }
}

/// TiDA-acc heat solver: `steps` Jacobi steps over an `n³` periodic domain.
pub fn tida_heat(cfg: &MachineConfig, n: i64, steps: usize, opts: &TidaOpts) -> RunResult {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(opts.regions),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, opts.backed);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, opts.backed);
    ua.fill_valid(crate::heat::heat_init());

    let mut gpu = GpuSystem::with_backing(cfg.clone(), opts.backed);
    gpu.set_tracing(opts.tracing);
    let mut acc = TileAcc::new(gpu, opts.acc.clone());
    let a = acc.register(&ua);
    let b = acc.register(&ub);

    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let (mut src, mut dst) = (a, b);
    let fac = heat::DEFAULT_FAC;
    for _ in 0..steps {
        if opts.auto_step {
            acc.begin_step().unwrap();
        }
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                heat::cost(t.num_cells()),
                "heat",
                move |d, s, bx| heat::step_tile(d, s, &bx, fac),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    let final_array = if src == a { &ua } else { &ub };
    let label = format!("TiDA-acc({}r)", opts.regions);
    result_of(&mut acc, final_array, label, opts.tracing)
}

/// TiDA-acc compute-intensive kernel: `steps` passes of the sin/cos/sqrt
/// kernel (PGI math, as the paper's build used).
pub fn tida_busy(
    cfg: &MachineConfig,
    n: i64,
    steps: usize,
    iters: u32,
    opts: &TidaOpts,
) -> RunResult {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(opts.regions),
    ));
    let u = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, opts.backed);
    u.fill_valid(crate::busy::busy_init());

    let mut gpu = GpuSystem::with_backing(cfg.clone(), opts.backed);
    gpu.set_tracing(opts.tracing);
    let mut acc = TileAcc::new(gpu, opts.acc.clone());
    let a = acc.register(&u);

    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    for _ in 0..steps {
        if opts.auto_step {
            acc.begin_step().unwrap();
        }
        for &t in &tiles {
            acc.compute1(
                t,
                a,
                busy::cost(t.num_cells(), iters, busy::MathImpl::PgiLibm),
                "busy",
                move |v, bx| busy::apply_tile(v, &bx, iters),
            )
            .unwrap();
        }
    }
    acc.sync_to_host(a).unwrap();
    let label = match opts.acc.max_slots {
        Some(k) => format!("TiDA-acc({}r,{k}slots)", opts.regions),
        None => format!("TiDA-acc({}r)", opts.regions),
    };
    result_of(&mut acc, &u, label, opts.tracing)
}

/// Temporally blocked TiDA-acc heat solver (extension): each region stages
/// onto the device once per `block` time steps, carrying `block`-wide ghost
/// halos and computing a shrinking trapezoid of inner steps
/// (`valid.grow(block-1)`, `valid.grow(block-2)`, …, `valid`). Transfers per
/// step drop by up to `block`×, at the price of wider exchanges and
/// redundant trapezoid compute — the classic temporal-blocking trade,
/// layered on the paper's staging pipeline.
pub fn tida_heat_timetiled(
    cfg: &MachineConfig,
    n: i64,
    steps: usize,
    regions: usize,
    block: usize,
    max_slots: Option<usize>,
    backed: bool,
) -> RunResult {
    assert!(block >= 1, "block must be positive");
    assert!(
        steps.is_multiple_of(block),
        "steps ({steps}) must be a multiple of the block ({block})"
    );
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(regions),
    ));
    let ghost = block as i64;
    // The recursively applied 7-point stencil widens into a diamond: inner
    // steps read edge/corner ghosts, so blocks > 1 need the full exchange.
    let mode = if block == 1 {
        ExchangeMode::Faces
    } else {
        ExchangeMode::Full
    };
    let ua = TileArray::new(decomp.clone(), ghost, mode, backed);
    let ub = TileArray::new(decomp.clone(), ghost, mode, backed);
    ua.fill_valid(crate::heat::heat_init());

    let mut opts = AccOptions::paper();
    opts.max_slots = max_slots;
    let mut acc = TileAcc::new(GpuSystem::with_backing(cfg.clone(), backed), opts);
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let fac = heat::DEFAULT_FAC;

    let (mut src, mut dst) = (a, b);
    for _ in 0..steps / block {
        // One wide exchange feeds `block` inner steps.
        acc.fill_boundary(src).unwrap();
        for r in 0..decomp.num_regions() {
            let valid = decomp.region_box(r);
            let (mut s_in, mut d_in) = (src, dst);
            for inner in 0..block {
                let shrink = (block - 1 - inner) as i64;
                let tile = tida::Tile {
                    region: r,
                    bx: valid.grow(shrink),
                };
                acc.compute2(
                    tile,
                    d_in,
                    s_in,
                    heat::cost(tile.num_cells()),
                    "heat-tt",
                    move |d, s, bx| heat::step_tile(d, s, &bx, fac),
                )
                .unwrap();
                std::mem::swap(&mut s_in, &mut d_in);
            }
        }
        if block % 2 == 1 {
            std::mem::swap(&mut src, &mut dst);
        }
        // block even: the result landed back in `src`.
    }
    acc.sync_to_host(src).unwrap();
    let elapsed = acc.finish();
    let final_array = if src == a { &ua } else { &ub };
    RunResult {
        label: format!("TiDA-tt({regions}r,b{block})"),
        elapsed,
        bytes_h2d: acc.gpu().stats_bytes_h2d(),
        bytes_d2h: acc.gpu().stats_bytes_d2h(),
        kernels: acc.gpu().stats_kernels(),
        result: final_array.to_dense(),
        trace: None,
    }
}

/// Temporally blocked heat solver through the FUSED runtime path: like
/// [`tida_heat_timetiled`], but each region's `block` inner steps run as
/// ONE fused [`TileAcc::compute_fused`] launch (the on-chip double-buffer
/// model) instead of `block` separate kernels, and the exchange still
/// happens once per outer block over a depth-`block` halo. With `overlap`
/// the run layers the automatic lookahead scheduler on top
/// (`begin_step` + reuse-distance eviction + 2-step prefetch) — the "fused
/// planner path" the temporal bench and the E5 figure measure.
///
/// Data effects are bitwise-identical to the unfused ping-pong, so fused
/// runs validate against the same goldens.
#[allow(clippy::too_many_arguments)]
pub fn tida_heat_fused(
    cfg: &MachineConfig,
    n: i64,
    steps: usize,
    regions: usize,
    block: usize,
    max_slots: Option<usize>,
    backed: bool,
    overlap: bool,
) -> RunResult {
    assert!(block >= 1, "block must be positive");
    assert!(
        steps.is_multiple_of(block),
        "steps ({steps}) must be a multiple of the block ({block})"
    );
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(regions),
    ));
    let ghost = block as i64;
    let mode = if block == 1 {
        ExchangeMode::Faces
    } else {
        ExchangeMode::Full
    };
    let ua = TileArray::new(decomp.clone(), ghost, mode, backed);
    let ub = TileArray::new(decomp.clone(), ghost, mode, backed);
    ua.fill_valid(crate::heat::heat_init());

    let mut opts = AccOptions::paper();
    opts.max_slots = max_slots;
    if overlap {
        opts.policy = SlotPolicy::ReuseDistance;
        opts.lookahead = 2;
    }
    let mut acc = TileAcc::new(GpuSystem::with_backing(cfg.clone(), backed), opts);
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let fac = heat::DEFAULT_FAC;

    let (mut src, mut dst) = (a, b);
    for _ in 0..steps / block {
        if overlap {
            acc.begin_step().unwrap();
        }
        // One deep exchange feeds the whole fused block.
        acc.fill_boundary(src).unwrap();
        for r in 0..decomp.num_regions() {
            let valid = decomp.region_box(r);
            acc.compute_fused(
                r,
                dst,
                src,
                block,
                heat::fused_cost(block, &valid),
                "heat-fused",
                move |d, s, bx| heat::step_tile(d, s, &bx, fac),
            )
            .unwrap();
        }
        if block % 2 == 1 {
            std::mem::swap(&mut src, &mut dst);
        }
        // block even: the result landed back in `src`.
    }
    acc.sync_to_host(src).unwrap();
    let elapsed = acc.finish();
    let stats = acc.stats();
    assert_eq!(stats.hazards, 0, "fused run must be hazard-free");
    assert_eq!(stats.integrity_detected, 0, "fused run must be clean");
    let final_array = if src == a { &ua } else { &ub };
    RunResult {
        label: format!("TiDA-fused({regions}r,k{block})"),
        elapsed,
        bytes_h2d: acc.gpu().stats_bytes_h2d(),
        bytes_d2h: acc.gpu().stats_bytes_d2h(),
        kernels: acc.gpu().stats_kernels(),
        result: final_array.to_dense(),
        trace: None,
    }
}

/// Multi-GPU TiDA heat solver: regions distributed over `devices` GPUs with
/// pack/peer-copy/unpack halo exchange (the `MultiAcc` extension).
pub fn tida_heat_multi(
    cfg: &MachineConfig,
    n: i64,
    steps: usize,
    regions: usize,
    devices: usize,
    backed: bool,
) -> RunResult {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(regions),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, backed);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, backed);
    ua.fill_valid(crate::heat::heat_init());

    let mut acc = tida_acc::MultiAcc::new(GpuSystem::multi(cfg.clone(), devices, backed));
    let a = acc.register(&ua);
    let b = acc.register(&ub);
    let tiles = tiles_of(&decomp, TileSpec::RegionSized);
    let (mut src, mut dst) = (a, b);
    let fac = heat::DEFAULT_FAC;
    for _ in 0..steps {
        acc.fill_boundary(src).unwrap();
        for &t in &tiles {
            acc.compute2(
                t,
                dst,
                src,
                heat::cost(t.num_cells()),
                "heat",
                move |d, s, bx| heat::step_tile(d, s, &bx, fac),
            )
            .unwrap();
        }
        std::mem::swap(&mut src, &mut dst);
    }
    acc.sync_to_host(src).unwrap();
    let elapsed = acc.finish();
    let final_array = if src == a { &ua } else { &ub };
    RunResult {
        label: format!("TiDA-multi({regions}r,{devices}gpu)"),
        elapsed,
        bytes_h2d: acc.gpu().stats_bytes_h2d(),
        bytes_d2h: acc.gpu().stats_bytes_d2h(),
        kernels: acc.gpu().stats_kernels(),
        result: final_array.to_dense(),
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{MemMode, RunOpts as BOpts};

    fn cfg() -> MachineConfig {
        MachineConfig::k40m()
    }

    #[test]
    fn tida_heat_matches_cuda_baseline_bitwise() {
        let n = 8;
        let steps = 3;
        let t = tida_heat(&cfg(), n, steps, &TidaOpts::validated(4));
        let c = crate::heat::cuda_heat(&cfg(), n, steps, BOpts::validated(MemMode::Pinned));
        assert_eq!(t.result.unwrap(), c.result.unwrap());
    }

    #[test]
    fn tida_busy_matches_cuda_baseline() {
        let n = 8;
        let (steps, iters) = (2, 4);
        let t = tida_busy(&cfg(), n, steps, iters, &TidaOpts::validated(4));
        let c = crate::busy::cuda_busy(
            &cfg(),
            n,
            steps,
            iters,
            busy::MathImpl::CudaLibm,
            BOpts::validated(MemMode::Pinned),
        );
        assert_eq!(t.result.unwrap(), c.result.unwrap());
    }

    #[test]
    fn tida_heat_beats_synchronous_baselines_at_one_step() {
        // The Fig. 5 low-iteration regime: transfers dominate and TiDA-acc
        // pipelines them behind compute.
        let n = 96;
        let t = tida_heat(&cfg(), n, 1, &TidaOpts::timing(8)).elapsed;
        let pageable =
            crate::heat::cuda_heat(&cfg(), n, 1, BOpts::timing(MemMode::Pageable)).elapsed;
        let pinned = crate::heat::cuda_heat(&cfg(), n, 1, BOpts::timing(MemMode::Pinned)).elapsed;
        assert!(t < pinned, "TiDA-acc {t} !< CUDA-pinned {pinned}");
        assert!(t < pageable, "TiDA-acc {t} !< CUDA-pageable {pageable}");
    }

    #[test]
    fn timetiled_heat_bitwise_golden_for_all_blocks() {
        let n = 12;
        let steps = 6;
        let golden = heat::golden_run(crate::heat::heat_init(), n, steps, heat::DEFAULT_FAC);
        // Regions are 12x12x4 slabs: blocks up to the slab depth work.
        for block in [1usize, 2, 3] {
            let r = tida_heat_timetiled(&cfg(), n, steps, 3, block, None, true);
            assert_eq!(r.result.as_ref().unwrap(), &golden, "block {block}");
        }
    }

    #[test]
    #[should_panic(expected = "ghost width")]
    fn timetiled_block_deeper_than_region_panics() {
        // Ghost halos deeper than the thinnest region cannot be exchanged
        // from immediate neighbours; the decomposition rejects it.
        tida_heat_timetiled(&cfg(), 12, 6, 3, 6, None, true);
    }

    #[test]
    fn timetiled_heat_bitwise_golden_under_memory_pressure() {
        let n = 12;
        let steps = 4;
        let golden = heat::golden_run(crate::heat::heat_init(), n, steps, heat::DEFAULT_FAC);
        let r = tida_heat_timetiled(&cfg(), n, steps, 3, 2, Some(3), true);
        assert_eq!(r.result.unwrap(), golden);
    }

    #[test]
    fn fused_heat_bitwise_golden_for_all_depths() {
        let n = 12;
        let steps = 6;
        let golden = heat::golden_run(crate::heat::heat_init(), n, steps, heat::DEFAULT_FAC);
        // Regions are 12x12x4 slabs: depths up to the slab depth work.
        for block in [1usize, 2, 3] {
            let r = tida_heat_fused(&cfg(), n, steps, 3, block, None, true, false);
            assert_eq!(r.result.as_ref().unwrap(), &golden, "depth {block}");
        }
    }

    #[test]
    fn fused_matches_timetiled_bitwise_with_fewer_launches() {
        // Same trapezoid, same exchange schedule: the fused run must agree
        // bit-for-bit with k separate launches while launching fewer
        // kernels and staging no more data. (It actually stages LESS: the
        // unfused loop's first inner step writes grow(k-1), not the whole
        // valid box, so it never qualifies for a write-intent claim and
        // uploads the destination array; the fused call proves the full
        // overwrite up front and skips that upload.)
        let n = 12;
        let steps = 6;
        let block = 2;
        let f = tida_heat_fused(&cfg(), n, steps, 3, block, Some(3), true, false);
        let t = tida_heat_timetiled(&cfg(), n, steps, 3, block, Some(3), true);
        assert_eq!(f.result.unwrap(), t.result.unwrap());
        assert!(
            f.bytes_h2d < t.bytes_h2d,
            "fused staging {} !< unfused {}",
            f.bytes_h2d,
            t.bytes_h2d
        );
        assert!(
            f.kernels < t.kernels,
            "fused {} launches !< unfused {}",
            f.kernels,
            t.kernels
        );
    }

    #[test]
    fn fused_depth_one_degenerates_bit_identically() {
        // k=1 must be indistinguishable from today's unfused path: same
        // field, same byte counts, same launch count, same makespan.
        let n = 12;
        let steps = 4;
        let f = tida_heat_fused(&cfg(), n, steps, 3, 1, Some(3), true, false);
        let t = tida_heat_timetiled(&cfg(), n, steps, 3, 1, Some(3), true);
        assert_eq!(f.result.unwrap(), t.result.unwrap());
        assert_eq!(f.bytes_h2d, t.bytes_h2d);
        assert_eq!(f.bytes_d2h, t.bytes_d2h);
        assert_eq!(f.kernels, t.kernels);
        assert_eq!(f.elapsed, t.elapsed, "k=1 fused must not change timing");
    }

    #[test]
    fn fused_overlap_path_stays_bitwise_golden() {
        // The full fused planner path (begin_step + reuse-distance +
        // lookahead prefetch) under memory pressure must still be golden.
        let n = 12;
        let steps = 6;
        let golden = heat::golden_run(crate::heat::heat_init(), n, steps, heat::DEFAULT_FAC);
        for block in [1usize, 2] {
            let r = tida_heat_fused(&cfg(), n, steps, 3, block, Some(3), true, true);
            assert_eq!(r.result.as_ref().unwrap(), &golden, "depth {block}");
        }
    }

    #[test]
    #[should_panic(expected = "ghost width")]
    fn fused_depth_deeper_than_region_panics() {
        tida_heat_fused(&cfg(), 12, 6, 3, 6, None, true, false);
    }

    #[test]
    fn fused_cuts_staged_bytes_per_step() {
        // Out-of-core regime: depth 4 re-stages each region once per 4
        // steps instead of once per step.
        let n = 64;
        let steps = 8;
        let k1 = tida_heat_fused(&cfg(), n, steps, 8, 1, Some(4), false, false);
        let k4 = tida_heat_fused(&cfg(), n, steps, 8, 4, Some(4), false, false);
        assert!(
            (k4.bytes_h2d as f64) < 0.67 * k1.bytes_h2d as f64,
            "depth 4 staged {} !< 2/3 of depth 1's {}",
            k4.bytes_h2d,
            k1.bytes_h2d
        );
        assert!(k4.elapsed < k1.elapsed, "amortization must win end-to-end");
    }

    #[test]
    fn temporal_blocking_cuts_transfer_volume_when_staging() {
        // Out-of-core regime: blocks of 4 must move ~4x less data per step.
        let n = 64;
        let steps = 8;
        let b1 = tida_heat_timetiled(&cfg(), n, steps, 8, 1, Some(4), false);
        let b4 = tida_heat_timetiled(&cfg(), n, steps, 8, 4, Some(4), false);
        // Not a full 4x: temporally blocked buffers carry 4-wide halos, so
        // each staged transfer is bigger — the net is still a large cut.
        assert!(
            (b4.bytes_h2d as f64) < 0.8 * b1.bytes_h2d as f64,
            "H2D bytes: b4 {} vs b1 {}",
            b4.bytes_h2d,
            b1.bytes_h2d
        );
    }

    #[test]
    fn tida_busy_limited_slots_close_to_unlimited() {
        // Fig. 8: two slots vs all-fit, compute-intensive kernel.
        let n = 64;
        let (steps, iters) = (4, busy::DEFAULT_KERNEL_ITERATION);
        let full = tida_busy(&cfg(), n, steps, iters, &TidaOpts::timing(8)).elapsed;
        let limited = tida_busy(
            &cfg(),
            n,
            steps,
            iters,
            &TidaOpts::timing(8).with_max_slots(2),
        )
        .elapsed;
        let ratio = limited.as_secs_f64() / full.as_secs_f64();
        assert!(ratio < 1.10, "limited-memory overhead too high: {ratio}");
    }
}
