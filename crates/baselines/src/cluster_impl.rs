//! Cluster drivers for the evaluation kernels: the same heat and Jacobi
//! applications the other execution models run, written against the
//! multi-node `Cluster` runtime so the conformance suite can hold it to
//! the same bitwise standard. Pinned to one node these must be
//! indistinguishable (in results and byte accounting) from any other
//! conforming model; on several nodes the halo traffic rides the network
//! model instead of device-side gathers, and the results must not move.

use crate::common::RunResult;
use cluster::{Cluster, ClusterConfig};
use gpu_sim::MachineConfig;
use kernels::{heat, jacobi};
use std::sync::Arc;
use tida::{Decomposition, Domain, ExchangeMode, RegionSpec, TileArray};

/// Per-span payloads of the cluster's network deliveries, summed from the
/// trace — the wire-side counterpart of `transfer_bytes_from_trace`.
pub fn net_bytes_from_trace(trace: &gpu_sim::Trace) -> u64 {
    trace
        .spans
        .iter()
        .filter(|s| s.category == "net")
        .map(|s| {
            let l = &s.label;
            let inner = l
                .find('[')
                .and_then(|i| l[i + 1..].find("B]").map(|j| &l[i + 1..i + 1 + j]))
                .unwrap_or_else(|| panic!("malformed NET span label {l:?}"));
            inner.parse::<u64>().unwrap_or_else(|e| {
                panic!("malformed NET span payload in {l:?}: {e}");
            })
        })
        .sum()
}

fn result_of(cl: &mut Cluster, array: &TileArray, label: String, tracing: bool) -> RunResult {
    let elapsed = cl.finish();
    RunResult {
        label,
        elapsed,
        bytes_h2d: cl.bytes_h2d(),
        bytes_d2h: cl.bytes_d2h(),
        kernels: cl.kernels_launched(),
        result: array.to_dense(),
        trace: if tracing { Some(cl.trace()) } else { None },
    }
}

/// Cluster heat solver: `steps` Jacobi steps over an `n³` periodic domain,
/// `regions` z-slab regions spread across `nodes` simulated nodes.
pub fn cluster_heat(
    cfg: &MachineConfig,
    n: i64,
    steps: usize,
    regions: usize,
    nodes: usize,
    backed: bool,
    tracing: bool,
) -> RunResult {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(regions),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, backed);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, backed);
    ua.fill_valid(crate::heat::heat_init());

    let mut cl = Cluster::new(
        ClusterConfig::new(nodes)
            .machine(cfg.clone())
            .backed(backed),
    );
    cl.set_tracing(tracing);
    let a = cl.register(&ua);
    let b = cl.register(&ub);
    let (mut src, mut dst) = (a, b);
    let fac = heat::DEFAULT_FAC;
    for _ in 0..steps {
        cl.step(dst, src, None, heat::cost, "heat", move |d, s, _aux, bx| {
            heat::step_tile(d, s, &bx, fac)
        })
        .unwrap();
        std::mem::swap(&mut src, &mut dst);
    }
    cl.sync_to_host(src).unwrap();
    let final_array = if src == a { &ua } else { &ub };
    let label = format!("Cluster-heat({regions}r,{nodes}n)");
    result_of(&mut cl, final_array, label, tracing)
}

/// Cluster Jacobi driver: the two-operand path (`u'` from `u` and the
/// right-hand side `f`), ghost exchange on the iterate only — `f` rides
/// along as the aux operand, uploaded once per owning node and never
/// exchanged.
pub fn cluster_jacobi(
    cfg: &MachineConfig,
    n: i64,
    sweeps: usize,
    regions: usize,
    nodes: usize,
    backed: bool,
    tracing: bool,
) -> RunResult {
    let decomp = Arc::new(Decomposition::new(
        Domain::periodic_cube(n),
        RegionSpec::Count(regions),
    ));
    let ua = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, backed);
    let ub = TileArray::new(decomp.clone(), 1, ExchangeMode::Faces, backed);
    let rhs = TileArray::new(decomp.clone(), 0, ExchangeMode::Faces, backed);
    ua.fill_valid(|_| 0.0);
    if backed {
        rhs.from_dense(&jacobi::manufactured_rhs(n));
    }

    let mut cl = Cluster::new(
        ClusterConfig::new(nodes)
            .machine(cfg.clone())
            .backed(backed),
    );
    cl.set_tracing(tracing);
    let a = cl.register(&ua);
    let b = cl.register(&ub);
    let f = cl.register(&rhs);
    let (mut src, mut dst) = (a, b);
    for _ in 0..sweeps {
        cl.step(
            dst,
            src,
            Some(f),
            jacobi::cost,
            "jacobi",
            |d, s, aux, bx| jacobi::sweep_tile(d, s, aux.expect("rhs operand"), &bx),
        )
        .unwrap();
        std::mem::swap(&mut src, &mut dst);
    }
    cl.sync_to_host(src).unwrap();
    let final_array = if src == a { &ua } else { &ub };
    let label = format!("Cluster-jacobi({regions}r,{nodes}n)");
    result_of(&mut cl, final_array, label, tracing)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::k40m()
    }

    #[test]
    fn cluster_heat_matches_golden_on_one_and_two_nodes() {
        let (n, steps) = (8, 3);
        let golden = heat::golden_run(crate::heat::heat_init(), n, steps, heat::DEFAULT_FAC);
        for nodes in [1usize, 2] {
            let r = cluster_heat(&cfg(), n, steps, 4, nodes, true, false);
            assert_eq!(r.result.unwrap(), golden, "{nodes} nodes");
        }
    }

    #[test]
    fn cluster_jacobi_matches_golden_on_one_and_two_nodes() {
        let (n, sweeps) = (8, 3);
        let golden = jacobi::golden_run(&jacobi::manufactured_rhs(n), n, sweeps);
        for nodes in [1usize, 2] {
            let r = cluster_jacobi(&cfg(), n, sweeps, 4, nodes, true, false);
            assert_eq!(r.result.unwrap(), golden, "{nodes} nodes");
        }
    }
}
