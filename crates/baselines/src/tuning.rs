//! Region-size autotuning.
//!
//! The paper leaves region/tile sizes to the programmer ("a programmer can
//! easily tune these parameters", §IV-A) or to external models (ExaSAT).
//! Because this reproduction's platform is a deterministic simulator,
//! tuning can be *exact and free*: run the candidate configurations with
//! virtual (unbacked) buffers — milliseconds of wall time at full problem
//! scale — and pick the best simulated time before committing to a real
//! (backed) run.

use crate::common::RunResult;
use crate::tida_impl::{tida_busy, tida_heat, TidaOpts};
use gpu_sim::{MachineConfig, SimTime};

/// Outcome of a tuning sweep.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The winning region count.
    pub best_regions: usize,
    /// Simulated time of the winner.
    pub best_time: SimTime,
    /// Every candidate, in the order tried.
    pub tried: Vec<(usize, SimTime)>,
}

impl TuneResult {
    fn from_runs(tried: Vec<(usize, SimTime)>) -> TuneResult {
        let (best_regions, best_time) = tried
            .iter()
            .copied()
            .min_by_key(|&(_, t)| t)
            .expect("at least one candidate");
        TuneResult {
            best_regions,
            best_time,
            tried,
        }
    }
}

/// Default candidate region counts (powers of two up to `max`).
pub fn default_candidates(n: i64, max: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut r = 1usize;
    while r <= max && (r as i64) <= n {
        out.push(r);
        r *= 2;
    }
    out
}

/// Tune the heat solver's region count for an `n³` domain and `steps`
/// steps on `cfg`.
pub fn autotune_heat_regions(
    cfg: &MachineConfig,
    n: i64,
    steps: usize,
    candidates: &[usize],
) -> TuneResult {
    assert!(!candidates.is_empty(), "no candidates to tune over");
    let tried = candidates
        .iter()
        .map(|&r| (r, tida_heat(cfg, n, steps, &TidaOpts::timing(r)).elapsed))
        .collect();
    TuneResult::from_runs(tried)
}

/// Tune the compute-intensive kernel's region count.
pub fn autotune_busy_regions(
    cfg: &MachineConfig,
    n: i64,
    steps: usize,
    iters: u32,
    candidates: &[usize],
) -> TuneResult {
    assert!(!candidates.is_empty(), "no candidates to tune over");
    let tried = candidates
        .iter()
        .map(|&r| {
            (
                r,
                tida_busy(cfg, n, steps, iters, &TidaOpts::timing(r)).elapsed,
            )
        })
        .collect();
    TuneResult::from_runs(tried)
}

/// Re-run the winning configuration, backed, and return its result
/// (convenience for "tune then run").
pub fn run_tuned_heat(cfg: &MachineConfig, n: i64, steps: usize, tuned: &TuneResult) -> RunResult {
    tida_heat(cfg, n, steps, &TidaOpts::validated(tuned.best_regions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::{heat, init};

    fn cfg() -> MachineConfig {
        MachineConfig::k40m()
    }

    #[test]
    fn default_candidates_powers_of_two() {
        assert_eq!(default_candidates(64, 32), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(default_candidates(4, 32), vec![1, 2, 4]);
    }

    #[test]
    fn tuner_picks_the_minimum() {
        let t = autotune_heat_regions(&cfg(), 64, 1, &[1, 4, 8]);
        assert_eq!(t.tried.len(), 3);
        let min = t.tried.iter().map(|&(_, d)| d).min().unwrap();
        assert_eq!(t.best_time, min);
        assert!(t
            .tried
            .iter()
            .any(|&(r, d)| r == t.best_regions && d == min));
    }

    #[test]
    fn transfer_bound_heat_prefers_multiple_regions() {
        // One step at a transfer-bound size: pipelining must beat a single
        // region.
        let t = autotune_heat_regions(&cfg(), 128, 1, &[1, 8]);
        assert_eq!(t.best_regions, 8);
    }

    #[test]
    fn tuned_run_is_still_bitwise_correct() {
        let n = 8;
        let steps = 2;
        let t = autotune_heat_regions(&cfg(), n, steps, &[2, 4]);
        let r = run_tuned_heat(&cfg(), n, steps, &t);
        let golden = heat::golden_run(init::hash_field(11), n, steps, heat::DEFAULT_FAC);
        assert_eq!(r.result.unwrap(), golden);
    }

    #[test]
    fn busy_tuner_runs() {
        let t = autotune_busy_regions(&cfg(), 32, 2, 10, &[1, 2, 4]);
        assert!(t.best_time > SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_candidates_panic() {
        autotune_heat_regions(&cfg(), 8, 1, &[]);
    }
}
