//! Whole-array heat-solver baselines (§II-C / Fig. 1, §VI-A / Fig. 5).
//!
//! All variants use the classic structure the paper describes: allocate the
//! full `n³` array on host and device, transfer once up, run one fused
//! kernel per time step (periodic boundaries handled inside the kernel for
//! tuned CUDA, by extra boundary-update kernels for the OpenACC-generated
//! versions), transfer once down. The differences between variants are
//! exactly the differences the paper names:
//!
//! * memory management — pageable vs pinned vs managed ([`MemMode`]);
//! * kernel generation — tuned CUDA geometry (efficiency 1.0, one kernel
//!   per step) vs OpenACC-generated (efficiency < 1, one compute kernel plus
//!   one kernel per boundary face, each paying launch overhead);
//! * OpenACC-managed transfers carry a small per-step runtime overhead
//!   (data-presence bookkeeping) that the raw-CUDA hybrid avoids.

use crate::common::{MemMode, RunOpts, RunResult};
use gpu_sim::{GpuSystem, KernelCost, KernelLaunch, MachineConfig};
use kernels::heat;
use memslab::Slab;
use tida::IntVect;

/// Kernel-generation model.
#[derive(Debug, Clone, Copy)]
struct KernelGen {
    efficiency: f64,
    /// Launch one extra kernel per face and step (OpenACC boundary update).
    boundary_kernels: bool,
    /// Per-step host-side runtime overhead (OpenACC data bookkeeping).
    runtime_overhead: gpu_sim::SimTime,
}

const CUDA_GEN: KernelGen = KernelGen {
    efficiency: 1.0,
    boundary_kernels: false,
    runtime_overhead: gpu_sim::SimTime::ZERO,
};

const OPENACC_GEN: KernelGen = KernelGen {
    efficiency: 0.85,
    boundary_kernels: true,
    runtime_overhead: gpu_sim::SimTime(20_000), // 20 us
};

/// Tuned CUDA implementation (one fused kernel per step).
pub fn cuda_heat(cfg: &MachineConfig, n: i64, steps: usize, opts: RunOpts) -> RunResult {
    run(
        cfg,
        n,
        steps,
        opts,
        CUDA_GEN,
        format!("CUDA-{}", opts.mem.label()),
    )
}

/// OpenACC implementation: compiler-generated kernels (untuned geometry,
/// per-face boundary kernels) and directive-managed data.
pub fn openacc_heat(cfg: &MachineConfig, n: i64, steps: usize, opts: RunOpts) -> RunResult {
    run(
        cfg,
        n,
        steps,
        opts,
        OPENACC_GEN,
        format!("OpenACC-{}", opts.mem.label()),
    )
}

/// The paper's hybrid (§II-C): CUDA manages memory and transfers, OpenACC
/// generates the kernels. No OpenACC runtime overhead on the data path.
pub fn hybrid_heat(cfg: &MachineConfig, n: i64, steps: usize, opts: RunOpts) -> RunResult {
    let gen = KernelGen {
        runtime_overhead: gpu_sim::SimTime::ZERO,
        ..OPENACC_GEN
    };
    run(
        cfg,
        n,
        steps,
        opts,
        gen,
        format!("CUDAmem+OpenACCkern-{}", opts.mem.label()),
    )
}

/// Fill a dense slab with the standard initial condition.
fn fill_dense(slab: &Slab, n: i64) {
    let l = tida::Layout::new(tida::Box3::cube(n));
    let f = heat_init();
    slab.fill_with(|o| f(l.cell_at(o)));
}

fn run(
    cfg: &MachineConfig,
    n: i64,
    steps: usize,
    opts: RunOpts,
    gen: KernelGen,
    label: String,
) -> RunResult {
    assert!(steps >= 1, "heat baseline needs at least one step");
    let mut gpu = GpuSystem::with_backing(cfg.clone(), opts.backed);
    gpu.set_tracing(opts.tracing);
    let len = (n * n * n) as usize;
    let cells = len as u64;
    let fac = heat::DEFAULT_FAC;
    let face_bytes = (n * n) as u64 * 16;

    let result_slab: Slab = match opts.mem {
        MemMode::Managed => {
            let u = gpu.malloc_managed(len).expect("managed alloc");
            let v = gpu.malloc_managed(len).expect("managed alloc");
            fill_dense(&gpu.managed_slab(u), n);
            let stream = gpu.create_stream();
            let (mut cur, mut next) = (u, v);
            for _ in 0..steps {
                if gen.runtime_overhead > gpu_sim::SimTime::ZERO {
                    gpu.host_work(gen.runtime_overhead, "acc-runtime");
                }
                let (src_slab, dst_slab) = (gpu.managed_slab(cur), gpu.managed_slab(next));
                gpu.launch_kernel(
                    stream,
                    KernelLaunch::new("heat", heat::cost(cells))
                        .efficiency(gen.efficiency)
                        .reads(cur.into())
                        .writes(next.into())
                        .exec(move || {
                            src_slab.with(|s| {
                                dst_slab.with_mut(|d| {
                                    if let (Some(s), Some(d)) = (s, d) {
                                        heat::golden_step(d, s, n, fac);
                                    }
                                })
                            });
                        }),
                );
                if gen.boundary_kernels {
                    for _ in 0..6 {
                        gpu.launch_kernel(
                            stream,
                            KernelLaunch::new("bdry", KernelCost::Bytes(face_bytes))
                                .efficiency(gen.efficiency),
                        );
                    }
                }
                std::mem::swap(&mut cur, &mut next);
            }
            gpu.managed_host_access(cur);
            gpu.managed_slab(cur)
        }
        MemMode::Pageable | MemMode::Pinned => {
            let kind = match opts.mem {
                MemMode::Pageable => gpu_sim::HostMemKind::Pageable,
                _ => gpu_sim::HostMemKind::Pinned,
            };
            let h = gpu.malloc_host(len, kind);
            fill_dense(&gpu.host_slab(h), n);
            let d_u = gpu.malloc_device(len).expect("device alloc");
            let d_v = gpu.malloc_device(len).expect("device alloc");
            let stream = gpu.create_stream();
            crate::common::h2d_retrying(&mut gpu, d_u, h, len, stream);
            let (mut cur, mut next) = (d_u, d_v);
            for _ in 0..steps {
                if gen.runtime_overhead > gpu_sim::SimTime::ZERO {
                    gpu.host_work(gen.runtime_overhead, "acc-runtime");
                }
                let (src_slab, dst_slab) = (gpu.device_slab(cur), gpu.device_slab(next));
                gpu.launch_kernel(
                    stream,
                    KernelLaunch::new("heat", heat::cost(cells))
                        .efficiency(gen.efficiency)
                        .reads(cur.into())
                        .writes(next.into())
                        .exec(move || {
                            src_slab.with(|s| {
                                dst_slab.with_mut(|d| {
                                    if let (Some(s), Some(d)) = (s, d) {
                                        heat::golden_step(d, s, n, fac);
                                    }
                                })
                            });
                        }),
                );
                if gen.boundary_kernels {
                    for _ in 0..6 {
                        gpu.launch_kernel(
                            stream,
                            KernelLaunch::new("bdry", KernelCost::Bytes(face_bytes))
                                .efficiency(gen.efficiency),
                        );
                    }
                }
                std::mem::swap(&mut cur, &mut next);
            }
            crate::common::d2h_retrying(&mut gpu, h, cur, len, stream);
            gpu.stream_synchronize(stream);
            gpu.host_slab(h)
        }
    };

    let elapsed = gpu.finish();
    RunResult {
        label,
        elapsed,
        bytes_h2d: gpu.stats_bytes_h2d(),
        bytes_d2h: gpu.stats_bytes_d2h(),
        kernels: gpu.stats_kernels(),
        result: result_slab.snapshot(),
        trace: if opts.tracing {
            Some(gpu.trace())
        } else {
            None
        },
    }
}

/// The initial condition shared by every heat run (baselines and TiDA-acc),
/// so results are directly comparable.
pub fn heat_init() -> impl Fn(IntVect) -> f64 {
    kernels::init::hash_field(11)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::k40m()
    }

    #[test]
    fn cuda_pinned_matches_golden() {
        let n = 8;
        let steps = 3;
        let r = cuda_heat(&cfg(), n, steps, RunOpts::validated(MemMode::Pinned));
        let golden = heat::golden_run(heat_init(), n, steps, heat::DEFAULT_FAC);
        assert_eq!(r.result.unwrap(), golden);
    }

    #[test]
    fn managed_matches_golden() {
        let n = 8;
        let steps = 2;
        let r = cuda_heat(&cfg(), n, steps, RunOpts::validated(MemMode::Managed));
        let golden = heat::golden_run(heat_init(), n, steps, heat::DEFAULT_FAC);
        assert_eq!(r.result.unwrap(), golden);
    }

    #[test]
    fn pinned_faster_than_pageable_faster_than_managed() {
        let n = 64;
        let steps = 5;
        let t = |mem| cuda_heat(&cfg(), n, steps, RunOpts::timing(mem)).elapsed;
        let pinned = t(MemMode::Pinned);
        let pageable = t(MemMode::Pageable);
        let managed = t(MemMode::Managed);
        assert!(pinned < pageable, "{pinned} !< {pageable}");
        assert!(pageable < managed, "{pageable} !< {managed}");
    }

    #[test]
    fn cuda_faster_than_hybrid_faster_than_openacc() {
        // Fig. 1's within-memory-class ordering.
        let n = 48;
        let steps = 20;
        let opts = RunOpts::timing(MemMode::Pinned);
        let cuda = cuda_heat(&cfg(), n, steps, opts).elapsed;
        let hybrid = hybrid_heat(&cfg(), n, steps, opts).elapsed;
        let acc = openacc_heat(&cfg(), n, steps, opts).elapsed;
        assert!(cuda < hybrid, "{cuda} !< {hybrid}");
        assert!(hybrid <= acc, "{hybrid} !<= {acc}");
    }

    #[test]
    fn openacc_launches_boundary_kernels() {
        let n = 8;
        let steps = 4;
        let acc = openacc_heat(&cfg(), n, steps, RunOpts::timing(MemMode::Pageable));
        let cuda = cuda_heat(&cfg(), n, steps, RunOpts::timing(MemMode::Pageable));
        assert_eq!(cuda.kernels, steps as u64);
        assert_eq!(acc.kernels, steps as u64 * 7);
    }

    #[test]
    fn transfer_accounting() {
        let n = 16;
        let r = cuda_heat(&cfg(), n, 1, RunOpts::timing(MemMode::Pinned));
        let bytes = (n * n * n) as u64 * 8;
        assert_eq!(r.bytes_h2d, bytes);
        assert_eq!(r.bytes_d2h, bytes);
    }

    #[test]
    fn all_variants_agree_on_result() {
        let n = 6;
        let steps = 2;
        let golden = heat::golden_run(heat_init(), n, steps, heat::DEFAULT_FAC);
        for (name, r) in [
            (
                "cuda-pageable",
                cuda_heat(&cfg(), n, steps, RunOpts::validated(MemMode::Pageable)),
            ),
            (
                "openacc-pinned",
                openacc_heat(&cfg(), n, steps, RunOpts::validated(MemMode::Pinned)),
            ),
            (
                "hybrid-pinned",
                hybrid_heat(&cfg(), n, steps, RunOpts::validated(MemMode::Pinned)),
            ),
            (
                "openacc-managed",
                openacc_heat(&cfg(), n, steps, RunOpts::validated(MemMode::Managed)),
            ),
        ] {
            assert_eq!(r.result.unwrap(), golden, "{name}");
        }
    }
}
