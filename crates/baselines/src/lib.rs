//! `baselines` — every execution model the paper compares.
//!
//! * [`heat`] — whole-array heat-solver baselines: tuned CUDA, OpenACC
//!   (compiler-generated kernels + per-face boundary kernels), and the
//!   CUDA-memory + OpenACC-kernels hybrid, each under pageable / pinned /
//!   managed memory (Fig. 1, Fig. 5).
//! * [`busy`] — whole-array compute-intensive baselines with the three math
//!   implementations (Fig. 6).
//! * [`tida`] — the TiDA-acc drivers for both kernels (Figs. 5–8).
//!
//! Every run returns a [`RunResult`] with the simulated time, transfer and
//! kernel statistics, the final field when validated, and the trace when
//! requested — the figure harness in `crates/bench` is a thin formatter over
//! these functions.

pub mod busy;
mod cluster_impl;
mod common;
pub mod heat;
pub mod jacobi;
pub mod multigrid;
mod tida_impl;
pub mod tuning;

pub use cluster_impl::{cluster_heat, cluster_jacobi, net_bytes_from_trace};
pub use common::{d2h_retrying, h2d_retrying, MemMode, RunOpts, RunResult};
pub use jacobi::{cuda_jacobi, tida_jacobi};
pub use tida_impl::{
    tida_busy, tida_heat, tida_heat_fused, tida_heat_multi, tida_heat_timetiled, TidaOpts,
};

#[cfg(test)]
mod cross_validation {
    use super::*;
    use gpu_sim::MachineConfig;
    use kernels::busy::MathImpl;

    /// Every execution model must compute the same physics: the simulator's
    /// point is that only *time* differs between variants.
    #[test]
    fn all_heat_variants_bitwise_agree() {
        let cfg = MachineConfig::k40m();
        let (n, steps) = (6, 2);
        let reference = heat::cuda_heat(&cfg, n, steps, RunOpts::validated(MemMode::Pinned))
            .result
            .unwrap();
        let variants = [
            heat::cuda_heat(&cfg, n, steps, RunOpts::validated(MemMode::Pageable)),
            heat::cuda_heat(&cfg, n, steps, RunOpts::validated(MemMode::Managed)),
            heat::openacc_heat(&cfg, n, steps, RunOpts::validated(MemMode::Pageable)),
            heat::hybrid_heat(&cfg, n, steps, RunOpts::validated(MemMode::Pinned)),
            tida_heat(&cfg, n, steps, &TidaOpts::validated(3)),
            tida_heat(&cfg, n, steps, &TidaOpts::validated(3).with_max_slots(2)),
        ];
        for v in variants {
            assert_eq!(v.result.as_ref().unwrap(), &reference, "{}", v.label);
        }
    }

    #[test]
    fn all_busy_variants_bitwise_agree() {
        let cfg = MachineConfig::k40m();
        let (n, steps, iters) = (6, 2, 4);
        let reference = busy::cuda_busy(
            &cfg,
            n,
            steps,
            iters,
            MathImpl::CudaLibm,
            RunOpts::validated(MemMode::Pinned),
        )
        .result
        .unwrap();
        let variants = [
            busy::cuda_busy(
                &cfg,
                n,
                steps,
                iters,
                MathImpl::FastMath,
                RunOpts::validated(MemMode::Pageable),
            ),
            busy::openacc_busy(&cfg, n, steps, iters, RunOpts::validated(MemMode::Pageable)),
            busy::cuda_busy(
                &cfg,
                n,
                steps,
                iters,
                MathImpl::CudaLibm,
                RunOpts::validated(MemMode::Managed),
            ),
            tida_busy(&cfg, n, steps, iters, &TidaOpts::validated(3)),
            tida_busy(
                &cfg,
                n,
                steps,
                iters,
                &TidaOpts::validated(3).with_max_slots(1),
            ),
        ];
        for v in variants {
            assert_eq!(v.result.as_ref().unwrap(), &reference, "{}", v.label);
        }
    }
}
