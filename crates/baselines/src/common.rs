//! Shared configuration and result types for all execution-model variants.

use gpu_sim::{DeviceBuffer, GpuSystem, HostBuffer, SimTime, StreamId, Trace};

/// Retry budget the baselines give an injected transient transfer fault.
/// A plain CUDA program has no host fallback: a persistent H2D fault past
/// this budget is unrecoverable (the H2D helper panics); a persistent D2H
/// fault degrades to the fault-exempt salvage path.
pub const MAX_TRANSFER_RETRIES: u32 = 8;

/// `memcpy_h2d_async` with bounded retry-with-backoff on injected transient
/// faults — what a robust CUDA program does around `cudaMemcpyAsync`.
pub fn h2d_retrying(
    gpu: &mut GpuSystem,
    dst: DeviceBuffer,
    src: HostBuffer,
    len: usize,
    stream: StreamId,
) {
    let mut op = gpu.memcpy_h2d_async(dst, 0, src, 0, len, stream);
    let mut attempt: u32 = 0;
    while gpu.op_faulted(op) {
        assert!(
            attempt < MAX_TRANSFER_RETRIES,
            "baseline cannot degrade past a persistent H2D fault"
        );
        gpu.backoff_work(
            SimTime::from_us(20u64 << attempt.min(10)),
            "h2d-retry-backoff",
        );
        op = gpu.memcpy_h2d_async(dst, 0, src, 0, len, stream);
        attempt += 1;
    }
}

/// `memcpy_d2h_async` with bounded retry-with-backoff; a persistently dead
/// D2H lane falls back to the fault-exempt salvage copy so results still
/// reach the host.
pub fn d2h_retrying(
    gpu: &mut GpuSystem,
    dst: HostBuffer,
    src: DeviceBuffer,
    len: usize,
    stream: StreamId,
) {
    let mut op = gpu.memcpy_d2h_async(dst, 0, src, 0, len, stream);
    let mut attempt: u32 = 0;
    while gpu.op_faulted(op) {
        if attempt >= MAX_TRANSFER_RETRIES {
            gpu.memcpy_d2h_salvage(dst, 0, src, 0, len, stream);
            break;
        }
        gpu.backoff_work(
            SimTime::from_us(20u64 << attempt.min(10)),
            "d2h-retry-backoff",
        );
        op = gpu.memcpy_d2h_async(dst, 0, src, 0, len, stream);
        attempt += 1;
    }
}

/// Host memory / transfer discipline of a whole-array baseline.
///
/// Matches the three memory managements the paper compares in §II-B/Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemMode {
    /// Ordinary `malloc` host memory; transfers stage and synchronize.
    Pageable,
    /// `cudaMallocHost` pinned memory; full-bandwidth async DMA.
    Pinned,
    /// `cudaMallocManaged` unified memory; on-demand migration.
    Managed,
}

impl MemMode {
    pub fn label(self) -> &'static str {
        match self {
            MemMode::Pageable => "pageable",
            MemMode::Pinned => "pinned",
            MemMode::Managed => "managed",
        }
    }
}

/// Options common to every baseline run.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    pub mem: MemMode,
    /// Allocate real data (validated run) or virtual buffers (timing only).
    pub backed: bool,
    /// Record a span trace.
    pub tracing: bool,
}

impl RunOpts {
    pub fn timing(mem: MemMode) -> Self {
        RunOpts {
            mem,
            backed: false,
            tracing: false,
        }
    }

    pub fn validated(mem: MemMode) -> Self {
        RunOpts {
            mem,
            backed: true,
            tracing: false,
        }
    }

    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }
}

/// Outcome of one run: the simulated wall time, transfer/kernel statistics,
/// the final field (when backed), and the trace (when recorded).
pub struct RunResult {
    pub label: String,
    pub elapsed: SimTime,
    pub bytes_h2d: u64,
    pub bytes_d2h: u64,
    pub kernels: u64,
    pub result: Option<Vec<f64>>,
    pub trace: Option<Trace>,
}

impl RunResult {
    /// Elapsed time in milliseconds (convenience for reports).
    pub fn ms(&self) -> f64 {
        self.elapsed.as_ms_f64()
    }

    /// Speedup of `self` relative to `baseline` (>1 means `self` is faster).
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        baseline.elapsed.as_secs_f64() / self.elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_mode_labels() {
        assert_eq!(MemMode::Pageable.label(), "pageable");
        assert_eq!(MemMode::Pinned.label(), "pinned");
        assert_eq!(MemMode::Managed.label(), "managed");
    }

    #[test]
    fn speedup_ratio() {
        let mk = |ns: u64| RunResult {
            label: "x".into(),
            elapsed: SimTime::from_ns(ns),
            bytes_h2d: 0,
            bytes_d2h: 0,
            kernels: 0,
            result: None,
            trace: None,
        };
        let fast = mk(100);
        let slow = mk(400);
        assert_eq!(fast.speedup_over(&slow), 4.0);
        assert_eq!(slow.speedup_over(&fast), 0.25);
    }
}
